/// \file bench_ablation_extensions.cpp
/// \brief Ablation of the §8 future-work extensions implemented in this
/// repo: flow-based pairwise refinement and the graph-theoretic BFS
/// prepartitioner; plus a repartitioning-vs-fresh-run comparison.
///
/// None of these has a table in the paper — §8 sketches them ("Other
/// refinement algorithms, e.g., based on flows ... a very fast
/// prepartitioner that works purely graph theoretically ...
/// repartitioning"). This bench quantifies what they buy on our suite.
#include <algorithm>
#include <cstdio>

#include "coarsening/prepartition.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "harness.hpp"
#include "parallel/pe_runtime.hpp"
#include "util/random.hpp"

namespace {

/// The adaptive-mesh stand-in shared by the repartitioning tables: move
/// ~5% random nodes to random blocks (Rng(7), so Extension 3 and 3b
/// degrade the same way).
kappa::Partition perturb_5pct(const kappa::StaticGraph& g,
                              const kappa::Partition& p, kappa::BlockID k) {
  using namespace kappa;
  Partition perturbed = p;
  Rng rng(7);
  for (NodeID i = 0; i < g.num_nodes() / 20; ++i) {
    const NodeID u = static_cast<NodeID>(rng.bounded(g.num_nodes()));
    const BlockID to = static_cast<BlockID>(rng.bounded(k));
    if (perturbed.block(u) != to) perturbed.move(u, to, g.node_weight(u));
  }
  return perturbed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv, 2);

  // --- Extension 1: flow refinement on top of FM. ---
  print_table_header("Extension: FM vs FM+flow pairwise refinement, k = 16",
                     {"refiner", "avg cut", "avg bal", "avg t[s]"});
  for (const bool use_flow : {false, true}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : small_suite()) {
      const StaticGraph g = make_instance(name);
      Config config = Config::preset(Preset::kFast, 16);
      config.enable_flow_refinement = use_flow;
      accumulator.add(run_kappa(g, config, reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({use_flow ? "FM+flow" : "FM", fmt(s.avg_cut),
               fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }

  // --- Extension 2: prepartitioner quality (edge locality for the
  // parallel matching phase). ---
  print_table_header(
      "Extension: prepartitioner locality (fraction of PE-internal edges)",
      {"graph", "geometric", "bfs", "numbering"});
  for (const std::string& name :
       {std::string("rgg15"), std::string("delaunay15"),
        std::string("road_m")}) {
    const StaticGraph g = make_instance(name);
    auto internal_fraction = [&](const std::vector<BlockID>& homes) {
      EdgeID internal = 0;
      for (NodeID u = 0; u < g.num_nodes(); ++u) {
        for (const NodeID v : g.neighbors(u)) {
          if (u < v && homes[u] == homes[v]) ++internal;
        }
      }
      return static_cast<double>(internal) /
             static_cast<double>(g.num_edges());
    };
    Rng rng(1);
    print_row({name, fmt(internal_fraction(geometric_prepartition(g, 16)), 3),
               fmt(internal_fraction(bfs_prepartition(g, 16, rng)), 3),
               fmt(internal_fraction(
                       numbering_prepartition(g.num_nodes(), 16)),
                   3)});
  }

  // --- Extension 3: repartitioning vs. fresh partitioning after a
  // perturbation (migration volume is the point). ---
  print_table_header(
      "Extension: repartition vs fresh run after 5% perturbation, k = 16",
      {"graph", "fresh cut", "repart cut", "migrated", "fresh mig"});
  for (const std::string& name :
       {std::string("grid_l"), std::string("rgg15")}) {
    const StaticGraph g = make_instance(name);
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    const PartitionResult original =
        Partitioner(Context::sequential(config)).partition(g);
    const Partition perturbed = perturb_5pct(g, original.partition, 16);

    config.seed = 2;
    const PartitionResult fresh =
        Partitioner(Context::sequential(config)).partition(g);
    NodeID fresh_migration = 0;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      if (fresh.partition.block(u) != perturbed.block(u)) ++fresh_migration;
    }
    const PartitionResult repart =
        Partitioner(Context::sequential(config)).repartition(g, perturbed);
    print_row({name, fmt(static_cast<double>(fresh.cut)),
               fmt(static_cast<double>(repart.cut)),
               std::to_string(repart.migrated_nodes),
               std::to_string(fresh_migration)});
  }

  // --- Extension 3b: the same repartitioning workload SPMD on the PE
  // runtime. The partition and migration count are p-invariant; p only
  // spreads the migrated-node intake (the DynamicOverlay view each rank
  // materializes for its blocks) and the wire traffic over more PEs. ---
  {
    const StaticGraph g = make_instance("rgg15");
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    const PartitionResult original =
        Partitioner(Context::sequential(config)).partition(g);
    const Partition perturbed = perturb_5pct(g, original.partition, 16);

    print_table_header(
        "Extension: SPMD repartition after 5% perturbation, rgg15, k = 16",
        {"PEs", "cut", "migrated", "max mig/PE", "max edges/PE", "words",
         "barriers"});
    for (const int pes : {1, 2, 4, 8}) {
      PERuntime runtime(pes, config.seed);
      const PartitionResult repart =
          Partitioner(Context::spmd(config, runtime))
              .repartition(g, perturbed);
      NodeID max_mig = 0;
      std::size_t max_edges = 0;
      for (const NodeID m : repart.migrated_per_pe) {
        max_mig = std::max(max_mig, m);
      }
      for (const std::size_t m : repart.migrated_edges_per_pe) {
        max_edges = std::max(max_edges, m);
      }
      print_row({std::to_string(pes),
                 fmt(static_cast<double>(repart.cut)),
                 std::to_string(repart.migrated_nodes),
                 std::to_string(max_mig),
                 std::to_string(max_edges),
                 std::to_string(repart.comm.words_sent),
                 std::to_string(repart.comm.barriers)});
    }
  }
  std::printf(
      "\nshape targets: flow >= FM quality at moderate extra time; "
      "geometric ~ bfs >> numbering locality on geometric graphs;\n"
      "repartitioning migrates an order of magnitude fewer nodes than a "
      "fresh run at comparable cut;\nSPMD repartition is p-invariant in "
      "cut and migration while per-PE intake shrinks with p\n");
  return 0;
}
