/// \file bench_ablation_knobs.cpp
/// \brief Ablation of the §6.1 work knobs: BFS band depth, local
/// iterations, FM patience, initial-partitioning repeats.
///
/// The paper summarizes these sweeps in prose: "For these parameters we
/// get the predictable effect that more work yields better solutions
/// albeit at a decreasing return on investment" and reports that the fast
/// settings cost <= 20% extra time each, 63% combined. This bench prints
/// one table per knob, everything else fixed at the fast preset.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

namespace {

template <typename Setter>
void sweep(const char* title, const char* column,
           const std::vector<double>& values, Setter setter, int reps) {
  using namespace kappa;
  using namespace kappa::bench;
  print_table_header(title, {column, "avg cut", "avg bal", "avg t[s]"});
  for (const double value : values) {
    SuiteAccumulator accumulator;
    for (const std::string& name : small_suite()) {
      const StaticGraph g = make_instance(name);
      Config config = Config::preset(Preset::kFast, 16);
      setter(config, value);
      accumulator.add(run_kappa(g, config, reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({fmt(value, value < 1 ? 2 : 0), fmt(s.avg_cut),
               fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv, 2);

  sweep("Ablation: BFS band depth (Table 2 row 'BFS search depth')",
        "depth", {1, 2, 5, 10, 20},
        [](Config& c, double v) { c.bfs_depth = static_cast<int>(v); },
        reps);

  sweep("Ablation: local iterations (Table 2 row 'local iterations')",
        "iters", {1, 2, 3, 5},
        [](Config& c, double v) { c.local_iterations = static_cast<int>(v); },
        reps);

  sweep("Ablation: FM patience alpha (Table 2 row 'FM-patience')",
        "alpha", {0.01, 0.05, 0.20, 0.30},
        [](Config& c, double v) { c.fm_alpha = v; }, reps);

  sweep("Ablation: initial partitioning repeats (Table 2 row 'init. repeats')",
        "repeats", {1, 3, 5},
        [](Config& c, double v) { c.init_repeats = static_cast<int>(v); },
        reps);

  sweep("Ablation: duplicate pair search (0 = off, 1 = on; §5 'the better "
        "partitioning of the two blocks is adopted')",
        "dup", {0, 1},
        [](Config& c, double v) { c.duplicate_search = v > 0.5; }, reps);

  std::printf(
      "\nshape target (paper §6.1): more work -> smaller cuts, with "
      "decreasing returns; each fast-setting step costs <= ~20%% time\n");
  return 0;
}
