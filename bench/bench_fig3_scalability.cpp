/// \file bench_fig3_scalability.cpp
/// \brief Regenerates Figure 3: total time as a function of the number of
/// PEs (= blocks k) for the three KaPPa variants and the other tools.
///
/// The paper scales k = p from 4 to 1024 on a 200-node cluster and shows
/// (a) KaPPa's total time growing gently with k while staying within an
/// order of magnitude, (b) parMetis hitting its scalability limit around
/// 100 PEs, (c) the KaPPa variants ordered strong > fast > minimal in
/// time at every k. On one machine we sweep k with p = k worker threads
/// (oversubscribed beyond the core count), and additionally report the
/// machine-independent communication shape of the parallel phases:
/// gap-graph size from the parallel matching and message/word counters
/// from the distributed coloring protocol.
#include <sys/socket.h>
#include <sys/wait.h>

#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "coarsening/prepartition.hpp"
#include "core/metrics_export.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/quotient_graph.hpp"
#include "harness.hpp"
#include "matching/parallel_match.hpp"
#include "parallel/dist_coloring.hpp"
#include "parallel/transport_tcp.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

/// Binds an ephemeral localhost port and returns its number (closed
/// again, immediately reusable as the rendezvous port).
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv, 2);
  const std::vector<BlockID> ks = {4, 8, 16, 32, 64, 128};
  bool tcp_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tcp-only") == 0) tcp_only = true;
  }

  // One SPMD run spanning processes: the same pipeline on the TCP socket
  // fabric, p localhost processes with one rank each, against the
  // in-process (thread) backend. Same seed => identical cut on every
  // backend and every p; the TCP column adds the real socket bytes rank 0
  // put on the wire. Runs first so `--tcp-only` can sweep it alone.
  {
    const StaticGraph instance = make_instance("rgg15");
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    print_table_header(
        "Figure 3 (companion): one run spanning processes — inproc threads "
        "vs TCP sockets, rgg15, k=16",
        {"PEs", "backend", "cut", "time[s]", "r0 wire sent[MB]",
         "r0 wire recv[MB]"});
    for (const int pes : {1, 2, 4, 8}) {
      {
        PERuntime runtime(pes, config.seed);
        Timer timer;
        const PartitionResult result =
            Partitioner(Context::spmd(config, runtime)).partition(instance);
        print_row({std::to_string(pes), "inproc",
                   std::to_string(result.cut), fmt(timer.elapsed_s(), 2),
                   "0", "0"});
      }
      const std::uint16_t port = pick_free_port();
      int fds[2];
      if (::pipe(fds) != 0) continue;
      std::vector<pid_t> pids;
      for (int rank = 0; rank < pes; ++rank) {
        const pid_t pid = ::fork();
        if (pid == 0) {
          ::close(fds[0]);
          int code = 1;
          try {
            TcpOptions options;
            options.rank = rank;
            options.num_ranks = pes;
            options.rendezvous_port = port;
            options.recv_timeout_ms = 120000;
            PERuntime runtime(make_tcp_fabric(options), config.seed);
            Timer timer;
            const PartitionResult result =
                Partitioner(Context::spmd(config, runtime))
                    .partition(instance);
            const double elapsed = timer.elapsed_s();
            if (rank == 0) {
              char line[160];
              std::snprintf(
                  line, sizeof line, "%lld %.4f %llu %llu\n",
                  static_cast<long long>(result.cut), elapsed,
                  static_cast<unsigned long long>(
                      result.comm.wire_bytes_sent),
                  static_cast<unsigned long long>(
                      result.comm.wire_bytes_received));
              (void)!::write(fds[1], line, std::strlen(line));
            }
            code = 0;
          } catch (...) {
          }
          ::close(fds[1]);
          std::_Exit(code);
        }
        pids.push_back(pid);
      }
      ::close(fds[1]);
      char line[160] = {0};
      std::size_t got = 0;
      while (got + 1 < sizeof line) {
        const ssize_t n = ::read(fds[0], line + got, sizeof line - 1 - got);
        if (n <= 0) break;
        got += static_cast<std::size_t>(n);
      }
      ::close(fds[0]);
      bool ok = got > 0;
      for (const pid_t pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0);
        ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      long long cut = -1;
      double elapsed = 0.0;
      unsigned long long sent = 0;
      unsigned long long received = 0;
      if (ok &&
          std::sscanf(line, "%lld %lf %llu %llu", &cut, &elapsed, &sent,
                      &received) == 4) {
        print_row({std::string(), "tcp", std::to_string(cut),
                   fmt(elapsed, 2), fmt(static_cast<double>(sent) / 1e6, 1),
                   fmt(static_cast<double>(received) / 1e6, 1)});
      } else {
        print_row({std::string(), "tcp", "failed", "-", "-", "-"});
      }
    }
  }
  if (tcp_only) return 0;

  for (const std::string& name : {std::string("rgg15"),
                                  std::string("delaunay15"),
                                  std::string("road_l")}) {
    const StaticGraph g = make_instance(name);
    print_table_header("Figure 3: total time [s] vs k (= PEs), " + name,
                       {"k", "strong", "fast", "minimal", "scotch", "kmetis",
                        "parmetis"});
    for (const BlockID k : ks) {
      std::vector<std::string> cells = {std::to_string(k)};
      for (const Preset preset :
           {Preset::kStrong, Preset::kFast, Preset::kMinimal}) {
        Config config = Config::preset(preset, k);
        config.num_threads = static_cast<int>(std::min<BlockID>(k, 16));
        cells.push_back(fmt(run_kappa(g, config, reps).avg_time(), 2));
      }
      for (const std::string tool : {"scotch", "kmetis", "parmetis"}) {
        cells.push_back(fmt(run_tool(tool, g, k, 0.03, reps).avg_time(), 2));
      }
      print_row(cells);
    }
  }

  // Machine-independent communication shape: what an MPI implementation
  // would put on the wire as p grows.
  const StaticGraph g = make_instance("rgg15");
  print_table_header(
      "Figure 3 (companion): communication volume vs PEs, rgg15",
      {"PEs", "gap edges", "gap pairs", "color msgs", "color words"});
  for (const BlockID pes : {4u, 8u, 16u, 32u, 64u}) {
    // Parallel matching: gap-graph traffic.
    const auto homes = prepartition(g, pes);
    MatchingOptions moptions;
    Rng rng(1);
    ParallelMatchingStats mstats;
    (void)parallel_matching(g, homes, pes, MatcherAlgo::kGPA, moptions, rng,
                            &mstats);
    // Distributed coloring of the quotient graph of a pes-way partition.
    Config config = Config::preset(Preset::kMinimal, pes);
    const PartitionResult result =
        Partitioner(Context::sequential(config)).partition(g);
    const QuotientGraph quotient(g, result.partition);
    const DistributedColoringResult coloring =
        distributed_color_quotient_edges(quotient, 1);
    print_row({std::to_string(pes), std::to_string(mstats.gap_edges),
               std::to_string(mstats.gap_pairs),
               std::to_string(coloring.comm.messages_sent),
               std::to_string(coloring.comm.words_sent)});
  }
  // The SPMD end-to-end pipeline on the PE runtime: the same partition for
  // every p (deterministic), with the per-PE communication counters the
  // paper's MPI implementation would put on the wire.
  for (const std::string& name :
       {std::string("rgg15"), std::string("delaunay15")}) {
    const StaticGraph instance = make_instance(name);
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    print_table_header(
        "Figure 3 (companion): SPMD pipeline per-PE CommStats, " + name +
            ", k=16",
        {"PEs", "cut", "time[s]", "rank", "msgs", "words", "barriers"});
    for (const int pes : {1, 2, 4, 8}) {
      PERuntime runtime(pes, config.seed);
      Timer timer;
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(instance);
      const double elapsed = timer.elapsed_s();
      for (int rank = 0; rank < pes; ++rank) {
        const CommStats& s = result.comm_per_pe[rank];
        print_row({rank == 0 ? std::to_string(pes) : std::string(),
                   rank == 0 ? std::to_string(result.cut) : std::string(),
                   rank == 0 ? fmt(elapsed, 2) : std::string(),
                   std::to_string(rank), std::to_string(s.messages_sent),
                   std::to_string(s.words_sent), std::to_string(s.barriers)});
      }
    }
  }

  // Halo-exchange communication per coarsening level: the point-to-point
  // traffic of shard-owned contraction (ghost refreshes, boundary match
  // decisions, coarse-edge contributions), summed over ranks. The volume
  // tracks the boundary of each level, not its node count.
  {
    const StaticGraph instance = make_instance("rgg15");
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    print_table_header(
        "Figure 3 (companion): halo exchange per coarsening level, rgg15, "
        "k=16",
        {"PEs", "level", "n_level", "halo msgs", "halo words"});
    for (const int pes : {2, 4, 8}) {
      PERuntime runtime(pes, config.seed);
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(instance);
      for (std::size_t l = 0; l < result.comm.halo_per_level.size(); ++l) {
        const LevelHaloStats& h = result.comm.halo_per_level[l];
        print_row({l == 0 ? std::to_string(pes) : std::string(),
                   std::to_string(l),
                   std::to_string(result.hierarchy_level_nodes[l]),
                   std::to_string(h.messages), std::to_string(h.words)});
      }
    }
  }

  // Per-rank resident memory of the distributed hierarchy store:
  // Σ_levels (n_level/p + halo) against the replicated baseline
  // Σ_levels n_level every rank used to hold.
  {
    const StaticGraph instance = make_instance("rgg15");
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    print_table_header(
        "Per-rank resident hierarchy memory: distributed store vs "
        "replicated baseline, rgg15, k=16",
        {"PEs", "rank", "owned", "ghosts", "resident", "arcs",
         "sum n_l", "share"});
    for (const int pes : {1, 2, 4, 8}) {
      PERuntime runtime(pes, config.seed);
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(instance);
      std::uint64_t baseline = 0;
      for (const NodeID n_level : result.hierarchy_level_nodes) {
        baseline += n_level;
      }
      for (int rank = 0; rank < pes; ++rank) {
        const ShardFootprint& fp = result.hierarchy_memory_per_pe[rank];
        print_row({rank == 0 ? std::to_string(pes) : std::string(),
                   std::to_string(rank), std::to_string(fp.owned_nodes),
                   std::to_string(fp.ghost_nodes),
                   std::to_string(fp.resident_nodes()),
                   std::to_string(fp.arcs),
                   rank == 0 ? std::to_string(baseline) : std::string(),
                   fmt(static_cast<double>(fp.resident_nodes()) /
                           static_cast<double>(baseline),
                       3)});
      }
    }
  }

  // Per-PE resident graph memory: the replicated-CSR baseline (every PE
  // holding all n nodes / 2m arcs) against the ghost-layer sharding's
  // peak owned+ghost footprint (§3.3 ShardGraph + §5.2 block-row store).
  {
    const StaticGraph instance = make_instance("rgg15");
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    print_table_header(
        "Per-PE resident graph memory: replicated vs ghost-layer CSR, "
        "rgg15, k=16",
        {"PEs", "rank", "owned", "ghosts", "resident", "arcs", "n", "share"});
    for (const int pes : {1, 2, 4, 8}) {
      PERuntime runtime(pes, config.seed);
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(instance);
      for (int rank = 0; rank < pes; ++rank) {
        const ShardFootprint& fp = result.shard_memory_per_pe[rank];
        print_row({rank == 0 ? std::to_string(pes) : std::string(),
                   std::to_string(rank), std::to_string(fp.owned_nodes),
                   std::to_string(fp.ghost_nodes),
                   std::to_string(fp.resident_nodes()),
                   std::to_string(fp.arcs),
                   rank == 0 ? std::to_string(instance.num_nodes())
                             : std::string(),
                   fmt(static_cast<double>(fp.resident_nodes()) /
                           static_cast<double>(instance.num_nodes()),
                       3)});
      }
    }
  }

  // Per-rank resident partition state: owned block ids (n/p) plus the
  // ghost-block cache, against the replicated O(n) assignment every rank
  // used to hold. Swept to p = 9 (incl. ragged p and p > shard-count
  // divisors) — the sharded-partition acceptance sweep.
  {
    const StaticGraph instance = make_instance("rgg15");
    Config config = Config::preset(Preset::kFast, 16);
    config.seed = 1;
    print_table_header(
        "Per-rank resident partition state: sharded store vs replicated "
        "assignment, rgg15, k=16",
        {"PEs", "rank", "owned", "cached", "resident", "n", "share"});
    for (const int pes : {1, 2, 4, 8, 9}) {
      PERuntime runtime(pes, config.seed);
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(instance);
      for (int rank = 0; rank < pes; ++rank) {
        const ShardFootprint& fp = result.partition_memory_per_pe[rank];
        print_row({rank == 0 ? std::to_string(pes) : std::string(),
                   std::to_string(rank), std::to_string(fp.owned_nodes),
                   std::to_string(fp.ghost_nodes),
                   std::to_string(fp.resident_nodes()),
                   rank == 0 ? std::to_string(instance.num_nodes())
                             : std::string(),
                   fmt(static_cast<double>(fp.resident_nodes()) /
                           static_cast<double>(instance.num_nodes()),
                       3)});
      }
    }
  }

  // §5.2 pair-shipping volume: whole-block shipping (legacy) vs the
  // band-limited shipping of the sharded-partition refiner, summed over
  // ranks. rows/pair is the per-pair migration volume the paper bounds by
  // the band; "block rows" is what a whole-block send would have shipped
  // for the same pairs.
  {
    const StaticGraph instance = make_instance("rgg15");
    print_table_header(
        "Pair shipping volume: whole block vs boundary band, rgg15, k=16",
        {"PEs", "mode", "pairs", "rows", "block rows", "words",
         "rows/pair", "cut"});
    for (const int pes : {2, 4, 8, 9}) {
      for (const bool band : {false, true}) {
        Config config = Config::preset(Preset::kFast, 16);
        config.seed = 1;
        config.band_shipping = band;
        PERuntime runtime(pes, config.seed);
        const PartitionResult result =
            Partitioner(Context::spmd(config, runtime)).partition(instance);
        PairShipStats total;
        for (const PairShipStats& s : result.pair_ship_per_pe) total += s;
        print_row(
            {!band ? std::to_string(pes) : std::string(),
             band ? "band" : "whole", std::to_string(total.pairs_shipped),
             std::to_string(total.rows_shipped),
             std::to_string(total.whole_block_rows),
             std::to_string(total.words_shipped),
             fmt(total.pairs_shipped == 0
                     ? 0.0
                     : static_cast<double>(total.rows_shipped) /
                           static_cast<double>(total.pairs_shipped),
                 1),
             std::to_string(result.cut)});
      }
    }
  }

  // Refinement scheduler sweep: the color-class oracle (sync) against the
  // async block-lock scheduler on the acceptance suite (rgg15, k = 16),
  // p = 1..9. Reported per run: wall-clock, cut, and each rank's idle
  // share — the fraction of the run it spent blocked in collectives or
  // empty-mailbox receives, the barrier bill the async scheduler exists
  // to kill. Each run's full metrics registry (schema kappa.metrics.v1,
  // the same document `kappa_cli --metrics-out` writes) is embedded in
  // BENCH_refinement.json, with the bench-level derived numbers under
  // bench.* keys (EXPERIMENTS.md records the shape).
  {
    const StaticGraph instance = make_instance("rgg15");
    print_table_header(
        "Refinement schedulers: color-class oracle (sync) vs async block "
        "locks, rgg15, k=16",
        {"PEs", "mode", "time[s]", "cut", "idle mean", "idle max",
         "rounds waited"});
    std::ofstream json("BENCH_refinement.json");
    if (json) {
      json << "{\n  \"schema\": \"kappa.bench.v1\",\n"
              "  \"bench\": \"refinement_schedulers\",\n"
              "  \"instance\": \"rgg15\",\n  \"k\": 16,\n"
              "  \"preset\": \"fast\",\n  \"seed\": 1,\n"
              "  \"runs\": [";
    }
    bool first_run = true;
    for (const int pes : {1, 2, 3, 4, 5, 6, 7, 8, 9}) {
      for (const bool async : {false, true}) {
        Config config = Config::preset(Preset::kFast, 16);
        config.seed = 1;
        config.async_refinement = async;
        PERuntime runtime(pes, config.seed);
        Timer timer;
        const PartitionResult result =
            Partitioner(Context::spmd(config, runtime)).partition(instance);
        const double elapsed = timer.elapsed_s();
        const double wall_ns = elapsed * 1e9;
        double mean_share = 0.0;
        double max_share = 0.0;
        std::uint64_t rounds = 0;
        std::vector<double> share_per_rank;
        for (const CommStats& s : result.comm_per_pe) {
          const double share =
              wall_ns > 0.0 ? static_cast<double>(s.idle_ns()) / wall_ns : 0.0;
          share_per_rank.push_back(share);
          mean_share += share / static_cast<double>(pes);
          max_share = std::max(max_share, share);
          rounds += s.rounds_waited;
        }
        print_row({!async ? std::to_string(pes) : std::string(),
                   async ? "async" : "sync", fmt(elapsed, 2),
                   std::to_string(result.cut), fmt(mean_share, 3),
                   fmt(max_share, 3), std::to_string(rounds)});
        if (json) {
          MetricsRegistry run = metrics_from_result(result, config, "inproc");
          run.set_str("bench.mode", async ? "async" : "sync");
          run.set_f64("bench.wall_s", elapsed);
          run.set_f64("bench.mean_idle_share", mean_share);
          run.set_f64("bench.max_idle_share", max_share);
          run.set_f64_list("bench.idle_share_per_rank",
                           std::move(share_per_rank));
          json << (first_run ? "\n" : ",\n");
          run.write_json(json, 4);
          first_run = false;
        }
      }
    }
    if (json) {
      json << "\n  ]\n}\n";
      json.close();
      std::printf("\nwrote BENCH_refinement.json\n");
    }
  }

  std::printf(
      "\nshape targets (paper): KaPPa time grows gently with k "
      "(strong > fast > minimal);\nparmetis/kmetis flat-ish but with far "
      "worse cuts; gap/coloring traffic grows ~linearly in the boundary, "
      "not in n;\nSPMD cut is p-invariant while per-PE words shrink as "
      "work spreads over more PEs;\nper-PE resident share drops toward "
      "1/p + halo as the data sharding takes over;\nhalo words per level "
      "track the shard boundary, not n_level; the hierarchy store's\n"
      "per-rank share of sum n_l falls toward 1/p + halo — no rank holds "
      "a level replica;\nthe partition state's per-rank share falls the "
      "same way (owned n/p + boundary cache);\nband shipping sends a "
      "bounded band per pair, far below the whole-block rows\n");
  return 0;
}
