/// \file bench_micro_components.cpp
/// \brief google-benchmark micro-benchmarks of the algorithmic building
/// blocks: matchers, contraction, FM, coloring, band BFS.
///
/// These are not paper tables; they quantify the per-component costs the
/// paper discusses qualitatively (e.g. "although GPA is slower than SHEM,
/// this disadvantage is offset by less work in the refinement phase").
#include <benchmark/benchmark.h>

#include "generators/generators.hpp"
#include "graph/contraction.hpp"
#include "graph/metrics.hpp"
#include "graph/quotient_graph.hpp"
#include "matching/matchers.hpp"
#include "refinement/band.hpp"
#include "refinement/edge_coloring.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

const StaticGraph& bench_graph() {
  static const StaticGraph graph = make_instance("rgg15", 1);
  return graph;
}

void BM_Matching(benchmark::State& state, MatcherAlgo algo) {
  const StaticGraph& g = bench_graph();
  MatchingOptions options;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(compute_matching(g, algo, options, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK_CAPTURE(BM_Matching, shem, MatcherAlgo::kSHEM);
BENCHMARK_CAPTURE(BM_Matching, greedy, MatcherAlgo::kGreedy);
BENCHMARK_CAPTURE(BM_Matching, gpa, MatcherAlgo::kGPA);

void BM_Contraction(benchmark::State& state) {
  const StaticGraph& g = bench_graph();
  MatchingOptions options;
  Rng rng(1);
  const auto partner = compute_matching(g, MatcherAlgo::kGPA, options, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contract(g, partner));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_Contraction);

void BM_TwoWayFM(benchmark::State& state) {
  const StaticGraph& g = bench_graph();
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = g.coordinate(u).x < 0.5 ? 0 : 1;
  }
  TwoWayFMOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.03);
  for (auto _ : state) {
    state.PauseTiming();
    Partition p(g, std::vector<BlockID>(assignment), 2);
    const auto band = boundary_band(g, p, 0, 1, 5);
    Rng rng(1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(twoway_fm(g, p, 0, 1, band, options, rng));
  }
}
BENCHMARK(BM_TwoWayFM);

void BM_BandBFS(benchmark::State& state) {
  const StaticGraph& g = bench_graph();
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = g.coordinate(u).x < 0.5 ? 0 : 1;
  }
  const Partition p(g, std::move(assignment), 2);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(boundary_band(g, p, 0, 1, depth));
  }
}
BENCHMARK(BM_BandBFS)->Arg(1)->Arg(5)->Arg(20);

void BM_QuotientColoring(benchmark::State& state) {
  const StaticGraph& g = bench_graph();
  const BlockID k = static_cast<BlockID>(state.range(0));
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = static_cast<BlockID>(
        std::min<double>(g.coordinate(u).x * k, k - 1));
  }
  const Partition p(g, std::move(assignment), k);
  const QuotientGraph q(g, p);
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(color_quotient_edges(q, rng));
  }
}
BENCHMARK(BM_QuotientColoring)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace kappa

BENCHMARK_MAIN();
