/// \file bench_table1_instances.cpp
/// \brief Regenerates Table 1: basic properties of the benchmark set.
///
/// The paper lists n and m for its two suites (small/medium calibration
/// instances, large comparison instances). We print the same columns for
/// our synthetic stand-ins; m counts directed arcs like the paper's table
/// (e.g. Delaunay17 has 786 352 = ~6 * 2^17 arcs there, and our
/// delaunayX instances show the same ~6n arc count).
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

int main() {
  using namespace kappa;
  using namespace kappa::bench;

  print_table_header("Table 1: benchmark set (small/medium calibration)",
                     {"graph", "n", "m(arcs)", "family"});
  for (const std::string& name : small_suite()) {
    const StaticGraph g = make_instance(name);
    print_row({name, std::to_string(g.num_nodes()),
               std::to_string(g.num_arcs()),
               g.has_coordinates() ? "geometric" : "topological"});
  }

  print_table_header("Table 1: benchmark set (large comparison)",
                     {"graph", "n", "m(arcs)", "family"});
  for (const std::string& name : large_suite()) {
    const StaticGraph g = make_instance(name);
    print_row({name, std::to_string(g.num_nodes()),
               std::to_string(g.num_arcs()),
               g.has_coordinates() ? "geometric" : "topological"});
  }
  return 0;
}
