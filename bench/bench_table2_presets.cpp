/// \file bench_table2_presets.cpp
/// \brief Regenerates Table 2's bottom rows: geometric-mean cut and time
/// of the minimal / fast / strong parameter presets.
///
/// Paper (Table 2): avg cut 2985 / 2910 / 2890 and avg time 0.67 / 1.29 /
/// 2.10 s — i.e. minimal > fast > strong in cut, the reverse in time.
/// The absolute numbers differ here (different instances and machine);
/// the monotone shape is the reproduction target.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv);

  print_table_header(
      "Table 2: presets over the calibration suite, k = 16 (geom. means)",
      {"preset", "avg cut", "best cut", "avg bal", "avg t[s]"});

  for (const Preset preset :
       {Preset::kMinimal, Preset::kFast, Preset::kStrong}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : small_suite()) {
      const StaticGraph g = make_instance(name);
      accumulator.add(run_kappa(g, Config::preset(preset, 16), reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({preset_name(preset), fmt(s.avg_cut), fmt(s.best_cut),
               fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }
  std::printf(
      "\nshape target (paper): cut(minimal) > cut(fast) > cut(strong);\n"
      "time(minimal) < time(fast) < time(strong)\n");
  return 0;
}
