/// \file bench_table3_matchers.cpp
/// \brief Regenerates Table 3 (right): KaPPa-fast with each sequential
/// matching algorithm.
///
/// Paper: gpa 2910, shem 2984 (+2.5%), greedy 3854 — GPA best, Greedy
/// clearly worst in the parallel setting, and GPA's extra matching work
/// does not increase total time (it is offset by cheaper refinement).
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"
#include "matching/matchers.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv);

  print_table_header(
      "Table 3 (right): matching algorithms, KaPPa-fast, k = 16",
      {"matcher", "avg cut", "best cut", "avg bal", "avg t[s]"});

  for (const MatcherAlgo algo :
       {MatcherAlgo::kGPA, MatcherAlgo::kSHEM, MatcherAlgo::kGreedy}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : small_suite()) {
      const StaticGraph g = make_instance(name);
      Config config = Config::preset(Preset::kFast, 16);
      config.matcher = algo;
      accumulator.add(run_kappa(g, config, reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({matcher_name(algo), fmt(s.avg_cut), fmt(s.best_cut),
               fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }
  std::printf(
      "\nshape target (paper): gpa <= shem < greedy in cut; comparable "
      "total time\n");
  return 0;
}
