/// \file bench_table3_ratings.cpp
/// \brief Regenerates Table 3 (left): KaPPa-fast with each edge rating.
///
/// Paper: expansion*2 2910, expansion* 2914, innerOuter 2914, expansion
/// 2940, weight 3165 — i.e. plain `weight` is clearly worst (up to 8.8%)
/// and the four structural ratings are within ~1% of each other.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"
#include "matching/ratings.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv);

  print_table_header(
      "Table 3 (left): edge ratings, KaPPa-fast, k = 16 (geom. means)",
      {"rating", "avg cut", "best cut", "avg bal", "avg t[s]"});

  for (const EdgeRating rating :
       {EdgeRating::kExpansionStar2, EdgeRating::kExpansionStar,
        EdgeRating::kInnerOuter, EdgeRating::kExpansion,
        EdgeRating::kWeight}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : small_suite()) {
      const StaticGraph g = make_instance(name);
      Config config = Config::preset(Preset::kFast, 16);
      config.rating = rating;
      accumulator.add(run_kappa(g, config, reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({rating_name(rating), fmt(s.avg_cut), fmt(s.best_cut),
               fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }
  std::printf(
      "\nshape target (paper): `weight` clearly worst (up to ~8.8%%); the\n"
      "four structural ratings close to each other\n");
  return 0;
}
