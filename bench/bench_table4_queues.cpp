/// \file bench_table4_queues.cpp
/// \brief Regenerates Table 4 (left): FM queue selection strategies.
///
/// Paper: TopGain 2910 / bal 1.025, Alternate 2942 / 1.024,
/// TopGainMaxLoad 2948 / 1.014, MaxLoad 3002 / 1.005 — TopGain gives the
/// best cuts (~3.2% over MaxLoad) while MaxLoad gives the tightest
/// balance; "even using MaxLoad for tie breaking we are already worse
/// than the seemingly stupid Alternating rule".
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"
#include "refinement/twoway_fm.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv);

  print_table_header(
      "Table 4 (left): queue selection strategies, KaPPa-fast, k = 16",
      {"strategy", "avg cut", "best cut", "avg bal", "avg t[s]"});

  for (const QueueSelection strategy :
       {QueueSelection::kTopGain, QueueSelection::kAlternate,
        QueueSelection::kTopGainMaxLoad, QueueSelection::kMaxLoad}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : small_suite()) {
      const StaticGraph g = make_instance(name);
      Config config = Config::preset(Preset::kFast, 16);
      config.queue_selection = strategy;
      accumulator.add(run_kappa(g, config, reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({queue_selection_name(strategy), fmt(s.avg_cut),
               fmt(s.best_cut), fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }
  std::printf(
      "\nshape target (paper): TopGain best cut; MaxLoad tightest balance "
      "but worst cut\n");
  return 0;
}
