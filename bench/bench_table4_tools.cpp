/// \file bench_table4_tools.cpp
/// \brief Regenerates Table 4 (right): KaPPa variants vs. the other tools
/// over the large comparison suite (geometric means).
///
/// Paper: KaPPa-Strong 24227, KaPPa-Fast 24725, KaPPa-Minimal 26720,
/// scotch 26811, kmetis 28705, parmetis 31523; parMetis also misses the
/// balance constraint (1.041). Shape targets: strong < fast < minimal ≈
/// scotch < kmetis < parmetis in cut; parmetis worst balance; parmetis
/// fastest.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv);
  const BlockID k = 16;

  print_table_header(
      "Table 4 (right): comparison with other tools, k = 16 (geom. means)",
      {"variant", "avg cut", "best cut", "avg bal", "avg t[s]"});

  // KaPPa presets.
  for (const Preset preset :
       {Preset::kStrong, Preset::kFast, Preset::kMinimal}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : large_suite()) {
      const StaticGraph g = make_instance(name);
      accumulator.add(run_kappa(g, Config::preset(preset, k), reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({std::string("KaPPa-") + preset_name(preset), fmt(s.avg_cut),
               fmt(s.best_cut), fmt(s.avg_balance, 3), fmt(s.avg_time, 2)});
  }

  // Baseline tools.
  for (const std::string tool : {"scotch", "kmetis", "parmetis"}) {
    SuiteAccumulator accumulator;
    for (const std::string& name : large_suite()) {
      const StaticGraph g = make_instance(name);
      accumulator.add(run_tool(tool, g, k, 0.03, reps));
    }
    const SuiteSummary s = accumulator.summary();
    print_row({tool, fmt(s.avg_cut), fmt(s.best_cut), fmt(s.avg_balance, 3),
               fmt(s.avg_time, 2)});
  }
  std::printf(
      "\nshape target (paper): cut strong < fast < minimal ~ scotch < "
      "kmetis < parmetis;\nparmetis violates balance; parmetis/kmetis "
      "fastest\n");
  return 0;
}
