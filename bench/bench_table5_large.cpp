/// \file bench_table5_large.cpp
/// \brief Regenerates Table 5: per-instance results on the largest graphs
/// with coordinate information, all tools.
///
/// Paper (k = 64 on rgg20/Delaunay20/deu/eur): KaPPa variants win on cut,
/// respect balance exactly (1.029-1.030); kMetis collapses on the road
/// network eur (12738 vs KaPPa 5393 — "Metis was not able at all to
/// discover the structure inherent in the network"); parMetis is fastest
/// with the worst cuts and loose balance. We use the scaled-down
/// geometric/road instances and k = 32.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv);
  const BlockID k = 32;
  const std::vector<std::string> instances = {"rgg15", "delaunay15",
                                              "road_m", "road_l"};

  print_table_header(
      "Table 5: largest graphs with coordinates, k = 32, per instance",
      {"alg.", "graph", "avg cut", "best cut", "avg bal", "avg t[s]"});

  for (const std::string& name : instances) {
    const StaticGraph g = make_instance(name);
    for (const Preset preset :
         {Preset::kStrong, Preset::kFast, Preset::kMinimal}) {
      const RunAggregate a = run_kappa(g, Config::preset(preset, k), reps);
      print_row({std::string("KaPPa-") + preset_name(preset), name,
                 fmt(a.avg_cut()), fmt(a.best_cut()), fmt(a.avg_balance(), 3),
                 fmt(a.avg_time(), 2)});
    }
    for (const std::string tool : {"scotch", "kmetis", "parmetis"}) {
      const RunAggregate a = run_tool(tool, g, k, 0.03, reps);
      print_row({tool, name, fmt(a.avg_cut()), fmt(a.best_cut()),
                 fmt(a.avg_balance(), 3), fmt(a.avg_time(), 2)});
    }
  }
  std::printf(
      "\nshape targets (paper): KaPPa best cut + exact balance; kMetis "
      "far behind on the road networks; parMetis fastest, worst cut\n");
  return 0;
}
