/// \file bench_tables15_20_metis.cpp
/// \brief Regenerates Tables 15-20: per-instance results of the
/// kMetis-like and parMetis-like baselines for k in {16, 32, 64}.
///
/// Paper shape: kMetis cuts above every KaPPa variant on the mesh/
/// geometric families and collapses on road networks (eur: 12738 at
/// balance 1.070); parMetis is fastest but systematically misses the 3%
/// balance bound (typical avg balance ~1.047) with the largest cuts.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv, 2);

  int table = 15;
  for (const BlockID k : {BlockID{16}, BlockID{32}, BlockID{64}}) {
    for (const std::string tool : {"kmetis", "parmetis"}) {
      print_table_header("Table " + std::to_string(table++) + ": " + tool +
                             " k = " + std::to_string(k),
                         {"graph", "avg cut", "best cut", "avg bal",
                          "avg t[s]"});
      for (const std::string& name : large_suite()) {
        const StaticGraph g = make_instance(name);
        const RunAggregate a = run_tool(tool, g, k, 0.03, reps);
        print_row({name, fmt(a.avg_cut()), fmt(a.best_cut()),
                   fmt(a.avg_balance(), 3), fmt(a.avg_time(), 2)});
      }
    }
  }
  std::printf(
      "\nshape targets (paper, Tables 15-20): larger cuts than the KaPPa\n"
      "tables, balance violations on hard instances (esp. parmetis and "
      "road networks)\n");
  return 0;
}
