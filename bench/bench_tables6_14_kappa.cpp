/// \file bench_tables6_14_kappa.cpp
/// \brief Regenerates Tables 6-14: per-instance results of
/// KaPPa-minimal / fast / strong for k in {16, 32, 64}.
///
/// Nine appendix tables in one binary (one section per preset x k). The
/// paper's shape: for each instance cut(strong) <= cut(fast) <=
/// cut(minimal) up to noise, balance pinned at <= 1.030, runtime
/// strictly increasing with the preset strength.
#include <cstdio>

#include "generators/generators.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  const int reps = repetitions(argc, argv, 2);

  int table = 6;
  for (const Preset preset :
       {Preset::kMinimal, Preset::kFast, Preset::kStrong}) {
    for (const BlockID k : {BlockID{16}, BlockID{32}, BlockID{64}}) {
      print_table_header(
          "Table " + std::to_string(table++) + ": KaPPa-" +
              preset_name(preset) + " k = " + std::to_string(k),
          {"graph", "avg cut", "best cut", "avg bal", "avg t[s]"});
      for (const std::string& name : large_suite()) {
        const StaticGraph g = make_instance(name);
        const RunAggregate a = run_kappa(g, Config::preset(preset, k), reps);
        print_row({name, fmt(a.avg_cut()), fmt(a.best_cut()),
                   fmt(a.avg_balance(), 3), fmt(a.avg_time(), 2)});
      }
    }
  }
  std::printf(
      "\nshape targets (paper, Tables 6-14): balance <= 1+eps everywhere; "
      "per instance cut decreases from minimal to strong\n");
  return 0;
}
