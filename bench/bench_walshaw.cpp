/// \file bench_walshaw.cpp
/// \brief Regenerates Tables 21-23: the Walshaw-benchmark mode.
///
/// §6.3: "running time is no issue but we want to achieve minimal cut
/// values for k in {2,...,64} and balance eps in {0.01, 0.03, 0.05}.
/// We try each of the edge ratings innerOuter, expansion*, expansion*2
/// [many] times; BFS search depth is 20; FM patience alpha = 30%."
/// We report, per (graph, k, eps), the best cut found and which rating
/// achieved it, using the paper's markers: * expansion*, ** expansion*2,
/// + innerOuter.
#include <cstdio>

#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace kappa;
  using namespace kappa::bench;
  // Tries per rating; the paper uses 50 — scale with --reps.
  const int tries = repetitions(argc, argv, 2);
  const std::vector<std::string> instances = {"grid_s", "annulus_m",
                                              "road_s", "delaunay14"};
  const std::vector<BlockID> ks = {2, 4, 8, 16, 32, 64};

  struct Candidate {
    EdgeRating rating;
    const char* marker;
  };
  const std::vector<Candidate> candidates = {
      {EdgeRating::kExpansionStar, "*"},
      {EdgeRating::kExpansionStar2, "**"},
      {EdgeRating::kInnerOuter, "+"},
  };

  int table = 21;
  for (const double eps : {0.01, 0.03, 0.05}) {
    print_table_header(
        "Table " + std::to_string(table++) + ": Walshaw mode, eps = " +
            fmt(eps * 100, 0) + "%",
        {"graph", "k", "best cut", "rating", "balanced"});
    for (const std::string& name : instances) {
      const StaticGraph g = make_instance(name);
      for (const BlockID k : ks) {
        EdgeWeight best_cut = 0;
        const char* best_marker = "?";
        bool best_balanced = false;
        bool first = true;
        for (const Candidate& candidate : candidates) {
          for (int attempt = 1; attempt <= tries; ++attempt) {
            Config config = Config::walshaw(k, eps, candidate.rating);
            config.seed = static_cast<std::uint64_t>(attempt);
            const PartitionResult result =
                Partitioner(Context::sequential(config)).partition(g);
            // Walshaw rules: only feasible partitions count; prefer
            // feasible over infeasible, then smaller cut.
            const bool better =
                first ||
                (result.balanced && !best_balanced) ||
                (result.balanced == best_balanced && result.cut < best_cut);
            if (better) {
              best_cut = result.cut;
              best_marker = candidate.marker;
              best_balanced = result.balanced;
              first = false;
            }
          }
        }
        print_row({name, std::to_string(k), fmt(best_cut), best_marker,
                   best_balanced ? "yes" : "NO"});
      }
    }
  }
  std::printf(
      "\nshape targets (paper, Tables 21-23): all three ratings win "
      "somewhere; best cuts grow with k and shrink with eps; every "
      "reported entry is feasible\n");
  return 0;
}
