#include "harness.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "util/timer.hpp"

namespace kappa::bench {

int repetitions(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      return std::max(1, std::atoi(argv[i] + 7));
    }
  }
  return fallback;
}

const std::vector<std::string>& small_suite() {
  static const std::vector<std::string> suite = {
      "rgg14", "delaunay14", "grid_m", "annulus_m", "road_s", "rmat_14"};
  return suite;
}

const std::vector<std::string>& large_suite() {
  static const std::vector<std::string> suite = {
      "rgg15",     "delaunay15", "grid_l", "annulus_l",
      "road_m",    "road_l",     "rmat_15", "ba_m"};
  return suite;
}

RunAggregate run_kappa(const StaticGraph& graph, Config config, int reps) {
  RunAggregate aggregate;
  for (int rep = 1; rep <= reps; ++rep) {
    config.seed = static_cast<std::uint64_t>(rep);
    const PartitionResult result =
        Partitioner(Context::sequential(config)).partition(graph);
    aggregate.add(static_cast<double>(result.cut), result.balance,
                  result.total_time);
  }
  return aggregate;
}

RunAggregate run_tool(const std::string& tool, const StaticGraph& graph,
                      BlockID k, double eps, int reps) {
  RunAggregate aggregate;
  for (int rep = 1; rep <= reps; ++rep) {
    BaselineResult result;
    if (tool == "scotch") {
      result = scotch_partition(graph, k, eps, rep);
    } else if (tool == "kmetis") {
      result = kmetis_partition(graph, k, eps, rep);
    } else if (tool == "parmetis") {
      result = parmetis_partition(graph, k, eps, rep);
    } else {
      throw std::runtime_error("unknown tool: " + tool);
    }
    aggregate.add(static_cast<double>(result.cut), result.balance,
                  result.total_time);
  }
  return aggregate;
}

void SuiteAccumulator::add(const RunAggregate& aggregate) {
  cut_.add(aggregate.avg_cut());
  best_.add(aggregate.best_cut());
  balance_.add(aggregate.avg_balance());
  time_.add(aggregate.avg_time());
}

SuiteSummary SuiteAccumulator::summary() const {
  return {cut_.value(), best_.value(), balance_.value(), time_.value()};
}

void print_table_header(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& column : columns) std::printf("%-14s", column.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%-14s", "----------");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%-14s", cell.c_str());
  std::printf("\n");
}

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace kappa::bench
