/// \file harness.hpp
/// \brief Shared helpers for the per-table benchmark binaries.
///
/// Every binary regenerates one table or figure of the paper, printing the
/// same row layout. Instance sizes are scaled to a single-core laptop
/// budget (the paper used a 200-node cluster); EXPERIMENTS.md maps each
/// suite to the paper's instances and records paper-vs-measured shapes.
#pragma once

#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/partitioner.hpp"
#include "graph/static_graph.hpp"
#include "util/stats.hpp"

namespace kappa::bench {

/// Repetitions per configuration (the paper uses 10; 3 keeps the whole
/// harness within a laptop budget). Override with --reps=N.
int repetitions(int argc, char** argv, int fallback = 3);

/// The calibration suite of §6.1 (stands in for the small/medium Walshaw
/// instances used to tune parameters).
const std::vector<std::string>& small_suite();

/// The comparison suite of §6.2 (stands in for the large instances:
/// geometric, FEM, road, social families).
const std::vector<std::string>& large_suite();

/// Runs KaPPa `reps` times with seeds 1..reps and aggregates.
RunAggregate run_kappa(const StaticGraph& graph, Config config, int reps);

/// Baseline tools by name: "scotch", "kmetis", "parmetis".
RunAggregate run_tool(const std::string& tool, const StaticGraph& graph,
                      BlockID k, double eps, int reps);

/// Geometric-mean summary over a whole suite for one configuration;
/// returns (avg cut, best cut, avg balance, avg time) geometric means as
/// in the paper's aggregate rows.
struct SuiteSummary {
  double avg_cut = 0;
  double best_cut = 0;
  double avg_balance = 0;
  double avg_time = 0;
};

/// Folds per-instance aggregates into the paper's geometric-mean columns.
class SuiteAccumulator {
 public:
  void add(const RunAggregate& aggregate);
  [[nodiscard]] SuiteSummary summary() const;

 private:
  GeometricMean cut_;
  GeometricMean best_;
  GeometricMean balance_;
  GeometricMean time_;
};

/// Table formatting: fixed-width columns like the paper's appendix.
void print_table_header(const std::string& title,
                        const std::vector<std::string>& columns);
void print_row(const std::vector<std::string>& cells);
std::string fmt(double value, int precision = 0);

}  // namespace kappa::bench
