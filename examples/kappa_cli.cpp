/// \file kappa_cli.cpp
/// \brief Command-line partitioner: METIS-format graphs in, partition
/// files out — the interface downstream users expect from a partitioning
/// tool (same conventions as kmetis / scotch / kahip).
///
/// Usage:
///   kappa_cli <graph.metis> <k> [--preset=fast|strong|minimal]
///             [--eps=0.03] [--seed=1] [--threads=1] [--pes=0]
///             [--transport=inproc|tcp] [--rank=R] [--peers=HOST:PORT]
///             [--recv-timeout-ms=60000] [--output=out.part]
///             [--trace-out=FILE] [--metrics-out=FILE] [--async]
///             [--watch-out=FILE] [--stall-timeout-ms=N]
///
/// --pes=N > 0 runs the pipeline SPMD on a PE runtime of N PEs (the
/// result is identical for every N under a fixed seed; N changes wall
/// time and the communication counters printed at the end).
///
/// --transport=tcp spans the run over N processes, one rank each: start
/// N copies of this binary with the same graph/k/seed/--pes=N, distinct
/// --rank=0..N-1, and the same --peers=HOST:PORT naming rank 0's
/// rendezvous address (see examples/launch_tcp.sh). Every process
/// computes the identical partition; each writes its own copy unless
/// --output is given, in which case only rank 0 writes.
///
/// --trace-out=FILE turns tracing on and writes the merged Chrome-trace
/// JSON of every rank's spans (open in https://ui.perfetto.dev). On a TCP
/// fabric the flag must be passed to every rank (the tracing decision is
/// collective); the merged file appears on the rank-0 process only.
/// --metrics-out=FILE dumps the unified metrics registry
/// (schema kappa.metrics.v1); TCP ranks > 0 write their local view to
/// FILE.rank<R> so the per-process files never race.
///
/// --watch-out=FILE turns on kappa-watch: rank 0 streams kappa.snapshot.v1
/// JSONL snapshots (metrics deltas + per-rank liveness) to FILE while the
/// run is in flight — render them live with tools/kappa_top.py. TCP ranks
/// > 0 write stall reports (if any) to FILE.rank<R>. --stall-timeout-ms=N
/// arms a per-rank watchdog that emits a structured stall report (open
/// span stack, recent events, queue depths, peer verdicts) when a rank
/// stops advancing for N ms. Observer-only: the partition is
/// byte-identical with watch on or off. KAPPA_WATCH_OUT and
/// KAPPA_STALL_TIMEOUT_MS override both.
///
/// --async swaps the refiner's color-class oracle for the barrier-free
/// block-lock scheduler (Config::async_refinement) — mainly for reading
/// traced timelines of the two schedulers side by side.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/metrics_export.hpp"
#include "core/partitioner.hpp"
#include "graph/graph_io.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/transport_tcp.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

const char* arg_value(int argc, char** argv, const char* key) {
  const std::size_t len = std::strlen(key);
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return true;
  }
  return false;
}

/// Keeps the merged trace of the run for the export step below.
struct CaptureTraceSink final : kappa::TraceSink {
  kappa::MergedTrace trace;
  bool fired = false;
  void on_trace(const kappa::MergedTrace& merged) override {
    trace = merged;
    fired = true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace kappa;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <graph.metis> <k> [--preset=fast|strong|minimal]"
                 " [--eps=0.03] [--seed=1] [--threads=1] [--pes=0]"
                 " [--transport=inproc|tcp] [--rank=R] [--peers=HOST:PORT]"
                 " [--recv-timeout-ms=N] [--output=FILE]"
                 " [--trace-out=FILE] [--metrics-out=FILE] [--async]"
                 " [--watch-out=FILE] [--stall-timeout-ms=N]\n",
                 argv[0]);
    return 2;
  }

  StaticGraph graph;
  try {
    graph = read_metis_graph(argv[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  const BlockID k = static_cast<BlockID>(std::atoi(argv[2]));
  if (k < 2) {
    std::fprintf(stderr, "error: k must be >= 2\n");
    return 2;
  }

  Preset preset = Preset::kFast;
  if (const char* name = arg_value(argc, argv, "--preset")) {
    if (std::strcmp(name, "strong") == 0) {
      preset = Preset::kStrong;
    } else if (std::strcmp(name, "minimal") == 0) {
      preset = Preset::kMinimal;
    } else if (std::strcmp(name, "fast") != 0) {
      std::fprintf(stderr, "error: unknown preset '%s'\n", name);
      return 2;
    }
  }
  double eps = 0.03;
  if (const char* value = arg_value(argc, argv, "--eps")) {
    eps = std::atof(value);
  }

  Config config = Config::preset(preset, k, eps);
  if (const char* value = arg_value(argc, argv, "--seed")) {
    config.seed = std::strtoull(value, nullptr, 10);
  }
  if (const char* value = arg_value(argc, argv, "--threads")) {
    config.num_threads = std::atoi(value);
  }
  int pes = 0;
  if (const char* value = arg_value(argc, argv, "--pes")) {
    pes = std::atoi(value);
  }
  if (has_flag(argc, argv, "--async")) {
    config.async_refinement = true;
  }
  const char* trace_out = arg_value(argc, argv, "--trace-out");
  const char* metrics_out = arg_value(argc, argv, "--metrics-out");
  if (trace_out != nullptr || metrics_out != nullptr) {
    config.trace_enabled = true;
  }
  if (const char* value = arg_value(argc, argv, "--watch-out")) {
    config.watch_out = value;
  }
  if (const char* value = arg_value(argc, argv, "--stall-timeout-ms")) {
    config.stall_timeout_ms = std::atoi(value);
  }
  if ((!config.watch_out.empty() || config.stall_timeout_ms > 0) && pes < 1) {
    std::fprintf(stderr,
                 "warning: --watch-out/--stall-timeout-ms observe the SPMD "
                 "runtime; a sequential run (--pes=0) publishes nothing\n");
  }

  bool tcp = false;
  if (const char* name = arg_value(argc, argv, "--transport")) {
    if (std::strcmp(name, "tcp") == 0) {
      tcp = true;
    } else if (std::strcmp(name, "inproc") != 0) {
      std::fprintf(stderr, "error: unknown transport '%s'\n", name);
      return 2;
    }
  }
  TcpOptions tcp_options;
  if (tcp) {
    if (pes < 1) {
      std::fprintf(stderr, "error: --transport=tcp needs --pes=N >= 1\n");
      return 2;
    }
    tcp_options.num_ranks = pes;
    if (const char* value = arg_value(argc, argv, "--rank")) {
      tcp_options.rank = std::atoi(value);
    }
    const char* peers = arg_value(argc, argv, "--peers");
    if (peers == nullptr) {
      std::fprintf(stderr,
                   "error: --transport=tcp needs --peers=HOST:PORT (rank 0's "
                   "rendezvous address)\n");
      return 2;
    }
    const char* colon = std::strrchr(peers, ':');
    if (colon == nullptr || colon == peers || colon[1] == '\0') {
      std::fprintf(stderr, "error: --peers wants HOST:PORT, got '%s'\n",
                   peers);
      return 2;
    }
    tcp_options.rendezvous_host.assign(peers, colon);
    tcp_options.rendezvous_port =
        static_cast<std::uint16_t>(std::atoi(colon + 1));
    if (const char* value = arg_value(argc, argv, "--recv-timeout-ms")) {
      tcp_options.recv_timeout_ms = std::atoi(value);
    }
  }

  std::fprintf(stderr,
               "graph: %u nodes, %llu edges; k=%u eps=%.3f (%s%s)\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()), k, eps,
               preset_name(preset),
               tcp ? ", spmd/tcp" : (pes > 0 ? ", spmd" : ""));

  PartitionResult result;
  bool write_output = true;
  CaptureTraceSink trace_sink;
  try {
    if (tcp) {
      PERuntime runtime(make_tcp_fabric(tcp_options), config.seed);
      Partitioner partitioner(Context::spmd(config, runtime));
      partitioner.set_trace_sink(&trace_sink);
      result = partitioner.partition(graph);
      // Every rank holds the identical partition. With an explicit
      // --output all ranks would race for one file — let rank 0 write it;
      // default (per-invocation) paths are shared too, same rule.
      write_output = runtime.primary_rank() == 0;
    } else if (pes > 0) {
      PERuntime runtime(pes, config.seed);
      Partitioner partitioner(Context::spmd(config, runtime));
      partitioner.set_trace_sink(&trace_sink);
      result = partitioner.partition(graph);
    } else {
      Partitioner partitioner(Context::sequential(config));
      partitioner.set_trace_sink(&trace_sink);
      result = partitioner.partition(graph);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  std::printf("cut      %lld\n", static_cast<long long>(result.cut));
  std::printf("balance  %.4f\n", result.balance);
  std::printf("feasible %s\n", result.balanced ? "yes" : "no");
  std::printf("time     %.3f s  (coarsen %.3f | initial %.3f | refine %.3f)\n",
              result.total_time, result.coarsening_time, result.initial_time,
              result.refinement_time);
  if (result.num_pes > 0) {
    std::printf("spmd     %d PEs, %llu msgs, %llu words, %llu barriers\n",
                result.num_pes,
                static_cast<unsigned long long>(result.comm.messages_sent),
                static_cast<unsigned long long>(result.comm.words_sent),
                static_cast<unsigned long long>(result.comm.barriers));
  }
  if (tcp) {
    std::printf("wire     rank %d: %llu bytes sent, %llu bytes received\n",
                tcp_options.rank,
                static_cast<unsigned long long>(
                    result.comm.wire_bytes_sent),
                static_cast<unsigned long long>(
                    result.comm.wire_bytes_received));
  }

  if (trace_out != nullptr && trace_sink.fired) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_out);
      return 1;
    }
    write_chrome_trace(trace_sink.trace, out);
    std::uint64_t dropped = 0;
    for (const std::uint64_t d : trace_sink.trace.dropped_per_rank) {
      dropped += d;
    }
    std::fprintf(stderr,
                 "trace written to %s (%zu events, %d ranks, %llu dropped)\n",
                 trace_out, trace_sink.trace.events.size(),
                 trace_sink.trace.num_ranks,
                 static_cast<unsigned long long>(dropped));
  }
  if (metrics_out != nullptr) {
    const std::string backend =
        tcp ? "tcp" : (pes > 0 ? "inproc" : "sequential");
    MetricsRegistry registry = metrics_from_result(result, config, backend);
    if (trace_sink.fired) {
      registry.set_u64("trace.events",
                       trace_sink.trace.events.size());
      registry.set_u64_list("trace.dropped_per_rank",
                            trace_sink.trace.dropped_per_rank);
    }
    // TCP ranks > 0 hold a local view only (and would race for one
    // path); suffix theirs so rank 0's file is THE metrics document.
    std::string metrics_path = metrics_out;
    if (tcp && !write_output) {
      metrics_path += ".rank" + std::to_string(tcp_options.rank);
    }
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    registry.write_json(out);
    out << "\n";
    std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
  }

  if (write_output) {
    const char* output = arg_value(argc, argv, "--output");
    const std::string output_path =
        output != nullptr
            ? output
            : std::string(argv[1]) + ".part." + std::to_string(k);
    write_partition(result.partition, output_path);
    std::fprintf(stderr, "partition written to %s\n", output_path.c_str());
  }
  return 0;
}
