/// \file kappa_cli.cpp
/// \brief Command-line partitioner: METIS-format graphs in, partition
/// files out — the interface downstream users expect from a partitioning
/// tool (same conventions as kmetis / scotch / kahip).
///
/// Usage:
///   kappa_cli <graph.metis> <k> [--preset=fast|strong|minimal]
///             [--eps=0.03] [--seed=1] [--threads=1] [--pes=0]
///             [--transport=inproc|tcp] [--rank=R] [--peers=HOST:PORT]
///             [--recv-timeout-ms=60000] [--output=out.part]
///
/// --pes=N > 0 runs the pipeline SPMD on a PE runtime of N PEs (the
/// result is identical for every N under a fixed seed; N changes wall
/// time and the communication counters printed at the end).
///
/// --transport=tcp spans the run over N processes, one rank each: start
/// N copies of this binary with the same graph/k/seed/--pes=N, distinct
/// --rank=0..N-1, and the same --peers=HOST:PORT naming rank 0's
/// rendezvous address (see examples/launch_tcp.sh). Every process
/// computes the identical partition; each writes its own copy unless
/// --output is given, in which case only rank 0 writes.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/partitioner.hpp"
#include "graph/graph_io.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/transport_tcp.hpp"

namespace {

const char* arg_value(int argc, char** argv, const char* key) {
  const std::size_t len = std::strlen(key);
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kappa;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <graph.metis> <k> [--preset=fast|strong|minimal]"
                 " [--eps=0.03] [--seed=1] [--threads=1] [--pes=0]"
                 " [--transport=inproc|tcp] [--rank=R] [--peers=HOST:PORT]"
                 " [--recv-timeout-ms=N] [--output=FILE]\n",
                 argv[0]);
    return 2;
  }

  StaticGraph graph;
  try {
    graph = read_metis_graph(argv[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  const BlockID k = static_cast<BlockID>(std::atoi(argv[2]));
  if (k < 2) {
    std::fprintf(stderr, "error: k must be >= 2\n");
    return 2;
  }

  Preset preset = Preset::kFast;
  if (const char* name = arg_value(argc, argv, "--preset")) {
    if (std::strcmp(name, "strong") == 0) {
      preset = Preset::kStrong;
    } else if (std::strcmp(name, "minimal") == 0) {
      preset = Preset::kMinimal;
    } else if (std::strcmp(name, "fast") != 0) {
      std::fprintf(stderr, "error: unknown preset '%s'\n", name);
      return 2;
    }
  }
  double eps = 0.03;
  if (const char* value = arg_value(argc, argv, "--eps")) {
    eps = std::atof(value);
  }

  Config config = Config::preset(preset, k, eps);
  if (const char* value = arg_value(argc, argv, "--seed")) {
    config.seed = std::strtoull(value, nullptr, 10);
  }
  if (const char* value = arg_value(argc, argv, "--threads")) {
    config.num_threads = std::atoi(value);
  }
  int pes = 0;
  if (const char* value = arg_value(argc, argv, "--pes")) {
    pes = std::atoi(value);
  }

  bool tcp = false;
  if (const char* name = arg_value(argc, argv, "--transport")) {
    if (std::strcmp(name, "tcp") == 0) {
      tcp = true;
    } else if (std::strcmp(name, "inproc") != 0) {
      std::fprintf(stderr, "error: unknown transport '%s'\n", name);
      return 2;
    }
  }
  TcpOptions tcp_options;
  if (tcp) {
    if (pes < 1) {
      std::fprintf(stderr, "error: --transport=tcp needs --pes=N >= 1\n");
      return 2;
    }
    tcp_options.num_ranks = pes;
    if (const char* value = arg_value(argc, argv, "--rank")) {
      tcp_options.rank = std::atoi(value);
    }
    const char* peers = arg_value(argc, argv, "--peers");
    if (peers == nullptr) {
      std::fprintf(stderr,
                   "error: --transport=tcp needs --peers=HOST:PORT (rank 0's "
                   "rendezvous address)\n");
      return 2;
    }
    const char* colon = std::strrchr(peers, ':');
    if (colon == nullptr || colon == peers || colon[1] == '\0') {
      std::fprintf(stderr, "error: --peers wants HOST:PORT, got '%s'\n",
                   peers);
      return 2;
    }
    tcp_options.rendezvous_host.assign(peers, colon);
    tcp_options.rendezvous_port =
        static_cast<std::uint16_t>(std::atoi(colon + 1));
    if (const char* value = arg_value(argc, argv, "--recv-timeout-ms")) {
      tcp_options.recv_timeout_ms = std::atoi(value);
    }
  }

  std::fprintf(stderr,
               "graph: %u nodes, %llu edges; k=%u eps=%.3f (%s%s)\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()), k, eps,
               preset_name(preset),
               tcp ? ", spmd/tcp" : (pes > 0 ? ", spmd" : ""));

  PartitionResult result;
  bool write_output = true;
  try {
    if (tcp) {
      PERuntime runtime(make_tcp_fabric(tcp_options), config.seed);
      result = Partitioner(Context::spmd(config, runtime)).partition(graph);
      // Every rank holds the identical partition. With an explicit
      // --output all ranks would race for one file — let rank 0 write it;
      // default (per-invocation) paths are shared too, same rule.
      write_output = runtime.primary_rank() == 0;
    } else if (pes > 0) {
      PERuntime runtime(pes, config.seed);
      result = Partitioner(Context::spmd(config, runtime)).partition(graph);
    } else {
      result = Partitioner(Context::sequential(config)).partition(graph);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  std::printf("cut      %lld\n", static_cast<long long>(result.cut));
  std::printf("balance  %.4f\n", result.balance);
  std::printf("feasible %s\n", result.balanced ? "yes" : "no");
  std::printf("time     %.3f s  (coarsen %.3f | initial %.3f | refine %.3f)\n",
              result.total_time, result.coarsening_time, result.initial_time,
              result.refinement_time);
  if (result.num_pes > 0) {
    std::printf("spmd     %d PEs, %llu msgs, %llu words, %llu barriers\n",
                result.num_pes,
                static_cast<unsigned long long>(result.comm.messages_sent),
                static_cast<unsigned long long>(result.comm.words_sent),
                static_cast<unsigned long long>(result.comm.barriers));
  }
  if (tcp) {
    std::printf("wire     rank %d: %llu bytes sent, %llu bytes received\n",
                tcp_options.rank,
                static_cast<unsigned long long>(
                    result.comm.wire_bytes_sent),
                static_cast<unsigned long long>(
                    result.comm.wire_bytes_received));
  }

  if (write_output) {
    const char* output = arg_value(argc, argv, "--output");
    const std::string output_path =
        output != nullptr
            ? output
            : std::string(argv[1]) + ".part." + std::to_string(k);
    write_partition(result.partition, output_path);
    std::fprintf(stderr, "partition written to %s\n", output_path.c_str());
  }
  return 0;
}
