#!/usr/bin/env bash
# Launches one multi-process SPMD partition run on localhost: p copies of
# kappa_cli connected by the TCP transport, one rank per process.
#
#   usage: launch_tcp.sh <p> <graph.metis> <k> [extra kappa_cli flags...]
#
#   KAPPA_CLI=path/to/kappa_cli   binary (default: ./build/kappa_cli)
#   KAPPA_PORT=17771              rank 0's rendezvous port
#
# Ranks 1..p-1 run in the background; rank 0 runs in the foreground and
# prints the result. Every rank computes the identical partition.
set -euo pipefail

if [ "$#" -lt 3 ]; then
  echo "usage: $0 <p> <graph.metis> <k> [extra kappa_cli flags...]" >&2
  exit 2
fi

p="$1"; graph="$2"; k="$3"; shift 3
cli="${KAPPA_CLI:-./build/kappa_cli}"
port="${KAPPA_PORT:-17771}"

if ! [ -x "$cli" ]; then
  echo "error: kappa_cli binary not found at '$cli' (set KAPPA_CLI)" >&2
  exit 1
fi

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

for ((rank = 1; rank < p; ++rank)); do
  "$cli" "$graph" "$k" --pes="$p" --transport=tcp --rank="$rank" \
    --peers=127.0.0.1:"$port" "$@" >/dev/null 2>&1 &
  pids+=("$!")
done

"$cli" "$graph" "$k" --pes="$p" --transport=tcp --rank=0 \
  --peers=127.0.0.1:"$port" "$@"

for pid in "${pids[@]:-}"; do
  wait "$pid"
done
trap - EXIT
