#!/usr/bin/env bash
# Launches one multi-process SPMD partition run on localhost: p copies of
# kappa_cli connected by the TCP transport, one rank per process.
#
#   usage: launch_tcp.sh <p> <graph.metis> <k> [extra kappa_cli flags...]
#
#   KAPPA_CLI=path/to/kappa_cli   binary (default: ./build/kappa_cli)
#   KAPPA_PORT=17771              rank 0's rendezvous port
#   KAPPA_TRACE_OUT=trace.json    traced run: every rank gets
#                                 --trace-out (the tracing decision is
#                                 collective); rank 0 writes the single
#                                 merged Chrome-trace JSON here
#   KAPPA_METRICS_OUT=m.json      metrics: rank 0 writes the merged
#                                 document here, ranks > 0 their local
#                                 view to m.json.rank<R>
#   KAPPA_WATCH_OUT=watch.jsonl   kappa-watch: rank 0 streams live
#                                 kappa.snapshot.v1 snapshots here (watch
#                                 them with tools/kappa_top.py); ranks > 0
#                                 write stall reports, if any, to
#                                 watch.jsonl.rank<R>
#   KAPPA_STALL_TIMEOUT_MS=2000   arm the per-rank stall watchdog: a rank
#                                 that stops advancing for this long emits
#                                 a structured stall report
#   KAPPA_RECV_TIMEOUT_MS=60000   dead-peer deadline of blocking receives
#                                 (--recv-timeout-ms on every rank)
#
# Ranks 1..p-1 run in the background; rank 0 runs in the foreground and
# prints the result. Every rank computes the identical partition.
set -euo pipefail

if [ "$#" -lt 3 ]; then
  echo "usage: $0 <p> <graph.metis> <k> [extra kappa_cli flags...]" >&2
  exit 2
fi

p="$1"; graph="$2"; k="$3"; shift 3
cli="${KAPPA_CLI:-./build/kappa_cli}"
port="${KAPPA_PORT:-17771}"

if ! [ -x "$cli" ]; then
  echo "error: kappa_cli binary not found at '$cli' (set KAPPA_CLI)" >&2
  exit 1
fi

# Observability plumbing: the flags must reach EVERY rank — tracing is a
# collective decision (rank 0 gathers every rank's span buffer at the end
# of the run), so a rank launched without them would leave the gather
# hanging. Rank 0 ends up with the one merged trace/metrics file; ranks
# > 0 suffix their metrics dump with .rank<R> themselves.
obs_flags=()
if [ -n "${KAPPA_TRACE_OUT:-}" ]; then
  obs_flags+=(--trace-out="$KAPPA_TRACE_OUT")
fi
if [ -n "${KAPPA_METRICS_OUT:-}" ]; then
  obs_flags+=(--metrics-out="$KAPPA_METRICS_OUT")
fi
# kappa-watch knobs, same every-rank rule: heartbeats are only useful when
# every peer sends them, and a watchdog on one rank classifies the others.
if [ -n "${KAPPA_WATCH_OUT:-}" ]; then
  obs_flags+=(--watch-out="$KAPPA_WATCH_OUT")
fi
if [ -n "${KAPPA_STALL_TIMEOUT_MS:-}" ]; then
  obs_flags+=(--stall-timeout-ms="$KAPPA_STALL_TIMEOUT_MS")
fi
if [ -n "${KAPPA_RECV_TIMEOUT_MS:-}" ]; then
  obs_flags+=(--recv-timeout-ms="$KAPPA_RECV_TIMEOUT_MS")
fi

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

for ((rank = 1; rank < p; ++rank)); do
  "$cli" "$graph" "$k" --pes="$p" --transport=tcp --rank="$rank" \
    --peers=127.0.0.1:"$port" "${obs_flags[@]:-}" "$@" >/dev/null 2>&1 &
  pids+=("$!")
done

"$cli" "$graph" "$k" --pes="$p" --transport=tcp --rank=0 \
  --peers=127.0.0.1:"$port" "${obs_flags[@]:-}" "$@"

for pid in "${pids[@]:-}"; do
  wait "$pid"
done
trap - EXIT
