/// \file mesh_partition.cpp
/// \brief FEM scenario: partition a finite-element mesh for a parallel
/// solver and report the quantities a solver developer cares about.
///
/// The paper's motivating use case (§1): "when you process a graph in
/// parallel on k PEs you often want to partition the graph into k blocks
/// of about equal size" with few edges between blocks. For an FEM solver
/// the cut edges are exactly the halo values exchanged every iteration,
/// and the block weights are the per-rank workloads.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/quotient_graph.hpp"

int main() {
  using namespace kappa;

  // An annulus mesh: the discretization of a rotor cross-section.
  const StaticGraph mesh = annulus_mesh(/*rings=*/128, /*sectors=*/384);
  std::printf("mesh: %u elements, %llu adjacencies\n", mesh.num_nodes(),
              static_cast<unsigned long long>(mesh.num_edges()));

  const BlockID k = 16;
  Config config = Config::preset(Preset::kStrong, k);
  config.seed = 2024;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(mesh);

  std::printf("\npartitioned into %u blocks in %.2f s\n", k,
              result.total_time);
  std::printf("edge cut (halo exchange volume): %lld values/iteration\n",
              static_cast<long long>(result.cut));
  std::printf("balance: %.3f (constraint %s)\n", result.balance,
              result.balanced ? "satisfied" : "VIOLATED");

  // Per-rank view: workload and communication partners.
  const QuotientGraph quotient(mesh, result.partition);
  std::printf("\n%-6s%-12s%-12s%-10s\n", "rank", "elements", "halo", "peers");
  for (BlockID b = 0; b < k; ++b) {
    EdgeWeight halo = 0;
    for (const std::size_t e : quotient.incident(b)) {
      halo += quotient.edges()[e].cut_weight;
    }
    std::printf("%-6u%-12lld%-12lld%-10zu\n", b,
                static_cast<long long>(result.partition.block_weight(b)),
                static_cast<long long>(halo), quotient.incident(b).size());
  }

  // The number a solver architect checks first: the worst communication-
  // to-computation ratio over all ranks.
  double worst_ratio = 0;
  for (BlockID b = 0; b < k; ++b) {
    EdgeWeight halo = 0;
    for (const std::size_t e : quotient.incident(b)) {
      halo += quotient.edges()[e].cut_weight;
    }
    worst_ratio = std::max(
        worst_ratio, static_cast<double>(halo) /
                         static_cast<double>(result.partition.block_weight(b)));
  }
  std::printf("\nworst halo/work ratio: %.4f\n", worst_ratio);
  return 0;
}
