/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the kappa library.
///
/// Builds a small mesh and runs every workload of the unified API through
/// one Partitioner: a from-scratch partition into 4 blocks with the fast
/// preset, and — after the mesh "adapts" — a repartition of the degraded
/// assignment that migrates only a fraction of the nodes.
#include <cstdio>

#include "core/partitioner.hpp"
#include "graph/graph_builder.hpp"
#include "util/random.hpp"

int main() {
  using namespace kappa;

  // A 64x64 grid: the structure of a simple finite-element mesh.
  const NodeID nx = 64;
  const NodeID ny = 64;
  GraphBuilder builder(nx * ny);
  for (NodeID y = 0; y < ny; ++y) {
    for (NodeID x = 0; x < nx; ++x) {
      const NodeID u = y * nx + x;
      if (x + 1 < nx) builder.add_edge(u, u + 1);
      if (y + 1 < ny) builder.add_edge(u, u + nx);
      builder.set_coordinate(u,
                             {static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const StaticGraph graph = builder.finalize();

  Config config = Config::preset(Preset::kFast, /*k=*/4);
  config.seed = 123;
  const Partitioner partitioner(Context::sequential(config));
  const PartitionResult result = partitioner.partition(graph);

  std::printf("nodes      : %u\n", graph.num_nodes());
  std::printf("edges      : %llu\n",
              static_cast<unsigned long long>(graph.num_edges()));
  std::printf("blocks     : %u\n", config.k);
  std::printf("edge cut   : %lld\n", static_cast<long long>(result.cut));
  std::printf("balance    : %.3f (feasible: %s)\n", result.balance,
              result.balanced ? "yes" : "no");
  std::printf("total time : %.3f s\n", result.total_time);

  // The mesh adapts: 5% of the elements move to random blocks. The same
  // Partitioner repairs the assignment instead of recomputing it.
  Partition degraded = result.partition;
  Rng rng(7);
  for (NodeID i = 0; i < graph.num_nodes() / 20; ++i) {
    const NodeID u = static_cast<NodeID>(rng.bounded(graph.num_nodes()));
    const BlockID to = static_cast<BlockID>(rng.bounded(config.k));
    if (degraded.block(u) != to) degraded.move(u, to, graph.node_weight(u));
  }
  const PartitionResult repaired = partitioner.repartition(graph, degraded);
  std::printf("\nafter perturbation + repartition:\n");
  std::printf("edge cut   : %lld -> %lld\n",
              static_cast<long long>(repaired.initial_cut),
              static_cast<long long>(repaired.cut));
  std::printf("migrated   : %u of %u nodes\n", repaired.migrated_nodes,
              graph.num_nodes());
  return 0;
}
