/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the kappa library.
///
/// Builds a small mesh, partitions it into 4 blocks with the fast preset,
/// and prints cut and balance — the two numbers the paper's tables report.
#include <cstdio>

#include "core/kappa.hpp"
#include "graph/graph_builder.hpp"

int main() {
  using namespace kappa;

  // A 64x64 grid: the structure of a simple finite-element mesh.
  const NodeID nx = 64;
  const NodeID ny = 64;
  GraphBuilder builder(nx * ny);
  for (NodeID y = 0; y < ny; ++y) {
    for (NodeID x = 0; x < nx; ++x) {
      const NodeID u = y * nx + x;
      if (x + 1 < nx) builder.add_edge(u, u + 1);
      if (y + 1 < ny) builder.add_edge(u, u + nx);
      builder.set_coordinate(u,
                             {static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const StaticGraph graph = builder.finalize();

  Config config = Config::preset(Preset::kFast, /*k=*/4);
  config.seed = 123;
  const KappaResult result = kappa_partition(graph, config);

  std::printf("nodes      : %u\n", graph.num_nodes());
  std::printf("edges      : %llu\n",
              static_cast<unsigned long long>(graph.num_edges()));
  std::printf("blocks     : %u\n", config.k);
  std::printf("edge cut   : %lld\n", static_cast<long long>(result.cut));
  std::printf("balance    : %.3f (feasible: %s)\n", result.balance,
              result.balanced ? "yes" : "no");
  std::printf("total time : %.3f s\n", result.total_time);
  return 0;
}
