/// \file road_network.cpp
/// \brief Route-planning scenario: partition a road network and show why
/// structure-aware partitioning matters.
///
/// §6.2 of the paper: "for the European road network, eur, KaPPa produces
/// a several times smaller cut than Metis. Apparently, Metis was not able
/// at all to discover the structure inherent in the network (e.g., due to
/// waterbodies, mountains, and national borders)." Our synthetic road
/// network has the same river-and-bridges structure; this example runs
/// KaPPa and the Metis-like baseline side by side.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace kappa;

  Rng rng(7);
  const StaticGraph road = road_network(/*approx_n=*/120'000, rng);
  std::printf("road network: %u junctions, %llu road segments\n",
              road.num_nodes(),
              static_cast<unsigned long long>(road.num_edges()));

  const BlockID k = 32;

  Config config = Config::preset(Preset::kStrong, k);
  config.seed = 9;
  const PartitionResult kappa_result =
      Partitioner(Context::sequential(config)).partition(road);

  const BaselineResult kmetis_result = kmetis_partition(road, k, 0.03, 9);
  const BaselineResult parmetis_result = parmetis_partition(road, k, 0.03, 9);

  std::printf("\n%-14s%-10s%-10s%-10s\n", "partitioner", "cut", "balance",
              "time[s]");
  std::printf("%-14s%-10lld%-10.3f%-10.2f\n", "KaPPa-strong",
              static_cast<long long>(kappa_result.cut), kappa_result.balance,
              kappa_result.total_time);
  std::printf("%-14s%-10lld%-10.3f%-10.2f\n", "kmetis-like",
              static_cast<long long>(kmetis_result.cut),
              kmetis_result.balance, kmetis_result.total_time);
  std::printf("%-14s%-10lld%-10.3f%-10.2f\n", "parmetis-like",
              static_cast<long long>(parmetis_result.cut),
              parmetis_result.balance, parmetis_result.total_time);

  const double factor = static_cast<double>(parmetis_result.cut) /
                        static_cast<double>(kappa_result.cut);
  std::printf(
      "\nKaPPa's cut is %.1fx smaller than the parallel Metis-like cut.\n"
      "For route planning, cut edges are the 'overlay arcs' every\n"
      "partition-based speedup technique must process - a smaller cut\n"
      "means a smaller overlay graph and faster queries.\n",
      factor);
  return 0;
}
