/// \file social_network.cpp
/// \brief Social-network scenario: skewed degrees stress the coarsening
/// phase; the paper's structural edge ratings keep node weights uniform
/// where the plain weight rating lets hub clusters snowball.
///
/// The paper's benchmark includes coAuthorsDBLP and citationCiteseer for
/// exactly this reason. This example partitions a preferential-attachment
/// graph with the weight rating vs. expansion*2 and reports cut quality
/// and the coarsening statistics that explain the difference.
#include <cmath>
#include <cstdio>

#include "coarsening/hierarchy.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "matching/ratings.hpp"
#include "util/random.hpp"

int main() {
  using namespace kappa;

  Rng rng(11);
  const StaticGraph social = barabasi_albert(/*n=*/30'000, /*attach=*/5, rng);
  NodeID max_degree = 0;
  for (NodeID u = 0; u < social.num_nodes(); ++u) {
    max_degree = std::max(max_degree, social.degree(u));
  }
  std::printf("social network: %u users, %llu links, max degree %u\n",
              social.num_nodes(),
              static_cast<unsigned long long>(social.num_edges()),
              max_degree);

  const BlockID k = 8;
  std::printf("\n%-14s%-10s%-10s%-10s%-12s%-14s\n", "rating", "cut",
              "balance", "levels", "coarse n", "weight CV");
  for (const EdgeRating rating :
       {EdgeRating::kWeight, EdgeRating::kExpansionStar2}) {
    Config config = Config::preset(Preset::kFast, k);
    config.rating = rating;
    config.seed = 3;
    const PartitionResult result =
        Partitioner(Context::sequential(config)).partition(social);

    // Reproduce the coarsening to inspect the node-weight distribution at
    // the coarsest level — the paper's argument for structural ratings:
    // "discouraging heavy nodes leads to much more uniform contraction".
    CoarseningOptions coarsening;
    coarsening.rating = rating;
    coarsening.contraction_limit =
        contraction_stop_threshold(social.num_nodes(), k, 60.0);
    Rng crng(3);
    const Hierarchy hierarchy = build_hierarchy(social, coarsening, crng);
    const StaticGraph& coarsest = hierarchy.coarsest();
    double mean = 0;
    for (NodeID u = 0; u < coarsest.num_nodes(); ++u) {
      mean += static_cast<double>(coarsest.node_weight(u));
    }
    mean /= coarsest.num_nodes();
    double variance = 0;
    for (NodeID u = 0; u < coarsest.num_nodes(); ++u) {
      const double d = static_cast<double>(coarsest.node_weight(u)) - mean;
      variance += d * d;
    }
    variance /= coarsest.num_nodes();
    const double cv = std::sqrt(variance) / mean;  // coefficient of variation

    std::printf("%-14s%-10lld%-10.3f%-10zu%-12u%-14.3f\n",
                rating_name(rating), static_cast<long long>(result.cut),
                result.balance, hierarchy.num_levels(), coarsest.num_nodes(),
                cv);
  }
  std::printf(
      "\nexpansion*2 contracts hub graphs in fewer, more uniform levels\n"
      "(lower weight CV = more uniform coarse nodes), which is what makes\n"
      "balanced high-quality partitions of hub-heavy graphs possible\n"
      "(Table 3 of the paper: the plain weight rating is up to 8.8%% "
      "worse).\n");
  return 0;
}
