#include "baselines/baselines.hpp"

#include <algorithm>

#include "coarsening/hierarchy.hpp"
#include "coarsening/prepartition.hpp"
#include "graph/contraction.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "initial/recursive_bisection.hpp"
#include "refinement/kway_refiner.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace kappa {

namespace {

BaselineResult finish(const StaticGraph& graph, Partition partition,
                      const Timer& timer) {
  BaselineResult result;
  result.cut = edge_cut(graph, partition);
  result.balance = balance(graph, partition);
  result.total_time = timer.elapsed_s();
  result.partition = std::move(partition);
  return result;
}

/// Shared skeleton of the two Metis-like partitioners: coarsen with SHEM
/// and the plain weight rating, recursive-bisection the coarsest graph,
/// refine greedily per level.
BaselineResult metis_like(const StaticGraph& graph, BlockID k, double eps,
                          std::uint64_t seed, bool parallel_flavor) {
  Timer timer;
  Rng rng(seed);

  CoarseningOptions coarsening;
  coarsening.rating = EdgeRating::kWeight;  // the classic Metis rating
  coarsening.matcher = MatcherAlgo::kSHEM;
  coarsening.contraction_limit =
      std::max<NodeID>(100, 15 * k);  // Metis' c * k coarsest size

  Hierarchy hierarchy = [&] {
    if (!parallel_flavor) {
      Rng coarsen_rng = rng.fork(1);
      return build_hierarchy(graph, coarsening, coarsen_rng);
    }
    // parMetis flavour: every PE matches only its local subgraph; edges
    // crossing PE boundaries are never contracted (parMetis does folding
    // instead; the net effect — worse matchings near boundaries — is the
    // same). We emulate with PE-local matchings via the parallel matcher
    // minus its gap phase: simply match on the numbering prepartition
    // per-PE subgraphs.
    Hierarchy h(graph);
    MatchingOptions match_options;
    match_options.rating = coarsening.rating;
    std::size_t level = 0;
    while (h.coarsest().num_nodes() > coarsening.contraction_limit) {
      const StaticGraph& current = h.coarsest();
      const std::vector<BlockID> homes =
          numbering_prepartition(current.num_nodes(), k);
      std::vector<NodeID> partner(current.num_nodes());
      for (NodeID u = 0; u < current.num_nodes(); ++u) partner[u] = u;
      NodeID pairs = 0;
      std::vector<std::vector<NodeID>> pe_nodes(k);
      for (NodeID u = 0; u < current.num_nodes(); ++u) {
        pe_nodes[homes[u]].push_back(u);
      }
      for (BlockID pe = 0; pe < k; ++pe) {
        if (pe_nodes[pe].empty()) continue;
        const Subgraph sub = induced_subgraph(current, pe_nodes[pe]);
        Rng pe_rng = rng.fork(level * 131 + pe);
        const std::vector<NodeID> local = compute_matching(
            sub.graph, MatcherAlgo::kSHEM, match_options, pe_rng);
        for (NodeID lu = 0; lu < local.size(); ++lu) {
          if (local[lu] <= lu) continue;
          partner[sub.local_to_global[lu]] = sub.local_to_global[local[lu]];
          partner[sub.local_to_global[local[lu]]] = sub.local_to_global[lu];
          ++pairs;
        }
      }
      if (pairs == 0) break;
      const double shrink = static_cast<double>(pairs) /
                            static_cast<double>(current.num_nodes());
      ContractionResult contraction = contract(current, partner);
      h.push_level(std::move(contraction.coarse_graph),
                   std::move(contraction.fine_to_coarse));
      ++level;
      if (shrink < 0.05) break;
    }
    return h;
  }();

  // Initial partitioning on the coarsest graph: flat recursive bisection.
  RecursiveBisectionOptions rb;
  rb.eps = eps;
  rb.bisection.growing_attempts = parallel_flavor ? 2 : 4;
  Rng initial_rng = rng.fork(2);
  Partition partition =
      recursive_bisection(hierarchy.coarsest(), k, rb, initial_rng);

  // Uncoarsen with greedy k-way refinement.
  KWayRefinerOptions refine;
  // parMetis' balance handling is laxer: it refines against a looser
  // bound, which is why its reported balances hover around 1.047 where the
  // constraint asked for 1.03 (Tables 16/18/20).
  const double effective_eps = parallel_flavor ? eps + 0.02 : eps;
  refine.passes = parallel_flavor ? 1 : 3;
  Rng refine_rng = rng.fork(3);
  for (std::size_t level = hierarchy.num_levels(); level-- > 0;) {
    const StaticGraph& current = hierarchy.graph(level);
    if (level + 1 < hierarchy.num_levels()) {
      partition = project_partition(current, hierarchy.map(level), partition);
    }
    refine.max_block_weight =
        max_block_weight_bound(current, k, effective_eps);
    Rng level_rng = refine_rng.fork(level);
    (void)kway_refine(current, partition, refine, level_rng);
  }
  return finish(graph, std::move(partition), timer);
}

}  // namespace

BaselineResult scotch_partition(const StaticGraph& graph, BlockID k,
                                double eps, std::uint64_t seed) {
  Timer timer;
  Rng rng(seed);
  RecursiveBisectionOptions options;
  options.eps = eps;
  options.bisection.fm_rounds = 3;
  options.bisection.growing_attempts = 5;
  // Band-style refinement on every level of every bisection is Scotch's
  // scheme; our multilevel_bisection already does full-boundary FM.
  Partition partition = recursive_bisection(graph, k, options, rng);
  return finish(graph, std::move(partition), timer);
}

BaselineResult kmetis_partition(const StaticGraph& graph, BlockID k,
                                double eps, std::uint64_t seed) {
  return metis_like(graph, k, eps, seed, /*parallel_flavor=*/false);
}

BaselineResult parmetis_partition(const StaticGraph& graph, BlockID k,
                                  double eps, std::uint64_t seed) {
  return metis_like(graph, k, eps, seed, /*parallel_flavor=*/true);
}

}  // namespace kappa
