/// \file baselines.hpp
/// \brief Re-implementations of the comparison partitioners (§6.2).
///
/// The paper compares KaPPa against Scotch, kMetis and parMetis. Those
/// tools are closed boxes here, so we implement the *algorithm class* of
/// each from scratch:
///
/// * scotch_partition — multilevel recursive bisection (greedy graph
///   growing + 2-way FM per bisection), Scotch's core scheme;
/// * kmetis_partition — direct k-way multilevel: SHEM coarsening with the
///   plain weight rating, recursive-bisection initial partition on the
///   coarsest graph, greedy k-way boundary refinement per level;
/// * parmetis_partition — the parallel-flavoured variant: PE-local
///   matching only (no cross-boundary matching), a single cheap refinement
///   pass per level and laxer balance handling. This reproduces parMetis'
///   signature behaviour in the paper: fastest, worst cuts, and balance
///   violations (Tables 16/18/20 show ~1.047 at eps = 3%).
///
/// The expected quality ordering (Table 4 right) is
/// KaPPa-strong < KaPPa-fast < KaPPa-minimal ≈ scotch < kmetis < parmetis.
#pragma once

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Result of a baseline run (same reporting columns as PartitionResult).
struct BaselineResult {
  Partition partition;
  EdgeWeight cut = 0;
  double balance = 1.0;
  double total_time = 0.0;
};

/// Scotch-like multilevel recursive bisection.
[[nodiscard]] BaselineResult scotch_partition(const StaticGraph& graph,
                                              BlockID k, double eps,
                                              std::uint64_t seed);

/// kMetis-like direct k-way multilevel partitioner.
[[nodiscard]] BaselineResult kmetis_partition(const StaticGraph& graph,
                                              BlockID k, double eps,
                                              std::uint64_t seed);

/// parMetis-like parallel k-way partitioner (quality-degraded, fast).
[[nodiscard]] BaselineResult parmetis_partition(const StaticGraph& graph,
                                                BlockID k, double eps,
                                                std::uint64_t seed);

}  // namespace kappa
