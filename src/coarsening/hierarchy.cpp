#include "coarsening/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "coarsening/prepartition.hpp"
#include "util/logging.hpp"

namespace kappa {

NodeID contraction_stop_threshold(NodeID n, BlockID k, double alpha) {
  const double per_pe =
      std::max(20.0, static_cast<double>(n) /
                         (alpha * static_cast<double>(k) *
                          static_cast<double>(k)));
  const double global = per_pe * static_cast<double>(k);
  return static_cast<NodeID>(std::min<double>(global, n));
}

MatchingOptions hierarchy_match_options(const StaticGraph& graph,
                                        const CoarseningOptions& options) {
  MatchingOptions match_options;
  match_options.rating = options.rating;
  const double bound = options.max_pair_weight_factor *
                       static_cast<double>(graph.total_node_weight()) /
                       std::max<double>(options.contraction_limit, 1.0);
  match_options.max_pair_weight = std::max<NodeWeight>(
      std::min(static_cast<NodeWeight>(bound), options.max_pair_weight_cap),
      2 * graph.max_node_weight());
  return match_options;
}

Hierarchy build_hierarchy_with(const StaticGraph& graph,
                               const CoarseningOptions& options,
                               const LevelMatcher& matcher) {
  Hierarchy hierarchy(graph);

  MatchingOptions match_options = hierarchy_match_options(graph, options);

  // Warm start: the assignment the matchings must respect, projected level
  // by level alongside the hierarchy (intra-block contraction keeps the
  // projection well defined).
  std::vector<BlockID> warm_blocks;
  if (options.warm_start != nullptr) {
    warm_blocks = options.warm_start->assignment();
  }

  std::size_t level = 0;
  while (hierarchy.coarsest().num_nodes() > options.contraction_limit) {
    const StaticGraph& current = hierarchy.coarsest();
    // The block-respecting policy: the matchers themselves filter
    // cross-block candidates during rating (MatchingOptions::blocks), so
    // a boundary node picks its best intra-block partner instead of
    // losing its matched edge to a post-matching dissolve.
    match_options.blocks = warm_blocks.empty() ? nullptr : &warm_blocks;
    std::vector<NodeID> partner = matcher(current, match_options, level);
#ifndef NDEBUG
    for (NodeID u = 0; !warm_blocks.empty() && u < current.num_nodes(); ++u) {
      assert((partner[u] == u || warm_blocks[u] == warm_blocks[partner[u]]) &&
             "matchers must respect the block constraint");
    }
#endif

    const NodeID pairs = matching_size(partner);
    if (pairs == 0) break;  // nothing contractible is left
    const double shrink =
        static_cast<double>(pairs) / static_cast<double>(current.num_nodes());

    ContractionResult result = contract(current, partner);
    {
      std::ostringstream msg;
      msg << "level " << level << ": n=" << current.num_nodes() << " -> "
          << result.coarse_graph.num_nodes() << " (matched " << pairs
          << " pairs)";
      log_debug(msg.str());
    }
    if (!warm_blocks.empty()) {
      std::vector<BlockID> coarse_blocks(result.coarse_graph.num_nodes());
      for (NodeID u = 0; u < current.num_nodes(); ++u) {
        coarse_blocks[result.fine_to_coarse[u]] = warm_blocks[u];
      }
      warm_blocks = std::move(coarse_blocks);
    }
    hierarchy.push_level(std::move(result.coarse_graph),
                         std::move(result.fine_to_coarse));
    ++level;
    if (shrink < options.min_shrink_factor) break;
  }
  return hierarchy;
}

Hierarchy build_hierarchy(const StaticGraph& graph,
                          const CoarseningOptions& options, Rng& rng) {
  return build_hierarchy_with(
      graph, options,
      [&](const StaticGraph& current, const MatchingOptions& match_options,
          std::size_t level) {
        Rng level_rng = rng.fork(level);
        if (options.matching_pes > 1 &&
            current.num_nodes() > 4 * options.matching_pes) {
          const std::vector<BlockID> homes =
              prepartition(current, options.matching_pes);
          return parallel_matching(current, homes, options.matching_pes,
                                   options.matcher, match_options, level_rng);
        }
        return compute_matching(current, options.matcher, match_options,
                                level_rng);
      });
}

}  // namespace kappa
