/// \file hierarchy.hpp
/// \brief The multilevel contraction hierarchy (§2, §3).
///
/// Repeatedly rate edges, compute a matching, contract it — until the
/// graph is "small enough" for initial partitioning: the paper stops when
/// the node count per PE drops below max(20, n/(alpha k^2)); with k PEs
/// this is the global threshold k * max(20, n/(alpha k^2)) used here
/// (Table 2 fixes alpha = 60).
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/contraction.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "matching/matchers.hpp"
#include "matching/parallel_match.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Knobs of the contraction phase.
struct CoarseningOptions {
  EdgeRating rating = EdgeRating::kExpansionStar2;
  MatcherAlgo matcher = MatcherAlgo::kGPA;
  /// Contraction stops once the coarse graph has at most this many nodes.
  NodeID contraction_limit = 160;
  /// Use the two-phase parallel matching scheme (local + gap graph) with
  /// this many PEs; 0 disables it and matches the whole graph sequentially.
  BlockID matching_pes = 0;
  /// Safety net: stop when a level shrinks by less than this factor
  /// (pathological graphs where hardly anything can be matched).
  double min_shrink_factor = 0.05;
  /// Matched pairs may weigh at most this fraction of c(V)/contraction_limit
  /// (keeps coarse node weights uniform enough for a feasible initial
  /// partition).
  double max_pair_weight_factor = 1.5;
  /// Additional absolute cap on the pair weight (defaults to no cap).
  /// Warm-started (repartitioning) coarsening caps pairs by the balance
  /// slack: with the block constraint the matchers coarsen deep *inside*
  /// blocks, and a coarse node heavier than the slack could never
  /// migrate during rebalancing without breaking the Lmax bound — the
  /// cap keeps every coarse node movable. The effective bound still
  /// never drops below twice the max input node weight.
  NodeWeight max_pair_weight_cap = std::numeric_limits<NodeWeight>::max();
  /// Warm start (repartitioning): pairs whose endpoints lie in different
  /// blocks of this finest-level assignment are never contracted, so the
  /// assignment projects exactly onto every level of the hierarchy.
  /// nullptr = from-scratch coarsening. Borrowed; must outlive the build.
  const Partition* warm_start = nullptr;
};

/// The full hierarchy: level 0 is the input graph (referenced, not owned),
/// levels 1..L are owned coarse graphs. map(l) sends nodes of level l to
/// nodes of level l+1.
class Hierarchy {
 public:
  Hierarchy(const StaticGraph& finest) : finest_(&finest) {}

  /// Number of levels including the finest input level.
  [[nodiscard]] std::size_t num_levels() const {
    return coarse_graphs_.size() + 1;
  }

  /// Graph at a level; 0 = input, num_levels()-1 = coarsest.
  [[nodiscard]] const StaticGraph& graph(std::size_t level) const {
    return level == 0 ? *finest_ : coarse_graphs_[level - 1];
  }

  /// The coarsest graph.
  [[nodiscard]] const StaticGraph& coarsest() const {
    return graph(num_levels() - 1);
  }

  /// Mapping from nodes of \p level to nodes of level+1.
  [[nodiscard]] const std::vector<NodeID>& map(std::size_t level) const {
    return maps_[level];
  }

  /// Appends one contraction step (used by the builder).
  void push_level(StaticGraph coarse, std::vector<NodeID> fine_to_coarse) {
    coarse_graphs_.push_back(std::move(coarse));
    maps_.push_back(std::move(fine_to_coarse));
  }

 private:
  const StaticGraph* finest_;
  std::vector<StaticGraph> coarse_graphs_;
  std::vector<std::vector<NodeID>> maps_;
};

/// Computes a matching of one hierarchy level. Implementations: the
/// in-process dispatch inside build_hierarchy(), and the SPMD matcher of
/// parallel/spmd_phases.cpp.
using LevelMatcher = std::function<std::vector<NodeID>(
    const StaticGraph& current, const MatchingOptions& options,
    std::size_t level)>;

/// Matching knobs shared by every level of one hierarchy build: the
/// rating plus the max-pair-weight bound derived from the *input* graph
/// (so it is identical on every level and every PE). The per-level block
/// constraint (warm starts) is set by the level loop. One body for the
/// sequential builder and the distributed hierarchy store.
[[nodiscard]] MatchingOptions hierarchy_match_options(
    const StaticGraph& graph, const CoarseningOptions& options);

/// Builds the hierarchy by iterated match-and-contract with a caller-
/// supplied per-level matcher. Owns everything both the sequential and
/// the SPMD coarsener must agree on: the max-pair-weight bound, the
/// contraction-limit / zero-matching / minimum-shrink stop rules.
[[nodiscard]] Hierarchy build_hierarchy_with(const StaticGraph& graph,
                                             const CoarseningOptions& options,
                                             const LevelMatcher& matcher);

/// Builds the hierarchy with the in-process matchers (sequential, or the
/// simulated two-phase parallel scheme when options.matching_pes > 1).
[[nodiscard]] Hierarchy build_hierarchy(const StaticGraph& graph,
                                        const CoarseningOptions& options,
                                        Rng& rng);

/// The paper's stop threshold: k * max(20, n / (alpha k^2)) nodes
/// (per-PE threshold max(20, n/(alpha k^2)) times k PEs).
[[nodiscard]] NodeID contraction_stop_threshold(NodeID n, BlockID k,
                                                double alpha);

}  // namespace kappa
