#include "coarsening/prepartition.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace kappa {

namespace {

/// Recursively splits nodes[begin, end) into \p parts PEs, alternating the
/// split axis, writing ids starting at \p first_part.
void split_recursive(const StaticGraph& graph, std::vector<NodeID>& nodes,
                     std::size_t begin, std::size_t end, BlockID first_part,
                     BlockID parts, bool split_x,
                     std::vector<BlockID>& result) {
  if (parts == 1) {
    for (std::size_t i = begin; i < end; ++i) result[nodes[i]] = first_part;
    return;
  }
  // Proportional split for non-power-of-two part counts.
  const BlockID left_parts = parts / 2;
  const BlockID right_parts = parts - left_parts;
  const std::size_t count = end - begin;
  const std::size_t left_count =
      count * left_parts / parts;

  auto key = [&](NodeID u) {
    const Point2D& p = graph.coordinate(u);
    return split_x ? p.x : p.y;
  };
  std::nth_element(nodes.begin() + begin, nodes.begin() + begin + left_count,
                   nodes.begin() + end,
                   [&](NodeID a, NodeID b) { return key(a) < key(b); });

  split_recursive(graph, nodes, begin, begin + left_count, first_part,
                  left_parts, !split_x, result);
  split_recursive(graph, nodes, begin + left_count, end,
                  first_part + left_parts, right_parts, !split_x, result);
}

}  // namespace

std::vector<BlockID> geometric_prepartition(const StaticGraph& graph,
                                            BlockID num_pes) {
  assert(graph.has_coordinates());
  const NodeID n = graph.num_nodes();
  std::vector<NodeID> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeID{0});
  std::vector<BlockID> result(n, 0);
  if (num_pes <= 1 || n == 0) return result;
  split_recursive(graph, nodes, 0, n, 0, num_pes, /*split_x=*/true, result);
  return result;
}

std::vector<BlockID> numbering_prepartition(NodeID num_nodes,
                                            BlockID num_pes) {
  std::vector<BlockID> result(num_nodes, 0);
  if (num_pes <= 1 || num_nodes == 0) return result;
  for (NodeID u = 0; u < num_nodes; ++u) {
    result[u] = static_cast<BlockID>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(u) * num_pes /
                                    num_nodes,
                                num_pes - 1));
  }
  return result;
}

std::vector<BlockID> bfs_prepartition(const StaticGraph& graph,
                                      BlockID num_pes, Rng& rng) {
  const NodeID n = graph.num_nodes();
  std::vector<BlockID> result(n, 0);
  if (num_pes <= 1 || n == 0) return result;

  // --- Seed selection: farthest-point traversal (k-center heuristic). ---
  std::vector<NodeID> seeds;
  std::vector<std::uint32_t> distance(n,
                                      std::numeric_limits<std::uint32_t>::max());
  std::vector<NodeID> queue;
  auto bfs_from = [&](NodeID seed) {
    queue.clear();
    queue.push_back(seed);
    distance[seed] = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const NodeID u = queue[i];
      for (const NodeID v : graph.neighbors(u)) {
        if (distance[v] > distance[u] + 1) {
          distance[v] = distance[u] + 1;
          queue.push_back(v);
        }
      }
    }
  };
  seeds.push_back(static_cast<NodeID>(rng.bounded(n)));
  bfs_from(seeds.back());
  while (seeds.size() < num_pes) {
    // Farthest node from all current seeds; unreached nodes (other
    // components) count as infinitely far and are picked first.
    NodeID farthest = seeds.back();
    std::uint32_t best = 0;
    for (NodeID u = 0; u < n; ++u) {
      if (distance[u] > best ||
          distance[u] == std::numeric_limits<std::uint32_t>::max()) {
        best = distance[u];
        farthest = u;
        if (distance[u] == std::numeric_limits<std::uint32_t>::max()) break;
      }
    }
    seeds.push_back(farthest);
    bfs_from(farthest);  // updates the min-distance field incrementally
  }

  // --- Balanced multi-source BFS growth: every PE absorbs frontier
  // nodes round-robin, capped at ceil(n / num_pes) nodes each. ---
  const NodeID cap = (n + num_pes - 1) / num_pes;
  std::vector<std::vector<NodeID>> frontier(num_pes);
  std::vector<NodeID> pe_size(num_pes, 0);
  std::vector<bool> assigned(n, false);
  for (BlockID pe = 0; pe < num_pes; ++pe) {
    const NodeID seed = seeds[pe];
    if (!assigned[seed]) {
      assigned[seed] = true;
      result[seed] = pe;
      ++pe_size[pe];
      frontier[pe].push_back(seed);
    }
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (BlockID pe = 0; pe < num_pes; ++pe) {
      std::vector<NodeID> next;
      for (const NodeID u : frontier[pe]) {
        for (const NodeID v : graph.neighbors(u)) {
          if (assigned[v] || pe_size[pe] >= cap) continue;
          assigned[v] = true;
          result[v] = pe;
          ++pe_size[pe];
          next.push_back(v);
          progress = true;
        }
      }
      frontier[pe].swap(next);
    }
  }
  // Leftovers (capped-out regions, disconnected scraps) go to the
  // lightest PEs.
  for (NodeID u = 0; u < n; ++u) {
    if (assigned[u]) continue;
    BlockID lightest = 0;
    for (BlockID pe = 1; pe < num_pes; ++pe) {
      if (pe_size[pe] < pe_size[lightest]) lightest = pe;
    }
    result[u] = lightest;
    ++pe_size[lightest];
  }
  return result;
}

std::vector<BlockID> prepartition(const StaticGraph& graph, BlockID num_pes) {
  if (graph.has_coordinates()) {
    return geometric_prepartition(graph, num_pes);
  }
  return numbering_prepartition(graph.num_nodes(), num_pes);
}

}  // namespace kappa
