/// \file prepartition.hpp
/// \brief Pre-partitioning of nodes onto PEs for matching locality (§3.3).
///
/// "We first compute a preliminary partition of the graph, e.g., using
/// coordinate information. Currently we have implemented a recursive
/// bisection algorithm for nodes with 2D coordinates that alternately
/// splits the data by the x-coordinate and the y-coordinate. We can also
/// use the initial numbering of the nodes. Note that the initial
/// partitioning does not directly affect the final partitioning computed
/// later – its main purpose is to increase locality."
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Assigns every node a home PE in [0, num_pes) by recursive coordinate
/// bisection (alternating x/y median splits, Bentley/Berger–Bokhari style).
/// Requires graph.has_coordinates(). Part sizes differ by at most one node
/// for power-of-two PE counts and stay proportional otherwise.
[[nodiscard]] std::vector<BlockID> geometric_prepartition(
    const StaticGraph& graph, BlockID num_pes);

/// Fallback without coordinates: contiguous ranges of the initial node
/// numbering (many mesh generators emit locality-preserving numberings).
[[nodiscard]] std::vector<BlockID> numbering_prepartition(NodeID num_nodes,
                                                          BlockID num_pes);

/// Purely graph-theoretic prepartitioner (the §8 future-work item "for
/// very large systems we want to develop a very fast prepartitioner that
/// works purely graph theoretically"): k-center-style seed selection by
/// repeated farthest-point BFS, then balanced multi-source BFS growth —
/// one O(m) sweep per phase. Quality is below recursive bisection but it
/// needs neither coordinates nor a good numbering.
[[nodiscard]] std::vector<BlockID> bfs_prepartition(const StaticGraph& graph,
                                                    BlockID num_pes,
                                                    Rng& rng);

/// Dispatches to the geometric variant when coordinates exist, else to the
/// numbering variant.
[[nodiscard]] std::vector<BlockID> prepartition(const StaticGraph& graph,
                                                BlockID num_pes);

}  // namespace kappa
