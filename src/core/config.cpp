#include "core/config.hpp"

namespace kappa {

const char* preset_name(Preset preset) {
  switch (preset) {
    case Preset::kMinimal:
      return "minimal";
    case Preset::kFast:
      return "fast";
    case Preset::kStrong:
      return "strong";
  }
  return "?";
}

Config Config::preset(Preset preset, BlockID k, double eps) {
  Config config;
  config.k = k;
  config.eps = eps;
  config.matching_pes = k;  // the paper runs with one PE per block
  // Every preset keeps the deterministic color-class schedule: the paper's
  // reproducibility contract (same seed, same partition, any p) is part of
  // the preset definition. async_refinement is an explicit opt-in.
  config.async_refinement = false;
  switch (preset) {
    case Preset::kMinimal:
      config.init_repeats = 1;
      config.bfs_depth = 1;
      config.max_global_iterations = 1;
      config.local_iterations = 1;
      config.fm_alpha = 0.01;
      config.stop_no_change = 1;
      config.duplicate_search = false;  // smallest possible everything
      break;
    case Preset::kFast:
      config.init_repeats = 3;
      config.bfs_depth = 5;
      config.max_global_iterations = 15;
      config.local_iterations = 3;
      config.fm_alpha = 0.05;
      config.stop_no_change = 1;
      break;
    case Preset::kStrong:
      config.init_repeats = 5;
      config.bfs_depth = 20;
      config.max_global_iterations = 15;
      config.local_iterations = 5;
      config.fm_alpha = 0.20;
      config.stop_no_change = 2;
      break;
  }
  return config;
}

Config Config::walshaw(BlockID k, double eps, EdgeRating rating) {
  Config config = preset(Preset::kStrong, k, eps);
  config.rating = rating;
  config.bfs_depth = 20;
  config.fm_alpha = 0.30;
  return config;
}

}  // namespace kappa
