/// \file config.hpp
/// \brief KaPPa configuration and the minimal/fast/strong presets (Table 2).
#pragma once

#include <cstdint>
#include <string>

#include "matching/matchers.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/types.hpp"

namespace kappa {

/// The three main strategies of Table 2 ("there is also a minimal variant
/// where for all parameters the smallest possible value is chosen").
enum class Preset { kMinimal, kFast, kStrong };

/// Human-readable preset name.
[[nodiscard]] const char* preset_name(Preset preset);

/// All knobs of the partitioner. Defaults equal the fast preset.
struct Config {
  BlockID k = 2;         ///< number of blocks (= PEs, as in the paper)
  double eps = 0.03;     ///< allowed imbalance (paper default 3%)
  std::uint64_t seed = 1;

  // --- Contraction (§3, Table 2 rows 1-3). ---
  EdgeRating rating = EdgeRating::kExpansionStar2;
  MatcherAlgo matcher = MatcherAlgo::kGPA;
  /// Stop contraction below k * max(20, n/(stop_alpha k^2)) nodes
  /// (Table 2: "stop contraction n/60k^2").
  double stop_alpha = 60.0;
  /// PEs used by the two-phase parallel matching; 0 = sequential matching,
  /// the paper's setting equals k.
  BlockID matching_pes = 0;

  // --- Initial partitioning (§4, Table 2 row "init. repeats"). ---
  int init_repeats = 3;

  // --- Refinement (§5, Table 2 rows 6-12). ---
  QueueSelection queue_selection = QueueSelection::kTopGain;
  int bfs_depth = 5;
  /// Stop after this many consecutive global iterations without
  /// improvement (fast: 1 "no change", strong: 2 "2x no change").
  int stop_no_change = 1;
  int max_global_iterations = 15;
  int local_iterations = 3;
  /// FM patience alpha (Table 2: 1% / 5% / 20%; Walshaw mode 30%).
  double fm_alpha = 0.05;
  /// Refine each pair with two seeds and adopt the better result (§5);
  /// in the MPI original this is free because both PEs of a pair work.
  bool duplicate_search = true;
  /// Worker threads standing in for PEs during refinement (pairs of one
  /// color class run concurrently). 1 = sequential execution.
  int num_threads = 1;
  /// §5.2 band shipping in the SPMD refiner: the partner owner ships only
  /// the boundary band of its block (bounded BFS of depth bfs_depth on
  /// its resident rows, plus a one-hop fringe of frozen context nodes)
  /// instead of the whole block, and the pair search is confined to the
  /// shipped band. Off = legacy whole-block shipping, kept for the
  /// volume-equivalence property tests ("band depth = infinity reproduces
  /// whole-block shipping bit for bit").
  bool band_shipping = true;
  /// Run the §5.1 coloring protocol *inside* the SPMD refiner: the k
  /// block-PEs live as virtual PEs on the refiner's p ranks (a nested
  /// PESubGroup scope) and exchange REQUEST/REPLY bundles point-to-point,
  /// so the schedule is computed without replicating the greedy coloring
  /// loop on every rank. Off = replicated greedy. Both draw the identical
  /// coloring from the same seed (they are one randomized process), so
  /// this switch never changes the partition — only where the coloring
  /// work and its communication happen.
  bool dist_coloring = true;
  /// Asynchronous pair scheduling in the SPMD refiner: instead of running
  /// color classes as global rounds with an all-gathered move delta, a
  /// pair becomes runnable the moment both of its blocks are free
  /// (owner-arbitrated block locks over channels) and moved-node deltas
  /// travel point-to-point only to the ranks that own or cache affected
  /// rows. Targets wall-clock and cut-no-worse, not bit-identity: results
  /// depend on message arrival order. Engages only on hierarchy levels
  /// with >= 4096 nodes (the coarse tail keeps the oracle — supernode
  /// moves are high-stakes there and the barrier savings negligible) and
  /// ends each level with one color-class polish iteration on consistent
  /// state. Off = the deterministic color-class oracle, which stays
  /// bit-identical and p-invariant; all presets default to the oracle,
  /// async is the opt-in wall-clock mode.
  bool async_refinement = false;
  /// Extension (§8 future work): add a min-cut pass on the boundary band
  /// of each pair after the FM local iterations, in the sequential
  /// pairwise refiner and in the SPMD band-limited pair views alike. The
  /// flow move is adopted only when it strictly improves the pair cut
  /// without increasing overload, so a pair is never made worse. Off in
  /// all paper presets; the ablation bench quantifies its effect.
  bool enable_flow_refinement = false;
  /// Observability: record per-rank spans (phases, per-level halo,
  /// coloring rounds, pair refinement, transport) into a preallocated
  /// buffer and merge them on the primary rank after the run — see
  /// util/trace.hpp and Partitioner::set_trace_sink(). Also switchable
  /// per run with the KAPPA_TRACE environment variable. Observer-only:
  /// the partition is byte-identical with tracing on or off.
  bool trace_enabled = false;
  /// Observability: kappa-watch live health. `watch_out` streams
  /// `kappa.snapshot.v1` JSONL snapshots (metrics deltas + per-rank
  /// progress) to the given path; `stall_timeout_ms > 0` arms a per-rank
  /// watchdog that emits a structured stall report when a rank stops
  /// advancing. Both also switchable per run with KAPPA_WATCH_OUT /
  /// KAPPA_STALL_TIMEOUT_MS (see parallel/watch.hpp). Observer-only like
  /// tracing: the partition is byte-identical with watch on or off.
  std::string watch_out;
  int stall_timeout_ms = 0;
  /// Snapshot cadence of the sampler and heartbeat cadence of the TCP
  /// transport's liveness lane (KAPPA_WATCH_INTERVAL_MS /
  /// KAPPA_HEARTBEAT_INTERVAL_MS override).
  int watch_interval_ms = 250;
  int heartbeat_interval_ms = 100;

  /// The Table 2 preset for a given k and eps.
  [[nodiscard]] static Config preset(Preset preset, BlockID k,
                                     double eps = 0.03);

  /// The further-strengthened strong configuration used for the Walshaw
  /// benchmark (§6.3): BFS depth 20, FM patience 30%. The rating is left
  /// to the caller, which tries innerOuter / expansion* / expansion*2.
  [[nodiscard]] static Config walshaw(BlockID k, double eps,
                                      EdgeRating rating);
};

}  // namespace kappa
