#include "core/kappa.hpp"

#include <algorithm>
#include <sstream>

#include "coarsening/hierarchy.hpp"
#include "graph/contraction.hpp"
#include "graph/metrics.hpp"
#include "initial/initial_partitioner.hpp"
#include "refinement/pairwise_refiner.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace kappa {

KappaResult kappa_partition(const StaticGraph& graph, const Config& config) {
  Timer total_timer;
  Rng rng(config.seed);
  KappaResult result;

  // --- Phase 1: contraction (§3). ---
  Timer phase_timer;
  CoarseningOptions coarsening;
  coarsening.rating = config.rating;
  coarsening.matcher = config.matcher;
  coarsening.contraction_limit = contraction_stop_threshold(
      graph.num_nodes(), config.k, config.stop_alpha);
  coarsening.matching_pes = config.matching_pes;
  Rng coarsen_rng = rng.fork(1);
  const Hierarchy hierarchy = build_hierarchy(graph, coarsening, coarsen_rng);
  result.coarsening_time = phase_timer.elapsed_s();
  result.hierarchy_levels = hierarchy.num_levels();
  result.coarsest_nodes = hierarchy.coarsest().num_nodes();

  // --- Phase 2: initial partitioning (§4). ---
  phase_timer.restart();
  InitialPartitionOptions initial;
  initial.eps = config.eps;
  initial.repeats = config.init_repeats;
  Rng initial_rng = rng.fork(2);
  Partition partition =
      initial_partition(hierarchy.coarsest(), config.k, initial, initial_rng);
  result.initial_time = phase_timer.elapsed_s();

  // --- Phase 3: uncoarsening with pairwise refinement (§5). ---
  phase_timer.restart();
  Rng refine_rng = rng.fork(3);
  // The balance target is the *input-level* Lmax. Coarse levels have a
  // laxer intrinsic bound (their max node weight is larger), so refining
  // against the final bound from the start makes every level pull toward
  // final feasibility; the lexicographic FM objective reduces overload as
  // far as each level's granularity permits.
  const NodeWeight global_bound =
      max_block_weight_bound(graph, config.k, config.eps);
  for (std::size_t level = hierarchy.num_levels(); level-- > 0;) {
    const StaticGraph& current = hierarchy.graph(level);
    if (level + 1 < hierarchy.num_levels()) {
      partition = project_partition(current, hierarchy.map(level), partition);
    }

    PairwiseRefinerOptions refine;
    refine.fm.queue_selection = config.queue_selection;
    refine.fm.patience_alpha = config.fm_alpha;
    refine.fm.max_block_weight = std::max(
        global_bound, current.max_node_weight());  // never below one node
    refine.bfs_depth = config.bfs_depth;
    refine.local_iterations = config.local_iterations;
    refine.max_global_iterations = config.max_global_iterations;
    refine.stop_no_change = config.stop_no_change;
    refine.num_threads = config.num_threads;
    refine.duplicate_search = config.duplicate_search;
    refine.use_flow = config.use_flow_refinement;

    Rng level_rng = refine_rng.fork(level);
    const PairwiseRefineReport report =
        pairwise_refine(current, partition, refine, level_rng);
    if (log_level() >= LogLevel::kDebug) {
      std::ostringstream msg;
      msg << "refine level " << level << ": cut gain "
          << report.total_cut_gain << " in " << report.global_iterations
          << " global iterations";
      log_debug(msg.str());
    }
  }

  // Rebalancing insurance: should the finest level still be overloaded
  // (possible with the minimal preset's single shallow iteration, or on
  // road networks where weight must flow through narrow bridges), run
  // additional MaxLoad-driven iterations with escalating band depth —
  // this is the §5.2 exception rule applied until the constraint holds.
  // Each global iteration moves weight one quotient-graph hop, so chains
  // of near-full blocks drain over several attempts.
  for (int attempt = 0;
       attempt < 24 && !is_balanced(graph, partition, config.eps);
       ++attempt) {
    PairwiseRefinerOptions rebalance;
    rebalance.fm.queue_selection = QueueSelection::kMaxLoad;
    rebalance.fm.patience_alpha = std::max(config.fm_alpha, 0.25);
    // Late attempts target the eps = 0 bound: a pair sitting exactly at
    // Lmax with odd total weight has no max-based gradient, but against
    // the tighter target its interior neighbors gain an incentive to
    // drain it, unsticking the chain. The true bound is only checked by
    // the loop condition.
    rebalance.fm.max_block_weight =
        attempt < 8 ? global_bound
                    : max_block_weight_bound(graph, config.k, 0.0);
    rebalance.bfs_depth =
        std::min(64, std::max(config.bfs_depth, 5) * (1 + attempt / 2));
    rebalance.local_iterations = 1;
    rebalance.max_global_iterations = 2;
    rebalance.num_threads = config.num_threads;
    Rng rebalance_rng = refine_rng.fork(100 + attempt);
    (void)pairwise_refine(graph, partition, rebalance, rebalance_rng);
  }
  result.refinement_time = phase_timer.elapsed_s();

  result.cut = edge_cut(graph, partition);
  result.balance = balance(graph, partition);
  result.balanced = is_balanced(graph, partition, config.eps);
  result.partition = std::move(partition);
  result.total_time = total_timer.elapsed_s();
  return result;
}

}  // namespace kappa
