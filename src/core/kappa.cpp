#include "core/kappa.hpp"

#include "core/phases.hpp"
#include "util/random.hpp"

namespace kappa {

KappaResult kappa_partition(const StaticGraph& graph, const Config& config) {
  const Rng rng(config.seed);
  SequentialCoarsener coarsener(config, rng);
  SequentialInitialPartitioner initial(config, rng);
  SequentialRefiner refiner(graph, config, rng);
  return run_multilevel(graph, config, coarsener, initial, refiner);
}

}  // namespace kappa
