/// \file kappa.cpp
/// \brief Deprecated free-function wrappers over the unified Partitioner
/// API (see core/partitioner.hpp).
#include "core/kappa.hpp"

namespace kappa {

KappaResult kappa_partition(const StaticGraph& graph, const Config& config) {
  return Partitioner(Context::sequential(config)).partition(graph);
}

}  // namespace kappa
