/// \file kappa.hpp
/// \brief The KaPPa partitioner: the paper's primary contribution.
///
/// Multilevel pipeline: (1) contraction with rated matchings, optionally
/// computed with the two-phase parallel matching scheme over geometrically
/// pre-partitioned PEs; (2) repeated initial partitioning of the coarsest
/// graph; (3) uncoarsening with parallel pairwise FM refinement scheduled
/// by edge colorings of the quotient graph.
#pragma once

#include "core/config.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"

namespace kappa {

/// Result of one partitioning run with phase statistics.
struct KappaResult {
  Partition partition;
  EdgeWeight cut = 0;
  double balance = 1.0;   ///< max block weight / average block weight
  bool balanced = false;  ///< obeys the Lmax bound

  // Phase breakdown (seconds).
  double coarsening_time = 0.0;
  double initial_time = 0.0;
  double refinement_time = 0.0;
  double total_time = 0.0;

  std::size_t hierarchy_levels = 0;
  NodeID coarsest_nodes = 0;
};

/// Partitions \p graph into \p config.k blocks.
[[nodiscard]] KappaResult kappa_partition(const StaticGraph& graph,
                                          const Config& config);

}  // namespace kappa
