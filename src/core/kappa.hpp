/// \file kappa.hpp
/// \brief Legacy free-function entry points of the KaPPa partitioner.
///
/// \deprecated The public API is core/partitioner.hpp: construct a
/// Context (Context::sequential / Context::spmd) and call
/// Partitioner::partition() or Partitioner::repartition(). The free
/// functions below are thin wrappers kept for source compatibility; they
/// produce bit-identical results to the Partitioner on the same config
/// and seed.
#pragma once

#include "core/config.hpp"
#include "core/partitioner.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"

namespace kappa {

class PERuntime;

/// \deprecated Former name of PartitionResult (the SPMD fields of which
/// it always carried; the repartitioning fields stay zero on these runs).
using KappaResult = PartitionResult;

/// Partitions \p graph into \p config.k blocks (single process).
/// \deprecated Use Partitioner(Context::sequential(config)).partition().
[[deprecated("use Partitioner(Context::sequential(config)).partition()")]]
[[nodiscard]] KappaResult kappa_partition(const StaticGraph& graph,
                                          const Config& config);

/// Partitions \p graph into \p config.k blocks SPMD on \p runtime.
/// \deprecated Use Partitioner(Context::spmd(config, runtime)).partition().
[[deprecated(
    "use Partitioner(Context::spmd(config, runtime)).partition()")]]
[[nodiscard]] KappaResult kappa_partition_parallel(const StaticGraph& graph,
                                                   const Config& config,
                                                   PERuntime& runtime);

}  // namespace kappa
