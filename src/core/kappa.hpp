/// \file kappa.hpp
/// \brief The KaPPa partitioner: the paper's primary contribution.
///
/// Multilevel pipeline: (1) contraction with rated matchings, optionally
/// computed with the two-phase parallel matching scheme over geometrically
/// pre-partitioned PEs; (2) repeated initial partitioning of the coarsest
/// graph; (3) uncoarsening with parallel pairwise FM refinement scheduled
/// by edge colorings of the quotient graph.
///
/// Two entry points share one driver (core/phases.hpp):
/// kappa_partition() runs the pipeline in-process; and
/// kappa_partition_parallel() runs it SPMD on the PE runtime — every phase
/// executes distributed across the runtime's PEs with all dynamic state
/// exchanged through messages and collectives, as in the paper's MPI
/// implementation.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "parallel/pe_runtime.hpp"

namespace kappa {

/// Result of one partitioning run with phase statistics.
struct KappaResult {
  Partition partition;
  EdgeWeight cut = 0;
  double balance = 1.0;   ///< max block weight / average block weight
  bool balanced = false;  ///< obeys the Lmax bound

  // Phase breakdown (seconds).
  double coarsening_time = 0.0;
  double initial_time = 0.0;
  double refinement_time = 0.0;
  double total_time = 0.0;

  std::size_t hierarchy_levels = 0;
  NodeID coarsest_nodes = 0;

  // SPMD run shape (kappa_partition_parallel only; zero/empty otherwise).
  int num_pes = 0;                     ///< PEs of the runtime that ran this
  CommStats comm;                      ///< aggregate communication volume
  std::vector<CommStats> comm_per_pe;  ///< per-PE counters, indexed by rank
};

/// Partitions \p graph into \p config.k blocks (single process).
[[nodiscard]] KappaResult kappa_partition(const StaticGraph& graph,
                                          const Config& config);

/// Partitions \p graph into \p config.k blocks SPMD on \p runtime: the
/// graph is sharded across PEs (parallel/dist_graph.hpp), coarsening
/// matches shard-locally and resolves the gap graph over channels, initial
/// partitioning runs best-of-p with an all-reduce winner pick, and
/// uncoarsening refines disjoint block pairs concurrently per quotient
/// edge color, exchanging moved-node deltas.
///
/// Deterministic: with a fixed config.seed the partition is identical for
/// every runtime size p (work is keyed to virtual shards, not to physical
/// PEs), so p only changes wall time and the communication counters.
[[nodiscard]] KappaResult kappa_partition_parallel(const StaticGraph& graph,
                                                   const Config& config,
                                                   PERuntime& runtime);

}  // namespace kappa
