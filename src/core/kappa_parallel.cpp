/// \file kappa_parallel.cpp
/// \brief The SPMD entry point: the full multilevel pipeline on the PE
/// runtime. Every PE executes the shared run_multilevel() driver with the
/// SPMD phase implementations; rank 0's (replicated, identical) result is
/// returned, annotated with the per-PE communication counters.
#include "core/kappa.hpp"
#include "core/phases.hpp"
#include "parallel/spmd_phases.hpp"

namespace kappa {

KappaResult kappa_partition_parallel(const StaticGraph& graph,
                                     const Config& config,
                                     PERuntime& runtime) {
  const int p = runtime.num_pes();
  KappaResult result;
  std::vector<CommStats> per_pe(p);

  const CommStats total = runtime.run([&](PEContext& pe) {
    SpmdCoarsener coarsener(config, pe);
    SpmdInitialPartitioner initial(config, pe);
    SpmdRefiner refiner(graph, config, pe);
    KappaResult local = run_multilevel(graph, config, coarsener, initial,
                                       refiner);
    per_pe[pe.rank()] = pe.stats();
    if (pe.rank() == 0) result = std::move(local);
  });

  result.num_pes = p;
  result.comm = total;
  result.comm_per_pe = std::move(per_pe);
  return result;
}

}  // namespace kappa
