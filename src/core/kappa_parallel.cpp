/// \file kappa_parallel.cpp
/// \brief Deprecated SPMD free-function wrapper over the unified
/// Partitioner API (see core/partitioner.hpp).
#include "core/kappa.hpp"
#include "parallel/pe_runtime.hpp"

namespace kappa {

KappaResult kappa_partition_parallel(const StaticGraph& graph,
                                     const Config& config,
                                     PERuntime& runtime) {
  return Partitioner(Context::spmd(config, runtime)).partition(graph);
}

}  // namespace kappa
