/// \file metrics_export.cpp
/// \brief PartitionResult -> MetricsRegistry flattening.
#include "core/metrics_export.hpp"

#include <cstdint>
#include <vector>

namespace kappa {

namespace {

/// Per-rank projections of a CommStats vector.
std::vector<std::uint64_t> per_rank(
    const std::vector<CommStats>& stats,
    std::uint64_t (*field)(const CommStats&)) {
  std::vector<std::uint64_t> values;
  values.reserve(stats.size());
  for (const CommStats& s : stats) values.push_back(field(s));
  return values;
}

std::vector<std::uint64_t> footprint_field(
    const std::vector<ShardFootprint>& footprints,
    std::uint64_t (*field)(const ShardFootprint&)) {
  std::vector<std::uint64_t> values;
  values.reserve(footprints.size());
  for (const ShardFootprint& f : footprints) values.push_back(field(f));
  return values;
}

}  // namespace

MetricsRegistry metrics_from_result(const PartitionResult& result,
                                    const Config& config,
                                    const std::string& backend) {
  MetricsRegistry registry;

  registry.set_u64("run.k", config.k);
  registry.set_f64("run.eps", config.eps);
  registry.set_u64("run.seed", config.seed);
  registry.set_u64("run.num_pes",
                   static_cast<std::uint64_t>(result.num_pes));
  registry.set_str("run.backend", backend);

  registry.set_i64("partition.cut", result.cut);
  registry.set_f64("partition.balance", result.balance);
  registry.set_u64("partition.feasible", result.balanced ? 1 : 0);

  registry.set_i64("repartition.initial_cut", result.initial_cut);
  registry.set_u64("repartition.migrated_nodes", result.migrated_nodes);
  {
    std::vector<std::uint64_t> migrated;
    for (const NodeID n : result.migrated_per_pe) migrated.push_back(n);
    registry.set_u64_list("repartition.migrated_per_rank",
                          std::move(migrated));
    std::vector<std::uint64_t> edges;
    for (const std::size_t e : result.migrated_edges_per_pe) {
      edges.push_back(e);
    }
    registry.set_u64_list("repartition.migrated_edges_per_rank",
                          std::move(edges));
  }

  registry.set_f64("time.total_s", result.total_time);
  registry.set_f64("time.coarsen_s", result.coarsening_time);
  registry.set_f64("time.initial_s", result.initial_time);
  registry.set_f64("time.refine_s", result.refinement_time);

  registry.set_u64("hierarchy.levels", result.hierarchy_levels);
  registry.set_u64("hierarchy.coarsest_nodes", result.coarsest_nodes);
  {
    std::vector<std::uint64_t> levels;
    for (const NodeID n : result.hierarchy_level_nodes) levels.push_back(n);
    registry.set_u64_list("hierarchy.level_nodes", std::move(levels));
  }

  const CommStats& comm = result.comm;
  registry.set_u64("comm.messages_sent", comm.messages_sent);
  registry.set_u64("comm.words_sent", comm.words_sent);
  registry.set_u64("comm.messages_received", comm.messages_received);
  registry.set_u64("comm.words_received", comm.words_received);
  registry.set_u64("comm.barriers", comm.barriers);
  registry.set_u64("comm.collective_idle_ns", comm.collective_idle_ns);
  registry.set_u64("comm.recv_idle_ns", comm.recv_idle_ns);
  registry.set_u64("comm.rounds_waited", comm.rounds_waited);
  registry.set_u64("comm.wire_bytes_sent", comm.wire_bytes_sent);
  registry.set_u64("comm.wire_bytes_received", comm.wire_bytes_received);
  registry.set_u64("comm.heartbeat_frames_sent", comm.heartbeat_frames_sent);
  registry.set_u64("comm.heartbeat_words_sent", comm.heartbeat_words_sent);
  const std::vector<CommStats>& per_pe = result.comm_per_pe;
  registry.set_u64_list(
      "comm.per_rank.messages_sent",
      per_rank(per_pe, [](const CommStats& s) { return s.messages_sent; }));
  registry.set_u64_list(
      "comm.per_rank.words_sent",
      per_rank(per_pe, [](const CommStats& s) { return s.words_sent; }));
  registry.set_u64_list(
      "comm.per_rank.messages_received",
      per_rank(per_pe,
               [](const CommStats& s) { return s.messages_received; }));
  registry.set_u64_list(
      "comm.per_rank.words_received",
      per_rank(per_pe, [](const CommStats& s) { return s.words_received; }));
  registry.set_u64_list(
      "comm.per_rank.idle_ns",
      per_rank(per_pe, [](const CommStats& s) { return s.idle_ns(); }));
  registry.set_u64_list(
      "comm.per_rank.rounds_waited",
      per_rank(per_pe, [](const CommStats& s) { return s.rounds_waited; }));
  registry.set_u64_list(
      "comm.per_rank.wire_bytes_sent",
      per_rank(per_pe, [](const CommStats& s) { return s.wire_bytes_sent; }));
  registry.set_u64_list(
      "comm.per_rank.wire_bytes_received",
      per_rank(per_pe,
               [](const CommStats& s) { return s.wire_bytes_received; }));
  {
    std::vector<std::uint64_t> messages;
    std::vector<std::uint64_t> words;
    for (const LevelHaloStats& level : comm.halo_per_level) {
      messages.push_back(level.messages);
      words.push_back(level.words);
    }
    registry.set_u64_list("comm.halo.messages_per_level",
                          std::move(messages));
    registry.set_u64_list("comm.halo.words_per_level", std::move(words));
  }

  PairShipStats ship;
  std::vector<std::uint64_t> pairs_per_rank;
  for (const PairShipStats& s : result.pair_ship_per_pe) {
    ship += s;
    pairs_per_rank.push_back(s.pairs_executed);
  }
  registry.set_u64("ship.pairs_executed", ship.pairs_executed);
  registry.set_u64("ship.pairs_shipped", ship.pairs_shipped);
  registry.set_u64("ship.rows_shipped", ship.rows_shipped);
  registry.set_u64("ship.words_shipped", ship.words_shipped);
  registry.set_u64("ship.whole_block_rows", ship.whole_block_rows);
  registry.set_u64_list("ship.per_rank.pairs_executed",
                        std::move(pairs_per_rank));

  registry.set_u64_list(
      "memory.shard.owned_per_rank",
      footprint_field(result.shard_memory_per_pe,
                      [](const ShardFootprint& f) { return f.owned_nodes; }));
  registry.set_u64_list(
      "memory.shard.ghost_per_rank",
      footprint_field(result.shard_memory_per_pe,
                      [](const ShardFootprint& f) { return f.ghost_nodes; }));
  registry.set_u64_list(
      "memory.shard.arcs_per_rank",
      footprint_field(result.shard_memory_per_pe,
                      [](const ShardFootprint& f) { return f.arcs; }));
  registry.set_u64_list(
      "memory.hierarchy.resident_nodes_per_rank",
      footprint_field(result.hierarchy_memory_per_pe,
                      [](const ShardFootprint& f) {
                        return f.resident_nodes();
                      }));
  registry.set_u64_list(
      "memory.partition.resident_per_rank",
      footprint_field(result.partition_memory_per_pe,
                      [](const ShardFootprint& f) {
                        return f.resident_nodes();
                      }));

  {
    std::vector<std::uint64_t> pairs;
    std::vector<std::uint64_t> lock_ns;
    for (const std::vector<AsyncPairEvent>& events :
         result.async_pairs_per_pe) {
      std::uint64_t total_ns = 0;
      for (const AsyncPairEvent& event : events) {
        total_ns += event.end_ns - event.begin_ns;
      }
      pairs.push_back(events.size());
      lock_ns.push_back(total_ns);
    }
    registry.set_u64_list("async.pairs_per_rank", std::move(pairs));
    registry.set_u64_list("async.lock_ns_per_rank", std::move(lock_ns));
  }

  return registry;
}

}  // namespace kappa
