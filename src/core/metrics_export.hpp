/// \file metrics_export.hpp
/// \brief Builds the unified MetricsRegistry from a PartitionResult: one
/// named, typed namespace over every ad-hoc counter the result carries
/// (CommStats, idle times, halo_per_level, PairShipStats, async lock
/// windows, shard/hierarchy/partition memory).
///
/// Every consumer — `kappa_cli --metrics-out`, the scalability bench's
/// BENCH_refinement.json, the registry-equality test — reads these same
/// names; the schema table in README.md documents them.
#pragma once

#include <string>

#include "core/partitioner.hpp"
#include "util/metrics.hpp"

namespace kappa {

/// Flattens \p result (plus the run identity from \p config and the
/// transport \p backend name, e.g. PERuntime::backend()) into the
/// registry. Callers may add further namespaced entries (e.g. trace.*)
/// before dumping.
[[nodiscard]] MetricsRegistry metrics_from_result(
    const PartitionResult& result, const Config& config,
    const std::string& backend);

}  // namespace kappa
