/// \file partitioner.cpp
/// \brief The unified entry point: both workloads (from-scratch and
/// warm-started) in both execution contexts (sequential and SPMD) through
/// the one shared run_multilevel() driver.
#include "core/partitioner.hpp"

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/phases.hpp"
#include "graph/dynamic_overlay.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/spmd_phases.hpp"
#include "parallel/trace_merge.hpp"
#include "parallel/watch.hpp"
#include "util/progress.hpp"
#include "util/random.hpp"
#include "util/trace.hpp"

namespace kappa {

/// One PE's post-repartitioning data migration, materialized with the
/// §5.2 hybrid graph structure: the nodes a rank keeps (same owned block
/// before and after) form the static CSR core; every node that migrated
/// *into* one of its blocks lands in the DynamicOverlay's hash-addressed
/// secondary edge array, with the arcs that connect it to the rank's
/// view. The overlay's edge accounting is the point: the intake *volume*
/// (how many adjacency entries accompany the migrated nodes) is not
/// derivable from the node diff alone. Runs once per repartition.
MigrationIntake receive_migrated_nodes(const StaticGraph& graph,
                                       const Partition& before,
                                       const Partition& after, int rank,
                                       int num_pes) {
  std::vector<NodeID> kept;
  std::vector<NodeID> incoming;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    if (BlockRowShard::owner_of_block(after.block(u), num_pes) != rank) {
      continue;
    }
    if (after.block(u) == before.block(u)) {
      kept.push_back(u);
    } else {
      incoming.push_back(u);
    }
  }

  const Subgraph core = induced_subgraph(graph, kept);
  DynamicOverlay view(core.graph, core.local_to_global);
  for (const NodeID u : incoming) {
    view.add_migrated_node(u, graph.node_weight(u));
  }
  for (const NodeID u : incoming) {
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (view.contains(v)) {
        view.add_migrated_edge(u, v, graph.arc_weight(e));
      }
    }
  }
  return {static_cast<NodeID>(view.num_migrated()),
          view.num_overlay_edges()};
}

namespace {

/// Fills the repartitioning delta fields of \p result against the input
/// assignment.
void record_migration(const StaticGraph& graph, const Partition& current,
                      EdgeWeight input_cut, PartitionResult& result) {
  result.initial_cut = input_cut;
  result.migrated_nodes = 0;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    if (result.partition.block(u) != current.block(u)) {
      ++result.migrated_nodes;
    }
  }
}

PartitionResult run_sequential(const StaticGraph& graph, const Config& config,
                               const Partition* warm, TraceSink* sink) {
  const bool tracing = trace_run_enabled(config.trace_enabled);
  TraceRecorder recorder(tracing ? trace_buffer_capacity() : 1);
  const ThreadTraceScope bind_trace(tracing ? &recorder : nullptr);
  const Rng rng(config.seed);
  SequentialCoarsener coarsener(config, rng, warm);
  SequentialRefiner refiner(graph, config, rng);
  PartitionResult result;
  if (warm != nullptr) {
    WarmStartInitialPartitioner initial(*warm, config.k);
    result = run_multilevel(graph, config, coarsener, initial, refiner);
  } else {
    SequentialInitialPartitioner initial(config, rng);
    result = run_multilevel(graph, config, coarsener, initial, refiner);
  }
  if (tracing && sink != nullptr) {
    sink->on_trace(merge_local_trace(recorder, /*rank=*/0, /*num_ranks=*/1));
  }
  return result;
}

PartitionResult run_spmd(const StaticGraph& graph, const Config& config,
                         PERuntime& runtime, const Partition* warm,
                         TraceSink* sink) {
  const int p = runtime.num_pes();
  const bool tracing = trace_run_enabled(config.trace_enabled);
  PartitionResult result;
  std::vector<MigrationIntake> intake(p);
  std::vector<ShardFootprint> footprints(p);
  std::vector<ShardFootprint> hierarchy_memory(p);
  std::vector<ShardFootprint> partition_memory(p);
  std::vector<PairShipStats> pair_ship(p);
  std::vector<std::vector<AsyncPairEvent>> async_pairs(p);
  // Populated by the global rank 0 thread iff tracing (empty elsewhere —
  // on a multi-process fabric only the process hosting rank 0 gets it).
  CollectedTrace collected;

  // kappa-watch: boards live in THIS scope, outside the per-rank lambda,
  // because rank q's thread may finish while another rank's sampler is
  // still reading q's board through the in-process registry.
  const WatchOptions watch =
      resolve_watch_options(config.watch_out, config.stall_timeout_ms,
                            config.watch_interval_ms,
                            config.heartbeat_interval_ms);
  std::vector<ProgressBoard> boards(
      watch.enabled() ? static_cast<std::size_t>(p) : 0);
  std::string watch_path = watch.snapshot_path;
  if (!watch_path.empty() && runtime.primary_rank() != 0) {
    // Multi-process fabric, secondary process: keep rank 0's file name for
    // the sampler's stream and give this process's stall reports (the only
    // records it can emit) a sibling file, like the metrics export does.
    watch_path += ".rank" + std::to_string(runtime.primary_rank());
  }
  const std::unique_ptr<WatchSink> watch_sink =
      watch.enabled() ? std::make_unique<WatchSink>(watch_path) : nullptr;

  const std::vector<CommStats> per_pe = runtime.run([&](PEContext& pe) {
    TraceRecorder recorder(tracing ? trace_buffer_capacity() : 1);
    const ThreadTraceScope bind_trace(tracing ? &recorder : nullptr);
    ProgressBoard* board =
        boards.empty() ? nullptr : &boards[static_cast<std::size_t>(pe.rank())];
    const ThreadProgressScope bind_progress(board);
    // Destroyed before the scopes above unwind: the watchdog and sampler
    // threads stop (and the transport's heartbeats with them) while the
    // board and the PE context are still fully alive.
    std::optional<RankWatch> rank_watch;
    if (board != nullptr) {
      progress_phase(ProgressPhase::kIdle);
      rank_watch.emplace(pe, *board, watch, watch_sink.get(),
                         /*run_sampler=*/pe.rank() == 0);
    }
    SpmdCoarsener coarsener(config, pe, warm);
    SpmdRefiner refiner(graph, config, pe, warm);
    PartitionResult local;
    if (warm != nullptr) {
      WarmStartInitialPartitioner initial(*warm, config.k);
      local = run_multilevel_spmd(graph, config, coarsener, initial, refiner);
      // Shard-local migration view, sealed from the refiner's
      // incrementally maintained finest-level store (each block's delta
      // is accounted at its owning rank, with membership read off the
      // store itself).
      intake[pe.rank()] = refiner.migration_intake();
    } else {
      SpmdInitialPartitioner initial(config, pe);
      local = run_multilevel_spmd(graph, config, coarsener, initial, refiner);
    }
    // Peak resident graph data of this rank across both sharded phases,
    // plus the resident hierarchy store (all levels stay sharded) and the
    // sharded partition state.
    ShardFootprint footprint = coarsener.stats().footprint;
    footprint.merge_peak(refiner.footprint());
    footprints[pe.rank()] = footprint;
    hierarchy_memory[pe.rank()] = coarsener.stats().hierarchy_resident;
    partition_memory[pe.rank()] = refiner.partition_footprint();
    pair_ship[pe.rank()] = refiner.ship_stats();
    async_pairs[pe.rank()] = refiner.async_events();
    // Every rank materializes the identical partition; the runtime's
    // primary (lowest locally hosted) rank keeps it — rank 0 in-process,
    // this process's own rank on a multi-process fabric.
    if (pe.rank() == runtime.primary_rank()) result = std::move(local);
    if (tracing) {
      // The partition is already materialized — everything from here on
      // is observation and cannot feed back into it.
      RankSnapshot snapshot;
      snapshot.comm = pe.stats();
      snapshot.comm.wire_bytes_sent = pe.wire_bytes_sent();
      snapshot.comm.wire_bytes_received = pe.wire_bytes_received();
      snapshot.comm.heartbeat_frames_sent = pe.heartbeat_frames_sent();
      snapshot.comm.heartbeat_words_sent = pe.heartbeat_words_sent();
      snapshot.shard_memory = footprints[pe.rank()];
      snapshot.hierarchy_memory = hierarchy_memory[pe.rank()];
      snapshot.partition_memory = partition_memory[pe.rank()];
      snapshot.pair_ship = pair_ship[pe.rank()];
      for (const AsyncPairEvent& event : async_pairs[pe.rank()]) {
        ++snapshot.async_pairs;
        snapshot.async_lock_ns += event.end_ns - event.begin_ns;
      }
      CollectedTrace mine = collect_trace(pe, recorder, snapshot);
      if (pe.rank() == 0) collected = std::move(mine);
    }
  });

  result.num_pes = p;
  result.comm = total_comm_stats(per_pe);
  result.comm_per_pe = per_pe;
  result.shard_memory_per_pe = std::move(footprints);
  result.hierarchy_memory_per_pe = std::move(hierarchy_memory);
  result.partition_memory_per_pe = std::move(partition_memory);
  result.pair_ship_per_pe = std::move(pair_ship);
  result.async_pairs_per_pe = std::move(async_pairs);
  if (warm != nullptr) {
    result.migrated_per_pe.reserve(p);
    result.migrated_edges_per_pe.reserve(p);
    for (const MigrationIntake& i : intake) {
      result.migrated_per_pe.push_back(i.nodes);
      result.migrated_edges_per_pe.push_back(i.edges);
    }
  }
  if (tracing && !collected.ranks.empty()) {
    // Multi-process fabrics only observe their local ranks; the gathered
    // snapshots fill the slots of remotely hosted ranks, so rank 0's
    // result (and any metrics built from it) is as complete as an
    // in-process run's. Locally observed slots stay authoritative.
    for (int q = 0; q < p; ++q) {
      const std::size_t slot = static_cast<std::size_t>(q);
      const CommStats& have = result.comm_per_pe[slot];
      if (have.messages_sent != 0 || have.barriers != 0) continue;
      result.comm_per_pe[slot] = collected.ranks[slot].comm;
      result.shard_memory_per_pe[slot] = collected.ranks[slot].shard_memory;
      result.hierarchy_memory_per_pe[slot] =
          collected.ranks[slot].hierarchy_memory;
      result.partition_memory_per_pe[slot] =
          collected.ranks[slot].partition_memory;
      result.pair_ship_per_pe[slot] = collected.ranks[slot].pair_ship;
    }
    result.comm = total_comm_stats(result.comm_per_pe);
    if (sink != nullptr) sink->on_trace(collected.trace);
  }
  return result;
}

}  // namespace

PartitionResult Partitioner::partition(const StaticGraph& graph) const {
  if (context_.is_spmd()) {
    return run_spmd(graph, context_.config(), *context_.runtime(), nullptr,
                    trace_sink_);
  }
  return run_sequential(graph, context_.config(), nullptr, trace_sink_);
}

PartitionResult Partitioner::repartition(const StaticGraph& graph,
                                         const Partition& current) const {
  assert(current.k() == context_.config().k);
  const EdgeWeight input_cut = edge_cut(graph, current);
  PartitionResult result =
      context_.is_spmd()
          ? run_spmd(graph, context_.config(), *context_.runtime(), &current,
                     trace_sink_)
          : run_sequential(graph, context_.config(), &current, trace_sink_);
  record_migration(graph, current, input_cut, result);
  return result;
}

}  // namespace kappa
