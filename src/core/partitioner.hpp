/// \file partitioner.hpp
/// \brief The unified partitioner API: one context-based entry point for
/// from-scratch partitioning, repartitioning, and SPMD runs.
///
/// A Context fixes *how* a run executes — in-process on one thread of
/// control (Context::sequential) or SPMD on a PE runtime (Context::spmd)
/// — and a Partitioner exposes *what* runs: partition() builds a k-way
/// partition from scratch, repartition() improves an existing assignment
/// (§8: repartitioning of adaptive meshes as the natural generalization of
/// the multilevel pipeline). Both workloads drive the same phase
/// interfaces (core/phases.hpp) through the shared run_multilevel()
/// driver, so both inherit the SPMD path: repartitioning warm-starts the
/// pipeline (block-respecting contraction + an initial "partitioner" that
/// projects the current assignment to the coarsest level) and then runs
/// the ordinary refinement phase — sequential or shard-local with
/// moved-node delta exchange.
///
/// Every run returns one PartitionResult; fields that a particular
/// workload does not produce stay at their zero defaults (e.g. the SPMD
/// counters of a sequential run, or migrated_nodes of a from-scratch run).
///
/// This Context/Partitioner surface is the only entry point; the former
/// free functions (kappa_partition, kappa_partition_parallel,
/// repartition) completed their deprecation cycle and were removed — see
/// the migration table in README.md.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "parallel/comm_stats.hpp"
#include "util/trace.hpp"
#include "util/types.hpp"

namespace kappa {

class PERuntime;

/// Result of one partitioning or repartitioning run with phase statistics.
struct PartitionResult {
  Partition partition;
  EdgeWeight cut = 0;
  double balance = 1.0;   ///< max block weight / average block weight
  bool balanced = false;  ///< obeys the Lmax bound

  // Repartitioning (zero on from-scratch runs).
  EdgeWeight initial_cut = 0;  ///< cut of the input partition
  NodeID migrated_nodes = 0;   ///< nodes whose block changed vs. the input
  /// SPMD repartitioning only: nodes migrated *into* the blocks owned by
  /// each rank (blocks are owned round-robin, block b -> rank b mod p).
  /// Sums to migrated_nodes.
  std::vector<NodeID> migrated_per_pe;
  /// SPMD repartitioning only: adjacency entries each rank receives with
  /// its migrated nodes — the §5.2 overlay-edge volume of the data
  /// migration, indexed like migrated_per_pe.
  std::vector<std::size_t> migrated_edges_per_pe;

  // Phase breakdown (seconds).
  double coarsening_time = 0.0;
  double initial_time = 0.0;
  double refinement_time = 0.0;
  double total_time = 0.0;

  std::size_t hierarchy_levels = 0;
  NodeID coarsest_nodes = 0;
  /// Node count of every hierarchy level, finest first (SPMD runs; the
  /// replicated per-rank baseline an old-style run would hold is the sum
  /// of these).
  std::vector<NodeID> hierarchy_level_nodes;

  // SPMD run shape (zero/empty on sequential runs).
  int num_pes = 0;                     ///< PEs of the runtime that ran this
  CommStats comm;                      ///< aggregate communication volume
  std::vector<CommStats> comm_per_pe;  ///< per-PE counters, indexed by rank
  /// Peak resident footprint of any single data-sharded graph structure
  /// per rank (one level's §3.3 owned+ghost CSR, the §5.2 block-row
  /// store with its transient pair intake, or the once-gathered coarsest
  /// replica), indexed by rank. With p >= 2 each rank's resident node
  /// count stays near n/p plus its one-hop halo — strictly below n —
  /// instead of the replicated O(n).
  std::vector<ShardFootprint> shard_memory_per_pe;
  /// Resident size of the whole distributed hierarchy store per rank:
  /// the sum of the per-level owned+ghost footprints,
  /// Σ_levels (n_level / p + halo). The replicated design this store
  /// replaces held Σ_levels n_level on *every* rank (the sum of
  /// hierarchy_level_nodes); the ratio is the memory payoff of
  /// shard-owned contraction, tabulated in EXPERIMENTS.md.
  std::vector<ShardFootprint> hierarchy_memory_per_pe;
  /// Peak resident partition state per rank (parallel/dist_partition.hpp):
  /// owned_nodes = block ids of the rank's shard-owned nodes (n_l / p),
  /// ghost_nodes = ghost-block cache entries (block members + resident-row
  /// targets). The replicated design held the full O(n_l) assignment on
  /// every rank; with the sharded store the per-rank resident share drops
  /// sub-linearly, tabulated in EXPERIMENTS.md.
  std::vector<ShardFootprint> partition_memory_per_pe;
  /// §5.2 pair-shipping volume per rank: what the refiner's partner-side
  /// shipments put on the wire (band-limited by default) against the
  /// whole-block volume the legacy mode would have sent.
  std::vector<PairShipStats> pair_ship_per_pe;
  /// Async refinement only (config.async_refinement): the lock windows of
  /// the pairs each rank executed, indexed by rank. Two events sharing a
  /// block never overlap — the externally checkable face of the arbiter's
  /// lock discipline — and the union of windows against wall time is the
  /// utilization the scalability bench reports alongside the idle share.
  std::vector<std::vector<AsyncPairEvent>> async_pairs_per_pe;
};

/// One rank's post-repartitioning data intake (§5.2): the nodes migrated
/// into its blocks plus the adjacency entries shipped with them.
struct MigrationIntake {
  NodeID nodes = 0;       ///< nodes migrated into this rank's blocks
  std::size_t edges = 0;  ///< adjacency entries shipped with them
};

/// Materializes rank \p rank's data migration between two assignments
/// (blocks owned round-robin, block b -> rank b mod num_pes) with the
/// §5.2 hybrid structure — the kept nodes as a static CSR core, every
/// migrated-in node through the DynamicOverlay's hash-addressed
/// secondary edge array — and returns the intake volume, which is not
/// derivable from the node diff alone. The SPMD repartitioner calls it
/// once per rank; exposed so the overlay test suite can exercise the
/// ghost-layer intake directly.
[[nodiscard]] MigrationIntake receive_migrated_nodes(const StaticGraph& graph,
                                                     const Partition& before,
                                                     const Partition& after,
                                                     int rank, int num_pes);

/// Execution context of a Partitioner: the configuration plus where the
/// pipeline runs. Construct with one of the factories; the config is
/// copied, the runtime (if any) is borrowed and must outlive the context.
class Context {
 public:
  /// Runs the pipeline in-process (config.num_threads worker threads may
  /// still execute independent refinement pairs concurrently).
  [[nodiscard]] static Context sequential(Config config) {
    return Context(config, nullptr);
  }

  /// Runs the pipeline SPMD on \p runtime: every PE executes every phase
  /// on its replica, synchronizing through messages and collectives, as
  /// in the paper's MPI implementation. Deterministic and p-invariant:
  /// with a fixed config.seed the result is identical for every runtime
  /// size p (work is keyed to virtual shards, not physical PEs).
  [[nodiscard]] static Context spmd(Config config, PERuntime& runtime) {
    return Context(config, &runtime);
  }

  [[nodiscard]] const Config& config() const { return config_; }

  /// The SPMD runtime, or nullptr for a sequential context.
  [[nodiscard]] PERuntime* runtime() const { return runtime_; }

  [[nodiscard]] bool is_spmd() const { return runtime_ != nullptr; }

 private:
  Context(const Config& config, PERuntime* runtime)
      : config_(config), runtime_(runtime) {}

  Config config_;
  PERuntime* runtime_;
};

/// Facade over the multilevel pipeline: one object, every workload.
///
///   Partitioner partitioner(Context::sequential(config));
///   PartitionResult fresh = partitioner.partition(graph);
///   ... the mesh adapts, the assignment degrades ...
///   PartitionResult next = partitioner.repartition(graph, fresh.partition);
class Partitioner {
 public:
  explicit Partitioner(const Context& context) : context_(context) {}

  [[nodiscard]] const Context& context() const { return context_; }

  /// Registers a consumer for the merged per-rank trace of subsequent
  /// runs (borrowed; must outlive the runs). Fires only when tracing is
  /// on (config.trace_enabled or KAPPA_TRACE), after the result is
  /// assembled, on the process that hosts global rank 0 — exactly once
  /// per run there, never elsewhere. Sequential runs produce a one-rank
  /// trace. Tracing is observer-only: the partition is byte-identical
  /// with or without a sink.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  [[nodiscard]] TraceSink* trace_sink() const { return trace_sink_; }

  /// Partitions \p graph into context().config().k blocks from scratch:
  /// contraction, initial partitioning, uncoarsening with refinement.
  [[nodiscard]] PartitionResult partition(const StaticGraph& graph) const;

  /// Improves \p current (must have k = config.k blocks) with the
  /// warm-started pipeline: contraction only matches nodes of the same
  /// current block (so the assignment projects exactly onto every level),
  /// the coarsest partition is the projected assignment, and refinement
  /// proceeds as usual. The cut improves, feasibility is restored, and —
  /// the point of the exercise — far fewer nodes migrate than under a
  /// from-scratch run.
  [[nodiscard]] PartitionResult repartition(const StaticGraph& graph,
                                            const Partition& current) const;

 private:
  Context context_;
  TraceSink* trace_sink_ = nullptr;
};

}  // namespace kappa
