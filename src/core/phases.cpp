#include "core/phases.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

#include "graph/contraction.hpp"
#include "graph/metrics.hpp"
#include "parallel/dist_hierarchy.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kappa {

PartitionResult run_multilevel(const StaticGraph& graph, const Config& config,
                               Coarsener& coarsener,
                               InitialPartitioner& initial,
                               Refiner& refiner) {
  Timer total_timer;
  PartitionResult result;

  // --- Phase 1: contraction (§3). ---
  Timer phase_timer;
  const Hierarchy hierarchy = [&] {
    KAPPA_TRACE_SPAN("phase.coarsen");
    return coarsener.coarsen(graph);
  }();
  result.coarsening_time = phase_timer.elapsed_s();
  result.hierarchy_levels = hierarchy.num_levels();
  result.coarsest_nodes = hierarchy.coarsest().num_nodes();

  // --- Phase 2: initial partitioning (§4). ---
  phase_timer.restart();
  Partition partition = [&] {
    KAPPA_TRACE_SPAN("phase.initial");
    initial.observe_hierarchy(hierarchy);
    return initial.partition(hierarchy.coarsest());
  }();
  result.initial_time = phase_timer.elapsed_s();

  // --- Phase 3: uncoarsening with pairwise refinement (§5). ---
  phase_timer.restart();
  {
    KAPPA_TRACE_SPAN("phase.refine");
    for (std::size_t level = hierarchy.num_levels(); level-- > 0;) {
      KAPPA_TRACE_SPAN("refine.level", level);
      const StaticGraph& current = hierarchy.graph(level);
      if (level + 1 < hierarchy.num_levels()) {
        partition =
            project_partition(current, hierarchy.map(level), partition);
      }
      refiner.refine(current, partition, level);
    }
    KAPPA_TRACE_SPAN("phase.rebalance");
    refiner.rebalance(graph, partition);
  }
  result.refinement_time = phase_timer.elapsed_s();

  result.cut = edge_cut(graph, partition);
  result.balance = balance(graph, partition);
  result.balanced = is_balanced(graph, partition, config.eps);
  result.partition = std::move(partition);
  result.total_time = total_timer.elapsed_s();
  return result;
}

CoarseningOptions coarsening_options(const StaticGraph& graph,
                                     const Config& config) {
  CoarseningOptions coarsening;
  coarsening.rating = config.rating;
  coarsening.matcher = config.matcher;
  coarsening.contraction_limit = contraction_stop_threshold(
      graph.num_nodes(), config.k, config.stop_alpha);
  coarsening.matching_pes = config.matching_pes;
  return coarsening;
}

NodeWeight repartition_pair_weight_cap(const StaticGraph& graph,
                                       const Config& config) {
  const NodeWeight average =
      (graph.total_node_weight() + static_cast<NodeWeight>(config.k) - 1) /
      static_cast<NodeWeight>(config.k);
  return std::max<NodeWeight>(
      max_block_weight_bound(graph, config.k, config.eps) - average, 1);
}

PairwiseRefinerOptions level_refine_options(const Config& config,
                                            NodeWeight global_bound,
                                            NodeWeight level_max_node_weight) {
  PairwiseRefinerOptions refine;
  refine.fm.queue_selection = config.queue_selection;
  refine.fm.patience_alpha = config.fm_alpha;
  // The balance target is the *input-level* Lmax. Coarse levels have a
  // laxer intrinsic bound (their max node weight is larger), so refining
  // against the final bound from the start makes every level pull toward
  // final feasibility; the lexicographic FM objective reduces overload as
  // far as each level's granularity permits.
  refine.fm.max_block_weight = std::max(global_bound, level_max_node_weight);
  refine.bfs_depth = config.bfs_depth;
  refine.local_iterations = config.local_iterations;
  refine.max_global_iterations = config.max_global_iterations;
  refine.stop_no_change = config.stop_no_change;
  refine.num_threads = config.num_threads;
  refine.duplicate_search = config.duplicate_search;
  refine.use_flow = config.enable_flow_refinement;
  return refine;
}

PairwiseRefinerOptions rebalance_options(const Config& config,
                                         const StaticGraph& graph,
                                         NodeWeight global_bound,
                                         int attempt) {
  PairwiseRefinerOptions rebalance;
  rebalance.fm.queue_selection = QueueSelection::kMaxLoad;
  rebalance.fm.patience_alpha = std::max(config.fm_alpha, 0.25);
  // Late attempts target the eps = 0 bound: a pair sitting exactly at
  // Lmax with odd total weight has no max-based gradient, but against
  // the tighter target its interior neighbors gain an incentive to
  // drain it, unsticking the chain. The true bound is only checked by
  // the caller's loop condition.
  rebalance.fm.max_block_weight =
      attempt < 8 ? global_bound : max_block_weight_bound(graph, config.k, 0.0);
  rebalance.bfs_depth =
      std::min(64, std::max(config.bfs_depth, 5) * (1 + attempt / 2));
  rebalance.local_iterations = 1;
  rebalance.max_global_iterations = 2;
  rebalance.num_threads = config.num_threads;
  return rebalance;
}

void rebalance_until_feasible(const StaticGraph& graph, Partition& partition,
                              const Config& config, NodeWeight global_bound,
                              const Rng& refine_rng, int num_threads) {
  // Rebalancing insurance: should the finest level still be overloaded
  // (possible with the minimal preset's single shallow iteration, or on
  // road networks where weight must flow through narrow bridges), run
  // additional MaxLoad-driven iterations with escalating band depth —
  // this is the §5.2 exception rule applied until the constraint holds.
  // Each global iteration moves weight one quotient-graph hop, so chains
  // of near-full blocks drain over several attempts.
  for (int attempt = 0; attempt < kMaxRebalanceAttempts &&
                        !is_balanced(graph, partition, config.eps);
       ++attempt) {
    PairwiseRefinerOptions options =
        rebalance_options(config, graph, global_bound, attempt);
    options.num_threads = num_threads;
    Rng rebalance_rng = refine_rng.fork(100 + attempt);
    (void)pairwise_refine(graph, partition, options, rebalance_rng);
  }
}

// ------------------------------------------------------------ sequential ----

Hierarchy SequentialCoarsener::coarsen(const StaticGraph& graph) {
  Rng coarsen_rng = rng_.fork(1);
  CoarseningOptions options = coarsening_options(graph, config_);
  options.warm_start = warm_start_;
  if (warm_start_ != nullptr) {
    options.max_pair_weight_cap = repartition_pair_weight_cap(graph, config_);
  }
  return build_hierarchy(graph, options, coarsen_rng);
}

void WarmStartInitialPartitioner::observe_hierarchy(
    const Hierarchy& hierarchy) {
  // Compose the per-level maps into finest -> coarsest ids, then read the
  // coarsest assignment off the input. Block-respecting contraction makes
  // every coarse node pure, so the last write per coarse node wins
  // harmlessly (all writers agree).
  const NodeID n = hierarchy.graph(0).num_nodes();
  assert(current_->num_nodes() == n);
  std::vector<NodeID> coarse_id(n);
  std::iota(coarse_id.begin(), coarse_id.end(), NodeID{0});
  for (std::size_t level = 0; level + 1 < hierarchy.num_levels(); ++level) {
    const std::vector<NodeID>& map = hierarchy.map(level);
    for (NodeID u = 0; u < n; ++u) coarse_id[u] = map[coarse_id[u]];
  }
  projected_.assign(hierarchy.coarsest().num_nodes(), 0);
  for (NodeID u = 0; u < n; ++u) {
    assert(current_->block(u) < k_);
    projected_[coarse_id[u]] = current_->block(u);
  }
}

void WarmStartInitialPartitioner::observe_hierarchy(
    const DistHierarchy& hierarchy) {
  // The distributed store keeps the projection chain sharded: every rank
  // walks its own ownership chain (coarse ownership is inherited from the
  // canonical endpoint, so the chain never leaves the rank) and only the
  // O(coarsest) result is gathered — no per-level map replica exists.
  projected_ = hierarchy.coarsest_warm_assignment();
}

Partition WarmStartInitialPartitioner::partition(const StaticGraph& coarsest) {
  assert(projected_.size() == coarsest.num_nodes() &&
         "observe_hierarchy() must run before partition()");
  return Partition(coarsest, projected_, k_);
}

Partition SequentialInitialPartitioner::partition(
    const StaticGraph& coarsest) {
  InitialPartitionOptions initial;
  initial.eps = config_.eps;
  initial.repeats = config_.init_repeats;
  Rng initial_rng = rng_.fork(2);
  return initial_partition(coarsest, config_.k, initial, initial_rng);
}

SequentialRefiner::SequentialRefiner(const StaticGraph& finest,
                                     const Config& config, Rng rng)
    : config_(config),
      rng_(rng.fork(3)),
      global_bound_(max_block_weight_bound(finest, config.k, config.eps)) {}

void SequentialRefiner::refine(const StaticGraph& graph, Partition& partition,
                               std::size_t level) {
  const PairwiseRefinerOptions options =
      level_refine_options(config_, global_bound_, graph.max_node_weight());
  Rng level_rng = rng_.fork(level);
  const PairwiseRefineReport report =
      pairwise_refine(graph, partition, options, level_rng);
  if (log_level() >= LogLevel::kDebug) {
    std::ostringstream msg;
    msg << "refine level " << level << ": cut gain " << report.total_cut_gain
        << " in " << report.global_iterations << " global iterations";
    log_debug(msg.str());
  }
}

void SequentialRefiner::rebalance(const StaticGraph& graph,
                                  Partition& partition) {
  rebalance_until_feasible(graph, partition, config_, global_bound_, rng_,
                           config_.num_threads);
}

}  // namespace kappa
