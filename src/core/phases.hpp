/// \file phases.hpp
/// \brief Phase interfaces of the multilevel pipeline and the shared driver.
///
/// The KaPPa pipeline is the composition of three phases — contraction,
/// initial partitioning, uncoarsening with refinement (§2) — and the paper
/// runs every phase SPMD across PEs. To let the sequential and the SPMD
/// implementation share one driver body, each phase is an interface:
///
///   Coarsener          builds the contraction hierarchy,
///   InitialPartitioner partitions the coarsest graph,
///   Refiner            improves one level during uncoarsening and
///                      restores feasibility at the finest level.
///
/// run_multilevel() wires them together: it owns projection between
/// levels, the phase timers and the final quality metrics. A sequential
/// Partitioner instantiates the Sequential* classes below; an SPMD
/// Partitioner instantiates the Spmd* classes from
/// parallel/spmd_phases.hpp — every PE executes the same driver on its
/// replica and the phases synchronize internally. Repartitioning swaps in
/// the WarmStartInitialPartitioner and the warm-start coarsening policy,
/// reusing everything else.
#pragma once

#include "coarsening/hierarchy.hpp"
#include "core/config.hpp"
#include "core/partitioner.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "initial/initial_partitioner.hpp"
#include "refinement/pairwise_refiner.hpp"
#include "util/random.hpp"

namespace kappa {

class DistHierarchy;

/// Contraction phase (§3): graph -> multilevel hierarchy.
class Coarsener {
 public:
  virtual ~Coarsener() = default;

  /// Builds the hierarchy whose finest level is \p graph.
  [[nodiscard]] virtual Hierarchy coarsen(const StaticGraph& graph) = 0;
};

/// Initial partitioning phase (§4): coarsest graph -> k-way partition.
class InitialPartitioner {
 public:
  virtual ~InitialPartitioner() = default;

  /// Driver hook, called once after coarsening and before partition():
  /// lets warm-start implementations project an existing assignment
  /// through the hierarchy. From-scratch implementations ignore it.
  virtual void observe_hierarchy(const Hierarchy& /*hierarchy*/) {}

  /// Same hook for the SPMD driver's distributed hierarchy store — the
  /// warm-start projection reads the sharded maps instead of a replica.
  virtual void observe_hierarchy(const DistHierarchy& /*hierarchy*/) {}

  [[nodiscard]] virtual Partition partition(const StaticGraph& coarsest) = 0;
};

/// Refinement phase (§5): improves the projected partition level by level.
class Refiner {
 public:
  virtual ~Refiner() = default;

  /// Refines \p partition on the graph of one hierarchy \p level in place.
  /// Called once per level, coarsest first, finest (level 0) last.
  virtual void refine(const StaticGraph& graph, Partition& partition,
                      std::size_t level) = 0;

  /// Post-pass on the finest graph: the §5.2 exception rule applied until
  /// the Lmax bound holds (or attempts run out).
  virtual void rebalance(const StaticGraph& graph, Partition& partition) = 0;
};

/// Runs the multilevel pipeline with the given phase implementations.
/// This is the single code body behind every Partitioner workload —
/// sequential or SPMD, from-scratch or warm-started.
[[nodiscard]] PartitionResult run_multilevel(const StaticGraph& graph,
                                             const Config& config,
                                             Coarsener& coarsener,
                                             InitialPartitioner& initial,
                                             Refiner& refiner);

// ---------------------------------------------------------------------------
// Shared per-phase option builders. Sequential and SPMD implementations
// must refine with identical knobs for their results to be comparable, so
// the Config -> options translation lives here, not in the entry points.
// ---------------------------------------------------------------------------

/// Contraction knobs for \p graph under \p config.
[[nodiscard]] CoarseningOptions coarsening_options(const StaticGraph& graph,
                                                   const Config& config);

/// Pair-weight cap of warm-started (repartitioning) coarsening: the
/// balance slack Lmax - ceil(c(V)/k). The block-constrained matchers
/// coarsen deep inside blocks; capping pairs at the slack keeps every
/// coarse node light enough to migrate during rebalancing without
/// breaking the Lmax bound (floored at twice the max input node weight
/// inside hierarchy_match_options()).
[[nodiscard]] NodeWeight repartition_pair_weight_cap(const StaticGraph& graph,
                                                     const Config& config);

/// Refinement knobs for one hierarchy level. \p global_bound is the
/// input-level Lmax (coarse levels refine against the final bound, lifted
/// to at least one max-weight node of the level, passed as
/// \p level_max_node_weight — a replicated scalar even when the level
/// itself is sharded).
[[nodiscard]] PairwiseRefinerOptions level_refine_options(
    const Config& config, NodeWeight global_bound,
    NodeWeight level_max_node_weight);

/// Knobs of one rebalancing insurance attempt (escalating band depth,
/// MaxLoad queue selection, late attempts target the eps = 0 bound).
[[nodiscard]] PairwiseRefinerOptions rebalance_options(
    const Config& config, const StaticGraph& graph, NodeWeight global_bound,
    int attempt);

/// Number of rebalancing attempts granted after the last level.
inline constexpr int kMaxRebalanceAttempts = 24;

/// The post-uncoarsening rebalancing insurance loop, shared by the
/// sequential and SPMD refiners: MaxLoad-driven iterations with
/// escalating band depth (the §5.2 exception rule) until the Lmax bound
/// holds or attempts run out. The SPMD path runs it replicated on every
/// PE, which requires a bit-deterministic body — it passes
/// \p num_threads = 1; the sequential path passes config.num_threads.
void rebalance_until_feasible(const StaticGraph& graph, Partition& partition,
                              const Config& config, NodeWeight global_bound,
                              const Rng& refine_rng, int num_threads);

// ---------------------------------------------------------------------------
// Sequential phase implementations (the original single-process pipeline).
// ---------------------------------------------------------------------------

/// Wraps build_hierarchy() (§3; optionally with the two-phase parallel
/// matching scheme simulated in-process when config.matching_pes > 1).
/// A non-null \p warm_start restricts contraction to intra-block pairs of
/// that assignment (the repartitioning coarsening policy).
class SequentialCoarsener final : public Coarsener {
 public:
  SequentialCoarsener(const Config& config, Rng rng,
                      const Partition* warm_start = nullptr)
      : config_(config), rng_(rng), warm_start_(warm_start) {}

  [[nodiscard]] Hierarchy coarsen(const StaticGraph& graph) override;

 private:
  const Config& config_;
  Rng rng_;
  const Partition* warm_start_;
};

/// Wraps initial_partition(): best of config.init_repeats attempts (§4).
class SequentialInitialPartitioner final : public InitialPartitioner {
 public:
  SequentialInitialPartitioner(const Config& config, Rng rng)
      : config_(config), rng_(rng) {}

  [[nodiscard]] Partition partition(const StaticGraph& coarsest) override;

 private:
  const Config& config_;
  Rng rng_;
};

/// Warm-start initial "partitioner" (repartitioning): seeds the coarsest
/// partition from an existing finest-level assignment projected through
/// the hierarchy. Requires a hierarchy built with the matching warm_start
/// coarsening policy, which guarantees every coarse node is pure (all of
/// its fine nodes share one block). Deterministic and communication-free,
/// so the SPMD path runs it replicated without leaving lockstep.
class WarmStartInitialPartitioner final : public InitialPartitioner {
 public:
  /// \p current is the finest-level assignment (borrowed; must outlive
  /// the run); \p k the number of blocks.
  WarmStartInitialPartitioner(const Partition& current, BlockID k)
      : current_(&current), k_(k) {}

  void observe_hierarchy(const Hierarchy& hierarchy) override;
  void observe_hierarchy(const DistHierarchy& hierarchy) override;

  [[nodiscard]] Partition partition(const StaticGraph& coarsest) override;

 private:
  const Partition* current_;
  BlockID k_;
  std::vector<BlockID> projected_;  ///< coarsest-level assignment
};

/// Wraps pairwise_refine() per level plus the rebalancing insurance loop.
class SequentialRefiner final : public Refiner {
 public:
  /// \p finest is the input graph; it determines the global Lmax bound.
  SequentialRefiner(const StaticGraph& finest, const Config& config, Rng rng);

  void refine(const StaticGraph& graph, Partition& partition,
              std::size_t level) override;
  void rebalance(const StaticGraph& graph, Partition& partition) override;

 private:
  const Config& config_;
  Rng rng_;
  NodeWeight global_bound_;
};

}  // namespace kappa
