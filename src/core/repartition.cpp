#include "core/repartition.hpp"

#include <algorithm>
#include <cassert>

#include "graph/metrics.hpp"
#include "refinement/pairwise_refiner.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace kappa {

RepartitionResult repartition(const StaticGraph& graph,
                              const Partition& current,
                              const Config& config) {
  assert(current.k() == config.k);
  Timer timer;
  Rng rng(config.seed);

  RepartitionResult result;
  result.initial_cut = edge_cut(graph, current);
  Partition partition = current;

  const NodeWeight bound =
      max_block_weight_bound(graph, config.k, config.eps);

  PairwiseRefinerOptions refine;
  refine.fm.queue_selection = config.queue_selection;
  refine.fm.patience_alpha = config.fm_alpha;
  refine.fm.max_block_weight = bound;
  refine.bfs_depth = config.bfs_depth;
  refine.local_iterations = config.local_iterations;
  refine.max_global_iterations = config.max_global_iterations;
  refine.stop_no_change = config.stop_no_change;
  refine.num_threads = config.num_threads;
  refine.duplicate_search = config.duplicate_search;
  refine.use_flow = config.use_flow_refinement;
  Rng refine_rng = rng.fork(1);
  (void)pairwise_refine(graph, partition, refine, refine_rng);

  // Same rebalancing insurance as the full pipeline.
  for (int attempt = 0;
       attempt < 24 && !is_balanced(graph, partition, config.eps);
       ++attempt) {
    PairwiseRefinerOptions rebalance;
    rebalance.fm.queue_selection = QueueSelection::kMaxLoad;
    rebalance.fm.patience_alpha = std::max(config.fm_alpha, 0.25);
    // Same drainage trick as kappa_partition(): late attempts target the
    // eps = 0 bound so interior blocks keep a gradient.
    rebalance.fm.max_block_weight =
        attempt < 8 ? bound : max_block_weight_bound(graph, config.k, 0.0);
    rebalance.bfs_depth =
        std::min(64, std::max(config.bfs_depth, 5) * (1 + attempt / 2));
    rebalance.local_iterations = 1;
    rebalance.max_global_iterations = 2;
    rebalance.num_threads = config.num_threads;
    Rng rebalance_rng = rng.fork(100 + attempt);
    (void)pairwise_refine(graph, partition, rebalance, rebalance_rng);
  }

  result.cut = edge_cut(graph, partition);
  result.balance = balance(graph, partition);
  result.balanced = is_balanced(graph, partition, config.eps);
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    if (partition.block(u) != current.block(u)) ++result.migrated_nodes;
  }
  result.partition = std::move(partition);
  result.total_time = timer.elapsed_s();
  return result;
}

}  // namespace kappa
