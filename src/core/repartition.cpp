/// \file repartition.cpp
/// \brief Deprecated repartitioning wrapper over the unified Partitioner
/// API (see core/partitioner.hpp).
#include "core/repartition.hpp"

namespace kappa {

RepartitionResult repartition(const StaticGraph& graph,
                              const Partition& current,
                              const Config& config) {
  return Partitioner(Context::sequential(config)).repartition(graph, current);
}

}  // namespace kappa
