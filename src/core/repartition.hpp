/// \file repartition.hpp
/// \brief Legacy free-function entry point for repartitioning.
///
/// \deprecated The public API is core/partitioner.hpp:
/// Partitioner::repartition() runs the warm-started multilevel pipeline
/// in the chosen execution context (sequential or SPMD). The free
/// function below is a thin wrapper kept for source compatibility; it
/// produces bit-identical results to the sequential Partitioner on the
/// same config and seed.
#pragma once

#include "core/config.hpp"
#include "core/partitioner.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"

namespace kappa {

/// \deprecated Former name of PartitionResult restricted to the
/// repartitioning fields.
using RepartitionResult = PartitionResult;

/// Improves \p current (must have k = config.k blocks) in-process.
/// \deprecated Use Partitioner(Context::sequential(config)).repartition().
[[deprecated(
    "use Partitioner(Context::sequential(config)).repartition()")]]
[[nodiscard]] RepartitionResult repartition(const StaticGraph& graph,
                                            const Partition& current,
                                            const Config& config);

}  // namespace kappa
