/// \file repartition.hpp
/// \brief Repartitioning: improve an existing partition in place (§8
/// names repartitioning as a planned generalization of KaPPa).
///
/// In adaptive simulations the mesh changes between time steps; a full
/// from-scratch partition would migrate almost every node, which costs
/// more than it saves. Repartitioning instead runs KaPPa's pairwise
/// refinement (plus the rebalancing rule) directly on the current
/// assignment: the cut improves, feasibility is restored, and — the point
/// of the exercise — only nodes near block boundaries migrate.
#pragma once

#include "core/config.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"

namespace kappa {

/// Result of a repartitioning run.
struct RepartitionResult {
  Partition partition;
  EdgeWeight cut = 0;
  EdgeWeight initial_cut = 0;  ///< cut of the input partition
  double balance = 1.0;
  bool balanced = false;
  NodeID migrated_nodes = 0;  ///< nodes whose block changed
  double total_time = 0.0;
};

/// Refines \p current (must have k = config.k blocks) without
/// re-coarsening. Uses the refinement knobs of \p config.
[[nodiscard]] RepartitionResult repartition(const StaticGraph& graph,
                                            const Partition& current,
                                            const Config& config);

}  // namespace kappa
