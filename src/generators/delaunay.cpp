#include "generators/delaunay.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "graph/graph_builder.hpp"

namespace kappa {

namespace {

/// Geometric predicates in extended precision. For random points in the
/// unit square, long double (80-bit on x86) leaves ample margin; the
/// library is not meant as a robust CGAL replacement.
long double orient2d(const Point2D& a, const Point2D& b, const Point2D& c) {
  const long double abx = static_cast<long double>(b.x) - a.x;
  const long double aby = static_cast<long double>(b.y) - a.y;
  const long double acx = static_cast<long double>(c.x) - a.x;
  const long double acy = static_cast<long double>(c.y) - a.y;
  return abx * acy - aby * acx;
}

/// > 0 iff d lies strictly inside the circumcircle of CCW triangle (a,b,c).
long double incircle(const Point2D& a, const Point2D& b, const Point2D& c,
                     const Point2D& d) {
  const long double adx = static_cast<long double>(a.x) - d.x;
  const long double ady = static_cast<long double>(a.y) - d.y;
  const long double bdx = static_cast<long double>(b.x) - d.x;
  const long double bdy = static_cast<long double>(b.y) - d.y;
  const long double cdx = static_cast<long double>(c.x) - d.x;
  const long double cdy = static_cast<long double>(c.y) - d.y;
  const long double ad2 = adx * adx + ady * ady;
  const long double bd2 = bdx * bdx + bdy * bdy;
  const long double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
         ad2 * (bdx * cdy - cdx * bdy);
}

/// Internal triangle record with adjacency. nbr[i] is the triangle across
/// the edge opposite vertex v[i] (kNoTri at the hull).
struct Tri {
  std::array<NodeID, 3> v;
  std::array<std::uint32_t, 3> nbr;
  bool alive = true;
};

constexpr std::uint32_t kNoTri = 0xffffffffu;

class BowyerWatson {
 public:
  explicit BowyerWatson(std::vector<Point2D> points)
      : points_(std::move(points)), base_n_(points_.size()) {
    // Enclosing super-triangle, far outside the data's bounding box.
    double min_x = 0, max_x = 1, min_y = 0, max_y = 1;
    for (const Point2D& p : points_) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    const double span =
        std::max(max_x - min_x, max_y - min_y) * 16.0 + 16.0;
    const double cx = (min_x + max_x) / 2;
    const double cy = (min_y + max_y) / 2;
    points_.push_back({cx - span, cy - span});
    points_.push_back({cx + span, cy - span});
    points_.push_back({cx, cy + span});
    const NodeID s0 = static_cast<NodeID>(base_n_);
    tris_.push_back({{s0, s0 + 1, s0 + 2}, {kNoTri, kNoTri, kNoTri}, true});
  }

  void run() {
    // Insert in spatially sorted (grid snake) order so the walking point
    // location only crosses O(1) triangles per insertion on average.
    std::vector<NodeID> order(base_n_);
    std::iota(order.begin(), order.end(), NodeID{0});
    const int cells = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(base_n_) / 4.0)));
    auto snake_key = [&](NodeID i) {
      const int gx = std::min(cells - 1,
                              static_cast<int>(points_[i].x * cells));
      const int gy = std::min(cells - 1,
                              static_cast<int>(points_[i].y * cells));
      // Boustrophedon: even rows left-to-right, odd rows right-to-left.
      return gy * cells + (gy % 2 == 0 ? gx : cells - 1 - gx);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeID a, NodeID b) {
                       return snake_key(a) < snake_key(b);
                     });
    for (const NodeID p : order) insert(p);
  }

  /// Emits all triangles not touching the super-triangle.
  [[nodiscard]] std::vector<Triangle> triangles() const {
    std::vector<Triangle> result;
    for (const Tri& t : tris_) {
      if (!t.alive) continue;
      if (t.v[0] >= base_n_ || t.v[1] >= base_n_ || t.v[2] >= base_n_) {
        continue;
      }
      result.push_back({t.v});
    }
    return result;
  }

 private:
  /// Walking point location from the most recently created triangle.
  std::uint32_t locate(const Point2D& p) const {
    std::uint32_t t = last_;
    std::size_t steps = 0;
    const std::size_t max_steps = tris_.size() + 16;
    while (steps++ < max_steps) {
      const Tri& tri = tris_[t];
      bool outside = false;
      for (int i = 0; i < 3; ++i) {
        // Edge opposite v[i] runs v[i+1] -> v[i+2] (CCW).
        const NodeID a = tri.v[(i + 1) % 3];
        const NodeID b = tri.v[(i + 2) % 3];
        if (orient2d(points_[a], points_[b], p) < 0) {
          if (tri.nbr[i] == kNoTri) break;  // numeric fringe: stay
          t = tri.nbr[i];
          outside = true;
          break;
        }
      }
      if (!outside) return t;
    }
    // Fallback (degenerate walks are vanishingly rare with random data):
    // linear scan.
    for (std::uint32_t i = 0; i < tris_.size(); ++i) {
      if (!tris_[i].alive) continue;
      const Tri& tri = tris_[i];
      bool inside = true;
      for (int j = 0; j < 3 && inside; ++j) {
        inside = orient2d(points_[tri.v[(j + 1) % 3]],
                          points_[tri.v[(j + 2) % 3]], p) >= 0;
      }
      if (inside) return i;
    }
    return last_;
  }

  void insert(NodeID p) {
    const std::uint32_t seed = locate(points_[p]);

    // Grow the cavity: all triangles whose circumcircle contains p.
    cavity_.clear();
    stack_.assign(1, seed);
    tris_[seed].alive = false;
    cavity_.push_back(seed);
    while (!stack_.empty()) {
      const std::uint32_t t = stack_.back();
      stack_.pop_back();
      for (const std::uint32_t nb : tris_[t].nbr) {
        if (nb == kNoTri || !tris_[nb].alive) continue;
        const Tri& tri = tris_[nb];
        if (incircle(points_[tri.v[0]], points_[tri.v[1]],
                     points_[tri.v[2]], points_[p]) > 0) {
          tris_[nb].alive = false;
          cavity_.push_back(nb);
          stack_.push_back(nb);
        }
      }
    }

    // Collect the cavity boundary: edges of dead triangles whose opposite
    // neighbor is alive (or the hull). Edges are directed so that
    // (p, a, b) is CCW.
    boundary_.clear();
    for (const std::uint32_t t : cavity_) {
      const Tri& tri = tris_[t];
      for (int i = 0; i < 3; ++i) {
        const std::uint32_t nb = tri.nbr[i];
        if (nb != kNoTri && !tris_[nb].alive) continue;
        boundary_.push_back(
            {tri.v[(i + 1) % 3], tri.v[(i + 2) % 3], nb});
      }
    }

    // Re-triangulate the star-shaped cavity: one new triangle (p, a, b)
    // per boundary edge; stitch neighbors via a map from the ray (p, x).
    fan_.clear();
    const std::uint32_t first_new = static_cast<std::uint32_t>(tris_.size());
    for (const auto& edge : boundary_) {
      const std::uint32_t t = static_cast<std::uint32_t>(tris_.size());
      tris_.push_back({{p, edge.a, edge.b}, {edge.outside, kNoTri, kNoTri},
                       true});
      // Fix the outside triangle's back-pointer.
      if (edge.outside != kNoTri) {
        Tri& out = tris_[edge.outside];
        for (int i = 0; i < 3; ++i) {
          if (out.nbr[i] != kNoTri && !tris_[out.nbr[i]].alive) {
            // Only replace the pointer crossing exactly this edge.
            const NodeID oa = out.v[(i + 1) % 3];
            const NodeID ob = out.v[(i + 2) % 3];
            if ((oa == edge.b && ob == edge.a) ||
                (oa == edge.a && ob == edge.b)) {
              out.nbr[i] = t;
            }
          }
        }
      }
      // Stitch fan edges (p, a) and (p, b) between consecutive new
      // triangles: nbr[1] is opposite v[1]=a i.e. across edge (b, p);
      // nbr[2] is across edge (p, a).
      stitch(edge.a, t, /*slot=*/2);
      stitch(edge.b, t, /*slot=*/1);
    }
    last_ = first_new;
  }

  /// Pairs up the two new triangles sharing ray (p, x).
  void stitch(NodeID x, std::uint32_t t, int slot) {
    auto [it, inserted] = fan_.try_emplace(x, std::pair<std::uint32_t, int>{t, slot});
    if (!inserted) {
      const auto [other_t, other_slot] = it->second;
      tris_[t].nbr[slot] = other_t;
      tris_[other_t].nbr[other_slot] = t;
      fan_.erase(it);
    }
  }

  std::vector<Point2D> points_;
  std::size_t base_n_;
  std::vector<Tri> tris_;
  std::uint32_t last_ = 0;

  // Reused scratch.
  std::vector<std::uint32_t> cavity_;
  std::vector<std::uint32_t> stack_;
  std::unordered_map<NodeID, std::pair<std::uint32_t, int>> fan_;

  struct BoundaryEdge {
    NodeID a;
    NodeID b;               ///< directed so that (p, a, b) is CCW
    std::uint32_t outside;  ///< alive neighbor across the edge (or kNoTri)
  };
  std::vector<BoundaryEdge> boundary_;
};

}  // namespace

std::vector<Triangle> delaunay_triangulate(
    const std::vector<Point2D>& points) {
  BowyerWatson bw(points);
  bw.run();
  return bw.triangles();
}

StaticGraph delaunay_graph(const std::vector<Point2D>& points) {
  const std::vector<Triangle> tris = delaunay_triangulate(points);
  GraphBuilder builder(static_cast<NodeID>(points.size()));
  for (NodeID i = 0; i < points.size(); ++i) {
    builder.set_coordinate(i, points[i]);
  }
  for (const Triangle& t : tris) {
    builder.add_edge(t.v[0], t.v[1]);
    builder.add_edge(t.v[1], t.v[2]);
    builder.add_edge(t.v[2], t.v[0]);
  }
  return builder.finalize();
}

StaticGraph delaunay_graph(NodeID n, Rng& rng) {
  std::vector<Point2D> points(n);
  for (auto& p : points) p = {rng.uniform(), rng.uniform()};
  return delaunay_graph(points);
}

}  // namespace kappa
