/// \file delaunay.hpp
/// \brief Delaunay triangulation of points in the plane (Bowyer–Watson).
///
/// The paper's DelaunayX instances are Delaunay triangulations of 2^X
/// random points in the unit square. We implement the full randomized
/// incremental Bowyer–Watson algorithm with walking point location and
/// spatial insertion order, O(n log n) in practice.
#pragma once

#include <array>
#include <vector>

#include "graph/static_graph.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// One triangle of a triangulation, by point indices.
struct Triangle {
  std::array<NodeID, 3> v;
};

/// Computes the Delaunay triangulation of \p points (must be pairwise
/// distinct and in general position with overwhelming probability, as is
/// the case for random doubles). Returns the triangle list.
[[nodiscard]] std::vector<Triangle> delaunay_triangulate(
    const std::vector<Point2D>& points);

/// The paper's DelaunayX instance: triangulation of n random points in the
/// unit square, as a graph with coordinates.
[[nodiscard]] StaticGraph delaunay_graph(NodeID n, Rng& rng);

/// Triangulation of explicit points, as a graph with coordinates.
[[nodiscard]] StaticGraph delaunay_graph(const std::vector<Point2D>& points);

}  // namespace kappa
