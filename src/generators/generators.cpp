#include "generators/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "generators/delaunay.hpp"
#include "graph/graph_builder.hpp"
#include "graph/validation.hpp"

namespace kappa {

StaticGraph random_geometric_graph(NodeID n, Rng& rng) {
  const double dn = static_cast<double>(n);
  return random_geometric_graph(n, 0.55 * std::sqrt(std::log(dn) / dn), rng);
}

StaticGraph random_geometric_graph(NodeID n, double radius, Rng& rng) {
  std::vector<Point2D> points(n);
  for (auto& p : points) p = {rng.uniform(), rng.uniform()};

  // Bucket grid with cell size >= radius: neighbors live in the 3x3
  // surrounding cells, making the sweep O(n + m) in expectation.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<NodeID>> grid(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](const Point2D& p) {
    const int cx = std::min(cells - 1, static_cast<int>(p.x / cell_size));
    const int cy = std::min(cells - 1, static_cast<int>(p.y / cell_size));
    return std::pair<int, int>{cx, cy};
  };
  for (NodeID u = 0; u < n; ++u) {
    const auto [cx, cy] = cell_of(points[u]);
    grid[static_cast<std::size_t>(cy) * cells + cx].push_back(u);
  }

  GraphBuilder builder(n);
  const double r2 = radius * radius;
  for (NodeID u = 0; u < n; ++u) {
    const auto [cx, cy] = cell_of(points[u]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nxc = cx + dx;
        const int nyc = cy + dy;
        if (nxc < 0 || nyc < 0 || nxc >= cells || nyc >= cells) continue;
        for (const NodeID v :
             grid[static_cast<std::size_t>(nyc) * cells + nxc]) {
          if (v <= u) continue;  // each pair once
          const double ddx = points[u].x - points[v].x;
          const double ddy = points[u].y - points[v].y;
          if (ddx * ddx + ddy * ddy < r2) builder.add_edge(u, v);
        }
      }
    }
    builder.set_coordinate(u, points[u]);
  }
  return builder.finalize();
}

StaticGraph grid_graph(NodeID nx, NodeID ny) {
  GraphBuilder builder(nx * ny);
  for (NodeID y = 0; y < ny; ++y) {
    for (NodeID x = 0; x < nx; ++x) {
      const NodeID u = y * nx + x;
      if (x + 1 < nx) builder.add_edge(u, u + 1);
      if (y + 1 < ny) builder.add_edge(u, u + nx);
      builder.set_coordinate(
          u, {static_cast<double>(x), static_cast<double>(y)});
    }
  }
  return builder.finalize();
}

StaticGraph torus_graph(NodeID nx, NodeID ny) {
  GraphBuilder builder(nx * ny);
  for (NodeID y = 0; y < ny; ++y) {
    for (NodeID x = 0; x < nx; ++x) {
      const NodeID u = y * nx + x;
      builder.add_edge(u, y * nx + (x + 1) % nx);
      builder.add_edge(u, ((y + 1) % ny) * nx + x);
    }
  }
  return builder.finalize();
}

StaticGraph grid3d_graph(NodeID nx, NodeID ny, NodeID nz) {
  GraphBuilder builder(nx * ny * nz);
  auto id = [&](NodeID x, NodeID y, NodeID z) {
    return (z * ny + y) * nx + x;
  };
  for (NodeID z = 0; z < nz; ++z) {
    for (NodeID y = 0; y < ny; ++y) {
      for (NodeID x = 0; x < nx; ++x) {
        const NodeID u = id(x, y, z);
        if (x + 1 < nx) builder.add_edge(u, id(x + 1, y, z));
        if (y + 1 < ny) builder.add_edge(u, id(x, y + 1, z));
        if (z + 1 < nz) builder.add_edge(u, id(x, y, z + 1));
      }
    }
  }
  return builder.finalize();
}

StaticGraph annulus_mesh(NodeID rings, NodeID sectors, double inner_radius,
                         double outer_radius) {
  // Nodes on rings+1 circles x sectors angular positions; quads split into
  // triangles by one diagonal (the classic structured FEM discretization).
  const NodeID n = (rings + 1) * sectors;
  GraphBuilder builder(n);
  auto id = [&](NodeID r, NodeID s) { return r * sectors + s % sectors; };
  for (NodeID r = 0; r <= rings; ++r) {
    const double radius =
        inner_radius + (outer_radius - inner_radius) *
                           static_cast<double>(r) /
                           static_cast<double>(rings);
    for (NodeID s = 0; s < sectors; ++s) {
      const double angle =
          2.0 * 3.14159265358979323846 * static_cast<double>(s) /
          static_cast<double>(sectors);
      builder.set_coordinate(id(r, s), {radius * std::cos(angle),
                                        radius * std::sin(angle)});
      builder.add_edge(id(r, s), id(r, s + 1));  // circumferential
      if (r < rings) {
        builder.add_edge(id(r, s), id(r + 1, s));      // radial
        builder.add_edge(id(r, s), id(r + 1, s + 1));  // diagonal
      }
    }
  }
  return builder.finalize();
}

StaticGraph road_network(NodeID approx_n, Rng& rng) {
  // A jittered sqrt(n) x sqrt(n) street lattice...
  const NodeID side = std::max<NodeID>(
      4, static_cast<NodeID>(std::sqrt(static_cast<double>(approx_n))));
  const NodeID n = side * side;
  GraphBuilder builder(n);
  auto id = [&](NodeID x, NodeID y) { return y * side + x; };

  std::vector<Point2D> points(n);
  for (NodeID y = 0; y < side; ++y) {
    for (NodeID x = 0; x < side; ++x) {
      points[id(x, y)] = {
          (static_cast<double>(x) + 0.4 * (rng.uniform() - 0.5)) /
              static_cast<double>(side),
          (static_cast<double>(y) + 0.4 * (rng.uniform() - 0.5)) /
              static_cast<double>(side)};
      builder.set_coordinate(id(x, y), points[id(x, y)]);
    }
  }

  // ... with river-like obstacles: horizontal and vertical bands crossed
  // only by sparse bridges (this produces the strong natural cuts of real
  // road networks, which Metis famously failed to find on eur, §6.2).
  const int num_rivers = std::max(1, static_cast<int>(side) / 24);
  std::vector<NodeID> river_rows;
  std::vector<NodeID> river_cols;
  for (int i = 1; i <= num_rivers; ++i) {
    river_rows.push_back(side * i / (num_rivers + 1));
    river_cols.push_back(side * i / (num_rivers + 1) + side / (4 * (num_rivers + 1)));
  }
  const NodeID bridge_every = std::max<NodeID>(8, side / 8);

  auto crosses_river = [&](NodeID ax, NodeID ay, NodeID bx, NodeID by) {
    for (const NodeID row : river_rows) {
      if (ay < row && by >= row) {
        return ax % bridge_every != bridge_every / 2;  // keep rare bridges
      }
    }
    for (const NodeID col : river_cols) {
      if (ax < col && bx >= col) {
        return ay % bridge_every != bridge_every / 2;
      }
    }
    return false;
  };

  // Union-find tracks connectivity during construction so the final
  // repair pass can guarantee a connected network (as real road networks
  // are) without recomputing components.
  std::vector<NodeID> parent(n);
  for (NodeID u = 0; u < n; ++u) parent[u] = u;
  auto find = [&](NodeID u) {
    while (parent[u] != u) {
      parent[u] = parent[parent[u]];
      u = parent[u];
    }
    return u;
  };
  auto add_street = [&](NodeID u, NodeID v) {
    builder.add_edge(u, v);
    parent[find(u)] = find(v);
  };

  for (NodeID y = 0; y < side; ++y) {
    for (NodeID x = 0; x < side; ++x) {
      // Local streets, randomly pruned (dead ends exist in real networks)
      // but never on the lattice boundary.
      if (x + 1 < side && !crosses_river(x, y, x + 1, y)) {
        const bool prune = rng.uniform() < 0.08 && y > 0 && y + 1 < side;
        if (!prune) add_street(id(x, y), id(x + 1, y));
      }
      if (y + 1 < side && !crosses_river(x, y, x, y + 1)) {
        const bool prune = rng.uniform() < 0.08 && x > 0 && x + 1 < side;
        if (!prune) add_street(id(x, y), id(x, y + 1));
      }
    }
  }

  // Connectivity repair: sweep the lattice edges once more and re-open any
  // street that still bridges two components (these act as extra bridges
  // or un-pruned streets; a handful suffices).
  for (NodeID y = 0; y < side; ++y) {
    for (NodeID x = 0; x < side; ++x) {
      if (x + 1 < side && find(id(x, y)) != find(id(x + 1, y))) {
        add_street(id(x, y), id(x + 1, y));
      }
      if (y + 1 < side && find(id(x, y)) != find(id(x, y + 1))) {
        add_street(id(x, y), id(x, y + 1));
      }
    }
  }
  return builder.finalize();
}

StaticGraph rmat_graph(int scale, double avg_degree, double a, double b,
                       double c, Rng& rng) {
  const NodeID n = NodeID{1} << scale;
  const std::size_t target_edges =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < target_edges; ++i) {
    NodeID u = 0;
    NodeID v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double p = rng.uniform();
      // Quadrant choice: a (0,0), b (0,1), c (1,0), d (1,1).
      if (p < a) {
        // top-left: nothing set
      } else if (p < a + b) {
        v |= NodeID{1} << bit;
      } else if (p < a + b + c) {
        u |= NodeID{1} << bit;
      } else {
        u |= NodeID{1} << bit;
        v |= NodeID{1} << bit;
      }
    }
    if (u != v) builder.add_edge(u, v);
  }
  return builder.finalize();
}

StaticGraph barabasi_albert(NodeID n, NodeID attach, Rng& rng) {
  GraphBuilder builder(n);
  // endpoint pool: each inserted edge contributes both endpoints, so
  // sampling uniformly from the pool is degree-proportional sampling.
  std::vector<NodeID> pool;
  pool.reserve(2 * static_cast<std::size_t>(n) * attach);
  const NodeID clique = std::max<NodeID>(attach + 1, 2);
  for (NodeID u = 0; u < clique && u < n; ++u) {
    for (NodeID v = u + 1; v < clique && v < n; ++v) {
      builder.add_edge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (NodeID u = clique; u < n; ++u) {
    for (NodeID i = 0; i < attach; ++i) {
      const NodeID v = pool[rng.bounded(pool.size())];
      if (v == u) continue;
      builder.add_edge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  return builder.finalize();
}

StaticGraph make_instance(const std::string& name, std::uint64_t seed) {
  Rng rng(seed);
  // Geometric family (the paper's rggX / DelaunayX, scaled down).
  if (name.rfind("rgg", 0) == 0) {
    const int scale = std::stoi(name.substr(3));
    return random_geometric_graph(NodeID{1} << scale, rng);
  }
  if (name.rfind("delaunay", 0) == 0) {
    const int scale = std::stoi(name.substr(8));
    return delaunay_graph(NodeID{1} << scale, rng);
  }
  // FEM-like family (stands in for fetooth/598a/feocean/144/wave/m14b/auto).
  if (name == "grid_s") return grid_graph(64, 64);
  if (name == "grid_m") return grid_graph(128, 128);
  if (name == "grid_l") return grid_graph(256, 256);
  if (name == "grid3d_s") return grid3d_graph(16, 16, 16);
  if (name == "grid3d_m") return grid3d_graph(24, 24, 24);
  if (name == "torus_m") return torus_graph(128, 128);
  if (name == "annulus_m") return annulus_mesh(96, 256);
  if (name == "annulus_l") return annulus_mesh(160, 448);
  // Road family (stands in for bel/nld/deu/eur).
  if (name == "road_s") return road_network(16'000, rng);
  if (name == "road_m") return road_network(65'000, rng);
  if (name == "road_l") return road_network(260'000, rng);
  // Social family (stands in for coAuthorsDBLP / citationCiteseer).
  if (name.rfind("rmat", 0) == 0) {
    const int scale = std::stoi(name.substr(5));
    return rmat_graph(scale, 8.0, 0.45, 0.2, 0.2, rng);
  }
  if (name == "ba_m") return barabasi_albert(50'000, 4, rng);
  throw std::runtime_error("unknown instance: " + name);
}

std::vector<std::string> instance_names() {
  return {"rgg14",    "rgg15",    "delaunay14", "delaunay15", "grid_s",
          "grid_m",   "grid_l",   "grid3d_s",   "grid3d_m",   "torus_m",
          "annulus_m", "annulus_l", "road_s",    "road_m",     "road_l",
          "rmat_14",  "rmat_15",  "ba_m"};
}

}  // namespace kappa
