/// \file generators.hpp
/// \brief Synthetic instance generators standing in for the paper's
/// benchmark families (Table 1).
///
/// * rggX — random geometric graph: 2^X random points in the unit square,
///   connected below Euclidean distance 0.55*sqrt(ln n / n). This is
///   exactly the paper's recipe ("This threshold was chosen in order to
///   ensure that the graph is almost connected").
/// * DelaunayX — Delaunay triangulation of 2^X random points in the unit
///   square (see delaunay.hpp), again exactly the paper's recipe.
/// * grid / torus / annulus — FEM-mesh-like instances (substitute for the
///   Walshaw FEM graphs: near-planar, low uniform degree).
/// * road network — hierarchical jittered lattice with sparse "bridges"
///   over river-like obstacles (substitute for bel/nld/deu/eur: near
///   planar, low degree, strong natural cuts along geography).
/// * R-MAT / Barabási–Albert — skewed-degree social-network-like graphs
///   (substitute for coAuthorsDBLP / citationCiteseer).
#pragma once

#include <string>
#include <vector>

#include "graph/static_graph.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Random geometric graph with n nodes (paper's rggX with n = 2^X) and
/// radius 0.55 * sqrt(ln n / n). Coordinates are attached.
[[nodiscard]] StaticGraph random_geometric_graph(NodeID n, Rng& rng);

/// Same with an explicit radius (for radius-sweep tests).
[[nodiscard]] StaticGraph random_geometric_graph(NodeID n, double radius,
                                                 Rng& rng);

/// nx x ny grid mesh (4-neighborhood). Coordinates attached.
[[nodiscard]] StaticGraph grid_graph(NodeID nx, NodeID ny);

/// nx x ny torus (grid with wrap-around edges); no coordinates (a torus
/// has no planar embedding, geometric prepartitioning would mislead).
[[nodiscard]] StaticGraph torus_graph(NodeID nx, NodeID ny);

/// nx x ny x nz grid mesh (6-neighborhood), FEM-3D-like. No coordinates
/// (the library's geometric tools are 2D).
[[nodiscard]] StaticGraph grid3d_graph(NodeID nx, NodeID ny, NodeID nz);

/// Annulus FEM mesh: rings x sectors quadrilaterals split into triangles —
/// the structure of a 2D rotor/disc finite element discretization.
/// Coordinates attached.
[[nodiscard]] StaticGraph annulus_mesh(NodeID rings, NodeID sectors,
                                       double inner_radius = 0.3,
                                       double outer_radius = 1.0);

/// Road-network-like graph: a jittered lattice with randomly pruned local
/// streets and river-like obstacles crossed only by sparse bridges. The
/// result is near-planar, has maximum degree <= 4 + bridges, and exhibits
/// the strong natural cuts that made eur so hard for Metis (§6.2).
/// Coordinates attached; the graph is connected.
[[nodiscard]] StaticGraph road_network(NodeID approx_n, Rng& rng);

/// R-MAT graph (Chakrabarti et al.): 2^scale nodes, approximately
/// avg_degree * n / 2 distinct edges, partition probabilities a,b,c,d.
/// Skewed degrees, no locality — social-network-like.
[[nodiscard]] StaticGraph rmat_graph(int scale, double avg_degree, double a,
                                     double b, double c, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// \p attach existing nodes sampled proportional to degree.
[[nodiscard]] StaticGraph barabasi_albert(NodeID n, NodeID attach, Rng& rng);

/// A named instance registry used by the benchmark harness; names follow
/// the paper (rgg15, delaunay15, road_m, rmat_16, ...). Throws on unknown
/// names. Sizes are scaled to laptop single-core budgets; EXPERIMENTS.md
/// records the mapping to the paper's instances.
[[nodiscard]] StaticGraph make_instance(const std::string& name,
                                        std::uint64_t seed = 12345);

/// The names served by make_instance().
[[nodiscard]] std::vector<std::string> instance_names();

}  // namespace kappa
