#include "graph/contraction.hpp"

#include <algorithm>
#include <cassert>

namespace kappa {

ContractionResult contract(const StaticGraph& graph,
                           const std::vector<NodeID>& partner) {
  const NodeID n = graph.num_nodes();
  assert(partner.size() == n);

  // Assign coarse ids: each matched pair and each unmatched node gets one.
  std::vector<NodeID> fine_to_coarse(n, kInvalidNode);
  NodeID coarse_n = 0;
  for (NodeID u = 0; u < n; ++u) {
    if (fine_to_coarse[u] != kInvalidNode) continue;
    const NodeID v = partner[u];
    assert(v == u || partner[v] == u);  // symmetry of the matching
    fine_to_coarse[u] = coarse_n;
    if (v != u) fine_to_coarse[v] = coarse_n;
    ++coarse_n;
  }

  // Coarse node weights (and centroids if coordinates exist).
  std::vector<NodeWeight> coarse_vwgt(coarse_n, 0);
  const bool with_coords = graph.has_coordinates();
  std::vector<Point2D> centroid_sum;
  std::vector<double> weight_sum;
  if (with_coords) {
    centroid_sum.assign(coarse_n, Point2D{});
    weight_sum.assign(coarse_n, 0.0);
  }
  for (NodeID u = 0; u < n; ++u) {
    const NodeID cu = fine_to_coarse[u];
    coarse_vwgt[cu] += graph.node_weight(u);
    if (with_coords) {
      const double w = static_cast<double>(std::max<NodeWeight>(
          graph.node_weight(u), 1));
      centroid_sum[cu].x += w * graph.coordinate(u).x;
      centroid_sum[cu].y += w * graph.coordinate(u).y;
      weight_sum[cu] += w;
    }
  }

  // Build coarse adjacency: bucket fine arcs by coarse source, merge
  // duplicate coarse targets with a timestamped scatter array (classic
  // O(m) multilevel contraction).
  std::vector<EdgeID> coarse_xadj(coarse_n + 1, 0);
  std::vector<NodeID> coarse_adj;
  std::vector<EdgeWeight> coarse_ewgt;
  coarse_adj.reserve(graph.num_arcs());
  coarse_ewgt.reserve(graph.num_arcs());

  // For each coarse node, list its fine constituents.
  std::vector<NodeID> members(n);
  std::vector<EdgeID> member_start(coarse_n + 1, 0);
  for (NodeID u = 0; u < n; ++u) ++member_start[fine_to_coarse[u] + 1];
  for (NodeID c = 0; c < coarse_n; ++c) member_start[c + 1] += member_start[c];
  {
    std::vector<EdgeID> cursor(member_start.begin(), member_start.end() - 1);
    for (NodeID u = 0; u < n; ++u) members[cursor[fine_to_coarse[u]]++] = u;
  }

  std::vector<NodeID> seen_at(coarse_n, kInvalidNode);  // timestamp array
  std::vector<EdgeID> slot_of(coarse_n, 0);
  for (NodeID c = 0; c < coarse_n; ++c) {
    const EdgeID row_begin = coarse_adj.size();
    for (EdgeID i = member_start[c]; i < member_start[c + 1]; ++i) {
      const NodeID u = members[i];
      for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
        const NodeID cv = fine_to_coarse[graph.arc_target(e)];
        if (cv == c) continue;  // contracted edge or internal edge: drop
        if (seen_at[cv] == c) {
          coarse_ewgt[slot_of[cv]] += graph.arc_weight(e);
        } else {
          seen_at[cv] = c;
          slot_of[cv] = coarse_adj.size();
          coarse_adj.push_back(cv);
          coarse_ewgt.push_back(graph.arc_weight(e));
        }
      }
    }
    (void)row_begin;
    coarse_xadj[c + 1] = coarse_adj.size();
  }

  StaticGraph coarse(std::move(coarse_xadj), std::move(coarse_adj),
                     std::move(coarse_ewgt), std::move(coarse_vwgt));
  if (with_coords) {
    std::vector<Point2D> coarse_coords(coarse_n);
    for (NodeID c = 0; c < coarse_n; ++c) {
      coarse_coords[c] = {centroid_sum[c].x / weight_sum[c],
                          centroid_sum[c].y / weight_sum[c]};
    }
    coarse.set_coordinates(std::move(coarse_coords));
  }
  return {std::move(coarse), std::move(fine_to_coarse)};
}

Partition project_partition(const StaticGraph& fine_graph,
                            const std::vector<NodeID>& fine_to_coarse,
                            const Partition& coarse_partition) {
  const NodeID n = fine_graph.num_nodes();
  assert(fine_to_coarse.size() == n);
  std::vector<BlockID> assignment(n);
  for (NodeID u = 0; u < n; ++u) {
    assignment[u] = coarse_partition.block(fine_to_coarse[u]);
  }
  return Partition(fine_graph, std::move(assignment), coarse_partition.k());
}

}  // namespace kappa
