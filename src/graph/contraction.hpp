/// \file contraction.hpp
/// \brief Matching contraction and partition projection (un-contraction).
#pragma once

#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Result of contracting a matching: the coarse graph plus the surjective
/// mapping fine node -> coarse node needed to later project partitions back
/// (uncoarsening, §2).
struct ContractionResult {
  StaticGraph coarse_graph;
  std::vector<NodeID> fine_to_coarse;
};

/// Contracts every matched edge of \p graph. \p partner encodes a matching:
/// partner[u] == v iff {u, v} is matched (symmetric), partner[u] == u for
/// unmatched nodes.
///
/// Per the paper (§2): the contracted node x of edge {u,v} gets
/// c(x) = c(u) + c(v); parallel edges arising from common neighbors are
/// merged with summed weight; self-loops vanish. If the fine graph carries
/// coordinates, coarse nodes get the weighted centroid of their fine nodes
/// so that geometric pre-partitioning still works on coarse levels.
[[nodiscard]] ContractionResult contract(const StaticGraph& graph,
                                         const std::vector<NodeID>& partner);

/// Projects a partition of the coarse graph back onto the fine graph:
/// every fine node inherits the block of its coarse representative.
[[nodiscard]] Partition project_partition(
    const StaticGraph& fine_graph, const std::vector<NodeID>& fine_to_coarse,
    const Partition& coarse_partition);

}  // namespace kappa
