#include "graph/dynamic_overlay.hpp"

#include <numeric>

namespace kappa {

DynamicOverlay::DynamicOverlay(const StaticGraph& core,
                               std::vector<NodeID> core_to_global)
    : core_(&core), core_to_global_(std::move(core_to_global)) {
  if (core_to_global_.empty()) {
    core_to_global_.resize(core.num_nodes());
    std::iota(core_to_global_.begin(), core_to_global_.end(), NodeID{0});
  }
  assert(core_to_global_.size() == core.num_nodes());
  global_to_core_.reserve(core.num_nodes());
  for (NodeID local = 0; local < core.num_nodes(); ++local) {
    global_to_core_.emplace(core_to_global_[local], local);
  }
}

void DynamicOverlay::add_migrated_node(NodeID global_id, NodeWeight weight) {
  assert(!contains(global_id));
  migrated_.emplace(global_id, MigratedNode{weight, kNoEdge, 0});
}

void DynamicOverlay::add_migrated_edge(NodeID from_global, NodeID to_global,
                                       EdgeWeight weight) {
  if (global_to_core_.count(from_global) > 0) {
    // A core node gains a view into the overlay layer (e.g. an owned
    // boundary node's arc to a received ghost); its static core row
    // stays untouched.
    CoreOverlay& entry = core_overlay_[from_global];
    overlay_edges_.push_back({to_global, weight, entry.first_edge});
    entry.first_edge = overlay_edges_.size() - 1;
    ++entry.degree;
    return;
  }
  auto it = migrated_.find(from_global);
  assert(it != migrated_.end() &&
         "edges may only be attached to core or registered migrated nodes");
  overlay_edges_.push_back({to_global, weight, it->second.first_edge});
  it->second.first_edge = overlay_edges_.size() - 1;
  ++it->second.degree;
}

bool DynamicOverlay::contains(NodeID global_id) const {
  return global_to_core_.count(global_id) > 0 ||
         migrated_.count(global_id) > 0;
}

bool DynamicOverlay::is_migrated(NodeID global_id) const {
  return migrated_.count(global_id) > 0;
}

NodeWeight DynamicOverlay::node_weight(NodeID global_id) const {
  const auto core_it = global_to_core_.find(global_id);
  if (core_it != global_to_core_.end()) {
    return core_->node_weight(core_it->second);
  }
  const auto mig_it = migrated_.find(global_id);
  assert(mig_it != migrated_.end());
  return mig_it->second.weight;
}

NodeID DynamicOverlay::degree(NodeID global_id) const {
  NodeID degree = 0;
  const auto core_it = global_to_core_.find(global_id);
  if (core_it != global_to_core_.end()) {
    degree += core_->degree(core_it->second);
    const auto extra_it = core_overlay_.find(global_id);
    if (extra_it != core_overlay_.end()) {
      degree += extra_it->second.degree;
    }
  }
  const auto mig_it = migrated_.find(global_id);
  if (mig_it != migrated_.end()) {
    degree += mig_it->second.degree;
  }
  return degree;
}

void DynamicOverlay::clear_migrated() {
  migrated_.clear();
  core_overlay_.clear();
  overlay_edges_.clear();
}

}  // namespace kappa
