/// \file dynamic_overlay.hpp
/// \brief Hybrid static/dynamic graph view (§5.2).
///
/// "We use a hybrid between a static and a dynamic graph data structure.
/// Immediately after uncontracting a matching, every PE stores the
/// partition it is responsible for in a static adjacency array
/// representation ... In addition, we use a hash table to store migrated
/// nodes and a second edge array for the corresponding edges."
///
/// A DynamicOverlay wraps an immutable local CSR graph and accepts
/// migrated nodes (received from a partner PE before a pairwise local
/// search) in an append-only secondary edge array, addressed through a
/// hash table. Queries see the union; the overlay can be cleared in O(#
/// migrated) after the search, leaving the static core untouched.
#pragma once

#include <cassert>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/static_graph.hpp"
#include "util/seeded_hash.hpp"
#include "util/types.hpp"

namespace kappa {

/// Node ids of the overlay live in a *global* id space: the static core
/// covers a subset (with a mapping), migrated nodes are added under their
/// global ids.
class DynamicOverlay {
 public:
  /// Wraps \p core; \p core_to_global maps the core's local node ids to
  /// global ids (identity if empty).
  explicit DynamicOverlay(const StaticGraph& core,
                          std::vector<NodeID> core_to_global = {});

  /// Registers a migrated node with its weight. Edges are added
  /// separately with add_migrated_edge(). Re-registering is an error.
  void add_migrated_node(NodeID global_id, NodeWeight weight);

  /// Adds an overlay edge (directed entry; call for each direction you
  /// need visible). \p from_global may be a migrated node *or a core
  /// node* — the latter is how a ghost-layer intake makes an owned
  /// boundary node see its arcs into the received halo without touching
  /// the static core. The endpoint may be core or migrated.
  void add_migrated_edge(NodeID from_global, NodeID to_global,
                         EdgeWeight weight);

  /// Whether the id is known (core or migrated).
  [[nodiscard]] bool contains(NodeID global_id) const;

  /// Whether the id is a migrated (non-core) node.
  [[nodiscard]] bool is_migrated(NodeID global_id) const;

  /// Node weight lookup across both storages.
  [[nodiscard]] NodeWeight node_weight(NodeID global_id) const;

  /// Degree across both storages. For core nodes this counts core edges
  /// plus overlay edges attached to them.
  [[nodiscard]] NodeID degree(NodeID global_id) const;

  /// Visits all (neighbor_global_id, edge_weight) pairs of a node: static
  /// core arcs first, then any overlay edges attached to it (for core
  /// nodes those are its arcs into the migrated/ghost layer).
  template <typename Visitor>
  void for_each_neighbor(NodeID global_id, Visitor&& visit) const {
    const auto core_it = global_to_core_.find(global_id);
    if (core_it != global_to_core_.end()) {
      const NodeID local = core_it->second;
      for (EdgeID e = core_->first_arc(local); e < core_->last_arc(local);
           ++e) {
        visit(core_to_global_[core_->arc_target(e)], core_->arc_weight(e));
      }
      const auto extra_it = core_overlay_.find(global_id);
      if (extra_it != core_overlay_.end()) {
        for (std::size_t i = extra_it->second.first_edge; i != kNoEdge;
             i = overlay_edges_[i].next) {
          visit(overlay_edges_[i].target, overlay_edges_[i].weight);
        }
      }
    }
    const auto mig_it = migrated_.find(global_id);
    if (mig_it != migrated_.end()) {
      for (std::size_t i = mig_it->second.first_edge;
           i != kNoEdge; i = overlay_edges_[i].next) {
        visit(overlay_edges_[i].target, overlay_edges_[i].weight);
      }
    }
  }

  /// Number of migrated nodes currently stored.
  [[nodiscard]] std::size_t num_migrated() const { return migrated_.size(); }

  /// Number of overlay edge entries.
  [[nodiscard]] std::size_t num_overlay_edges() const {
    return overlay_edges_.size();
  }

  /// Drops all migrated state in O(#migrated + #overlay edges); the
  /// static core stays valid (called after a pairwise search returns its
  /// results to the partner PE).
  void clear_migrated();

 private:
  struct OverlayEdge {
    NodeID target;
    EdgeWeight weight;
    std::size_t next;  ///< intrusive list per node
  };
  struct MigratedNode {
    NodeWeight weight;
    std::size_t first_edge;
    NodeID degree;
  };
  /// Overlay edges attached to a *core* node (its view into the
  /// migrated/ghost layer); shares the secondary edge array.
  struct CoreOverlay {
    std::size_t first_edge = static_cast<std::size_t>(-1);
    NodeID degree = 0;
  };
  static constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);

  const StaticGraph* core_;
  std::vector<NodeID> core_to_global_;
  hash_map<NodeID, NodeID> global_to_core_;
  hash_map<NodeID, MigratedNode> migrated_;
  hash_map<NodeID, CoreOverlay> core_overlay_;
  std::vector<OverlayEdge> overlay_edges_;
};

}  // namespace kappa
