#include "graph/graph_builder.hpp"

#include <algorithm>
#include <cassert>

namespace kappa {

GraphBuilder::GraphBuilder(NodeID num_nodes)
    : node_weights_(num_nodes, 1), coords_(num_nodes) {}

void GraphBuilder::add_edge(NodeID u, NodeID v, EdgeWeight w) {
  assert(u < num_nodes() && v < num_nodes());
  if (u == v) return;  // self-loops never contribute to a cut
  edges_.push_back({u, v, w});
}

void GraphBuilder::set_node_weight(NodeID u, NodeWeight w) {
  assert(u < num_nodes());
  node_weights_[u] = w;
}

void GraphBuilder::set_coordinate(NodeID u, Point2D p) {
  assert(u < num_nodes());
  coords_[u] = p;
  has_coords_ = true;
}

StaticGraph GraphBuilder::finalize() {
  const NodeID n = num_nodes();

  // Symmetrize: every undirected edge becomes two arcs.
  std::vector<RawEdge> arcs;
  arcs.reserve(2 * edges_.size());
  for (const RawEdge& e : edges_) {
    arcs.push_back({e.u, e.v, e.w});
    arcs.push_back({e.v, e.u, e.w});
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(arcs.begin(), arcs.end(), [](const RawEdge& a, const RawEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });

  // Merge parallel arcs by summing weights.
  std::vector<EdgeID> xadj(n + 1, 0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  adj.reserve(arcs.size());
  ewgt.reserve(arcs.size());
  std::size_t i = 0;
  for (NodeID u = 0; u < n; ++u) {
    while (i < arcs.size() && arcs[i].u == u) {
      const NodeID v = arcs[i].v;
      EdgeWeight w = 0;
      while (i < arcs.size() && arcs[i].u == u && arcs[i].v == v) {
        w += arcs[i].w;
        ++i;
      }
      adj.push_back(v);
      ewgt.push_back(w);
    }
    xadj[u + 1] = adj.size();
  }

  StaticGraph graph(std::move(xadj), std::move(adj), std::move(ewgt),
                    std::move(node_weights_));
  if (has_coords_) graph.set_coordinates(std::move(coords_));
  node_weights_.assign(0, 0);
  coords_.clear();
  has_coords_ = false;
  return graph;
}

}  // namespace kappa
