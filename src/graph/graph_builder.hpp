/// \file graph_builder.hpp
/// \brief Incremental construction of StaticGraph from edge lists.
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Collects undirected edges and node weights, then produces a clean CSR
/// graph: self-loops are dropped and parallel edges are merged by summing
/// their weights (the same rule contraction uses, §2).
class GraphBuilder {
 public:
  /// Creates a builder for a graph with \p num_nodes nodes, all of weight 1.
  explicit GraphBuilder(NodeID num_nodes);

  /// Adds an undirected edge {u, v} of weight \p w. Order of endpoints is
  /// irrelevant; duplicates accumulate weight at finalize() time.
  void add_edge(NodeID u, NodeID v, EdgeWeight w = 1);

  /// Overrides the weight of node \p u (default 1).
  void set_node_weight(NodeID u, NodeWeight w);

  /// Attaches a coordinate to node \p u (enables geometric algorithms).
  void set_coordinate(NodeID u, Point2D p);

  [[nodiscard]] NodeID num_nodes() const {
    return static_cast<NodeID>(node_weights_.size());
  }

  /// Number of edge insertions so far (before dedup).
  [[nodiscard]] std::size_t num_inserted_edges() const {
    return edges_.size();
  }

  /// Builds the CSR graph. The builder is left empty afterwards.
  [[nodiscard]] StaticGraph finalize();

 private:
  struct RawEdge {
    NodeID u;
    NodeID v;
    EdgeWeight w;
  };

  std::vector<RawEdge> edges_;
  std::vector<NodeWeight> node_weights_;
  std::vector<Point2D> coords_;
  bool has_coords_ = false;
};

}  // namespace kappa
