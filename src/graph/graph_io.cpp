#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/graph_builder.hpp"

namespace kappa {

namespace {

/// Reads the next non-comment, non-empty line; returns false at EOF.
/// Used for the header only.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') return true;
  }
  return false;
}

/// Reads the next vertex line, skipping only '%' comments. An *empty*
/// line is data here: a vertex with no neighbors (legal in the METIS
/// format) has one, and swallowing it would shift every following row.
bool next_vertex_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '%') return true;
  }
  return false;
}

}  // namespace

StaticGraph read_metis_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);

  std::string line;
  if (!next_data_line(in, line)) {
    throw std::runtime_error("empty graph file: " + path);
  }
  std::istringstream header(line);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::string fmt = "000";
  header >> n >> m;
  if (header >> fmt) {
    while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
  }
  const bool has_edge_weights = fmt[fmt.size() - 1] == '1';
  const bool has_node_weights = fmt[fmt.size() - 2] == '1';

  GraphBuilder builder(static_cast<NodeID>(n));
  for (NodeID u = 0; u < n; ++u) {
    if (!next_vertex_line(in, line)) {
      throw std::runtime_error("unexpected EOF in graph file: " + path);
    }
    std::istringstream row(line);
    if (has_node_weights) {
      NodeWeight w = 1;
      row >> w;
      builder.set_node_weight(u, w);
    }
    std::uint64_t v1 = 0;
    while (row >> v1) {
      EdgeWeight w = 1;
      if (has_edge_weights && !(row >> w)) {
        throw std::runtime_error("missing edge weight in: " + path);
      }
      if (v1 == 0 || v1 > n) {
        throw std::runtime_error("neighbor id out of range in: " + path);
      }
      const NodeID v = static_cast<NodeID>(v1 - 1);
      if (u < v) builder.add_edge(u, v, w);  // each edge appears twice
    }
  }
  StaticGraph graph = builder.finalize();
  if (graph.num_edges() != m) {
    // Tolerate inconsistent headers (some archive files are off) but the
    // graph itself is well-formed at this point.
  }
  return graph;
}

void write_metis_graph(const StaticGraph& graph, const std::string& path) {
  bool weighted_nodes = false;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    if (graph.node_weight(u) != 1) weighted_nodes = true;
  }
  bool weighted_edges = false;
  for (EdgeID e = 0; e < graph.num_arcs(); ++e) {
    if (graph.arc_weight(e) != 1) weighted_edges = true;
  }

  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  out << graph.num_nodes() << ' ' << graph.num_edges();
  if (weighted_nodes || weighted_edges) {
    out << ' ' << (weighted_nodes ? '1' : '0') << (weighted_edges ? '1' : '0');
  }
  out << '\n';
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    bool first = true;
    if (weighted_nodes) {
      out << graph.node_weight(u);
      first = false;
    }
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      if (!first) out << ' ';
      first = false;
      out << graph.arc_target(e) + 1;
      if (weighted_edges) out << ' ' << graph.arc_weight(e);
    }
    out << '\n';
  }
}

void write_partition(const Partition& partition, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write partition file: " + path);
  for (NodeID u = 0; u < partition.num_nodes(); ++u) {
    out << partition.block(u) << '\n';
  }
}

Partition read_partition(const StaticGraph& graph, BlockID k,
                         const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open partition file: " + path);
  std::vector<BlockID> assignment(graph.num_nodes());
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    std::uint64_t b = 0;
    if (!(in >> b) || b >= k) {
      throw std::runtime_error("bad partition file: " + path);
    }
    assignment[u] = static_cast<BlockID>(b);
  }
  return Partition(graph, std::move(assignment), k);
}

}  // namespace kappa
