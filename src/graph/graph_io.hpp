/// \file graph_io.hpp
/// \brief METIS/Chaco graph-file and partition-file I/O.
///
/// The METIS format is the lingua franca of the partitioning community
/// (Walshaw archive, Florida collection exports, DIMACS instances all ship
/// in it); supporting it makes the library usable on the paper's original
/// inputs when they are available.
#pragma once

#include <string>
#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"

namespace kappa {

/// Reads a graph in METIS format.
///
/// Format: first non-comment line is `n m [fmt [ncon]]`; fmt is a 3-digit
/// code `xyz` with z = has edge weights, y = has node weights. Each of the
/// following n lines lists the (1-based) neighbors of a node, each
/// optionally preceded by weights according to fmt. `%` starts a comment.
///
/// \throws std::runtime_error on malformed input.
[[nodiscard]] StaticGraph read_metis_graph(const std::string& path);

/// Writes a graph in METIS format (with weights iff any are non-unit).
void write_metis_graph(const StaticGraph& graph, const std::string& path);

/// Writes a partition file: one block id per line, node order.
void write_partition(const Partition& partition, const std::string& path);

/// Reads a partition file for \p graph into \p k blocks.
[[nodiscard]] Partition read_partition(const StaticGraph& graph, BlockID k,
                                       const std::string& path);

}  // namespace kappa
