#include "graph/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace kappa {

EdgeWeight edge_cut(const StaticGraph& graph, const Partition& partition) {
  EdgeWeight cut = 0;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    const BlockID bu = partition.block(u);
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (u < v && partition.block(v) != bu) cut += graph.arc_weight(e);
    }
  }
  return cut;
}

double balance(const StaticGraph& graph, const Partition& partition) {
  const double avg = static_cast<double>(graph.total_node_weight()) /
                     static_cast<double>(partition.k());
  if (avg == 0.0) return 1.0;
  return static_cast<double>(partition.max_block_weight()) / avg;
}

NodeWeight max_block_weight_bound(const StaticGraph& graph, BlockID k,
                                  double eps) {
  const double avg = static_cast<double>(graph.total_node_weight()) /
                     static_cast<double>(k);
  return static_cast<NodeWeight>((1.0 + eps) * avg) + graph.max_node_weight();
}

bool is_balanced(const StaticGraph& graph, const Partition& partition,
                 double eps) {
  const NodeWeight bound =
      max_block_weight_bound(graph, partition.k(), eps);
  for (BlockID b = 0; b < partition.k(); ++b) {
    if (partition.block_weight(b) > bound) return false;
  }
  return true;
}

std::vector<NodeID> boundary_nodes(const StaticGraph& graph,
                                   const Partition& partition) {
  std::vector<NodeID> result;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    const BlockID bu = partition.block(u);
    for (const NodeID v : graph.neighbors(u)) {
      if (partition.block(v) != bu) {
        result.push_back(u);
        break;
      }
    }
  }
  return result;
}

std::vector<NodeID> pair_boundary_nodes(const StaticGraph& graph,
                                        const Partition& partition, BlockID b,
                                        BlockID other) {
  std::vector<NodeID> result;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    if (partition.block(u) != b) continue;
    for (const NodeID v : graph.neighbors(u)) {
      if (partition.block(v) == other) {
        result.push_back(u);
        break;
      }
    }
  }
  return result;
}

}  // namespace kappa
