/// \file metrics.hpp
/// \brief Partition quality metrics: edge cut, balance, boundary.
#pragma once

#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Total weight of edges whose endpoints lie in different blocks
/// (the objective the paper minimizes, §2).
[[nodiscard]] EdgeWeight edge_cut(const StaticGraph& graph,
                                  const Partition& partition);

/// Balance of a partition: max_i c(V_i) / (c(V)/k). The paper reports this
/// as "avg. balance" (e.g. 1.030 means the heaviest block is 3% over the
/// average block weight).
[[nodiscard]] double balance(const StaticGraph& graph,
                             const Partition& partition);

/// Maximum admissible block weight Lmax = (1+eps) * c(V)/k + max_v c(v)
/// (§2). The additive max-node-weight term guarantees feasibility on
/// coarse graphs with heavy nodes.
[[nodiscard]] NodeWeight max_block_weight_bound(const StaticGraph& graph,
                                                BlockID k, double eps);

/// True iff every block obeys the Lmax bound.
[[nodiscard]] bool is_balanced(const StaticGraph& graph,
                               const Partition& partition, double eps);

/// Nodes with at least one neighbor in a different block. These seed the
/// FM priority queues and the band BFS (§5.2).
[[nodiscard]] std::vector<NodeID> boundary_nodes(const StaticGraph& graph,
                                                 const Partition& partition);

/// Boundary nodes of block \p b that have a neighbor in block \p other.
[[nodiscard]] std::vector<NodeID> pair_boundary_nodes(
    const StaticGraph& graph, const Partition& partition, BlockID b,
    BlockID other);

}  // namespace kappa
