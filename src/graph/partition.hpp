/// \file partition.hpp
/// \brief Block assignment of nodes plus cached block weights.
#pragma once

#include <cassert>
#include <vector>

#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// A k-way partition V = V_1 ∪ ... ∪ V_k of the nodes of a graph.
///
/// Block weights c(V_i) are maintained incrementally so that the balance
/// constraint c(V_i) <= Lmax := (1+eps) c(V)/k + max_v c(v) (§2) can be
/// checked in O(1) during local search.
class Partition {
 public:
  Partition() = default;

  /// Creates an all-unassigned partition of \p num_nodes nodes into \p k
  /// blocks.
  Partition(NodeID num_nodes, BlockID k)
      : block_of_(num_nodes, kInvalidBlock), block_weight_(k, 0), k_(k) {}

  /// Creates a partition from an explicit assignment; computes block
  /// weights from the graph.
  Partition(const StaticGraph& graph, std::vector<BlockID> assignment,
            BlockID k)
      : block_of_(std::move(assignment)), block_weight_(k, 0), k_(k) {
    assert(block_of_.size() == graph.num_nodes());
    for (NodeID u = 0; u < graph.num_nodes(); ++u) {
      assert(block_of_[u] < k_);
      block_weight_[block_of_[u]] += graph.node_weight(u);
    }
  }

  /// Creates a partition from an explicit assignment and precomputed
  /// block weights. Used where no full graph exists to sum the weights
  /// from — the distributed hierarchy store holds each level's node
  /// weights sharded and all-reduces the per-block sums instead.
  Partition(std::vector<BlockID> assignment, BlockID k,
            std::vector<NodeWeight> block_weights)
      : block_of_(std::move(assignment)),
        block_weight_(std::move(block_weights)),
        k_(k) {
    assert(block_weight_.size() == k_);
  }

  [[nodiscard]] BlockID k() const { return k_; }

  [[nodiscard]] NodeID num_nodes() const {
    return static_cast<NodeID>(block_of_.size());
  }

  /// Block of node u (kInvalidBlock if unassigned).
  [[nodiscard]] BlockID block(NodeID u) const { return block_of_[u]; }

  /// Current weight of block b.
  [[nodiscard]] NodeWeight block_weight(BlockID b) const {
    return block_weight_[b];
  }

  /// Assigns a previously *unassigned* node.
  void assign(NodeID u, BlockID b, NodeWeight node_weight) {
    assert(block_of_[u] == kInvalidBlock && b < k_);
    block_of_[u] = b;
    block_weight_[b] += node_weight;
  }

  /// Moves an assigned node to another block, updating block weights.
  void move(NodeID u, BlockID to, NodeWeight node_weight) {
    const BlockID from = block_of_[u];
    assert(from < k_ && to < k_);
    block_weight_[from] -= node_weight;
    block_weight_[to] += node_weight;
    block_of_[u] = to;
  }

  /// Raw assignment vector (read-only).
  [[nodiscard]] const std::vector<BlockID>& assignment() const {
    return block_of_;
  }

  /// Heaviest block weight.
  [[nodiscard]] NodeWeight max_block_weight() const {
    NodeWeight mx = 0;
    for (NodeWeight w : block_weight_) mx = std::max(mx, w);
    return mx;
  }

 private:
  std::vector<BlockID> block_of_;
  std::vector<NodeWeight> block_weight_;
  BlockID k_ = 0;
};

}  // namespace kappa
