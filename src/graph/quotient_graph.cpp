#include "graph/quotient_graph.hpp"

#include <algorithm>
#include <map>

namespace kappa {

QuotientGraph::QuotientGraph(const StaticGraph& graph,
                             const Partition& partition)
    : k_(partition.k()), incidence_(partition.k()) {
  // One O(m) sweep: accumulate cut weight and boundary node lists per
  // unordered block pair.
  std::map<std::pair<BlockID, BlockID>, std::size_t> index_of;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    const BlockID bu = partition.block(u);
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      const BlockID bv = partition.block(v);
      if (bu == bv) continue;
      const auto key = std::minmax(bu, bv);
      auto [it, inserted] =
          index_of.try_emplace({key.first, key.second}, edges_.size());
      if (inserted) {
        edges_.push_back({key.first, key.second, 0, {}});
      }
      QuotientEdge& edge = edges_[it->second];
      // Each cut edge is visited from both endpoints; count weight once.
      if (bu < bv) edge.cut_weight += graph.arc_weight(e);
      edge.boundary.push_back(u);  // u sees the other block: it is boundary
    }
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    auto& boundary = edges_[i].boundary;
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    incidence_[edges_[i].a].push_back(i);
    incidence_[edges_[i].b].push_back(i);
  }
}

QuotientGraph::QuotientGraph(BlockID k, std::vector<QuotientEdge> edges)
    : k_(k), edges_(std::move(edges)), incidence_(k) {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    incidence_[edges_[i].a].push_back(i);
    incidence_[edges_[i].b].push_back(i);
  }
}

std::size_t QuotientGraph::max_degree() const {
  std::size_t degree = 0;
  for (const auto& inc : incidence_) degree = std::max(degree, inc.size());
  return degree;
}

}  // namespace kappa
