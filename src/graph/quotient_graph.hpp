/// \file quotient_graph.hpp
/// \brief Quotient graph Q of a partition (§5, Figure 1).
///
/// Nodes of Q are the blocks of the current partition; an edge {A, B}
/// exists iff the underlying graph has at least one edge between blocks A
/// and B. Pairwise refinement is scheduled on matchings of Q obtained from
/// an edge coloring, so that all pairs of one color can be refined
/// concurrently by independent PEs.
#pragma once

#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// One edge of the quotient graph: an unordered pair of adjacent blocks
/// together with the total weight of underlying cut edges between them and
/// the boundary nodes of the pair (seeds for the band BFS, §5.2).
struct QuotientEdge {
  BlockID a;
  BlockID b;
  EdgeWeight cut_weight;
  std::vector<NodeID> boundary;  ///< nodes of a adjacent to b and vice versa
};

/// The quotient graph of a partition.
class QuotientGraph {
 public:
  QuotientGraph() = default;

  /// Builds Q from the current partition in O(m).
  QuotientGraph(const StaticGraph& graph, const Partition& partition);

  /// Assembles Q from pre-merged edges (the distributed construction of
  /// the SPMD refiner: every rank contributes the pairs its resident
  /// rows see, the merged result is identical on every PE). \p edges
  /// must list each pair once with a < b; order is preserved. The
  /// incidence lists are rebuilt here.
  QuotientGraph(BlockID k, std::vector<QuotientEdge> edges);

  /// Number of blocks (= nodes of Q).
  [[nodiscard]] BlockID num_blocks() const { return k_; }

  /// All quotient edges, each listed once with a < b.
  [[nodiscard]] const std::vector<QuotientEdge>& edges() const {
    return edges_;
  }

  /// Indices (into edges()) of the quotient edges incident to block \p b.
  [[nodiscard]] const std::vector<std::size_t>& incident(BlockID b) const {
    return incidence_[b];
  }

  /// Maximum degree of Q; an optimal edge coloring needs at least this many
  /// colors, the paper's distributed algorithm at most twice as many.
  [[nodiscard]] std::size_t max_degree() const;

 private:
  BlockID k_ = 0;
  std::vector<QuotientEdge> edges_;
  std::vector<std::vector<std::size_t>> incidence_;
};

}  // namespace kappa
