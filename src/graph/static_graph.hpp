/// \file static_graph.hpp
/// \brief Static CSR (adjacency array / forward-star) graph.
///
/// This is the representation the paper uses for each level of the
/// multilevel hierarchy (§5.2: "a static adjacency array representation
/// (also called forward-star representation), i.e., there is an edge array
/// storing target nodes and edge weights and a node array storing node
/// weights and the start of the relevant segment in the edge array").
///
/// Undirected edges are stored as two directed arcs. Optional 2D
/// coordinates support the geometric pre-partitioning used to create
/// locality for the parallel matching phase (§3.3).
#pragma once

#include <cassert>
#include <span>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace kappa {

/// 2D point attached to a node (random geometric graphs, Delaunay
/// triangulations, road networks and some FEM graphs carry coordinates).
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};

/// Immutable weighted undirected graph in CSR form.
///
/// Construction goes through GraphBuilder (which merges parallel edges and
/// drops self-loops) or through contract() in contraction.hpp. All accessors
/// are O(1); iteration over the incident arcs of a node is cache-friendly.
class StaticGraph {
 public:
  StaticGraph() = default;

  /// Assembles a graph from raw CSR arrays. \p xadj has n+1 entries; the
  /// arc arrays have xadj[n] entries; \p vwgt has n entries.
  StaticGraph(std::vector<EdgeID> xadj, std::vector<NodeID> adj,
              std::vector<EdgeWeight> ewgt, std::vector<NodeWeight> vwgt)
      : xadj_(std::move(xadj)),
        adj_(std::move(adj)),
        ewgt_(std::move(ewgt)),
        vwgt_(std::move(vwgt)) {
    assert(!xadj_.empty());
    assert(adj_.size() == xadj_.back());
    assert(ewgt_.size() == xadj_.back());
    assert(vwgt_.size() + 1 == xadj_.size());
    total_node_weight_ = 0;
    for (NodeWeight w : vwgt_) total_node_weight_ += w;
    max_node_weight_ = 0;
    for (NodeWeight w : vwgt_) max_node_weight_ = std::max(max_node_weight_, w);
  }

  /// Number of nodes n.
  [[nodiscard]] NodeID num_nodes() const {
    return static_cast<NodeID>(vwgt_.size());
  }

  /// Number of undirected edges m (each stored as two arcs).
  [[nodiscard]] EdgeID num_edges() const { return adj_.size() / 2; }

  /// Number of directed arcs (2m).
  [[nodiscard]] EdgeID num_arcs() const { return adj_.size(); }

  /// First arc index of node u.
  [[nodiscard]] EdgeID first_arc(NodeID u) const { return xadj_[u]; }

  /// One past the last arc index of node u.
  [[nodiscard]] EdgeID last_arc(NodeID u) const { return xadj_[u + 1]; }

  /// Degree of node u (number of distinct neighbors).
  [[nodiscard]] NodeID degree(NodeID u) const {
    return static_cast<NodeID>(xadj_[u + 1] - xadj_[u]);
  }

  /// Target node of arc e.
  [[nodiscard]] NodeID arc_target(EdgeID e) const { return adj_[e]; }

  /// Weight of arc e.
  [[nodiscard]] EdgeWeight arc_weight(EdgeID e) const { return ewgt_[e]; }

  /// Weight of node u.
  [[nodiscard]] NodeWeight node_weight(NodeID u) const { return vwgt_[u]; }

  /// Neighbors of u as a contiguous span.
  [[nodiscard]] std::span<const NodeID> neighbors(NodeID u) const {
    return {adj_.data() + xadj_[u], adj_.data() + xadj_[u + 1]};
  }

  /// Sum of all node weights c(V).
  [[nodiscard]] NodeWeight total_node_weight() const {
    return total_node_weight_;
  }

  /// Largest single node weight max_v c(v); enters the balance bound
  /// Lmax = (1+eps) c(V)/k + max_v c(v) (§2).
  [[nodiscard]] NodeWeight max_node_weight() const { return max_node_weight_; }

  /// Weighted degree Out(v) = sum of incident edge weights (§3.1, used by
  /// the innerOuter edge rating).
  [[nodiscard]] EdgeWeight weighted_degree(NodeID u) const {
    EdgeWeight sum = 0;
    for (EdgeID e = first_arc(u); e < last_arc(u); ++e) sum += ewgt_[e];
    return sum;
  }

  /// Total edge weight omega(E).
  [[nodiscard]] EdgeWeight total_edge_weight() const {
    EdgeWeight sum = 0;
    for (EdgeWeight w : ewgt_) sum += w;
    return sum / 2;
  }

  /// Whether 2D coordinates are attached.
  [[nodiscard]] bool has_coordinates() const {
    return coords_.size() == vwgt_.size() && !coords_.empty();
  }

  /// Coordinate of node u; requires has_coordinates().
  [[nodiscard]] const Point2D& coordinate(NodeID u) const {
    assert(has_coordinates());
    return coords_[u];
  }

  /// Attaches coordinates (size must equal num_nodes()).
  void set_coordinates(std::vector<Point2D> coords) {
    assert(coords.size() == vwgt_.size());
    coords_ = std::move(coords);
  }

  /// All coordinates (may be empty).
  [[nodiscard]] const std::vector<Point2D>& coordinates() const {
    return coords_;
  }

 private:
  std::vector<EdgeID> xadj_;
  std::vector<NodeID> adj_;
  std::vector<EdgeWeight> ewgt_;
  std::vector<NodeWeight> vwgt_;
  std::vector<Point2D> coords_;
  NodeWeight total_node_weight_ = 0;
  NodeWeight max_node_weight_ = 0;
};

}  // namespace kappa
