#include "graph/subgraph.hpp"

#include <cassert>

namespace kappa {

Subgraph induced_subgraph(const StaticGraph& graph,
                          const std::vector<NodeID>& nodes) {
  Subgraph result;
  result.local_to_global = nodes;
  result.global_to_local.assign(graph.num_nodes(), kInvalidNode);
  for (NodeID local = 0; local < nodes.size(); ++local) {
    assert(result.global_to_local[nodes[local]] == kInvalidNode);
    result.global_to_local[nodes[local]] = local;
  }

  const NodeID sub_n = static_cast<NodeID>(nodes.size());
  std::vector<EdgeID> xadj(sub_n + 1, 0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt(sub_n);

  for (NodeID local = 0; local < sub_n; ++local) {
    const NodeID u = nodes[local];
    vwgt[local] = graph.node_weight(u);
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID lv = result.global_to_local[graph.arc_target(e)];
      if (lv == kInvalidNode) continue;
      adj.push_back(lv);
      ewgt.push_back(graph.arc_weight(e));
    }
    xadj[local + 1] = adj.size();
  }

  result.graph = StaticGraph(std::move(xadj), std::move(adj), std::move(ewgt),
                             std::move(vwgt));
  if (graph.has_coordinates()) {
    std::vector<Point2D> coords(sub_n);
    for (NodeID local = 0; local < sub_n; ++local) {
      coords[local] = graph.coordinate(nodes[local]);
    }
    result.graph.set_coordinates(std::move(coords));
  }
  return result;
}

RowSet extract_rows(const StaticGraph& graph,
                    const std::vector<NodeID>& nodes) {
  RowSet rows;
  rows.ids = nodes;
  rows.xadj.reserve(nodes.size() + 1);
  rows.xadj.push_back(0);
  rows.vwgt.reserve(nodes.size());
  for (const NodeID u : nodes) {
    rows.vwgt.push_back(graph.node_weight(u));
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      rows.adj.push_back(graph.arc_target(e));
      rows.ewgt.push_back(graph.arc_weight(e));
    }
    rows.xadj.push_back(rows.adj.size());
  }
  return rows;
}

}  // namespace kappa
