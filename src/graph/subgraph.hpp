/// \file subgraph.hpp
/// \brief Induced subgraph extraction with node mappings.
///
/// Used by the parallel matching phase (each PE matches the subgraph
/// induced by its local nodes, §3.3) and by pairwise refinement (the
/// two-block band subgraph, §5.2).
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// An induced subgraph plus the bidirectional node mapping.
struct Subgraph {
  StaticGraph graph;
  std::vector<NodeID> local_to_global;  ///< size = subgraph nodes
  std::vector<NodeID> global_to_local;  ///< kInvalidNode for outside nodes
};

/// Extracts the subgraph induced by \p nodes (must be duplicate-free).
/// Edges leaving the node set are dropped; weights are preserved.
[[nodiscard]] Subgraph induced_subgraph(const StaticGraph& graph,
                                        const std::vector<NodeID>& nodes);

/// The CSR rows of a node set, extracted verbatim: per node its weight
/// and its *full* arc list — targets stay in the source graph's id space,
/// in the source graph's arc order. Unlike induced_subgraph(), arcs
/// leaving the set are kept. This is the unit of data distribution for
/// the ghost-layer structures of the SPMD pipeline: whoever holds a row
/// can reproduce the node's neighborhood exactly as the replica stores
/// it, so row content is independent of which rank shipped it.
struct RowSet {
  std::vector<NodeID> ids;          ///< the extracted nodes (as passed)
  std::vector<EdgeID> xadj;         ///< ids.size() + 1 offsets
  std::vector<NodeID> adj;          ///< arc targets (source id space)
  std::vector<EdgeWeight> ewgt;     ///< arc weights
  std::vector<NodeWeight> vwgt;     ///< node weights

  /// Resident adjacency entries.
  [[nodiscard]] std::size_t num_arcs() const { return adj.size(); }
};

/// Extracts the rows of \p nodes (must be duplicate-free) from \p graph.
[[nodiscard]] RowSet extract_rows(const StaticGraph& graph,
                                  const std::vector<NodeID>& nodes);

}  // namespace kappa
