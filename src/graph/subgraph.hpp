/// \file subgraph.hpp
/// \brief Induced subgraph extraction with node mappings.
///
/// Used by the parallel matching phase (each PE matches the subgraph
/// induced by its local nodes, §3.3) and by pairwise refinement (the
/// two-block band subgraph, §5.2).
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// An induced subgraph plus the bidirectional node mapping.
struct Subgraph {
  StaticGraph graph;
  std::vector<NodeID> local_to_global;  ///< size = subgraph nodes
  std::vector<NodeID> global_to_local;  ///< kInvalidNode for outside nodes
};

/// Extracts the subgraph induced by \p nodes (must be duplicate-free).
/// Edges leaving the node set are dropped; weights are preserved.
[[nodiscard]] Subgraph induced_subgraph(const StaticGraph& graph,
                                        const std::vector<NodeID>& nodes);

}  // namespace kappa
