#include "graph/validation.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace kappa {

std::string validate_graph(const StaticGraph& graph) {
  const NodeID n = graph.num_nodes();
  std::map<std::pair<NodeID, NodeID>, EdgeWeight> forward;
  for (NodeID u = 0; u < n; ++u) {
    NodeID prev = kInvalidNode;
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (v >= n) return "arc target out of range";
      if (v == u) return "self-loop at node " + std::to_string(u);
      if (graph.arc_weight(e) <= 0) return "non-positive edge weight";
      if (v == prev) return "parallel arc at node " + std::to_string(u);
      prev = v;
      forward[{u, v}] = graph.arc_weight(e);
    }
    if (graph.node_weight(u) < 0) return "negative node weight";
  }
  for (const auto& [arc, w] : forward) {
    auto it = forward.find({arc.second, arc.first});
    if (it == forward.end()) {
      std::ostringstream msg;
      msg << "asymmetric arc " << arc.first << "->" << arc.second;
      return msg.str();
    }
    if (it->second != w) {
      std::ostringstream msg;
      msg << "asymmetric weight on edge {" << arc.first << "," << arc.second
          << "}";
      return msg.str();
    }
  }
  return {};
}

std::string validate_matching(const StaticGraph& graph,
                              const std::vector<NodeID>& partner) {
  if (partner.size() != graph.num_nodes()) return "partner array size";
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    const NodeID v = partner[u];
    if (v == u) continue;
    if (v >= graph.num_nodes()) return "partner out of range";
    if (partner[v] != u) return "asymmetric matching";
    const auto nbrs = graph.neighbors(u);
    if (std::find(nbrs.begin(), nbrs.end(), v) == nbrs.end()) {
      return "matched pair is not an edge";
    }
  }
  return {};
}

std::string validate_partition(const StaticGraph& graph,
                               const Partition& partition) {
  if (partition.num_nodes() != graph.num_nodes()) return "size mismatch";
  std::vector<NodeWeight> weights(partition.k(), 0);
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    const BlockID b = partition.block(u);
    if (b >= partition.k()) return "block id out of range";
    weights[b] += graph.node_weight(u);
  }
  for (BlockID b = 0; b < partition.k(); ++b) {
    if (weights[b] != partition.block_weight(b)) {
      return "cached block weight mismatch for block " + std::to_string(b);
    }
  }
  return {};
}

NodeID count_components(const StaticGraph& graph) {
  const NodeID n = graph.num_nodes();
  std::vector<bool> visited(n, false);
  std::vector<NodeID> stack;
  NodeID components = 0;
  for (NodeID s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ++components;
    visited[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeID u = stack.back();
      stack.pop_back();
      for (const NodeID v : graph.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

}  // namespace kappa
