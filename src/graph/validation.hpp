/// \file validation.hpp
/// \brief Structural invariants checked by tests and debug assertions.
#pragma once

#include <string>
#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Checks CSR well-formedness: symmetric adjacency with equal weights in
/// both directions, no self-loops, no parallel arcs, positive edge weights,
/// non-negative node weights. Returns an empty string if valid, otherwise
/// a human-readable description of the first violation.
[[nodiscard]] std::string validate_graph(const StaticGraph& graph);

/// Checks that \p partner is a valid matching of \p graph: symmetric,
/// partner[u] == u or {u, partner[u]} is an edge of the graph.
[[nodiscard]] std::string validate_matching(const StaticGraph& graph,
                                            const std::vector<NodeID>& partner);

/// Checks that every node has a block in [0, k) and the cached block
/// weights equal the recomputed ones.
[[nodiscard]] std::string validate_partition(const StaticGraph& graph,
                                             const Partition& partition);

/// Number of connected components (generators promise connectivity of
/// most instances; disconnected graphs are still handled but tested
/// explicitly).
[[nodiscard]] NodeID count_components(const StaticGraph& graph);

}  // namespace kappa
