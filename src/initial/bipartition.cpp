#include "initial/bipartition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "coarsening/hierarchy.hpp"
#include "graph/contraction.hpp"
#include "graph/metrics.hpp"
#include "graph/partition.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/addressable_pq.hpp"

namespace kappa {

namespace {

/// All nodes are eligible in initial-partitioning FM: the graphs are small
/// (coarsest level), so no band restriction is needed.
std::vector<NodeID> all_nodes(NodeID n) {
  std::vector<NodeID> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeID{0});
  return nodes;
}

/// Per-side balance bounds for a (possibly unequal) bisection.
void side_bounds(const StaticGraph& graph, double fraction_a, double eps,
                 NodeWeight& bound_a, NodeWeight& bound_b) {
  const double total = static_cast<double>(graph.total_node_weight());
  bound_a = static_cast<NodeWeight>((1.0 + eps) * fraction_a * total) +
            graph.max_node_weight();
  bound_b =
      static_cast<NodeWeight>((1.0 + eps) * (1.0 - fraction_a) * total) +
      graph.max_node_weight();
}

}  // namespace

std::vector<std::uint8_t> greedy_growing_bisection(const StaticGraph& graph,
                                                   NodeWeight target_a,
                                                   Rng& rng) {
  const NodeID n = graph.num_nodes();
  std::vector<std::uint8_t> side(n, 1);
  if (n == 0) return side;

  // Grow side 0 from a random seed; absorb the frontier node with maximal
  // connectivity gain (weight to region minus weight to the outside).
  AddressablePQ<NodeID, EdgeWeight> frontier(n);
  std::vector<std::uint8_t> grown(n, 0);

  NodeWeight grown_weight = 0;
  NodeID next_seed = static_cast<NodeID>(rng.bounded(n));
  while (grown_weight < target_a) {
    if (frontier.empty()) {
      // Start (or restart, for disconnected graphs) from an ungrown seed.
      while (grown[next_seed]) next_seed = (next_seed + 1) % n;
      frontier.push(next_seed, 0);
    }
    const NodeID u = frontier.pop();
    if (grown[u]) continue;
    grown[u] = 1;
    side[u] = 0;
    grown_weight += graph.node_weight(u);
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (grown[v]) continue;
      // Connectivity of v to the region increases by w(u,v).
      const EdgeWeight delta = graph.arc_weight(e);
      if (frontier.contains(v)) {
        frontier.update_key(v, frontier.key(v) + delta);
      } else {
        frontier.push(v, delta);
      }
    }
  }
  return side;
}

std::vector<std::uint8_t> multilevel_bisection(const StaticGraph& graph,
                                               const BisectionOptions& options,
                                               Rng& rng) {
  // --- Coarsen. ---
  CoarseningOptions coarsening;
  coarsening.rating = options.rating;
  coarsening.matcher = options.matcher;
  coarsening.contraction_limit = options.coarsest_size;
  const Hierarchy hierarchy = build_hierarchy(graph, coarsening, rng);

  // --- Initial bisection on the coarsest graph: best of several greedy
  // growing attempts. ---
  const StaticGraph& coarsest = hierarchy.coarsest();
  const NodeWeight target_a = static_cast<NodeWeight>(
      options.fraction_a * static_cast<double>(graph.total_node_weight()));

  NodeWeight bound_a = 0;
  NodeWeight bound_b = 0;
  side_bounds(graph, options.fraction_a, options.eps, bound_a, bound_b);

  TwoWayFMOptions fm;
  fm.queue_selection = QueueSelection::kTopGain;
  fm.patience_alpha = options.fm_alpha;
  fm.max_block_weight = bound_a;
  fm.max_block_weight_b = bound_b;

  Partition best;
  EdgeWeight best_cut = 0;
  NodeWeight best_imbalance = 0;
  for (int attempt = 0; attempt < std::max(options.growing_attempts, 1);
       ++attempt) {
    Rng attempt_rng = rng.fork(7000 + attempt);
    std::vector<std::uint8_t> side =
        greedy_growing_bisection(coarsest, target_a, attempt_rng);
    std::vector<BlockID> assignment(side.begin(), side.end());
    Partition candidate(coarsest, std::move(assignment), 2);
    // Polish the attempt immediately so the comparison is meaningful.
    for (int round = 0; round < options.fm_rounds; ++round) {
      Rng fm_rng = attempt_rng.fork(round);
      (void)twoway_fm(coarsest, candidate, 0, 1,
                      all_nodes(coarsest.num_nodes()), fm, fm_rng);
    }
    const EdgeWeight cut = edge_cut(coarsest, candidate);
    const NodeWeight imbalance = std::max<NodeWeight>(
        0, std::max(candidate.block_weight(0) - bound_a,
                    candidate.block_weight(1) - bound_b));
    if (attempt == 0 || imbalance < best_imbalance ||
        (imbalance == best_imbalance && cut < best_cut)) {
      best = candidate;
      best_cut = cut;
      best_imbalance = imbalance;
    }
  }

  // --- Uncoarsen with FM refinement per level. ---
  Partition current = std::move(best);
  for (std::size_t level = hierarchy.num_levels() - 1; level > 0; --level) {
    const StaticGraph& fine = hierarchy.graph(level - 1);
    current = project_partition(fine, hierarchy.map(level - 1), current);
    for (int round = 0; round < options.fm_rounds; ++round) {
      Rng fm_rng = rng.fork(9000 + level * 31 + round);
      const TwoWayFMResult result = twoway_fm(
          fine, current, 0, 1, all_nodes(fine.num_nodes()), fm, fm_rng);
      if (result.cut_gain == 0 && result.imbalance_gain == 0) break;
    }
  }

  std::vector<std::uint8_t> side(graph.num_nodes());
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    side[u] = static_cast<std::uint8_t>(current.block(u));
  }
  return side;
}

}  // namespace kappa
