/// \file bipartition.hpp
/// \brief Multilevel 2-way partitioning (building block of recursive
/// bisection and of the Scotch-like baseline).
///
/// A bisection separates a graph into two sides with prescribed target
/// weights (unequal targets occur for non-power-of-two k). The multilevel
/// variant coarsens, seeds the coarsest graph with greedy graph growing
/// and refines every level with two-way FM on the full boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/static_graph.hpp"
#include "matching/matchers.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Parameters of one multilevel bisection.
struct BisectionOptions {
  /// Fraction of the total node weight that side 0 should receive.
  double fraction_a = 0.5;
  /// Allowed relative imbalance per side.
  double eps = 0.03;
  EdgeRating rating = EdgeRating::kExpansionStar2;
  MatcherAlgo matcher = MatcherAlgo::kGPA;
  /// Coarsening stops below this many nodes.
  NodeID coarsest_size = 80;
  /// Greedy-growing attempts on the coarsest graph (best one kept).
  int growing_attempts = 4;
  /// FM repetitions per level.
  int fm_rounds = 2;
  /// FM patience fraction.
  double fm_alpha = 0.2;
};

/// Greedy graph growing (region growing): starting from a random seed,
/// repeatedly absorb the frontier node with the highest connectivity to
/// the grown region until side 0 reaches its target weight. Classic
/// initial bipartitioner of multilevel systems.
[[nodiscard]] std::vector<std::uint8_t> greedy_growing_bisection(
    const StaticGraph& graph, NodeWeight target_a, Rng& rng);

/// Full multilevel bisection: coarsen, grow, refine. Returns the side
/// (0/1) of every node.
[[nodiscard]] std::vector<std::uint8_t> multilevel_bisection(
    const StaticGraph& graph, const BisectionOptions& options, Rng& rng);

}  // namespace kappa
