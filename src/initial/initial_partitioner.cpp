#include "initial/initial_partitioner.hpp"

#include "graph/metrics.hpp"

namespace kappa {

Partition initial_partition(const StaticGraph& graph, BlockID k,
                            const InitialPartitionOptions& options, Rng& rng) {
  RecursiveBisectionOptions rb;
  rb.eps = options.eps;

  const NodeWeight bound = max_block_weight_bound(graph, k, options.eps);

  Partition best;
  EdgeWeight best_cut = 0;
  NodeWeight best_overload = 0;
  for (int attempt = 0; attempt < std::max(options.repeats, 1); ++attempt) {
    Rng attempt_rng = rng.fork(attempt);
    Partition candidate = recursive_bisection(graph, k, rb, attempt_rng);
    const EdgeWeight cut = edge_cut(graph, candidate);
    NodeWeight overload = 0;
    for (BlockID b = 0; b < k; ++b) {
      overload += std::max<NodeWeight>(0, candidate.block_weight(b) - bound);
    }
    // Feasibility first, then cut — "the best solution is broadcast".
    if (attempt == 0 || overload < best_overload ||
        (overload == best_overload && cut < best_cut)) {
      best = std::move(candidate);
      best_cut = cut;
      best_overload = overload;
    }
  }
  return best;
}

}  // namespace kappa
