/// \file initial_partitioner.hpp
/// \brief Initial partitioning of the coarsest graph (§4).
///
/// "We use the sequential algorithms and run them simultaneously on all
/// PEs, each with a different seed for the random number generator. Since
/// initial partitioning is very fast, it is also repeated several times.
/// The best solution is then broadcast to all PEs." The repetitions knob is
/// Table 2's "init. repeats" (1 / 3 / 5).
#pragma once

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "initial/recursive_bisection.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Options of the initial partitioning phase.
struct InitialPartitionOptions {
  double eps = 0.03;
  /// Independent attempts (different seeds); the best result wins.
  /// Emulates "repeats x PEs" of the paper with repeats attempts.
  int repeats = 3;
};

/// Partitions the (coarsest) graph into k blocks: several independent
/// recursive-bisection runs, keeping the best by (feasible-first, cut).
[[nodiscard]] Partition initial_partition(const StaticGraph& graph, BlockID k,
                                          const InitialPartitionOptions& options,
                                          Rng& rng);

}  // namespace kappa
