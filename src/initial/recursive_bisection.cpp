#include "initial/recursive_bisection.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "graph/subgraph.hpp"

namespace kappa {

namespace {

/// Recursively assigns blocks [first_block, first_block + parts) to the
/// subgraph induced by \p nodes.
void bisect_recursive(const StaticGraph& graph,
                      const std::vector<NodeID>& nodes, BlockID first_block,
                      BlockID parts, const RecursiveBisectionOptions& options,
                      Rng& rng, std::vector<BlockID>& result) {
  if (parts == 1) {
    for (const NodeID u : nodes) result[u] = first_block;
    return;
  }

  const Subgraph sub = induced_subgraph(graph, nodes);
  const BlockID left_parts = (parts + 1) / 2;
  const BlockID right_parts = parts - left_parts;

  BisectionOptions bisection = options.bisection;
  bisection.fraction_a =
      static_cast<double>(left_parts) / static_cast<double>(parts);
  // Imbalance accumulates multiplicatively over the ~log2(parts) nested
  // splits below this one: a side that is (1+d) over its target spreads
  // that surplus over all its blocks. Budget the global eps across the
  // remaining depth: (1+eps_inner)^depth <= 1+eps.
  const double depth = std::ceil(std::log2(std::max<double>(parts, 2)));
  bisection.eps =
      std::max(0.002, std::pow(1.0 + options.eps, 1.0 / (depth + 1)) - 1.0);

  Rng split_rng = rng.fork(first_block * 2654435761u + parts);
  const std::vector<std::uint8_t> side =
      multilevel_bisection(sub.graph, bisection, split_rng);

  std::vector<NodeID> left;
  std::vector<NodeID> right;
  for (NodeID local = 0; local < sub.graph.num_nodes(); ++local) {
    (side[local] == 0 ? left : right).push_back(sub.local_to_global[local]);
  }
  bisect_recursive(graph, left, first_block, left_parts, options, rng,
                   result);
  bisect_recursive(graph, right, first_block + left_parts, right_parts,
                   options, rng, result);
}

}  // namespace

Partition recursive_bisection(const StaticGraph& graph, BlockID k,
                              const RecursiveBisectionOptions& options,
                              Rng& rng) {
  assert(k >= 1);
  std::vector<NodeID> all(graph.num_nodes());
  std::iota(all.begin(), all.end(), NodeID{0});
  std::vector<BlockID> assignment(graph.num_nodes(), 0);
  bisect_recursive(graph, all, 0, k, options, rng, assignment);
  return Partition(graph, std::move(assignment), k);
}

}  // namespace kappa
