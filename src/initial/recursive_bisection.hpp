/// \file recursive_bisection.hpp
/// \brief k-way partitioning by recursive bisection.
///
/// Splits k into ceil(k/2) + floor(k/2) with proportional weight targets,
/// bisects, and recurses on the induced subgraphs. With multilevel
/// bisections this is the algorithmic core of Scotch; KaPPa uses it as
/// the initial partitioner on the coarsest graph (§4).
#pragma once

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "initial/bipartition.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Options of a recursive bisection run.
struct RecursiveBisectionOptions {
  double eps = 0.03;
  BisectionOptions bisection;  ///< fraction_a/eps are overwritten per split
};

/// Partitions \p graph into \p k blocks by recursive multilevel bisection.
[[nodiscard]] Partition recursive_bisection(
    const StaticGraph& graph, BlockID k,
    const RecursiveBisectionOptions& options, Rng& rng);

}  // namespace kappa
