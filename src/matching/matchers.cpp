#include "matching/matchers.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace kappa {

namespace {

/// Union-find over nodes used by GPA to track which path a node belongs to.
class UnionFind {
 public:
  explicit UnionFind(NodeID n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeID{0});
  }

  NodeID find(NodeID u) {
    while (parent_[u] != u) {
      parent_[u] = parent_[parent_[u]];
      u = parent_[u];
    }
    return u;
  }

  /// Merges the components of a and b; returns the new root.
  NodeID unite(NodeID a, NodeID b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
    return a;
  }

 private:
  std::vector<NodeID> parent_;
};

/// Sorts rated edges by descending rating with randomized tie-breaking
/// (shuffle first, then stable sort).
void sort_edges_by_rating(std::vector<RatedEdge>& edges, Rng& rng) {
  rng.shuffle(edges);
  std::stable_sort(edges.begin(), edges.end(),
                   [](const RatedEdge& a, const RatedEdge& b) {
                     return a.rating > b.rating;
                   });
}

/// Removes edges whose combined endpoint weight exceeds the bound or
/// whose endpoints violate the block constraint.
std::vector<RatedEdge> admissible_edges(const StaticGraph& graph,
                                        const MatchingOptions& options) {
  std::vector<RatedEdge> edges = collect_rated_edges(graph, options.rating);
  if (options.max_pair_weight != std::numeric_limits<NodeWeight>::max()) {
    std::erase_if(edges, [&](const RatedEdge& e) {
      return graph.node_weight(e.u) + graph.node_weight(e.v) >
             options.max_pair_weight;
    });
  }
  if (options.blocks != nullptr) {
    std::erase_if(edges, [&](const RatedEdge& e) {
      return !options.same_block(e.u, e.v);
    });
  }
  return edges;
}

/// SHEM (§3.2): scan nodes by increasing degree; match each scanned node to
/// its best-rated still-unmatched neighbor.
std::vector<NodeID> shem_matching(const StaticGraph& graph,
                                  const MatchingOptions& options, Rng& rng) {
  const NodeID n = graph.num_nodes();
  std::vector<NodeID> partner(n);
  std::iota(partner.begin(), partner.end(), NodeID{0});

  std::vector<NodeID> order = rng.permutation(n);
  std::stable_sort(order.begin(), order.end(), [&](NodeID a, NodeID b) {
    return graph.degree(a) < graph.degree(b);
  });

  std::vector<EdgeWeight> out;
  if (options.rating == EdgeRating::kInnerOuter) {
    out.resize(n);
    for (NodeID u = 0; u < n; ++u) out[u] = graph.weighted_degree(u);
  }

  for (const NodeID v : order) {
    if (partner[v] != v) continue;
    NodeID best = kInvalidNode;
    double best_rating = -1.0;
    for (EdgeID e = graph.first_arc(v); e < graph.last_arc(v); ++e) {
      const NodeID u = graph.arc_target(e);
      if (partner[u] != u) continue;
      if (graph.node_weight(u) + graph.node_weight(v) >
          options.max_pair_weight) {
        continue;
      }
      if (!options.same_block(u, v)) continue;
      const EdgeWeight ou = out.empty() ? 0 : out[u];
      const EdgeWeight ov = out.empty() ? 0 : out[v];
      const double r = rate_edge(options.rating, graph.arc_weight(e),
                                 graph.node_weight(u), graph.node_weight(v),
                                 ou, ov);
      if (r > best_rating) {
        best_rating = r;
        best = u;
      }
    }
    if (best != kInvalidNode) {
      partner[v] = best;
      partner[best] = v;
    }
  }
  return partner;
}

/// Greedy (§3.2): edges in rating order; match whenever both ends are free.
/// Guarantees a 1/2-approximation of the maximum rating matching.
std::vector<NodeID> greedy_matching(const StaticGraph& graph,
                                    const MatchingOptions& options, Rng& rng) {
  std::vector<RatedEdge> edges = admissible_edges(graph, options);
  sort_edges_by_rating(edges, rng);

  std::vector<NodeID> partner(graph.num_nodes());
  std::iota(partner.begin(), partner.end(), NodeID{0});
  for (const RatedEdge& e : edges) {
    if (partner[e.u] == e.u && partner[e.v] == e.v) {
      partner[e.u] = e.v;
      partner[e.v] = e.u;
    }
  }
  return partner;
}

/// Maximum-rating matching of a path given as an ordered edge sequence;
/// classic O(L) dynamic program. Appends chosen indices of \p path_edges
/// (which index into \p edges) to \p chosen.
void path_dp(const std::vector<RatedEdge>& edges,
             const std::vector<std::size_t>& path_edges, std::size_t begin,
             std::size_t end, std::vector<std::size_t>& chosen) {
  if (begin >= end) return;
  const std::size_t len = end - begin;
  // best[i]: best matching rating among the first i edges of the range.
  std::vector<double> best(len + 1, 0.0);
  best[1] = edges[path_edges[begin]].rating;
  for (std::size_t i = 2; i <= len; ++i) {
    const double take =
        best[i - 2] + edges[path_edges[begin + i - 1]].rating;
    best[i] = std::max(best[i - 1], take);
  }
  std::size_t i = len;
  while (i >= 1) {
    if (best[i] == best[i - 1]) {
      --i;
    } else {
      chosen.push_back(path_edges[begin + i - 1]);
      if (i < 2) break;
      i -= 2;
    }
  }
}

/// Maximum-rating matching of an even cycle: either drop the closing edge
/// (path on the rest) or force it in (and drop both its neighbors).
void cycle_dp(const std::vector<RatedEdge>& edges,
              const std::vector<std::size_t>& cycle_edges,
              std::vector<std::size_t>& chosen) {
  const std::size_t len = cycle_edges.size();
  assert(len >= 2);
  // Option A: exclude the last edge.
  std::vector<std::size_t> a;
  path_dp(edges, cycle_edges, 0, len - 1, a);
  double value_a = 0.0;
  for (std::size_t idx : a) value_a += edges[idx].rating;
  // Option B: include the last edge, excluding its two cycle neighbors.
  std::vector<std::size_t> b;
  if (len >= 3) path_dp(edges, cycle_edges, 1, len - 2, b);
  double value_b = edges[cycle_edges[len - 1]].rating;
  for (std::size_t idx : b) value_b += edges[idx].rating;
  b.push_back(cycle_edges[len - 1]);

  const std::vector<std::size_t>& winner = value_b > value_a ? b : a;
  chosen.insert(chosen.end(), winner.begin(), winner.end());
}

}  // namespace

namespace detail {

void gpa_match_edges(NodeID num_nodes, const std::vector<RatedEdge>& edges,
                     std::vector<NodeID>& partner) {
  // Phase 1: grow a collection of paths and even cycles (§3.2). An edge is
  // applicable iff both endpoints have degree <= 1 in the collection and it
  // either connects two different paths or closes a path with an odd number
  // of edges into an even cycle.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::uint8_t> deg(num_nodes, 0);
  std::vector<std::array<std::size_t, 2>> incident(num_nodes,
                                                   {kNone, kNone});
  UnionFind uf(num_nodes);
  std::vector<NodeID> path_edge_count(num_nodes, 0);  // indexed by root
  std::vector<std::uint8_t> is_cycle(num_nodes, 0);

  for (std::size_t i = 0; i < edges.size(); ++i) {
    const RatedEdge& e = edges[i];
    if (deg[e.u] >= 2 || deg[e.v] >= 2) continue;
    const NodeID ru = uf.find(e.u);
    const NodeID rv = uf.find(e.v);
    if (ru == rv) {
      // Same path: closing it yields a cycle with path_edge_count+1 edges;
      // only even cycles admit a perfect alternation, so require an odd
      // number of path edges.
      if (is_cycle[ru] || path_edge_count[ru] % 2 == 0) continue;
      is_cycle[ru] = 1;
      path_edge_count[ru] += 1;
    } else {
      const NodeID r = uf.unite(ru, rv);
      path_edge_count[r] =
          path_edge_count[ru] + path_edge_count[rv] + 1;
    }
    incident[e.u][deg[e.u]++] = i;
    incident[e.v][deg[e.v]++] = i;
  }

  // Phase 2: solve every path / cycle optimally by dynamic programming.
  std::vector<std::uint8_t> edge_visited(edges.size(), 0);
  std::vector<std::size_t> sequence;
  std::vector<std::size_t> chosen;

  auto walk_from = [&](NodeID start, std::size_t first_edge) {
    sequence.clear();
    NodeID cur = start;
    std::size_t eidx = first_edge;
    while (true) {
      edge_visited[eidx] = 1;
      sequence.push_back(eidx);
      const RatedEdge& e = edges[eidx];
      const NodeID nxt = (e.u == cur) ? e.v : e.u;
      std::size_t next_edge = kNone;
      for (const std::size_t cand : incident[nxt]) {
        if (cand != kNone && !edge_visited[cand]) next_edge = cand;
      }
      if (next_edge == kNone) break;
      cur = nxt;
      eidx = next_edge;
    }
  };

  // Paths: start the walk at degree-1 endpoints.
  for (NodeID u = 0; u < num_nodes; ++u) {
    if (deg[u] != 1) continue;
    const std::size_t first = incident[u][0];
    if (edge_visited[first]) continue;
    walk_from(u, first);
    path_dp(edges, sequence, 0, sequence.size(), chosen);
  }
  // Cycles: whatever degree-2 structure is left.
  for (NodeID u = 0; u < num_nodes; ++u) {
    if (deg[u] != 2) continue;
    const std::size_t first = incident[u][0];
    if (edge_visited[first]) continue;
    walk_from(u, first);
    cycle_dp(edges, sequence, chosen);
  }

  for (const std::size_t idx : chosen) {
    const RatedEdge& e = edges[idx];
    assert(partner[e.u] == e.u && partner[e.v] == e.v);
    partner[e.u] = e.v;
    partner[e.v] = e.u;
  }
}

}  // namespace detail

const char* matcher_name(MatcherAlgo algo) {
  switch (algo) {
    case MatcherAlgo::kSHEM:
      return "shem";
    case MatcherAlgo::kGreedy:
      return "greedy";
    case MatcherAlgo::kGPA:
      return "gpa";
  }
  return "?";
}

std::vector<NodeID> compute_matching(const StaticGraph& graph,
                                     MatcherAlgo algo,
                                     const MatchingOptions& options,
                                     Rng& rng) {
  switch (algo) {
    case MatcherAlgo::kSHEM:
      return shem_matching(graph, options, rng);
    case MatcherAlgo::kGreedy:
      return greedy_matching(graph, options, rng);
    case MatcherAlgo::kGPA: {
      std::vector<RatedEdge> edges = admissible_edges(graph, options);
      sort_edges_by_rating(edges, rng);
      std::vector<NodeID> partner(graph.num_nodes());
      std::iota(partner.begin(), partner.end(), NodeID{0});
      detail::gpa_match_edges(graph.num_nodes(), edges, partner);
      return partner;
    }
  }
  return {};
}

double matching_rating(const StaticGraph& graph,
                       const std::vector<NodeID>& partner, EdgeRating rating) {
  std::vector<RatedEdge> edges = collect_rated_edges(graph, rating);
  double total = 0.0;
  for (const RatedEdge& e : edges) {
    if (partner[e.u] == e.v) total += e.rating;
  }
  return total;
}

NodeID matching_size(const std::vector<NodeID>& partner) {
  NodeID matched = 0;
  for (NodeID u = 0; u < partner.size(); ++u) {
    if (partner[u] != u) ++matched;
  }
  return matched / 2;
}

}  // namespace kappa
