/// \file matchers.hpp
/// \brief Sequential matching algorithms: SHEM, Greedy, GPA (§3.2).
///
/// All three run in (near) linear time and guarantee (Greedy, GPA) a
/// 1/2-approximation of the maximum rating matching. Matchings are
/// represented as a symmetric partner array: partner[u] == v iff {u,v} is
/// matched, partner[u] == u iff u is unmatched.
#pragma once

#include <limits>
#include <vector>

#include "graph/static_graph.hpp"
#include "matching/ratings.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// The three sequential matching algorithms compared in Table 3.
enum class MatcherAlgo {
  kSHEM,    ///< Sorted Heavy Edge Matching (Metis): node scan by degree
  kGreedy,  ///< edge scan in rating order, immediate matching
  kGPA,     ///< Global Path Algorithm: paths/cycles + DP (the default)
};

/// Human-readable matcher name (for table output).
[[nodiscard]] const char* matcher_name(MatcherAlgo algo);

/// Options shared by all matchers.
struct MatchingOptions {
  EdgeRating rating = EdgeRating::kExpansionStar2;
  /// Pairs with c(u) + c(v) above this bound are never matched; keeps
  /// coarse node weights below the balance bound so initial partitioning
  /// stays feasible.
  NodeWeight max_pair_weight = std::numeric_limits<NodeWeight>::max();
  /// Block constraint of warm-started (repartitioning) coarsening: when
  /// set, a pair whose endpoints carry different blocks is never a
  /// candidate — the filter runs during rating, so a boundary node picks
  /// its best intra-block partner instead of losing its matched edge to a
  /// post-matching dissolve. Indexed by the node ids of the graph being
  /// matched; borrowed, must outlive the call. nullptr = unconstrained.
  const std::vector<BlockID>* blocks = nullptr;

  /// Whether {u, v} may be matched under the block constraint.
  [[nodiscard]] bool same_block(NodeID u, NodeID v) const {
    return blocks == nullptr || (*blocks)[u] == (*blocks)[v];
  }
};

/// Computes a matching of \p graph with the chosen algorithm. \p rng breaks
/// ties / randomizes scan order where the algorithm allows it.
[[nodiscard]] std::vector<NodeID> compute_matching(const StaticGraph& graph,
                                                   MatcherAlgo algo,
                                                   const MatchingOptions& options,
                                                   Rng& rng);

/// Total rating of a matching (what the approximation guarantee is about).
[[nodiscard]] double matching_rating(const StaticGraph& graph,
                                     const std::vector<NodeID>& partner,
                                     EdgeRating rating);

/// Number of matched pairs.
[[nodiscard]] NodeID matching_size(const std::vector<NodeID>& partner);

namespace detail {

/// Runs the GPA path/cycle dynamic program on an explicit rated edge list
/// (already filtered + sorted by descending rating). Exposed for the
/// parallel matcher and for white-box tests.
void gpa_match_edges(NodeID num_nodes, const std::vector<RatedEdge>& edges,
                     std::vector<NodeID>& partner);

}  // namespace detail

}  // namespace kappa
