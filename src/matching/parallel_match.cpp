#include "matching/parallel_match.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graph/subgraph.hpp"
#include "matching/tentative_match.hpp"

namespace kappa {

std::vector<NodeID> parallel_matching(const StaticGraph& graph,
                                      const std::vector<BlockID>& node_to_pe,
                                      BlockID num_pes, MatcherAlgo algo,
                                      const MatchingOptions& options, Rng& rng,
                                      ParallelMatchingStats* stats) {
  const NodeID n = graph.num_nodes();
  assert(node_to_pe.size() == n);

  std::vector<NodeID> partner(n);
  std::iota(partner.begin(), partner.end(), NodeID{0});

  // --- Phase 1: sequential matching on each PE's induced subgraph. ---
  std::vector<std::vector<NodeID>> pe_nodes(num_pes);
  for (NodeID u = 0; u < n; ++u) pe_nodes[node_to_pe[u]].push_back(u);

  for (BlockID pe = 0; pe < num_pes; ++pe) {
    if (pe_nodes[pe].empty()) continue;
    const Subgraph sub = induced_subgraph(graph, pe_nodes[pe]);
    Rng pe_rng = rng.fork(pe);
    // The block constraint travels into the subgraph's id space.
    MatchingOptions sub_options = options;
    std::vector<BlockID> sub_blocks;
    if (options.blocks != nullptr) {
      sub_blocks.reserve(sub.local_to_global.size());
      for (const NodeID u : sub.local_to_global) {
        sub_blocks.push_back((*options.blocks)[u]);
      }
      sub_options.blocks = &sub_blocks;
    }
    const std::vector<NodeID> local =
        compute_matching(sub.graph, algo, sub_options, pe_rng);
    for (NodeID lu = 0; lu < local.size(); ++lu) {
      const NodeID lv = local[lu];
      if (lv <= lu) continue;  // handle each pair once, skip unmatched
      const NodeID u = sub.local_to_global[lu];
      const NodeID v = sub.local_to_global[lv];
      partner[u] = v;
      partner[v] = u;
    }
  }
  if (stats != nullptr) stats->local_pairs = matching_size(partner);

  // Rating of the locally matched edge at each node (0 if unmatched).
  const TentativeMatchRater rater(graph, options);
  std::vector<double> local_match_rating(n, 0.0);
  for (NodeID u = 0; u < n; ++u) {
    local_match_rating[u] = rater.match_rating(u, partner[u]);
  }

  // --- Phase 2: gap graph (§3.3). ---
  std::vector<RatedEdge> gap;
  for (NodeID u = 0; u < n; ++u) {
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (u >= v || node_to_pe[u] == node_to_pe[v]) continue;
      const EdgeWeight w = graph.arc_weight(e);
      double r = 0.0;
      if (rater.admits_gap_edge(u, v, w, local_match_rating[u],
                                local_match_rating[v], &r)) {
        gap.push_back({u, v, w, r});
      }
    }
  }
  if (stats != nullptr) stats->gap_edges = gap.size();

  // Iterated locally-heaviest matching: in every round each endpoint
  // nominates its best remaining gap edge; an edge that is nominated by
  // both endpoints is matched, dissolving tentative local matches.
  std::vector<std::uint8_t> gap_alive(gap.size(), 1);
  std::vector<std::uint8_t> node_taken(n, 0);
  std::size_t rounds = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    ++rounds;
    // best remaining gap edge per node (index into gap, by rating then
    // lower index for determinism).
    std::vector<std::size_t> best(n, gap.size());
    for (std::size_t i = 0; i < gap.size(); ++i) {
      if (!gap_alive[i]) continue;
      for (const NodeID x : {gap[i].u, gap[i].v}) {
        if (node_taken[x]) continue;
        std::size_t& b = best[x];
        if (b == gap.size() || gap[i].rating > gap[b].rating ||
            (gap[i].rating == gap[b].rating && i < b)) {
          b = i;
        }
      }
    }
    for (std::size_t i = 0; i < gap.size(); ++i) {
      if (!gap_alive[i]) continue;
      const NodeID u = gap[i].u;
      const NodeID v = gap[i].v;
      if (node_taken[u] || node_taken[v]) {
        gap_alive[i] = 0;
        continue;
      }
      if (best[u] == i && best[v] == i) {
        // Dissolve tentative local matches of u and v.
        for (const NodeID x : {u, v}) {
          const NodeID p = partner[x];
          if (p != x) {
            partner[p] = p;
            local_match_rating[p] = 0.0;
          }
        }
        partner[u] = v;
        partner[v] = u;
        node_taken[u] = 1;
        node_taken[v] = 1;
        gap_alive[i] = 0;
        progress = true;
        if (stats != nullptr) ++stats->gap_pairs;
      }
    }
  }
  if (stats != nullptr) stats->gap_rounds = rounds;
  return partner;
}

}  // namespace kappa
