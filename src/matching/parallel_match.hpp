/// \file parallel_match.hpp
/// \brief Parallel matching via local matching + gap graph (§3.3).
///
/// Strategy after Manne & Bisseling: the nodes are pre-partitioned among
/// PEs (geometrically if coordinates exist, else by node numbering). Each
/// PE runs a sequential matcher on the subgraph induced by its local
/// nodes. The *gap graph* consists of the cross-PE edges whose rating
/// exceeds the ratings of the locally matched edges at both endpoints;
/// on it, edges that are locally heaviest at both endpoints are matched
/// iteratively until none remain.
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "matching/matchers.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Statistics of one parallel matching run (exported for the scalability
/// experiments: cross-PE work is what an MPI implementation communicates).
struct ParallelMatchingStats {
  NodeID local_pairs = 0;       ///< pairs matched inside PEs
  NodeID gap_pairs = 0;         ///< pairs matched across PE boundaries
  std::size_t gap_edges = 0;    ///< size of the gap graph
  std::size_t gap_rounds = 0;   ///< iterations of the locally-heaviest loop
};

/// Computes a matching with the two-phase parallel scheme.
///
/// \param node_to_pe  home PE of every node (values in [0, num_pes))
/// \param stats       optional output statistics
///
/// A gap edge that wins both of its endpoints dissolves any local matches
/// of those endpoints (their former partners become unmatched), exactly as
/// a distributed implementation would renege on a tentative local match
/// when a heavier cross-boundary edge materializes.
[[nodiscard]] std::vector<NodeID> parallel_matching(
    const StaticGraph& graph, const std::vector<BlockID>& node_to_pe,
    BlockID num_pes, MatcherAlgo algo, const MatchingOptions& options,
    Rng& rng, ParallelMatchingStats* stats = nullptr);

}  // namespace kappa
