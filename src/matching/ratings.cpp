#include "matching/ratings.hpp"

#include <algorithm>
#include <cassert>

namespace kappa {

const char* rating_name(EdgeRating rating) {
  switch (rating) {
    case EdgeRating::kWeight:
      return "weight";
    case EdgeRating::kExpansion:
      return "expansion";
    case EdgeRating::kExpansionStar:
      return "expansion*";
    case EdgeRating::kExpansionStar2:
      return "expansion*2";
    case EdgeRating::kInnerOuter:
      return "innerOuter";
  }
  return "?";
}

double rate_edge(EdgeRating rating, EdgeWeight w, NodeWeight cu, NodeWeight cv,
                 EdgeWeight out_u, EdgeWeight out_v) {
  const double dw = static_cast<double>(w);
  // Node weights are >= 1 for any graph produced by GraphBuilder or
  // contract(); clamp defensively so ratings stay finite.
  const double du = static_cast<double>(std::max<NodeWeight>(cu, 1));
  const double dv = static_cast<double>(std::max<NodeWeight>(cv, 1));
  switch (rating) {
    case EdgeRating::kWeight:
      return dw;
    case EdgeRating::kExpansion:
      return dw / (du + dv);
    case EdgeRating::kExpansionStar:
      return dw / (du * dv);
    case EdgeRating::kExpansionStar2:
      return dw * dw / (du * dv);
    case EdgeRating::kInnerOuter: {
      // Out(u) + Out(v) - 2 omega(e) counts the weight of edges leaving the
      // would-be cluster {u, v}; an isolated pair has no outer edges and
      // gets the maximal finite rating.
      const double outer =
          static_cast<double>(out_u) + static_cast<double>(out_v) - 2.0 * dw;
      return outer <= 0.0 ? dw * 1e12 : dw / outer;
    }
  }
  return 0.0;
}

std::vector<RatedEdge> collect_rated_edges(const StaticGraph& graph,
                                           EdgeRating rating) {
  const NodeID n = graph.num_nodes();
  std::vector<EdgeWeight> out;
  if (rating == EdgeRating::kInnerOuter) {
    out.resize(n);
    for (NodeID u = 0; u < n; ++u) out[u] = graph.weighted_degree(u);
  }
  std::vector<RatedEdge> edges;
  edges.reserve(graph.num_edges());
  for (NodeID u = 0; u < n; ++u) {
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (u >= v) continue;
      const EdgeWeight w = graph.arc_weight(e);
      const EdgeWeight ou = out.empty() ? 0 : out[u];
      const EdgeWeight ov = out.empty() ? 0 : out[v];
      edges.push_back(
          {u, v, w,
           rate_edge(rating, w, graph.node_weight(u), graph.node_weight(v), ou,
                     ov)});
    }
  }
  return edges;
}

}  // namespace kappa
