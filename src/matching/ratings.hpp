/// \file ratings.hpp
/// \brief Edge rating functions for contraction (§3.1).
///
/// The paper's key coarsening insight: rate edges not only by weight but by
/// functions that also *discourage heavy end nodes*, keeping node weights
/// uniform across contraction levels. The plain weight rating is up to
/// 8.8% worse than the alternatives (Table 3).
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// The five edge ratings evaluated in the paper.
enum class EdgeRating {
  kWeight,          ///< omega(e) — the classic rating, worst performer
  kExpansion,       ///< omega(e) / (c(u) + c(v))
  kExpansionStar,   ///< omega(e) / (c(u) * c(v))
  kExpansionStar2,  ///< omega(e)^2 / (c(u) * c(v)) — the paper's default
  kInnerOuter,      ///< omega(e) / (Out(u) + Out(v) - 2 omega(e))
};

/// Human-readable rating name (for table output).
[[nodiscard]] const char* rating_name(EdgeRating rating);

/// An undirected edge with its rating, as consumed by Greedy and GPA.
struct RatedEdge {
  NodeID u;
  NodeID v;
  EdgeWeight weight;  ///< original omega(e), kept for reporting
  double rating;      ///< rating value; matchers maximize total rating
};

/// Rates a single edge {u, v} of weight w.
/// \p out_u, \p out_v are the weighted degrees Out(u), Out(v), used only by
/// innerOuter (pass 0 otherwise).
[[nodiscard]] double rate_edge(EdgeRating rating, EdgeWeight w, NodeWeight cu,
                               NodeWeight cv, EdgeWeight out_u,
                               EdgeWeight out_v);

/// Collects every undirected edge of \p graph with its rating.
/// Weighted degrees are precomputed once so the whole pass is O(m).
[[nodiscard]] std::vector<RatedEdge> collect_rated_edges(
    const StaticGraph& graph, EdgeRating rating);

}  // namespace kappa
