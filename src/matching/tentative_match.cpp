#include "matching/tentative_match.hpp"

#include <cassert>
#include <limits>

namespace kappa {

TentativeMatchRater::TentativeMatchRater(const StaticGraph& graph,
                                         const MatchingOptions& options)
    : graph_(&graph), options_(&options) {
  if (options.rating == EdgeRating::kInnerOuter) {
    out_.resize(graph.num_nodes());
    for (NodeID u = 0; u < graph.num_nodes(); ++u) {
      out_[u] = graph.weighted_degree(u);
    }
  }
}

TentativeMatchRater::TentativeMatchRater(
    const StaticGraph& graph, const MatchingOptions& options,
    std::vector<EdgeWeight> weighted_degrees)
    : graph_(&graph), options_(&options) {
  if (options.rating == EdgeRating::kInnerOuter) {
    assert(weighted_degrees.size() == graph.num_nodes());
    out_ = std::move(weighted_degrees);
  }
}

double TentativeMatchRater::rate_arc(NodeID u, NodeID v, EdgeWeight w) const {
  const EdgeWeight ou = out_.empty() ? 0 : out_[u];
  const EdgeWeight ov = out_.empty() ? 0 : out_[v];
  return rate_edge(options_->rating, w, graph_->node_weight(u),
                   graph_->node_weight(v), ou, ov);
}

double TentativeMatchRater::match_rating(NodeID u, NodeID partner_u) const {
  if (partner_u == u) return 0.0;
  for (EdgeID e = graph_->first_arc(u); e < graph_->last_arc(u); ++e) {
    if (graph_->arc_target(e) == partner_u) {
      return rate_arc(u, partner_u, graph_->arc_weight(e));
    }
  }
  return 0.0;
}

bool TentativeMatchRater::admits_gap_edge(NodeID u, NodeID v, EdgeWeight w,
                                          double rating_u, double rating_v,
                                          double* rating_out) const {
  if (options_->max_pair_weight != std::numeric_limits<NodeWeight>::max() &&
      graph_->node_weight(u) + graph_->node_weight(v) >
          options_->max_pair_weight) {
    return false;
  }
  if (!options_->same_block(u, v)) return false;
  const double r = rate_arc(u, v, w);
  if (r > rating_u && r > rating_v) {
    *rating_out = r;
    return true;
  }
  return false;
}

}  // namespace kappa
