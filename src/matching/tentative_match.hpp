/// \file tentative_match.hpp
/// \brief Shared tentative-match rating and the §3.3 gap condition.
///
/// The two-phase parallel matching scheme exists twice: simulated
/// in-process (matching/parallel_match.cpp) and genuinely SPMD over
/// channels (parallel/spmd_phases.cpp). Both build the gap graph the same
/// way — a cross-PE edge qualifies iff its rating beats the *tentative
/// local match* at both endpoints — so the rating of a node's tentative
/// match and the gap condition live here, in one body.
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "matching/matchers.hpp"
#include "util/types.hpp"

namespace kappa {

/// Rates arcs of one contraction level under MatchingOptions.rating
/// (precomputing the weighted degrees the innerOuter rating needs) and
/// evaluates the §3.3 gap condition.
class TentativeMatchRater {
 public:
  TentativeMatchRater(const StaticGraph& graph, const MatchingOptions& options);

  /// Variant for a sharded (ghost-layer) CSR whose ghost rows are not
  /// materialized: \p weighted_degrees supplies the full-row weighted
  /// degree per node id of \p graph (owned nodes computed locally, ghost
  /// entries received over the wire). Only consulted by the innerOuter
  /// rating, matching the primary constructor.
  TentativeMatchRater(const StaticGraph& graph, const MatchingOptions& options,
                      std::vector<EdgeWeight> weighted_degrees);

  /// Rating of the arc {u, v} of weight \p w.
  [[nodiscard]] double rate_arc(NodeID u, NodeID v, EdgeWeight w) const;

  /// Rating of \p u's tentative matched edge {u, partner_u}; 0.0 when u
  /// is unmatched (partner_u == u). Scans u's arcs for the partner.
  [[nodiscard]] double match_rating(NodeID u, NodeID partner_u) const;

  /// The §3.3 gap condition for a cross-PE edge {u, v} of weight \p w:
  /// the edge enters the gap graph iff the pair weight bound and the
  /// block constraint (warm-started coarsening) admit the contraction
  /// and the edge rating strictly beats the tentative match ratings at
  /// both endpoints (\p rating_u, \p rating_v — possibly received over
  /// the wire). On admission the edge rating is written to
  /// *\p rating_out.
  [[nodiscard]] bool admits_gap_edge(NodeID u, NodeID v, EdgeWeight w,
                                     double rating_u, double rating_v,
                                     double* rating_out) const;

 private:
  const StaticGraph* graph_;
  const MatchingOptions* options_;
  std::vector<EdgeWeight> out_;  ///< weighted degrees; innerOuter only
};

}  // namespace kappa
