/// \file channel.hpp
/// \brief Blocking message channels: the mailbox shared by the transport
/// backends.
///
/// Both transport backends (transport_inproc.hpp, transport_tcp.hpp)
/// deliver incoming messages through a Mailbox: send() enqueues a tagged
/// word buffer at the destination, receive() blocks until a message from
/// the requested source arrives. Payloads are flat 64-bit word vectors —
/// the same "serialize everything into buffers" discipline an MPI
/// implementation enforces.
///
/// Messages are kept in one queue *per source* plus a global arrival
/// sequence number: a targeted pop is O(1) at the head of its source
/// queue, and an any-source pop scans only the queue fronts (O(number of
/// sources)) for the lowest sequence number. The previous single-deque
/// design rescanned every pending message from the front on each wakeup,
/// degrading O(q^2) under the async scheduler's p2p-heavy traffic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "parallel/transport.hpp"

namespace kappa {

/// One PE's mailbox. Thread-safe multi-producer, single-consumer.
///
/// Lifecycle hooks for multi-process transports: finish_source() marks a
/// peer as cleanly shut down (queued messages still drain; popping beyond
/// them is a protocol error and throws), fail() poisons the whole mailbox
/// (a peer died — every subsequent pop throws immediately, so the failure
/// surfaces instead of hanging). The in-process backend never calls
/// either, preserving the original block-forever semantics.
class Mailbox {
 public:
  /// Enqueues a message (called by any sending thread). Messages from
  /// negative sources are rejected by design — source ranks index the
  /// per-source queues.
  void push(Message message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SourceQueue& sq = source_queue(message.source);
      sq.queue.emplace_back(next_seq_++, std::move(message.payload));
    }
    available_.notify_all();
  }

  /// Pre-creates the queue of \p source so that an all-sources-finished
  /// condition can be detected even for peers that never sent anything.
  void register_source(int source) {
    std::lock_guard<std::mutex> lock(mutex_);
    (void)source_queue(source);
  }

  /// Blocks until a message from \p source arrives, then removes and
  /// returns it. Pass -1 to accept any source (earliest arrival wins,
  /// like the single-queue design). Throws TransportError if the mailbox
  /// failed or the requested source can never deliver again.
  Message pop(int source) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (std::optional<Message> msg = take_locked(source)) {
        return std::move(*msg);
      }
      available_.wait(lock);
    }
  }

  /// pop() with a deadline: empty optional once \p deadline passes with
  /// no matching message. Still throws on failure / finished sources.
  std::optional<Message> pop_until(
      int source, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (std::optional<Message> msg = take_locked(source)) {
        return msg;
      }
      if (available_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        return take_locked(source);
      }
    }
  }

  /// Non-blocking variant; empty optional if no matching message queued.
  std::optional<Message> try_pop(int source) {
    std::lock_guard<std::mutex> lock(mutex_);
    return take_locked(source);
  }

  /// Marks \p source as cleanly shut down: its queued messages remain
  /// poppable, but a pop finding it empty afterwards throws instead of
  /// waiting for a message that can never come.
  void finish_source(int source) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      source_queue(source).finished = true;
    }
    available_.notify_all();
  }

  /// Poisons the mailbox: every subsequent pop throws TransportError with
  /// \p reason (first failure wins). Queued messages are unreachable — a
  /// run whose peer died cannot complete, so surfacing the error beats
  /// draining stale traffic.
  void fail(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!failed_) {
        failed_ = true;
        fail_reason_ = std::move(reason);
      }
    }
    available_.notify_all();
  }

  /// Number of queued messages (for tests).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const SourceQueue& sq : sources_) total += sq.queue.size();
    return total;
  }

  /// Per-source queue depths, (source, depth) ascending by source — the
  /// stall-report view: a deep queue names the peer whose traffic this
  /// rank has stopped draining. Registered-but-empty sources report 0.
  [[nodiscard]] std::vector<std::pair<int, std::size_t>> depths() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<int, std::size_t>> result;
    result.reserve(sources_.size());
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      result.emplace_back(static_cast<int>(s), sources_[s].queue.size());
    }
    return result;
  }

 private:
  struct SourceQueue {
    std::deque<std::pair<std::uint64_t, std::vector<std::uint64_t>>> queue;
    bool finished = false;
  };

  SourceQueue& source_queue(int source) {
    const std::size_t index = static_cast<std::size_t>(source);
    if (sources_.size() <= index) sources_.resize(index + 1);
    return sources_[index];
  }

  // Removes and returns the matching message with the lowest arrival
  // sequence number, or nullopt when the caller must keep waiting.
  // Caller holds mutex_.
  std::optional<Message> take_locked(int source) {
    if (failed_) throw TransportError(fail_reason_);
    if (source >= 0) {
      const std::size_t index = static_cast<std::size_t>(source);
      if (index < sources_.size() && !sources_[index].queue.empty()) {
        Message msg{source, std::move(sources_[index].queue.front().second)};
        sources_[index].queue.pop_front();
        return msg;
      }
      if (index < sources_.size() && sources_[index].finished) {
        throw TransportError("receive from rank " + std::to_string(source) +
                             ": peer already shut down cleanly with no "
                             "matching message queued");
      }
      return std::nullopt;
    }
    // Any-source: earliest arrival across the queue fronts.
    int best = -1;
    std::uint64_t best_seq = 0;
    bool all_finished = !sources_.empty();
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      if (!sources_[s].queue.empty()) {
        const std::uint64_t seq = sources_[s].queue.front().first;
        if (best < 0 || seq < best_seq) {
          best = static_cast<int>(s);
          best_seq = seq;
        }
      }
      if (!sources_[s].finished) all_finished = false;
    }
    if (best >= 0) {
      Message msg{best, std::move(sources_[static_cast<std::size_t>(best)]
                                      .queue.front()
                                      .second)};
      sources_[static_cast<std::size_t>(best)].queue.pop_front();
      return msg;
    }
    if (all_finished) {
      throw TransportError(
          "receive from any source: every peer already shut down cleanly "
          "with no message queued");
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::uint64_t next_seq_ = 0;
  std::vector<SourceQueue> sources_;
  bool failed_ = false;
  std::string fail_reason_;
};

}  // namespace kappa
