/// \file channel.hpp
/// \brief Blocking message channels between PE threads.
///
/// The PE runtime (pe_runtime.hpp) replaces MPI point-to-point messaging:
/// every PE owns one mailbox; send() enqueues a tagged word buffer,
/// receive() blocks until a message from the requested source arrives.
/// Payloads are flat 64-bit word vectors — the same "serialize everything
/// into buffers" discipline an MPI implementation enforces, which keeps
/// the algorithms honest about what they would really communicate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace kappa {

/// A message: source rank plus flat payload.
struct Message {
  int source = -1;
  std::vector<std::uint64_t> payload;
};

/// One PE's mailbox. Thread-safe multi-producer, single-consumer.
class Mailbox {
 public:
  /// Enqueues a message (called by any sending PE thread).
  void push(Message message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(message));
    }
    available_.notify_all();
  }

  /// Blocks until a message from \p source arrives, then removes and
  /// returns it. Pass -1 to accept any source.
  Message pop(int source) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (source == -1 || it->source == source) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      available_.wait(lock);
    }
  }

  /// Non-blocking variant; empty optional if no matching message queued.
  std::optional<Message> try_pop(int source) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (source == -1 || it->source == source) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  /// Number of queued messages (for tests).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Message> queue_;
};

}  // namespace kappa
