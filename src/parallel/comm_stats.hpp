/// \file comm_stats.hpp
/// \brief Per-PE communication counters of the SPMD runtime.
///
/// A standalone header so that result types (core/partitioner.hpp) can
/// carry communication statistics without pulling in the whole thread
/// runtime — entry points forward-declare PERuntime instead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace kappa {

/// Halo-exchange traffic of one coarsening level: the point-to-point
/// messages the distributed hierarchy store sends while building the
/// level (ghost refreshes, boundary match decisions, coarse-edge
/// contributions) — the per-level communication shape of shard-owned
/// contraction.
struct LevelHaloStats {
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
};

/// Per-PE communication statistics. The wire model is uniform: every
/// point-to-point send counts one message plus its payload words, and a
/// collective counts one message plus one payload copy *per destination
/// rank* (p - 1 of them for a flat all-gather or a broadcast root) — the
/// counters model what a non-hierarchical MPI implementation would put on
/// the wire, so a single-PE runtime communicates nothing.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t words_sent = 0;
  /// Receive-side twins of the send counters: messages and payload words
  /// this PE took delivery of (point-to-point and collective lanes). In a
  /// closed run Σ messages_received = Σ messages_sent over all ranks —
  /// the per-rank split exposes asymmetric roles (the async arbiter, a
  /// broadcast root) that the send counters alone hide.
  std::uint64_t messages_received = 0;
  std::uint64_t words_received = 0;
  std::uint64_t barriers = 0;
  /// Nanoseconds this PE spent blocked inside collectives / barriers —
  /// the time a rank waits for the slowest participant instead of doing
  /// pair work. The color-class schedule pays this at every class
  /// boundary; the async scheduler pays it only at iteration boundaries.
  std::uint64_t collective_idle_ns = 0;
  /// Nanoseconds this PE spent blocked in a point-to-point receive with
  /// an empty mailbox (waiting for work or for a partner's side).
  std::uint64_t recv_idle_ns = 0;
  /// Scheduling rounds (color classes, or whole async iterations) in
  /// which this rank neither executed a pair nor shipped a partner side —
  /// it only waited for the round to pass.
  std::uint64_t rounds_waited = 0;
  /// Bytes this rank's transport endpoint actually put on / took off the
  /// physical wire during the run (frame headers and collective-lane
  /// traffic included). Zero on the in-process backend — these measure
  /// the real interconnect, the counterpart to the modeled word counters
  /// above.
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t wire_bytes_received = 0;
  /// kappa-watch heartbeat frames / payload words this rank's endpoint
  /// put on the wire during the run — the measured overhead of live
  /// observability, kept out of the modeled counters above (heartbeats
  /// are transport-internal observer traffic, not algorithm traffic) but
  /// included in wire_bytes_sent. Zero with watch off or in-process.
  std::uint64_t heartbeat_frames_sent = 0;
  std::uint64_t heartbeat_words_sent = 0;
  /// Per-coarsening-level halo-exchange breakdown (subset of the totals
  /// above), indexed by level; empty outside the SPMD coarsening path.
  std::vector<LevelHaloStats> halo_per_level;

  /// Total nanoseconds blocked (collectives plus empty-mailbox receives).
  [[nodiscard]] std::uint64_t idle_ns() const {
    return collective_idle_ns + recv_idle_ns;
  }
};

/// Peak resident footprint of the data-sharded SPMD graph structures on
/// one rank: the owned-node CSR plus the one-hop ghost layer (§3.3) and
/// the §5.2 block-row store of the refiner. `arcs` counts resident
/// adjacency entries (directed). The replicated structures every rank
/// keeps regardless of p (the level partition vector, ownership maps) are
/// deliberately excluded: this measures the O(n/p + halo) graph data.
struct ShardFootprint {
  std::uint64_t owned_nodes = 0;  ///< peak owned nodes resident at once
  std::uint64_t ghost_nodes = 0;  ///< peak ghost/halo nodes resident at once
  std::uint64_t arcs = 0;         ///< peak resident adjacency entries

  /// Pointwise peak of two footprints.
  void merge_peak(const ShardFootprint& other) {
    owned_nodes = std::max(owned_nodes, other.owned_nodes);
    ghost_nodes = std::max(ghost_nodes, other.ghost_nodes);
    arcs = std::max(arcs, other.arcs);
  }

  /// Resident nodes, owned plus ghosts.
  [[nodiscard]] std::uint64_t resident_nodes() const {
    return owned_nodes + ghost_nodes;
  }
};

/// Volume of the §5.2 partner-side shipping during SPMD pairwise
/// refinement, accumulated per rank. Sender-side counters compare what
/// band shipping put on the wire against the whole block the legacy mode
/// would have sent for the same pairs; the executor side counts the pairs
/// it ran. With band shipping on, `rows_shipped` tracks the band (plus
/// its one-hop fringe stubs), bounded by — and on large blocks far below
/// — `whole_block_rows`.
struct PairShipStats {
  std::uint64_t pairs_executed = 0;   ///< pairs this rank executed
  std::uint64_t pairs_shipped = 0;    ///< partner sides this rank sent
  std::uint64_t rows_shipped = 0;     ///< band rows + fringe stubs sent
  std::uint64_t words_shipped = 0;    ///< wire words of the sent sides
  std::uint64_t whole_block_rows = 0; ///< rows a whole-block send needed

  void operator+=(const PairShipStats& other) {
    pairs_executed += other.pairs_executed;
    pairs_shipped += other.pairs_shipped;
    rows_shipped += other.rows_shipped;
    words_shipped += other.words_shipped;
    whole_block_rows += other.whole_block_rows;
  }
};

/// One pair execution of the async scheduler, stamped with the executor's
/// steady clock. The block-lock safety invariant — no two in-flight pairs
/// share a block — is observable from these traces: any two executed pairs
/// that share a block must have disjoint [begin_ns, end_ns) windows, even
/// across ranks (the arbiter releases a block only after the executor's
/// completion message, which happens-after end_ns).
struct AsyncPairEvent {
  std::uint32_t block_a = 0;
  std::uint32_t block_b = 0;
  std::uint64_t begin_ns = 0;  ///< executor started working on the pair
  std::uint64_t end_ns = 0;    ///< executor reported the pair done
};

/// Aggregates per-rank counters into one total: messages, words, and idle
/// time add up; barriers are synchronization points every rank passes
/// together, so the aggregate is the maximum, not the sum.
///
/// Covers EVERY CommStats field — the pinned aggregation test in
/// trace_test.cpp static-asserts on sizeof(CommStats), so a new field
/// cannot land without either being aggregated here or being explicitly
/// exempted there.
[[nodiscard]] inline CommStats total_comm_stats(
    const std::vector<CommStats>& per_rank) {
  CommStats total;
  for (const CommStats& s : per_rank) {
    total.messages_sent += s.messages_sent;
    total.words_sent += s.words_sent;
    total.messages_received += s.messages_received;
    total.words_received += s.words_received;
    total.barriers = std::max(total.barriers, s.barriers);
    total.collective_idle_ns += s.collective_idle_ns;
    total.recv_idle_ns += s.recv_idle_ns;
    total.rounds_waited += s.rounds_waited;
    total.wire_bytes_sent += s.wire_bytes_sent;
    total.wire_bytes_received += s.wire_bytes_received;
    total.heartbeat_frames_sent += s.heartbeat_frames_sent;
    total.heartbeat_words_sent += s.heartbeat_words_sent;
    if (s.halo_per_level.size() > total.halo_per_level.size()) {
      total.halo_per_level.resize(s.halo_per_level.size());
    }
    for (std::size_t l = 0; l < s.halo_per_level.size(); ++l) {
      total.halo_per_level[l].messages += s.halo_per_level[l].messages;
      total.halo_per_level[l].words += s.halo_per_level[l].words;
    }
  }
  return total;
}

}  // namespace kappa
