/// \file comm_stats.hpp
/// \brief Per-PE communication counters of the SPMD runtime.
///
/// A standalone header so that result types (core/partitioner.hpp) can
/// carry communication statistics without pulling in the whole thread
/// runtime — entry points forward-declare PERuntime instead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace kappa {

/// Per-PE communication statistics. The wire model is uniform: every
/// point-to-point send and every collective *contribution* (one per
/// participating PE, even when its payload is empty) counts one message
/// plus the words it puts on the wire.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t barriers = 0;
};

/// Aggregates per-rank counters into one total: messages and words add
/// up; barriers are synchronization points every rank passes together, so
/// the aggregate is the maximum, not the sum.
[[nodiscard]] inline CommStats total_comm_stats(
    const std::vector<CommStats>& per_rank) {
  CommStats total;
  for (const CommStats& s : per_rank) {
    total.messages_sent += s.messages_sent;
    total.words_sent += s.words_sent;
    total.barriers = std::max(total.barriers, s.barriers);
  }
  return total;
}

}  // namespace kappa
