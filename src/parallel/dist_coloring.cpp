#include "parallel/dist_coloring.hpp"

#include <atomic>
#include <algorithm>
#include <cassert>
#include <vector>

#include "parallel/shard_graph.hpp"
#include "util/trace.hpp"

namespace kappa {

namespace {

// Message types of the protocol.
constexpr std::uint64_t kNone = 0;     ///< nothing this round
constexpr std::uint64_t kRequest = 1;  ///< [type, edge, freelist words...]
constexpr std::uint64_t kReply = 2;    ///< [type, edge, color]
constexpr std::uint64_t kReject = 3;   ///< [type]

/// Free lists travel as fixed-size bitmaps; 2k colors upper-bounds any
/// greedy edge coloring of a k-node quotient graph.
std::size_t bitmap_words(BlockID k) { return (2 * k + 63) / 64; }

void set_bit(std::vector<std::uint64_t>& bitmap, int bit) {
  bitmap[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

bool test_bit(const std::vector<std::uint64_t>& bitmap, int bit) {
  return (bitmap[bit / 64] >> (bit % 64)) & 1;
}

}  // namespace

DistributedColoringResult distributed_color_quotient_edges(
    const QuotientGraph& quotient, std::uint64_t seed) {
  const BlockID k = quotient.num_blocks();
  const std::size_t num_edges = quotient.edges().size();

  DistributedColoringResult result;
  result.coloring.color_of_edge.assign(num_edges, -1);
  if (num_edges == 0 || k == 0) return result;

  // Final colors, written once per edge by the passive endpoint. Atomics
  // only because two PEs of one pair both learn the color; they always
  // agree.
  std::vector<std::atomic<int>> final_color(num_edges);
  for (auto& c : final_color) c.store(-1, std::memory_order_relaxed);
  std::atomic<std::size_t> round_count{0};

  PERuntime runtime(static_cast<int>(k), seed);
  result.comm = total_comm_stats(runtime.run([&](PEContext& pe) {
    const BlockID self = static_cast<BlockID>(pe.rank());
    const std::size_t words = bitmap_words(k);

    // Q-neighbors of this block, in deterministic order.
    std::vector<BlockID> neighbors;
    for (const std::size_t e : quotient.incident(self)) {
      const QuotientEdge& edge = quotient.edges()[e];
      neighbors.push_back(edge.a == self ? edge.b : edge.a);
    }
    std::vector<std::size_t> incident = quotient.incident(self);

    std::vector<std::uint64_t> used(words, 0);  // complement of L(self)
    std::vector<int> local_color(incident.size(), -1);
    std::size_t rounds = 0;

    while (true) {
      // --- Termination detection. ---
      std::uint64_t uncolored = 0;
      for (const int c : local_color) uncolored += (c == -1) ? 1 : 0;
      if (pe.all_reduce_sum(uncolored) == 0) break;
      ++rounds;

      // --- Coin flip: active or passive (§5.1). ---
      const bool active = pe.rng().coin();

      // --- Phase A: active PEs request one random uncolored edge. ---
      std::size_t request_slot = incident.size();
      if (active && uncolored > 0) {
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < incident.size(); ++i) {
          if (local_color[i] == -1) candidates.push_back(i);
        }
        request_slot = candidates[pe.rng().bounded(candidates.size())];
      }
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (i == request_slot) {
          std::vector<std::uint64_t> msg;
          msg.reserve(2 + words);
          msg.push_back(kRequest);
          msg.push_back(incident[i]);
          msg.insert(msg.end(), used.begin(), used.end());
          pe.send(neighbors[i], std::move(msg));
        } else {
          pe.send(neighbors[i], {kNone});
        }
      }

      // --- Receive one message per neighbor; passive PEs serve
      // requests with c = min(L ∩ L'). ---
      struct PendingReply {
        BlockID to;
        std::vector<std::uint64_t> msg;
      };
      std::vector<PendingReply> replies;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const Message msg = pe.receive(neighbors[i]);
        if (msg.payload[0] != kRequest) continue;
        const std::size_t edge_index = msg.payload[1];
        if (active) {
          // Requests sent to other active PEs are rejected (§5.1).
          replies.push_back({neighbors[i], {kReject}});
          continue;
        }
        // Requester's used-bitmap follows in the payload.
        std::vector<std::uint64_t> requester_used(
            msg.payload.begin() + 2, msg.payload.begin() + 2 + words);
        int color = 0;
        while (test_bit(used, color) || test_bit(requester_used, color)) {
          ++color;
        }
        set_bit(used, color);
        // Record locally: find the slot of this edge.
        for (std::size_t j = 0; j < incident.size(); ++j) {
          if (incident[j] == edge_index) local_color[j] = color;
        }
        final_color[edge_index].store(color, std::memory_order_relaxed);
        replies.push_back(
            {neighbors[i], {kReply, edge_index, static_cast<std::uint64_t>(color)}});
      }

      // --- Phase B: responses. ---
      for (auto& reply : replies) {
        pe.send(reply.to, std::move(reply.msg));
      }
      if (request_slot != incident.size()) {
        const Message response = pe.receive(neighbors[request_slot]);
        if (response.payload[0] == kReply) {
          const int color = static_cast<int>(response.payload[2]);
          local_color[request_slot] = color;
          set_bit(used, color);
        }
      }
    }

    if (pe.rank() == 0) {
      round_count.store(rounds, std::memory_order_relaxed);
    }
  }));

  result.rounds = round_count.load();
  for (std::size_t e = 0; e < num_edges; ++e) {
    const int c = final_color[e].load(std::memory_order_relaxed);
    result.coloring.color_of_edge[e] = c;
    result.coloring.num_colors = std::max(result.coloring.num_colors, c + 1);
  }
  return result;
}

RefinerColoringResult distributed_color_quotient_edges(
    const QuotientGraph& quotient, const Rng& rng, PEContext& pe) {
  const BlockID k = quotient.num_blocks();
  const std::size_t num_edges = quotient.edges().size();
  const int p = pe.size();
  const int rank = pe.rank();

  RefinerColoringResult result;
  result.coloring.color_of_edge.assign(num_edges, -1);
  // The quotient is replicated, so every rank takes this branch alike
  // and no collective is left unmatched.
  if (num_edges == 0 || k == 0) return result;

  // Virtual block-PE b lives on the rank that owns block b's rows — the
  // same map the pair scheduler uses, so protocol knowledge lands exactly
  // where executor/partner decisions need it.
  std::vector<int> owner(k);
  for (BlockID b = 0; b < k; ++b) {
    owner[b] = BlockRowShard::owner_of_block(b, p);
  }
  // Rank-level neighborhood: ranks hosting a block adjacent to one of
  // ours. Derived from the replicated quotient, hence symmetric.
  std::vector<int> neighbor_ranks;
  {
    std::vector<bool> is_neighbor(static_cast<std::size_t>(p), false);
    for (const QuotientEdge& edge : quotient.edges()) {
      const int ra = owner[edge.a];
      const int rb = owner[edge.b];
      if (ra == rank && rb != rank) is_neighbor[static_cast<std::size_t>(rb)] = true;
      if (rb == rank && ra != rank) is_neighbor[static_cast<std::size_t>(ra)] = true;
    }
    for (int q = 0; q < p; ++q) {
      if (is_neighbor[static_cast<std::size_t>(q)]) neighbor_ranks.push_back(q);
    }
  }
  PESubGroup group(pe, owner, neighbor_ranks);

  // Per hosted block: the protocol state of its virtual PE. Block b draws
  // from rng.fork(b), matching both the greedy oracle and the standalone
  // runtime (whose PEContext seeds rank b as Rng(seed).fork(b)).
  struct BlockState {
    BlockID id = 0;
    Rng rng;
    std::vector<std::uint64_t> used;    ///< complement of L(b), bitmap
    std::vector<std::size_t> incident;  ///< edge ids, incident order
    std::vector<BlockID> neighbors;     ///< other endpoint per slot
    std::vector<int> local_color;       ///< per slot, -1 = uncolored
    bool active = false;
  };
  const std::size_t words = bitmap_words(k);
  std::vector<BlockState> hosted;
  std::vector<int> hosted_index(k, -1);  // block id -> index in `hosted`
  for (BlockID b = 0; b < k; ++b) {
    if (owner[b] != rank) continue;
    BlockState state;
    state.id = b;
    state.rng = rng.fork(b);
    state.used.assign(words, 0);
    state.incident = quotient.incident(b);
    for (const std::size_t e : state.incident) {
      const QuotientEdge& edge = quotient.edges()[e];
      state.neighbors.push_back(edge.a == b ? edge.b : edge.a);
    }
    state.local_color.assign(state.incident.size(), -1);
    hosted_index[b] = static_cast<int>(hosted.size());
    hosted.push_back(std::move(state));
  }

  const auto slot_of_edge = [](const BlockState& state, std::size_t e) {
    for (std::size_t j = 0; j < state.incident.size(); ++j) {
      if (state.incident[j] == e) return j;
    }
    assert(false && "edge not incident to hosted block");
    return state.incident.size();
  };

  while (true) {
    // --- Termination detection (the only global synchronization). ---
    std::uint64_t uncolored = 0;
    for (const BlockState& state : hosted) {
      for (const int c : state.local_color) uncolored += (c == -1) ? 1 : 0;
    }
    if (pe.all_reduce_sum(uncolored) == 0) break;
    ++result.rounds;
    KAPPA_TRACE_SPAN("color.round",
                     static_cast<std::uint64_t>(result.rounds), uncolored);

    // --- Phase A: coin flips; active blocks nominate one random
    // uncolored incident edge, shipping their used-bitmap with it. ---
    for (BlockState& state : hosted) {
      state.active = state.rng.coin();
      if (!state.active) continue;
      std::vector<std::size_t> candidates;
      for (std::size_t j = 0; j < state.incident.size(); ++j) {
        if (state.local_color[j] == -1) candidates.push_back(j);
      }
      if (candidates.empty()) continue;
      const std::size_t slot =
          candidates[state.rng.bounded(candidates.size())];
      std::vector<std::uint64_t> msg;
      msg.reserve(1 + words);
      msg.push_back(state.incident[slot]);
      msg.insert(msg.end(), state.used.begin(), state.used.end());
      group.post(static_cast<int>(state.id),
                 static_cast<int>(state.neighbors[slot]), std::move(msg));
    }
    std::vector<VirtualMessage> requests = group.exchange();

    // --- Phase B: passive blocks serve requests in their neighbor
    // (incident-slot) order with c = min(L ∩ L'); requests that land on
    // an active block are rejected by silence. ---
    struct PendingRequest {
      std::size_t slot;
      std::size_t msg;
    };
    std::vector<std::vector<PendingRequest>> per_block(hosted.size());
    for (std::size_t m = 0; m < requests.size(); ++m) {
      const int idx = hosted_index[static_cast<BlockID>(requests[m].to)];
      BlockState& state = hosted[static_cast<std::size_t>(idx)];
      if (state.active) continue;  // rejection (§5.1)
      per_block[static_cast<std::size_t>(idx)].push_back(
          {slot_of_edge(state, requests[m].payload[0]), m});
    }
    for (std::size_t idx = 0; idx < hosted.size(); ++idx) {
      BlockState& state = hosted[idx];
      auto& pending = per_block[idx];
      std::sort(pending.begin(), pending.end(),
                [](const PendingRequest& a, const PendingRequest& b) {
                  return a.slot < b.slot;
                });
      for (const PendingRequest& req : pending) {
        const VirtualMessage& msg = requests[req.msg];
        const std::size_t e = msg.payload[0];
        int color = 0;
        while (test_bit(state.used, color) ||
               ((msg.payload[1 + static_cast<std::size_t>(color) / 64] >>
                 (color % 64)) &
                1)) {
          ++color;
        }
        set_bit(state.used, color);
        state.local_color[req.slot] = color;
        result.coloring.color_of_edge[e] = color;
        group.post(static_cast<int>(state.id), msg.from,
                   {e, static_cast<std::uint64_t>(color)});
      }
    }
    std::vector<VirtualMessage> replies = group.exchange();

    // --- Phase C: requesters learn their color. ---
    for (const VirtualMessage& msg : replies) {
      const int idx = hosted_index[static_cast<BlockID>(msg.to)];
      BlockState& state = hosted[static_cast<std::size_t>(idx)];
      const std::size_t e = msg.payload[0];
      const int color = static_cast<int>(msg.payload[1]);
      state.local_color[slot_of_edge(state, e)] = color;
      set_bit(state.used, color);
      result.coloring.color_of_edge[e] = color;
    }
  }

  std::uint64_t max_colors = 0;
  for (const BlockState& state : hosted) {
    for (const int c : state.local_color) {
      max_colors = std::max(max_colors, static_cast<std::uint64_t>(c + 1));
    }
  }
  result.coloring.num_colors =
      static_cast<int>(pe.all_reduce_max(max_colors));
  return result;
}

}  // namespace kappa
