#include "parallel/dist_coloring.hpp"

#include <atomic>
#include <algorithm>
#include <vector>

namespace kappa {

namespace {

// Message types of the protocol.
constexpr std::uint64_t kNone = 0;     ///< nothing this round
constexpr std::uint64_t kRequest = 1;  ///< [type, edge, freelist words...]
constexpr std::uint64_t kReply = 2;    ///< [type, edge, color]
constexpr std::uint64_t kReject = 3;   ///< [type]

/// Free lists travel as fixed-size bitmaps; 2k colors upper-bounds any
/// greedy edge coloring of a k-node quotient graph.
std::size_t bitmap_words(BlockID k) { return (2 * k + 63) / 64; }

void set_bit(std::vector<std::uint64_t>& bitmap, int bit) {
  bitmap[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

bool test_bit(const std::vector<std::uint64_t>& bitmap, int bit) {
  return (bitmap[bit / 64] >> (bit % 64)) & 1;
}

}  // namespace

DistributedColoringResult distributed_color_quotient_edges(
    const QuotientGraph& quotient, std::uint64_t seed) {
  const BlockID k = quotient.num_blocks();
  const std::size_t num_edges = quotient.edges().size();

  DistributedColoringResult result;
  result.coloring.color_of_edge.assign(num_edges, -1);
  if (num_edges == 0 || k == 0) return result;

  // Final colors, written once per edge by the passive endpoint. Atomics
  // only because two PEs of one pair both learn the color; they always
  // agree.
  std::vector<std::atomic<int>> final_color(num_edges);
  for (auto& c : final_color) c.store(-1, std::memory_order_relaxed);
  std::atomic<std::size_t> round_count{0};

  PERuntime runtime(static_cast<int>(k), seed);
  result.comm = total_comm_stats(runtime.run([&](PEContext& pe) {
    const BlockID self = static_cast<BlockID>(pe.rank());
    const std::size_t words = bitmap_words(k);

    // Q-neighbors of this block, in deterministic order.
    std::vector<BlockID> neighbors;
    for (const std::size_t e : quotient.incident(self)) {
      const QuotientEdge& edge = quotient.edges()[e];
      neighbors.push_back(edge.a == self ? edge.b : edge.a);
    }
    std::vector<std::size_t> incident = quotient.incident(self);

    std::vector<std::uint64_t> used(words, 0);  // complement of L(self)
    std::vector<int> local_color(incident.size(), -1);
    std::size_t rounds = 0;

    while (true) {
      // --- Termination detection. ---
      std::uint64_t uncolored = 0;
      for (const int c : local_color) uncolored += (c == -1) ? 1 : 0;
      if (pe.all_reduce_sum(uncolored) == 0) break;
      ++rounds;

      // --- Coin flip: active or passive (§5.1). ---
      const bool active = pe.rng().coin();

      // --- Phase A: active PEs request one random uncolored edge. ---
      std::size_t request_slot = incident.size();
      if (active && uncolored > 0) {
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < incident.size(); ++i) {
          if (local_color[i] == -1) candidates.push_back(i);
        }
        request_slot = candidates[pe.rng().bounded(candidates.size())];
      }
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (i == request_slot) {
          std::vector<std::uint64_t> msg;
          msg.reserve(2 + words);
          msg.push_back(kRequest);
          msg.push_back(incident[i]);
          msg.insert(msg.end(), used.begin(), used.end());
          pe.send(neighbors[i], std::move(msg));
        } else {
          pe.send(neighbors[i], {kNone});
        }
      }

      // --- Receive one message per neighbor; passive PEs serve
      // requests with c = min(L ∩ L'). ---
      struct PendingReply {
        BlockID to;
        std::vector<std::uint64_t> msg;
      };
      std::vector<PendingReply> replies;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const Message msg = pe.receive(neighbors[i]);
        if (msg.payload[0] != kRequest) continue;
        const std::size_t edge_index = msg.payload[1];
        if (active) {
          // Requests sent to other active PEs are rejected (§5.1).
          replies.push_back({neighbors[i], {kReject}});
          continue;
        }
        // Requester's used-bitmap follows in the payload.
        std::vector<std::uint64_t> requester_used(
            msg.payload.begin() + 2, msg.payload.begin() + 2 + words);
        int color = 0;
        while (test_bit(used, color) || test_bit(requester_used, color)) {
          ++color;
        }
        set_bit(used, color);
        // Record locally: find the slot of this edge.
        for (std::size_t j = 0; j < incident.size(); ++j) {
          if (incident[j] == edge_index) local_color[j] = color;
        }
        final_color[edge_index].store(color, std::memory_order_relaxed);
        replies.push_back(
            {neighbors[i], {kReply, edge_index, static_cast<std::uint64_t>(color)}});
      }

      // --- Phase B: responses. ---
      for (auto& reply : replies) {
        pe.send(reply.to, std::move(reply.msg));
      }
      if (request_slot != incident.size()) {
        const Message response = pe.receive(neighbors[request_slot]);
        if (response.payload[0] == kReply) {
          const int color = static_cast<int>(response.payload[2]);
          local_color[request_slot] = color;
          set_bit(used, color);
        }
      }
    }

    if (pe.rank() == 0) {
      round_count.store(rounds, std::memory_order_relaxed);
    }
  }));

  result.rounds = round_count.load();
  for (std::size_t e = 0; e < num_edges; ++e) {
    const int c = final_color[e].load(std::memory_order_relaxed);
    result.coloring.color_of_edge[e] = c;
    result.coloring.num_colors = std::max(result.coloring.num_colors, c + 1);
  }
  return result;
}

}  // namespace kappa
