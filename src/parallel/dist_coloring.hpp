/// \file dist_coloring.hpp
/// \brief The §5.1 edge-coloring protocol, executed on the PE runtime.
///
/// This is the message-passing twin of color_quotient_edges(): one PE per
/// block, coin flips, REQUEST(edge, free-list) messages from active PEs,
/// REPLY(min L ∩ L') from passive PEs, rejection between active PEs,
/// rounds until a termination all-reduce reports no uncolored edges.
/// It demonstrates that the coloring needs only *local* synchronization
/// between collaborating PEs (plus the termination detection), exactly as
/// the paper claims.
#pragma once

#include "graph/quotient_graph.hpp"
#include "parallel/pe_runtime.hpp"
#include "refinement/edge_coloring.hpp"

namespace kappa {

/// Colors the quotient edges with one PE (thread) per block. Returns the
/// coloring plus the aggregated communication statistics of the run.
struct DistributedColoringResult {
  EdgeColoring coloring;
  CommStats comm;
  std::size_t rounds = 0;
};

[[nodiscard]] DistributedColoringResult distributed_color_quotient_edges(
    const QuotientGraph& quotient, std::uint64_t seed);

/// The same protocol nested inside an existing SPMD scope: the k block-PEs
/// live as virtual PEs on the caller's p ranks (block b on rank
/// owner_of_block(b, p), the refiner's ownership map) and exchange their
/// REQUEST/REPLY messages through a PESubGroup, bundled per neighbor rank
/// and per round. Every rank of \p pe must call this collectively with the
/// same quotient and rng.
///
/// Block b draws from rng.fork(b), so the result is — for every p — the
/// identical coloring color_quotient_edges(quotient, rng) computes; only
/// the colors of edges incident to a block hosted on this rank are filled
/// in (the rest stay -1), which is exactly what the rank needs to act as
/// executor or partner. num_colors is globally agreed via an all-reduce.
struct RefinerColoringResult {
  EdgeColoring coloring;  ///< partial: colors of locally hosted blocks' edges
  std::size_t rounds = 0;
};

[[nodiscard]] RefinerColoringResult distributed_color_quotient_edges(
    const QuotientGraph& quotient, const Rng& rng, PEContext& pe);

}  // namespace kappa
