/// \file dist_coloring.hpp
/// \brief The §5.1 edge-coloring protocol, executed on the PE runtime.
///
/// This is the message-passing twin of color_quotient_edges(): one PE per
/// block, coin flips, REQUEST(edge, free-list) messages from active PEs,
/// REPLY(min L ∩ L') from passive PEs, rejection between active PEs,
/// rounds until a termination all-reduce reports no uncolored edges.
/// It demonstrates that the coloring needs only *local* synchronization
/// between collaborating PEs (plus the termination detection), exactly as
/// the paper claims.
#pragma once

#include "graph/quotient_graph.hpp"
#include "parallel/pe_runtime.hpp"
#include "refinement/edge_coloring.hpp"

namespace kappa {

/// Colors the quotient edges with one PE (thread) per block. Returns the
/// coloring plus the aggregated communication statistics of the run.
struct DistributedColoringResult {
  EdgeColoring coloring;
  CommStats comm;
  std::size_t rounds = 0;
};

[[nodiscard]] DistributedColoringResult distributed_color_quotient_edges(
    const QuotientGraph& quotient, std::uint64_t seed);

}  // namespace kappa
