#include "parallel/dist_graph.hpp"

#include "coarsening/prepartition.hpp"

namespace kappa {

namespace {

/// Whether shard \p s is materialized for \p rank (rank < 0: all shards,
/// the replicated build).
bool materializes(BlockID s, int rank, int num_pes) {
  return rank < 0 || DistGraph::owner_of_shard(s, num_pes) == rank;
}

}  // namespace

DistGraph::DistGraph(const StaticGraph& graph, BlockID num_shards)
    : DistGraph(graph, num_shards, /*rank=*/-1, /*num_pes=*/1) {}

DistGraph::DistGraph(const StaticGraph& graph, BlockID num_shards, int rank,
                     int num_pes)
    : graph_(&graph),
      node_to_shard_(prepartition(graph, num_shards)),
      shards_(num_shards) {
  const NodeID n = graph.num_nodes();
  for (NodeID u = 0; u < n; ++u) {
    const BlockID su = node_to_shard_[u];
    if (!materializes(su, rank, num_pes)) continue;
    shards_[su].nodes.push_back(u);
  }
  for (NodeID u = 0; u < n; ++u) {
    const BlockID su = node_to_shard_[u];
    if (!materializes(su, rank, num_pes)) continue;
    bool is_boundary = false;
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (node_to_shard_[v] == su) continue;
      shards_[su].cross_arcs.push_back({u, v, graph.arc_weight(e)});
      is_boundary = true;
    }
    if (is_boundary) shards_[su].boundary_nodes.push_back(u);
  }
}

std::vector<BlockID> DistGraph::shards_of_rank(int rank, int num_pes) const {
  std::vector<BlockID> result;
  for (BlockID s = static_cast<BlockID>(rank); s < num_shards();
       s += static_cast<BlockID>(num_pes)) {
    result.push_back(s);
  }
  return result;
}

}  // namespace kappa
