#include "parallel/dist_graph.hpp"

#include "coarsening/prepartition.hpp"

namespace kappa {

DistGraph::DistGraph(const StaticGraph& graph, BlockID num_shards)
    : graph_(&graph),
      node_to_shard_(prepartition(graph, num_shards)),
      shards_(num_shards) {
  const NodeID n = graph.num_nodes();
  for (NodeID u = 0; u < n; ++u) {
    shards_[node_to_shard_[u]].nodes.push_back(u);
  }
  for (NodeID u = 0; u < n; ++u) {
    const BlockID su = node_to_shard_[u];
    bool is_boundary = false;
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      if (node_to_shard_[v] == su) continue;
      shards_[su].cross_arcs.push_back({u, v, graph.arc_weight(e)});
      is_boundary = true;
    }
    if (is_boundary) shards_[su].boundary_nodes.push_back(u);
  }
}

std::vector<BlockID> DistGraph::shards_of_rank(int rank, int num_pes) const {
  std::vector<BlockID> result;
  for (BlockID s = static_cast<BlockID>(rank); s < num_shards();
       s += static_cast<BlockID>(num_pes)) {
    result.push_back(s);
  }
  return result;
}

}  // namespace kappa
