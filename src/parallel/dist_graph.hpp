/// \file dist_graph.hpp
/// \brief Sharded view of a CSR graph for the SPMD pipeline (§3.3).
///
/// The paper distributes the graph so that every PE owns one shard of the
/// nodes, chosen by the geometric pre-partition when coordinates exist and
/// by the initial numbering otherwise ("its main purpose is to increase
/// locality"). This class computes that sharding and exposes, per shard,
/// the owned node set, the induced local subgraph and the cross-shard
/// (boundary) arcs — everything a PE's local computation may touch.
///
/// Shards are *virtual*: their count is fixed by the algorithm (one per
/// block, as the paper identifies PEs with blocks), not by the physical
/// PE count of the runtime. A runtime of p PEs owns the shards round-robin
/// (shard s belongs to rank s mod p), which makes every shard-keyed
/// computation — and hence the partition — independent of p. The graph
/// *data* is sharded too: the rank-filtered constructor materializes
/// only the owned shards' structure, and parallel/shard_graph.hpp builds
/// from it the per-rank owned+ghost CSR the matching inner loops read.
/// The SPMD discipline is that a PE only *writes* state of its own
/// shards and learns remote state — ghost weights as much as tentative
/// matches, taken flags and block moves — exclusively through channel
/// messages and collectives.
#pragma once

#include <vector>

#include "graph/static_graph.hpp"
#include "graph/subgraph.hpp"
#include "util/types.hpp"

namespace kappa {

/// One cross-shard arc: a local endpoint, a remote endpoint in another
/// shard, and the edge weight.
struct CrossShardArc {
  NodeID u = kInvalidNode;  ///< endpoint inside the owning shard
  NodeID v = kInvalidNode;  ///< endpoint in shard(v) != shard(u)
  EdgeWeight weight = 0;
};

/// One shard: the nodes a virtual PE owns plus its boundary structure.
struct GraphShard {
  std::vector<NodeID> nodes;            ///< owned nodes (global ids, sorted)
  std::vector<CrossShardArc> cross_arcs;  ///< arcs leaving the shard
  std::vector<NodeID> boundary_nodes;   ///< owned nodes with a cross arc

  /// Induced subgraph over \p nodes with global<->local mappings; local
  /// matching runs on this.
  [[nodiscard]] Subgraph induced(const StaticGraph& graph) const {
    return induced_subgraph(graph, nodes);
  }
};

/// Shards \p graph into \p num_shards parts via the pre-partitioner
/// (geometric when coordinates exist, node numbering otherwise).
class DistGraph {
 public:
  DistGraph(const StaticGraph& graph, BlockID num_shards);

  /// Rank-filtered build: computes the full node -> shard ownership map
  /// (every rank needs it to locate neighbors) but materializes node
  /// lists and cross-arc structure only for the shards rank \p rank owns
  /// in a runtime of \p num_pes PEs — the per-PE data stays O(n/p +
  /// boundary) instead of O(n + boundary). shard(s) of a remote shard is
  /// empty.
  DistGraph(const StaticGraph& graph, BlockID num_shards, int rank,
            int num_pes);

  [[nodiscard]] const StaticGraph& graph() const { return *graph_; }

  [[nodiscard]] BlockID num_shards() const {
    return static_cast<BlockID>(shards_.size());
  }

  /// Home shard of a node.
  [[nodiscard]] BlockID shard_of(NodeID u) const { return node_to_shard_[u]; }

  /// Full node -> shard assignment.
  [[nodiscard]] const std::vector<BlockID>& node_to_shard() const {
    return node_to_shard_;
  }

  [[nodiscard]] const GraphShard& shard(BlockID s) const { return shards_[s]; }

  /// Physical owner of shard \p s in a runtime of \p num_pes PEs
  /// (round-robin, the p-invariant work distribution).
  [[nodiscard]] static int owner_of_shard(BlockID s, int num_pes) {
    return static_cast<int>(s % static_cast<BlockID>(num_pes));
  }

  /// Physical owner of node \p u in a runtime of \p num_pes PEs.
  [[nodiscard]] int owner_of_node(NodeID u, int num_pes) const {
    return owner_of_shard(node_to_shard_[u], num_pes);
  }

  /// Shards owned by physical rank \p rank in a runtime of \p num_pes.
  [[nodiscard]] std::vector<BlockID> shards_of_rank(int rank,
                                                    int num_pes) const;

 private:
  const StaticGraph* graph_;
  std::vector<BlockID> node_to_shard_;
  std::vector<GraphShard> shards_;
};

}  // namespace kappa
