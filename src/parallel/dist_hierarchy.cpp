/// \file dist_hierarchy.cpp
/// \brief Shard-owned contraction with halo exchange (see dist_hierarchy.hpp).
///
/// Communication discipline of the coarsening loop: point-to-point
/// messages travel only between halo peers, and the only collectives are
/// scalar all-reduces/all-gathers (stop rules, per-shard coarse counts).
/// No contraction map and no level graph is ever gathered; the tagged
/// all_gather_vectors calls below belong to the one-time coarsest gather
/// (uncoarsening projection is shard-local through the sharded partition
/// state, parallel/dist_partition.hpp), which the CI guard checks by tag.
#include "parallel/dist_hierarchy.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/subgraph.hpp"
#include "matching/tentative_match.hpp"
#include "parallel/dist_partition.hpp"
#include "parallel/wire_format.hpp"
#include "util/seeded_hash.hpp"
#include "util/trace.hpp"

namespace kappa {

namespace {

/// Adds a footprint into a running total (the hierarchy keeps every level
/// resident, so the store's size is the sum, not the peak).
void accumulate(ShardFootprint& total, const ShardFootprint& fp) {
  total.owned_nodes += fp.owned_nodes;
  total.ghost_nodes += fp.ghost_nodes;
  total.arcs += fp.arcs;
}

/// Reassembles a full per-node value vector from the all-gathered
/// per-rank owned contributions (each in ascending global-id order). The
/// finest level merges in one O(n + p) scan with a read cursor per rank;
/// coarse levels walk their O(num_shards) contiguous ranges.
std::vector<BlockID> reassemble_owned(
    const DistLevel& level, int p,
    const std::vector<std::vector<std::uint64_t>>& gathered) {
  std::vector<BlockID> values(level.global_n, 0);
  if (!level.node_to_shard.empty()) {
    std::vector<std::size_t> cursor(p, 0);
    for (NodeID u = 0; u < level.global_n; ++u) {
      const int q = DistGraph::owner_of_shard(level.node_to_shard[u], p);
      values[u] = static_cast<BlockID>(gathered[q][cursor[q]++]);
    }
    return values;
  }
  for (int q = 0; q < p; ++q) {
    std::size_t idx = 0;
    level.for_each_owned_of_rank(q, p, [&](NodeID u) {
      values[u] = static_cast<BlockID>(gathered[q][idx++]);
    });
  }
  return values;
}

}  // namespace

// ------------------------------------------------------------- DistLevel ----

BlockID DistLevel::shard_of(NodeID global) const {
  if (!node_to_shard.empty()) return node_to_shard[global];
  assert(!shard_begin.empty());
  const auto it =
      std::upper_bound(shard_begin.begin(), shard_begin.end(), global);
  return static_cast<BlockID>(it - shard_begin.begin()) - 1;
}

// --------------------------------------------------------- DistHierarchy ----

DistHierarchy::DistHierarchy(const StaticGraph& finest,
                             const CoarseningOptions& options, const Rng& rng,
                             PEContext& pe, SpmdCoarseningStats* stats)
    : finest_(&finest),
      pe_(pe),
      warm_(options.warm_start != nullptr),
      stats_(stats),
      rng_(rng) {
  const MatchingOptions match_options = hierarchy_match_options(finest, options);

  // Every loop decision below depends on replicated scalars only, so all
  // PEs run the same number of levels (and hence the same exchanges).
  pe_.set_halo_level(0);
  {
    KAPPA_TRACE_SPAN("coarsen.finest");
    levels_.push_back(build_finest_level(options));
  }
  pe_.set_halo_level(-1);
  account_level(levels_.back());

  std::size_t level = 0;
  while (levels_.back().global_n > options.contraction_limit) {
    DistLevel& current = levels_.back();
    KAPPA_TRACE_SPAN("coarsen.level", static_cast<std::uint64_t>(level),
                     current.global_n);
    pe_.set_halo_level(static_cast<int>(level));
    const Rng level_rng = rng_.fork(level);

    MatchingOptions level_options = match_options;
    if (warm_) level_options.blocks = &current.warm_blocks;
    const std::vector<NodeID> partner = [&] {
      KAPPA_TRACE_SPAN("coarsen.match");
      return match_level(current, level_options, options.matcher, level_rng);
    }();

    // Stop rules on replicated scalars: the global pair count (each pair
    // counted by the owner of its canonical endpoint) and the shrink.
    std::uint64_t my_pairs = 0;
    for (NodeID lu = 0; lu < current.shard.num_owned(); ++lu) {
      const NodeID lv = partner[lu];
      if (lv != lu &&
          current.shard.global_of(lv) > current.shard.global_of(lu)) {
        ++my_pairs;
      }
    }
    const NodeID pairs = static_cast<NodeID>(pe_.all_reduce_sum(my_pairs));
    if (pairs == 0) {
      pe_.set_halo_level(-1);
      break;  // nothing contractible is left
    }
    const double shrink =
        static_cast<double>(pairs) / static_cast<double>(current.global_n);

    DistLevel next = [&] {
      KAPPA_TRACE_SPAN("coarsen.contract");
      return contract_level(current, partner);
    }();
    pe_.set_halo_level(-1);
    levels_.push_back(std::move(next));
    account_level(levels_.back());
    ++level;
    if (shrink < options.min_shrink_factor) break;
  }
}

void DistHierarchy::account_level(const DistLevel& level) {
  if (stats_ == nullptr) return;
  const ShardFootprint fp = level.footprint();
  stats_->footprint.merge_peak(fp);
  accumulate(stats_->hierarchy_resident, fp);
}

DistLevel DistHierarchy::build_finest_level(const CoarseningOptions& options) {
  const int p = pe_.size();
  const int rank = pe_.rank();

  DistLevel level;
  level.global_n = finest_->num_nodes();
  level.max_node_weight = finest_->max_node_weight();
  level.num_shards = std::max<BlockID>(options.matching_pes, 1);

  // The input graph is the one level that is resident everywhere, so the
  // prepartition may read it; the resulting ownership map is the finest
  // level's replicated metadata.
  const DistGraph dist(*finest_, level.num_shards, rank, p);
  level.node_to_shard = dist.node_to_shard();
  for (const BlockID s : dist.shards_of_rank(rank, p)) {
    level.my_shard_ids.push_back(s);
    level.my_shards.push_back(dist.shard(s));
  }
  level.shard = ShardGraph(*finest_, dist, pe_);

  level.peer.assign(p, 0);
  for (NodeID g = level.shard.num_owned(); g < level.shard.num_local(); ++g) {
    level.peer[level.owner_of_node(level.shard.global_of(g), p)] = 1;
  }

  if (warm_) {
    const std::vector<BlockID>& assignment = options.warm_start->assignment();
    level.warm_blocks.reserve(level.shard.num_local());
    for (NodeID l = 0; l < level.shard.num_local(); ++l) {
      level.warm_blocks.push_back(assignment[level.shard.global_of(l)]);
    }
  }
  return level;
}

std::vector<std::uint64_t> DistHierarchy::gather_per_shard(
    BlockID num_shards, const std::vector<std::uint64_t>& mine) const {
  const int p = pe_.size();
  const int rank = pe_.rank();
  std::vector<std::uint64_t> all(num_shards, 0);
  const BlockID rounds =
      (num_shards + static_cast<BlockID>(p) - 1) / static_cast<BlockID>(p);
  for (BlockID t = 0; t < rounds; ++t) {
    // Shard t*p + q is the t-th shard of rank q, so one scalar all-gather
    // delivers one full stripe of shard values.
    const BlockID sid = t * static_cast<BlockID>(p) + static_cast<BlockID>(rank);
    const std::uint64_t value =
        (sid < num_shards && t < mine.size()) ? mine[t] : 0;
    const std::vector<std::uint64_t> stripe = pe_.all_gather(value);
    for (int q = 0; q < p; ++q) {
      const BlockID s = t * static_cast<BlockID>(p) + static_cast<BlockID>(q);
      if (s < num_shards) all[s] = stripe[q];
    }
  }
  return all;
}

// ----------------------------------------------------------- matching ----

std::vector<NodeID> DistHierarchy::match_level(
    const DistLevel& level, const MatchingOptions& options, MatcherAlgo matcher,
    const Rng& level_rng) {
  const int p = pe_.size();
  const int rank = pe_.rank();
  const StaticGraph& resident = level.shard.csr();
  const NodeID num_owned = level.shard.num_owned();
  const NodeID num_local = level.shard.num_local();

  // --- Phase 1: sequential matching per owned shard (§3.3), on shard
  // subgraphs cut out of the resident CSR. Local ids ascend with global
  // ids, so the induced shard graphs — and with them the matcher
  // streams — are identical for every p. ---
  std::vector<NodeID> partner(num_local);  // local ids; ghosts stay unmatched
  std::iota(partner.begin(), partner.end(), NodeID{0});
  for (std::size_t i = 0; i < level.my_shard_ids.size(); ++i) {
    const GraphShard& shard_s = level.my_shards[i];
    if (shard_s.nodes.empty()) continue;
    std::vector<NodeID> locals;
    locals.reserve(shard_s.nodes.size());
    for (const NodeID u : shard_s.nodes) {
      locals.push_back(level.shard.local_of(u));
    }
    const Subgraph sub = induced_subgraph(resident, locals);
    MatchingOptions sub_options = options;
    std::vector<BlockID> sub_blocks;
    if (options.blocks != nullptr) {
      // The block constraint travels into the shard subgraph's id space.
      sub_blocks.reserve(locals.size());
      for (const NodeID l : locals) sub_blocks.push_back((*options.blocks)[l]);
      sub_options.blocks = &sub_blocks;
    }
    Rng shard_rng = level_rng.fork(1 + level.my_shard_ids[i]);
    const std::vector<NodeID> matched =
        compute_matching(sub.graph, matcher, sub_options, shard_rng);
    for (NodeID lu = 0; lu < matched.size(); ++lu) {
      const NodeID lv = matched[lu];
      if (lv <= lu) continue;  // handle each pair once, skip unmatched
      const NodeID u = sub.local_to_global[lu];
      const NodeID v = sub.local_to_global[lv];
      partner[u] = v;
      partner[v] = u;
    }
  }
  if (stats_ != nullptr) {
    for (NodeID u = 0; u < num_owned; ++u) {
      if (partner[u] != u && u < partner[u]) ++stats_->local_pairs;
    }
  }

  // Rating of the tentative local match at each owned node (0 if
  // unmatched); ghost entries are filled by the exchange below. The
  // rater runs on the resident CSR with the exchanged ghost degrees and
  // enforces the pair-weight bound plus the block constraint.
  const TentativeMatchRater rater(resident, options,
                                  level.shard.weighted_degrees());
  std::vector<double> match_rating(num_local, 0.0);
  for (NodeID u = 0; u < num_owned; ++u) {
    match_rating[u] = rater.match_rating(u, partner[u]);
  }

  // --- Phase 2: boundary-candidate exchange with the halo peers (global
  // ids on the wire). Every PE tells every neighbor-owning peer the
  // tentative match rating of its boundary nodes; both owners of a
  // cross-shard edge can then evaluate the gap condition identically. ---
  {
    std::vector<std::vector<std::uint64_t>> to_peer(p);
    for (const GraphShard& shard_s : level.my_shards) {
      NodeID last_u = kInvalidNode;
      std::vector<int> peers_of_u;  // ranks already served for last_u
      for (const CrossShardArc& arc : shard_s.cross_arcs) {
        if (arc.u != last_u) {
          last_u = arc.u;
          peers_of_u.clear();
        }
        // Unmatched boundary nodes stay at the receiver's default of 0.0,
        // so only matched ones need to cross the wire.
        if (match_rating[level.shard.local_of(arc.u)] == 0.0) continue;
        const int q = level.owner_of_node(arc.v, p);
        if (q == rank) continue;
        if (std::find(peers_of_u.begin(), peers_of_u.end(), q) !=
            peers_of_u.end()) {
          continue;
        }
        peers_of_u.push_back(q);
        to_peer[q].push_back(arc.u);
        to_peer[q].push_back(std::bit_cast<std::uint64_t>(
            match_rating[level.shard.local_of(arc.u)]));
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && level.peer[q]) pe_.send(q, std::move(to_peer[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !level.peer[q]) continue;
      const Message msg = pe_.receive(q);
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        match_rating[level.shard.local_of(static_cast<NodeID>(
            msg.payload[i]))] = std::bit_cast<double>(msg.payload[i + 1]);
      }
    }
  }

  // --- Phase 3: the gap graph (§3.3): cross-shard edges whose rating
  // beats the tentative local matches at both endpoints. A spanning edge
  // is materialized at both owners; an edge between two of my own shards
  // once. ---
  struct GapCandidate {
    NodeID u;  ///< my endpoint (local id)
    NodeID v;  ///< other endpoint (local id: owned or ghost)
    NodeID u_global;
    NodeID v_global;
    double rating;
  };
  std::vector<GapCandidate> cands;
  for (const GraphShard& shard_s : level.my_shards) {
    for (const CrossShardArc& arc : shard_s.cross_arcs) {
      const NodeID lu = level.shard.local_of(arc.u);
      const NodeID lv = level.shard.local_of(arc.v);
      const bool v_mine = level.shard.is_owned(lv);
      if (v_mine && arc.u > arc.v) continue;  // the mirror arc covers it
      double r = 0.0;
      if (rater.admits_gap_edge(lu, lv, arc.weight, match_rating[lu],
                                match_rating[lv], &r)) {
        cands.push_back({lu, lv, arc.u, arc.v, r});
      }
    }
  }

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  // Indexed by local node id: nomination below walks this structure, so
  // its order must be the node order, not hash order.
  std::vector<std::vector<std::size_t>> incident(num_local);
  std::vector<std::vector<std::size_t>> spanning(p);  // by remote owner
  for (std::size_t i = 0; i < cands.size(); ++i) {
    incident[cands[i].u].push_back(i);
    const int q = level.owner_of_node(cands[i].v_global, p);
    if (q == rank) {
      incident[cands[i].v].push_back(i);
    } else {
      spanning[q].push_back(i);
    }
  }

  // --- Phase 4: iterated locally-heaviest rounds. Each round, every node
  // nominates its best remaining gap edge; an edge nominated from both
  // sides is matched and dissolves tentative local matches. Nominations
  // for spanning edges cross the wire; taken flags of newly matched
  // nodes travel point-to-point to exactly the peers that hold the node
  // in their ghost layer (never gathered); a zero all-reduce terminates
  // every PE in the same round. ---
  std::vector<std::uint8_t> alive(cands.size(), 1);
  std::vector<std::uint8_t> taken(num_local, 0);
  auto better = [&](std::size_t i, std::size_t b) {
    if (cands[i].rating != cands[b].rating) {
      return cands[i].rating > cands[b].rating;
    }
    return edge_key(cands[i].u_global, cands[i].v_global) <
           edge_key(cands[b].u_global, cands[b].v_global);
  };
  while (true) {
    if (stats_ != nullptr) ++stats_->gap_rounds;
    hash_map<NodeID, std::size_t> best;
    for (NodeID x = 0; x < num_local; ++x) {
      if (taken[x] || incident[x].empty()) continue;
      std::size_t b = kNone;
      for (const std::size_t i : incident[x]) {
        if (alive[i] && (b == kNone || better(i, b))) b = i;
      }
      if (b != kNone) best[x] = b;
    }
    auto best_at = [&](NodeID x, std::size_t i) {
      const auto it = best.find(x);
      return it != best.end() && it->second == i;
    };

    // Nomination exchange for spanning candidates.
    hash_set<std::uint64_t> remote_best;
    for (int q = 0; q < p; ++q) {
      if (q == rank || !level.peer[q]) continue;
      std::vector<std::uint64_t> words;
      for (const std::size_t i : spanning[q]) {
        if (alive[i] && best_at(cands[i].u, i)) {
          words.push_back(edge_key(cands[i].u_global, cands[i].v_global));
        }
      }
      pe_.send(q, std::move(words));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !level.peer[q]) continue;
      const Message msg = pe_.receive(q);
      remote_best.insert(msg.payload.begin(), msg.payload.end());
    }

    // Decide on the nominations alone: two distinct both-nominated edges
    // can never share an endpoint (best is one edge per node), so
    // simultaneous resolution is safe — and unlike a mid-pass taken
    // check, it is independent of candidate list order, which keeps the
    // outcome identical for every p.
    auto dissolve = [&](NodeID x) {
      const NodeID prev = partner[x];  // tentative partner: same shard
      if (prev != x) partner[prev] = prev;
    };
    // Taken notifications: an owned node that got matched must flip its
    // taken flag at every peer holding it as a ghost — exactly the owners
    // of its ghost neighbors.
    std::vector<std::vector<std::uint64_t>> notify(p);
    auto notify_taken = [&](NodeID lx) {
      std::vector<int> served;
      for (EdgeID e = resident.first_arc(lx); e < resident.last_arc(lx); ++e) {
        const NodeID lt = resident.arc_target(e);
        if (level.shard.is_owned(lt)) continue;
        const int q = level.owner_of_node(level.shard.global_of(lt), p);
        if (q == rank ||
            std::find(served.begin(), served.end(), q) != served.end()) {
          continue;
        }
        served.push_back(q);
        notify[q].push_back(level.shard.global_of(lx));
      }
    };
    std::uint64_t matched_here = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!alive[i]) continue;
      const NodeID u = cands[i].u;
      const NodeID v = cands[i].v;
      const bool v_mine = level.shard.is_owned(v);
      const bool u_nominates = best_at(u, i);
      const bool v_nominates =
          v_mine ? best_at(v, i)
                 : remote_best.contains(
                       edge_key(cands[i].u_global, cands[i].v_global));
      if (u_nominates && v_nominates) {
        dissolve(u);
        partner[u] = v;
        if (v_mine) {
          dissolve(v);
          partner[v] = u;
        }
        taken[u] = 1;
        taken[v] = 1;
        notify_taken(u);
        if (v_mine) notify_taken(v);
        alive[i] = 0;
        if (v_mine || cands[i].u_global < cands[i].v_global) {
          ++matched_here;  // count each pair once globally
          if (stats_ != nullptr) ++stats_->gap_pairs;
        }
      }
    }

    for (int q = 0; q < p; ++q) {
      if (q != rank && level.peer[q]) pe_.send(q, std::move(notify[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !level.peer[q]) continue;
      const Message msg = pe_.receive(q);
      for (const std::uint64_t w : msg.payload) {
        // Notifications target resident nodes by construction; the guard
        // only shields against a malformed message.
        const NodeID l = level.shard.local_of(static_cast<NodeID>(w));
        if (l != kInvalidNode) taken[l] = 1;
      }
    }
    // Retire candidates that lost an endpoint this round — after the
    // taken-sync, so every PE (and every p) kills the same set.
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (alive[i] && (taken[cands[i].u] || taken[cands[i].v])) alive[i] = 0;
    }
    if (pe_.all_reduce_sum(matched_here) == 0) break;
  }

  return partner;
}

// --------------------------------------------------------- contraction ----

DistLevel DistHierarchy::contract_level(DistLevel& fine,
                                        const std::vector<NodeID>& partner) {
  const int p = pe_.size();
  const int rank = pe_.rank();
  const ShardGraph& sg = fine.shard;
  const StaticGraph& resident = sg.csr();
  const NodeID num_owned = sg.num_owned();
  const BlockID num_shards = fine.num_shards;

  auto go = [&](NodeID l) { return sg.global_of(l); };
  auto is_canonical = [&](NodeID lu) {
    const NodeID lv = partner[lu];
    return lv == lu || go(lv) > go(lu);
  };

  // --- Coarse ids by owner shard: shard s numbers its canonical
  // endpoints in ascending global order; the per-shard counts are
  // all-gathered scalar-wise and prefix-summed into the replicated
  // coarse-id ranges. ---
  std::vector<std::uint64_t> my_counts(fine.my_shard_ids.size(), 0);
  for (std::size_t i = 0; i < fine.my_shards.size(); ++i) {
    for (const NodeID u : fine.my_shards[i].nodes) {
      if (is_canonical(sg.local_of(u))) ++my_counts[i];
    }
  }
  const std::vector<std::uint64_t> counts =
      gather_per_shard(num_shards, my_counts);
  std::vector<NodeID> shard_begin(num_shards + 1, 0);
  for (BlockID s = 0; s < num_shards; ++s) {
    shard_begin[s + 1] = shard_begin[s] + static_cast<NodeID>(counts[s]);
  }
  const NodeID coarse_n = shard_begin.back();

  // Resident fine -> coarse ids: canonical endpoints from the shard
  // numbering, same-rank partners by copying, cross-rank partners and
  // the ghost layer from the halo exchanges below.
  std::vector<NodeID> coarse_of(sg.num_local(), kInvalidNode);
  for (std::size_t i = 0; i < fine.my_shards.size(); ++i) {
    NodeID next_id = shard_begin[fine.my_shard_ids[i]];
    for (const NodeID u : fine.my_shards[i].nodes) {
      const NodeID lu = sg.local_of(u);
      if (is_canonical(lu)) coarse_of[lu] = next_id++;
    }
  }
  for (NodeID lu = 0; lu < num_owned; ++lu) {
    if (coarse_of[lu] != kInvalidNode) continue;
    const NodeID lv = partner[lu];  // the canonical endpoint
    if (sg.is_owned(lv)) coarse_of[lu] = coarse_of[lv];
  }

  // --- Halo exchange 1: boundary match decisions. The owner of a
  // cross-rank pair's canonical endpoint assigned the coarse id; it
  // ships the id to the partner's owner. ---
  {
    std::vector<std::vector<std::uint64_t>> outbox(p);
    for (NodeID lu = 0; lu < num_owned; ++lu) {
      const NodeID lv = partner[lu];
      if (lv == lu || sg.is_owned(lv) || !is_canonical(lu)) continue;
      const int q = fine.owner_of_node(go(lv), p);
      outbox[q].push_back(go(lv));
      outbox[q].push_back(coarse_of[lu]);
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && fine.peer[q]) pe_.send(q, std::move(outbox[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !fine.peer[q]) continue;
      const Message msg = pe_.receive(q);
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        const NodeID lu = sg.local_of(static_cast<NodeID>(msg.payload[i]));
        assert(lu != kInvalidNode && sg.is_owned(lu));
        coarse_of[lu] = static_cast<NodeID>(msg.payload[i + 1]);
      }
    }
  }
#ifndef NDEBUG
  for (NodeID lu = 0; lu < num_owned; ++lu) {
    assert(coarse_of[lu] != kInvalidNode && "every owned node got a coarse id");
  }
#endif

  // --- Halo exchange 2: ghost coarse ids, so arc targets can be
  // translated. Every peer learns the coarse id of each of my owned
  // boundary nodes it holds as a ghost. ---
  {
    std::vector<std::vector<std::uint64_t>> outbox(p);
    for (const GraphShard& shard_s : fine.my_shards) {
      NodeID last_u = kInvalidNode;
      std::vector<int> served;
      for (const CrossShardArc& arc : shard_s.cross_arcs) {
        if (arc.u != last_u) {
          last_u = arc.u;
          served.clear();
        }
        const int q = fine.owner_of_node(arc.v, p);
        if (q == rank ||
            std::find(served.begin(), served.end(), q) != served.end()) {
          continue;
        }
        served.push_back(q);
        outbox[q].push_back(arc.u);
        outbox[q].push_back(coarse_of[sg.local_of(arc.u)]);
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && fine.peer[q]) pe_.send(q, std::move(outbox[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !fine.peer[q]) continue;
      const Message msg = pe_.receive(q);
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        const NodeID l = sg.local_of(static_cast<NodeID>(msg.payload[i]));
        assert(l != kInvalidNode && !sg.is_owned(l));
        coarse_of[l] = static_cast<NodeID>(msg.payload[i + 1]);
      }
    }
  }

  // --- Halo exchange 3: coarse-edge contributions of cross-rank pairs.
  // The non-canonical owner translates its endpoint's full row into
  // coarse target space (everything it needs is resident) and ships it
  // to the canonical owner, which merges it into the coarse row. ---
  hash_map<NodeID, std::vector<std::pair<NodeID, EdgeWeight>>>
      shipped;  // fine global id of the remote member -> coarse arcs
  {
    std::vector<std::vector<std::uint64_t>> outbox(p);
    for (NodeID lu = 0; lu < num_owned; ++lu) {
      const NodeID lv = partner[lu];
      if (lv == lu || sg.is_owned(lv) || is_canonical(lu)) continue;
      const int q = fine.owner_of_node(go(lv), p);
      std::vector<std::uint64_t>& words = outbox[q];
      words.push_back(go(lu));
      words.push_back(resident.last_arc(lu) - resident.first_arc(lu));
      for (EdgeID e = resident.first_arc(lu); e < resident.last_arc(lu); ++e) {
        words.push_back(coarse_of[resident.arc_target(e)]);
        words.push_back(weight_bits(resident.arc_weight(e)));
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && fine.peer[q]) pe_.send(q, std::move(outbox[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !fine.peer[q]) continue;
      const Message msg = pe_.receive(q);
      std::size_t i = 0;
      while (i + 1 < msg.payload.size()) {
        const NodeID member = static_cast<NodeID>(msg.payload[i]);
        const std::uint64_t narcs = msg.payload[i + 1];
        i += 2;
        auto& arcs = shipped[member];
        arcs.reserve(narcs);
        for (std::uint64_t j = 0; j < narcs; ++j) {
          arcs.emplace_back(static_cast<NodeID>(msg.payload[i]),
                            bits_weight(msg.payload[i + 1]));
          i += 2;
        }
      }
    }
  }

  // --- Owner-computes coarse rows: merge the members' coarse-translated
  // arcs, drop the self-arc, sort by coarse target. The sorted canonical
  // row form makes every downstream stream (shard subgraphs, cross-arc
  // scans) a pure function of the graph content, independent of p. ---
  DistLevel next;
  next.global_n = coarse_n;
  next.num_shards = num_shards;
  next.shard_begin = shard_begin;
  next.my_shard_ids = fine.my_shard_ids;
  next.my_shards.resize(fine.my_shard_ids.size());

  RowSet rows;
  rows.xadj.push_back(0);
  std::vector<EdgeWeight> owned_wdeg;  // full-row weighted degrees
  std::vector<BlockID> owned_warm;
  std::vector<std::pair<NodeID, EdgeWeight>> acc;
  for (std::size_t i = 0; i < fine.my_shards.size(); ++i) {
    const BlockID s = fine.my_shard_ids[i];
    GraphShard& coarse_shard = next.my_shards[i];
    for (const NodeID u : fine.my_shards[i].nodes) {
      const NodeID lu = sg.local_of(u);
      if (!is_canonical(lu)) continue;
      const NodeID c = coarse_of[lu];
      acc.clear();
      auto add_member = [&](NodeID l) {
        for (EdgeID e = resident.first_arc(l); e < resident.last_arc(l); ++e) {
          const NodeID ct = coarse_of[resident.arc_target(e)];
          if (ct != c) acc.emplace_back(ct, resident.arc_weight(e));
        }
      };
      add_member(lu);
      NodeWeight weight = resident.node_weight(lu);
      const NodeID lv = partner[lu];
      if (lv != lu) {
        weight += resident.node_weight(lv);
        if (sg.is_owned(lv)) {
          add_member(lv);
        } else {
          const auto it = shipped.find(go(lv));
          assert(it != shipped.end() && "remote member must have shipped");
          for (const auto& [ct, w] : it->second) {
            if (ct != c) acc.emplace_back(ct, w);
          }
        }
      }
      std::sort(acc.begin(), acc.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });

      rows.ids.push_back(c);
      rows.vwgt.push_back(weight);
      EdgeWeight wdeg = 0;
      bool boundary = false;
      for (std::size_t j = 0; j < acc.size(); ++j) {
        if (j > 0 && acc[j].first == rows.adj.back()) {
          rows.ewgt.back() += acc[j].second;  // merge parallel coarse arcs
        } else {
          rows.adj.push_back(acc[j].first);
          rows.ewgt.push_back(acc[j].second);
        }
        wdeg += acc[j].second;
      }
      for (EdgeID e = rows.xadj.back(); e < rows.adj.size(); ++e) {
        const NodeID ct = rows.adj[e];
        if (next.shard_of(ct) != s) {
          coarse_shard.cross_arcs.push_back({c, ct, rows.ewgt[e]});
          boundary = true;
        }
      }
      rows.xadj.push_back(rows.adj.size());
      owned_wdeg.push_back(wdeg);
      if (warm_) owned_warm.push_back(fine.warm_blocks[lu]);
      if (boundary) coarse_shard.boundary_nodes.push_back(c);
    }
    coarse_shard.nodes.resize(shard_begin[s + 1] - shard_begin[s]);
    std::iota(coarse_shard.nodes.begin(), coarse_shard.nodes.end(),
              shard_begin[s]);
  }

  // The coarse ghost layer: remote cross-arc targets, refreshed over the
  // coarse peer channels exactly like a fine level's (weights, full-row
  // weighted degrees, and the warm block when warm-started).
  std::vector<NodeID> ghosts;
  for (const GraphShard& coarse_shard : next.my_shards) {
    for (const CrossShardArc& arc : coarse_shard.cross_arcs) {
      if (DistGraph::owner_of_shard(next.shard_of(arc.v), p) != rank) {
        ghosts.push_back(arc.v);
      }
    }
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

  next.peer.assign(p, 0);
  for (const NodeID g : ghosts) {
    next.peer[DistGraph::owner_of_shard(next.shard_of(g), p)] = 1;
  }

  std::vector<NodeWeight> ghost_weights(ghosts.size(), 0);
  std::vector<EdgeWeight> ghost_wdeg(ghosts.size(), 0);
  std::vector<BlockID> ghost_warm(warm_ ? ghosts.size() : 0, 0);
  {
    const std::uint64_t stride = warm_ ? 4 : 3;
    auto ghost_index = [&](NodeID g) {
      return static_cast<std::size_t>(
          std::lower_bound(ghosts.begin(), ghosts.end(), g) - ghosts.begin());
    };
    // Row index of an owned coarse id: rows were appended per shard in
    // my_shard_ids order, contiguous coarse-id ranges within each.
    std::vector<std::size_t> shard_row_offset(next.my_shards.size() + 1, 0);
    for (std::size_t i = 0; i < next.my_shards.size(); ++i) {
      shard_row_offset[i + 1] =
          shard_row_offset[i] + next.my_shards[i].nodes.size();
    }
    std::vector<std::vector<std::uint64_t>> outbox(p);
    for (std::size_t i = 0; i < next.my_shards.size(); ++i) {
      NodeID last_c = kInvalidNode;
      std::vector<int> served;
      for (const CrossShardArc& arc : next.my_shards[i].cross_arcs) {
        if (arc.u != last_c) {
          last_c = arc.u;
          served.clear();
        }
        const int q = DistGraph::owner_of_shard(next.shard_of(arc.v), p);
        if (q == rank ||
            std::find(served.begin(), served.end(), q) != served.end()) {
          continue;
        }
        served.push_back(q);
        const std::size_t row =
            shard_row_offset[i] +
            static_cast<std::size_t>(arc.u - shard_begin[next.my_shard_ids[i]]);
        outbox[q].push_back(arc.u);
        outbox[q].push_back(weight_bits(rows.vwgt[row]));
        outbox[q].push_back(weight_bits(owned_wdeg[row]));
        if (warm_) outbox[q].push_back(owned_warm[row]);
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && next.peer[q]) pe_.send(q, std::move(outbox[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank || !next.peer[q]) continue;
      const Message msg = pe_.receive(q);
      for (std::size_t i = 0; i + (stride - 1) < msg.payload.size();
           i += stride) {
        const std::size_t g = ghost_index(static_cast<NodeID>(msg.payload[i]));
        assert(g < ghosts.size());
        ghost_weights[g] = bits_weight(msg.payload[i + 1]);
        ghost_wdeg[g] = bits_weight(msg.payload[i + 2]);
        if (warm_) ghost_warm[g] = static_cast<BlockID>(msg.payload[i + 3]);
      }
    }
  }

  // Seal the resident structures of the coarse level.
  next.max_node_weight = static_cast<NodeWeight>(pe_.all_reduce_max(
      static_cast<std::uint64_t>(std::max<NodeWeight>(
          rows.vwgt.empty()
              ? 0
              : *std::max_element(rows.vwgt.begin(), rows.vwgt.end()),
          0))));
  ShardGraphParts parts;
  parts.owned = rows.ids;
  parts.owned_rows = std::move(rows);
  parts.ghosts = std::move(ghosts);
  parts.ghost_weights = std::move(ghost_weights);
  parts.ghost_weighted_degrees = std::move(ghost_wdeg);
  next.shard = ShardGraph(std::move(parts));
  if (warm_) {
    next.warm_blocks = std::move(owned_warm);
    next.warm_blocks.insert(next.warm_blocks.end(), ghost_warm.begin(),
                            ghost_warm.end());
  }

  // The sharded contraction map of the fine level (owned nodes only —
  // this *is* the per-level map; nothing is gathered).
  fine.owned_to_coarse.assign(coarse_of.begin(), coarse_of.begin() + num_owned);
  return next;
}

// -------------------------------------------------------- uncoarsening ----

const StaticGraph& DistHierarchy::coarsest() {
  if (levels_.size() == 1) return *finest_;
  if (!coarsest_replica_.has_value()) {
    // The one permitted gather: the coarsest level is tiny (the stop
    // rule bounds it by the contraction limit) and initial partitioning
    // wants it whole on every PE, as in the paper.
    const DistLevel& L = levels_.back();
    const StaticGraph& resident = L.shard.csr();
    const NodeID num_owned = L.shard.num_owned();
    std::vector<std::uint64_t> words;
    GraphRow scratch;
    for (NodeID i = 0; i < num_owned; ++i) {
      scratch.weight = resident.node_weight(i);
      scratch.targets.clear();
      scratch.weights.clear();
      for (EdgeID e = resident.first_arc(i); e < resident.last_arc(i); ++e) {
        scratch.targets.push_back(L.shard.global_of(resident.arc_target(e)));
        scratch.weights.push_back(resident.arc_weight(e));
      }
      append_row_words(words, L.shard.global_of(i),
                       {scratch.weight, scratch.targets, scratch.weights},
                       [](NodeID) { return true; });
    }
    const auto gathered =
        // kappa-lint: allow(no-hierarchy-gathers, "one-time O(n_coarsest) replica gather, sanctioned by §4.2")
        pe_.all_gather_vectors(std::move(words));
    std::vector<GraphRow> by_id(L.global_n);
    for (const auto& vec : gathered) {
      std::size_t cursor = 0;
      GraphRow row;
      while (cursor + 2 < vec.size()) {
        const NodeID id = decode_row_words(vec, cursor, row);
        by_id[id] = std::move(row);
      }
    }
    std::vector<EdgeID> xadj;
    xadj.reserve(L.global_n + 1);
    xadj.push_back(0);
    std::vector<NodeID> adj;
    std::vector<EdgeWeight> ewgt;
    std::vector<NodeWeight> vwgt;
    vwgt.reserve(L.global_n);
    for (NodeID u = 0; u < L.global_n; ++u) {
      vwgt.push_back(by_id[u].weight);
      adj.insert(adj.end(), by_id[u].targets.begin(), by_id[u].targets.end());
      ewgt.insert(ewgt.end(), by_id[u].weights.begin(),
                  by_id[u].weights.end());
      xadj.push_back(adj.size());
    }
    coarsest_replica_.emplace(std::move(xadj), std::move(adj), std::move(ewgt),
                              std::move(vwgt));
    if (stats_ != nullptr) {
      ShardFootprint replica;
      replica.owned_nodes = num_owned;
      replica.ghost_nodes = L.global_n - num_owned;
      replica.arcs = coarsest_replica_->num_arcs();
      stats_->footprint.merge_peak(replica);
    }
  }
  return *coarsest_replica_;
}

std::vector<BlockID> DistHierarchy::coarsest_warm_assignment() const {
  assert(warm_ && "only warm-started builds carry block constraints");
  const int p = pe_.size();
  const DistLevel& L = levels_.back();
  const NodeID num_owned = L.shard.num_owned();
  std::vector<std::uint64_t> words;
  words.reserve(num_owned);
  for (NodeID i = 0; i < num_owned; ++i) words.push_back(L.warm_blocks[i]);
  const auto gathered =
      // kappa-lint: allow(no-hierarchy-gathers, "O(n_coarsest) warm-start blocks at the coarsest level only")
      pe_.all_gather_vectors(std::move(words));
  return reassemble_owned(L, p, gathered);
}

DistPartition DistHierarchy::lift(const Partition& coarsest_partition) const {
  return DistPartition(levels_.back(), coarsest_partition, pe_);
}

DistPartition DistHierarchy::project(std::size_t l,
                                     const DistPartition& coarse) const {
  return DistPartition::project(levels_[l], levels_[l + 1], coarse, pe_);
}

Partition DistHierarchy::materialize(const DistPartition& partition) const {
  return partition.materialize(pe_);
}

BlockRowShard DistHierarchy::distribute_block_rows(
    std::size_t l, const DistPartition& partition, BlockID k) const {
  const int p = pe_.size();
  const int rank = pe_.rank();
  const DistLevel& L = levels_[l];
  const StaticGraph& resident = L.shard.csr();
  const NodeID num_owned = L.shard.num_owned();

  if (l == 0) {
    // The finest level is the always-resident input graph, so row content
    // never has to travel: the shard owners announce (id, block) of their
    // owned nodes to the block owners, which extract the rows locally.
    std::vector<NodeID> mine;
    std::vector<BlockID> mine_blocks;
    std::vector<std::vector<std::uint64_t>> outbox(p);
    for (NodeID i = 0; i < num_owned; ++i) {
      const NodeID u = L.shard.global_of(i);
      const BlockID b = partition.block(u);
      const int dest = BlockRowShard::owner_of_block(b, p);
      if (dest == rank) {
        mine.push_back(u);
        mine_blocks.push_back(b);
      } else {
        outbox[dest].push_back(pack_pair(u, b));
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank) pe_.send(q, std::move(outbox[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      const Message msg = pe_.receive(q);
      for (const std::uint64_t word : msg.payload) {
        const auto [u, b] = unpack_pair(word);
        mine.push_back(static_cast<NodeID>(u));
        mine_blocks.push_back(static_cast<BlockID>(b));
      }
    }
    std::vector<std::size_t> order(mine.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return mine[x] < mine[y]; });
    std::vector<NodeID> ids;
    std::vector<BlockID> blocks;
    ids.reserve(order.size());
    blocks.reserve(order.size());
    for (const std::size_t i : order) {
      ids.push_back(mine[i]);
      blocks.push_back(mine_blocks[i]);
    }
    return BlockRowShard(extract_rows(*finest_, ids), blocks, k, rank, p);
  }

  // §5.2 data distribution: rows move from shard owners to block owners,
  // each preceded by its block word (the receiver holds no assignment).
  struct Incoming {
    NodeID id;
    BlockID block;
    GraphRow row;
  };
  std::vector<Incoming> incoming;
  std::vector<std::vector<std::uint64_t>> outbox(p);
  GraphRow scratch;
  for (NodeID i = 0; i < num_owned; ++i) {
    const NodeID u = L.shard.global_of(i);
    const BlockID b = partition.block(u);
    const int dest = BlockRowShard::owner_of_block(b, p);
    scratch.weight = resident.node_weight(i);
    scratch.targets.clear();
    scratch.weights.clear();
    for (EdgeID e = resident.first_arc(i); e < resident.last_arc(i); ++e) {
      scratch.targets.push_back(L.shard.global_of(resident.arc_target(e)));
      scratch.weights.push_back(resident.arc_weight(e));
    }
    if (dest == rank) {
      incoming.push_back({u, b, scratch});
    } else {
      outbox[dest].push_back(b);
      append_row_words(outbox[dest], u,
                       {scratch.weight, scratch.targets, scratch.weights},
                       [](NodeID) { return true; });
    }
  }
  // Deterministic all-to-all rendezvous: one (possibly empty) message to
  // every other rank, one receive from each.
  for (int q = 0; q < p; ++q) {
    if (q != rank) pe_.send(q, std::move(outbox[q]));
  }
  for (int q = 0; q < p; ++q) {
    if (q == rank) continue;
    const Message msg = pe_.receive(q);
    std::size_t cursor = 0;
    GraphRow row;
    while (cursor + 3 < msg.payload.size()) {
      const BlockID b = static_cast<BlockID>(msg.payload[cursor++]);
      const NodeID id = decode_row_words(msg.payload, cursor, row);
      incoming.push_back({id, b, std::move(row)});
    }
  }
  std::sort(incoming.begin(), incoming.end(),
            [](const Incoming& a, const Incoming& b) { return a.id < b.id; });

  RowSet core;
  std::vector<BlockID> blocks;
  core.ids.reserve(incoming.size());
  core.xadj.reserve(incoming.size() + 1);
  core.xadj.push_back(0);
  blocks.reserve(incoming.size());
  for (Incoming& in : incoming) {
    core.ids.push_back(in.id);
    blocks.push_back(in.block);
    core.vwgt.push_back(in.row.weight);
    core.adj.insert(core.adj.end(), in.row.targets.begin(),
                    in.row.targets.end());
    core.ewgt.insert(core.ewgt.end(), in.row.weights.begin(),
                     in.row.weights.end());
    core.xadj.push_back(core.adj.size());
  }
  return BlockRowShard(std::move(core), blocks, k, rank, p);
}

}  // namespace kappa
