/// \file dist_hierarchy.hpp
/// \brief The distributed multilevel hierarchy store: every coarsening
/// level exists only as per-PE shards — there is no level replica.
///
/// The paper's SPMD design (§3–§4) gives each PE only its share of every
/// level of the contraction hierarchy. This subsystem realizes that:
///
///   DistLevel     — one rank's resident share of one level: the
///     owned+ghost ShardGraph (§3.3), the per-owned-shard boundary
///     structure the gap-graph matcher reads, and the sharded
///     contraction map to the next level. The only replicated per-level
///     state is the ownership map — O(num_shards) coarse-id ranges for
///     coarse levels (coarse ids are contiguous per shard), and the
///     prepartition vector for the finest level.
///
///   DistHierarchy — the level stack plus the protocols that keep it
///     shard-owned end to end:
///       * matching runs on the resident CSR (local per shard, gap
///         resolution over peer channels, taken-flags delivered point-
///         to-point to the ranks that hold an endpoint — never gathered),
///       * contraction is owner-computes: coarse node ids are assigned
///         by the shard of the pair's canonical (smaller-global-id)
///         endpoint; the halo exchange ships boundary match decisions,
///         ghost coarse ids and the coarse-edge contributions of
///         cross-rank pairs; the coarse ghost layer is refreshed over
///         channels exactly like a fine level's,
///       * uncoarsening projects assignments level by level through the
///         sharded maps (each rank projects its owned nodes, the
///         replicated partition state is reassembled from the per-rank
///         pieces),
///       * the coarsest level alone may be gathered — once, for initial
///         partitioning, as the paper does.
///
/// Determinism: coarse ids, shard ownership and all candidate orders are
/// pure functions of global ids and shard structure — never of the
/// physical PE count p — so a fixed seed yields the identical partition
/// for every p. Per-rank resident hierarchy memory is
/// Σ_levels (n_level / p + halo) instead of the replicated Σ_levels
/// n_level (measured in EXPERIMENTS.md, asserted in shard_graph_test).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coarsening/hierarchy.hpp"
#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/shard_graph.hpp"
#include "util/random.hpp"

namespace kappa {

class DistPartition;

/// Matching/contraction shape of the distributed coarsening, accumulated
/// over all levels on one PE (this PE's contribution, not a global total).
struct SpmdCoarseningStats {
  NodeID local_pairs = 0;      ///< pairs this PE matched inside its shards
  NodeID gap_pairs = 0;        ///< cross-shard pairs this PE decided
  std::size_t gap_rounds = 0;  ///< locally-heaviest rounds over all levels
  /// Peak resident size of any single per-level structure on this PE
  /// (owned + one-hop halo of one level; the gathered coarsest counts
  /// its remote share as ghosts).
  ShardFootprint footprint;
  /// Resident size of the whole hierarchy store on this PE: the sum of
  /// the per-level footprints, Σ_levels (n_level / p + halo) — all
  /// levels stay resident through uncoarsening.
  ShardFootprint hierarchy_resident;
};

/// One rank's resident share of one hierarchy level.
struct DistLevel {
  // --- replicated level metadata (O(num_shards) for coarse levels) ---
  NodeID global_n = 0;             ///< level node count
  NodeWeight max_node_weight = 0;  ///< global max (all-reduced at build)
  BlockID num_shards = 1;          ///< virtual shards (fixed per build)
  /// Coarse levels: shard s owns the contiguous coarse-id range
  /// [shard_begin[s], shard_begin[s + 1]). Empty for the finest level.
  std::vector<NodeID> shard_begin;
  /// Finest level only: the prepartition's node -> shard map.
  std::vector<BlockID> node_to_shard;

  // --- resident data of this rank ---
  ShardGraph shard;                   ///< owned + ghost local CSR
  std::vector<BlockID> my_shard_ids;  ///< ascending; s ≡ rank (mod p)
  std::vector<GraphShard> my_shards;  ///< parallel to my_shard_ids
  std::vector<char> peer;             ///< per rank: shares a halo with me
  /// Warm-started builds: the block of every resident node (local ids,
  /// owned then ghost) — the constraint the matchers filter on.
  std::vector<BlockID> warm_blocks;
  /// Sharded contraction map: owned local id -> coarse global id of the
  /// next level. Filled when the next level is built.
  std::vector<NodeID> owned_to_coarse;

  /// Home shard of a global node id of this level.
  [[nodiscard]] BlockID shard_of(NodeID global) const;

  /// Physical owner rank of a global node id.
  [[nodiscard]] int owner_of_node(NodeID global, int num_pes) const {
    return DistGraph::owner_of_shard(shard_of(global), num_pes);
  }

  /// Visits the owned nodes of rank \p q in ascending global-id order —
  /// derivable from the replicated ownership map alone, which is how the
  /// projection reassembles per-rank contributions without any id lists
  /// on the wire.
  template <typename Visitor>
  void for_each_owned_of_rank(int q, int num_pes, Visitor&& visit) const {
    if (!node_to_shard.empty()) {
      for (NodeID u = 0; u < node_to_shard.size(); ++u) {
        if (DistGraph::owner_of_shard(node_to_shard[u], num_pes) == q) {
          visit(u);
        }
      }
      return;
    }
    const BlockID num_shards = static_cast<BlockID>(shard_begin.size()) - 1;
    for (BlockID s = static_cast<BlockID>(q); s < num_shards;
         s += static_cast<BlockID>(num_pes)) {
      for (NodeID u = shard_begin[s]; u < shard_begin[s + 1]; ++u) visit(u);
    }
  }

  /// Resident size of this level on this rank.
  [[nodiscard]] ShardFootprint footprint() const { return shard.footprint(); }
};

/// The distributed hierarchy: level 0 references the (always-resident)
/// input graph; every level's graph data lives only in per-PE shards.
class DistHierarchy {
 public:
  /// Builds the full hierarchy SPMD: every PE of \p pe's runtime calls
  /// this with identical arguments; the build synchronizes internally.
  /// \p options.warm_start (if set) restricts matching to intra-block
  /// pairs via the matchers' block constraint. \p stats (optional)
  /// accumulates this rank's coarsening shape.
  DistHierarchy(const StaticGraph& finest, const CoarseningOptions& options,
                const Rng& rng, PEContext& pe,
                SpmdCoarseningStats* stats = nullptr);

  /// Number of levels including the finest input level.
  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }

  [[nodiscard]] const DistLevel& level(std::size_t l) const {
    return levels_[l];
  }

  [[nodiscard]] const StaticGraph& finest() const { return *finest_; }

  /// Node count of a level.
  [[nodiscard]] NodeID level_nodes(std::size_t l) const {
    return levels_[l].global_n;
  }

  /// Global maximum node weight of a level (for the refiner's per-level
  /// balance bound).
  [[nodiscard]] NodeWeight level_max_node_weight(std::size_t l) const {
    return levels_[l].max_node_weight;
  }

  /// The coarsest graph for initial partitioning. For a multi-level
  /// hierarchy this gathers the coarsest level's shards — once, cached;
  /// the paper gathers the coarsest graph the same way because initial
  /// partitioning needs the whole (tiny) graph on every PE.
  [[nodiscard]] const StaticGraph& coarsest();

  /// Warm-started builds: the coarsest-level block assignment, projected
  /// down the sharded hierarchy (each rank walks its own ownership chain;
  /// only the O(coarsest) result is gathered). Feeds
  /// WarmStartInitialPartitioner::observe_hierarchy.
  [[nodiscard]] std::vector<BlockID> coarsest_warm_assignment() const;

  /// Seeds the sharded partition state of the coarsest level from the
  /// replicated partition the initial phase produced on the gathered
  /// coarsest graph. No communication.
  [[nodiscard]] DistPartition lift(const Partition& coarsest_partition) const;

  /// Uncoarsening: projects the sharded \p coarse partition of level
  /// \p l + 1 onto level \p l through the sharded contraction maps. Each
  /// rank projects its owned nodes shard-locally, fetching the few
  /// cross-rank coarse ids point-to-point; block weights stay an O(k)
  /// all-reduce. No O(n_l) block-id gather anywhere.
  [[nodiscard]] DistPartition project(std::size_t l,
                                      const DistPartition& coarse) const;

  /// Materializes the full replicated finest-level partition from the
  /// sharded state — the one permitted block-id gather, used exactly once
  /// for the final PartitionResult.
  [[nodiscard]] Partition materialize(const DistPartition& partition) const;

  /// The §5.2 data-distribution step of one uncoarsening level: the rows
  /// of level \p l travel from their shard owners to the owners of their
  /// nodes' current blocks, each row accompanied by its block (no rank
  /// holds the full assignment). Level 0 extracts row content from the
  /// resident input graph — only (id, block) pairs cross the wire.
  [[nodiscard]] BlockRowShard distribute_block_rows(
      std::size_t l, const DistPartition& partition, BlockID k) const;

 private:
  /// One SPMD matching round on a resident level: local matching per
  /// owned shard, boundary-rating exchange, gap resolution with peer-wise
  /// taken notification. Returns the resident partner vector (local ids;
  /// gap pairs are known at both end owners).
  [[nodiscard]] std::vector<NodeID> match_level(
      const DistLevel& level, const MatchingOptions& match_options,
      MatcherAlgo matcher, const Rng& level_rng);

  /// Owner-computes contraction of \p fine under \p partner: assigns
  /// coarse ids by canonical-endpoint shard, exchanges boundary match
  /// decisions / ghost coarse ids / cross-rank pair contributions over
  /// the halo, and seals the next level's ShardGraph. Fills
  /// \p fine.owned_to_coarse.
  [[nodiscard]] DistLevel contract_level(DistLevel& fine,
                                         const std::vector<NodeID>& partner);

  /// Builds the finest DistLevel from the input graph's prepartition.
  [[nodiscard]] DistLevel build_finest_level(const CoarseningOptions& options);

  /// Records a freshly built level in the coarsening stats (peak single
  /// structure and resident hierarchy sum).
  void account_level(const DistLevel& level);

  /// Values of all shards, assembled from each owner's contributions with
  /// ceil(num_shards / p) scalar all-gathers — no vector collective.
  [[nodiscard]] std::vector<std::uint64_t> gather_per_shard(
      BlockID num_shards, const std::vector<std::uint64_t>& mine) const;

  const StaticGraph* finest_;
  PEContext& pe_;
  std::vector<DistLevel> levels_;
  std::optional<StaticGraph> coarsest_replica_;  ///< gathered once
  bool warm_ = false;
  SpmdCoarseningStats* stats_ = nullptr;
  Rng rng_;
};

}  // namespace kappa
