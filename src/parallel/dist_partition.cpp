/// \file dist_partition.cpp
/// \brief Sharded partition state (see dist_partition.hpp).
///
/// Communication discipline: block ids travel point-to-point between the
/// ranks that need them and the shard owners that hold them; the only
/// collectives are the O(k) block-weight all-reduce of a projection and
/// the single tagged materialize() gather that fills the final result.
#include "parallel/dist_partition.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/wire_format.hpp"
#include "util/seeded_hash.hpp"

namespace kappa {

namespace {

/// One deterministic request/response rendezvous: every rank sends one
/// (possibly empty) id list to every other rank, answers the lists it
/// receives with (id, value) pairs, and collects its own answers. FIFO
/// per-source delivery pairs the two message waves without tags.
template <typename Answer, typename Receive>
void rendezvous_lookup(std::vector<std::vector<std::uint64_t>> requests,
                       PEContext& pe, Answer&& answer, Receive&& receive) {
  const int p = pe.size();
  const int rank = pe.rank();
  if (p == 1) return;
  for (int q = 0; q < p; ++q) {
    if (q != rank) pe.send(q, std::move(requests[q]));
  }
  for (int q = 0; q < p; ++q) {
    if (q == rank) continue;
    const Message msg = pe.receive(q);
    std::vector<std::uint64_t> reply;
    reply.reserve(msg.payload.size());
    for (const std::uint64_t word : msg.payload) {
      reply.push_back(
          pack_pair(static_cast<NodeID>(word),
                    answer(static_cast<NodeID>(word))));
    }
    pe.send(q, std::move(reply));
  }
  for (int q = 0; q < p; ++q) {
    if (q == rank) continue;
    const Message msg = pe.receive(q);
    for (const std::uint64_t word : msg.payload) {
      const auto [id, value] = unpack_pair(word);
      receive(static_cast<NodeID>(id), static_cast<BlockID>(value));
    }
  }
}

}  // namespace

DistPartition::DistPartition(const DistLevel& level,
                             const Partition& replicated, PEContext& pe)
    : level_(&level),
      num_pes_(pe.size()),
      rank_(pe.rank()),
      k_(replicated.k()) {
  const NodeID num_owned = level.shard.num_owned();
  owned_.reserve(num_owned);
  for (NodeID i = 0; i < num_owned; ++i) {
    owned_.push_back(replicated.block(level.shard.global_of(i)));
  }
  block_weight_.reserve(k_);
  for (BlockID b = 0; b < k_; ++b) {
    block_weight_.push_back(replicated.block_weight(b));
  }
}

DistPartition DistPartition::from_replica(const Partition& replicated) {
  DistPartition result;
  result.k_ = replicated.k();
  result.cache_.reserve(replicated.num_nodes());
  for (NodeID u = 0; u < replicated.num_nodes(); ++u) {
    result.cache_.emplace(u, replicated.block(u));
  }
  result.block_weight_.reserve(replicated.k());
  for (BlockID b = 0; b < replicated.k(); ++b) {
    result.block_weight_.push_back(replicated.block_weight(b));
  }
  return result;
}

void DistPartition::learn(NodeID global, BlockID b) {
  if (level_ != nullptr) {
    const NodeID local = level_->shard.local_of(global);
    if (local != kInvalidNode && level_->shard.is_owned(local)) {
      assert(owned_[local] == b && "learned block contradicts owned entry");
      return;
    }
  }
  cache_.insert_or_assign(global, b);
}

void DistPartition::apply_move(NodeID u, BlockID from, BlockID to,
                               NodeWeight weight) {
  assert(from < k_ && to < k_);
  block_weight_[from] -= weight;
  block_weight_[to] += weight;
  if (level_ != nullptr) {
    const NodeID local = level_->shard.local_of(u);
    if (local != kInvalidNode && level_->shard.is_owned(local)) {
      assert(owned_[local] == from && "delta disagrees with owned entry");
      owned_[local] = to;
      return;
    }
  }
  const auto it = cache_.find(u);
  if (it != cache_.end()) {
    assert(it->second == from && "delta disagrees with cached entry");
    it->second = to;
  }
}

void DistPartition::update_entry(NodeID u, BlockID to) {
  assert(to < k_);
  if (level_ != nullptr) {
    const NodeID local = level_->shard.local_of(u);
    if (local != kInvalidNode && level_->shard.is_owned(local)) {
      owned_[local] = to;
      return;
    }
  }
  cache_.insert_or_assign(u, to);
}

void DistPartition::set_block_weights(std::vector<NodeWeight> weights) {
  assert(weights.size() == block_weight_.size());
  block_weight_ = std::move(weights);
}

void DistPartition::fetch_blocks(std::span<const NodeID> needed,
                                 PEContext& pe) {
  assert(level_ != nullptr && "fetching needs the level ownership map");
  std::vector<std::vector<std::uint64_t>> requests(num_pes_);
  for (const NodeID g : needed) {
    if (knows(g)) continue;
    requests[level_->owner_of_node(g, num_pes_)].push_back(g);
  }
  assert(requests[rank_].empty() && "owned nodes are always known");
  rendezvous_lookup(
      std::move(requests), pe,
      [&](NodeID g) { return block(g); },
      [&](NodeID g, BlockID b) { cache_.insert_or_assign(g, b); });
}

void DistPartition::refresh_blocks(std::span<const NodeID> needed,
                                   PEContext& pe) {
  assert(level_ != nullptr && "refreshing needs the level ownership map");
  std::vector<std::vector<std::uint64_t>> requests(num_pes_);
  for (const NodeID g : needed) {
    const int owner = level_->owner_of_node(g, num_pes_);
    if (owner == rank_) continue;  // authoritative here
    requests[owner].push_back(g);
  }
  rendezvous_lookup(
      std::move(requests), pe,
      [&](NodeID g) { return block(g); },
      [&](NodeID g, BlockID b) { cache_.insert_or_assign(g, b); });
}

DistPartition DistPartition::project(const DistLevel& fine,
                                     const DistLevel& coarse_level,
                                     const DistPartition& coarse,
                                     PEContext& pe) {
  const int p = pe.size();
  const NodeID num_owned = fine.shard.num_owned();
  assert(fine.owned_to_coarse.size() == num_owned &&
         "projection needs the sharded contraction map");

  DistPartition result;
  result.level_ = &fine;
  result.num_pes_ = p;
  result.rank_ = pe.rank();
  result.k_ = coarse.k();
  result.owned_.assign(num_owned, kInvalidBlock);

  // Shard-local pass: a fine node's coarse id was assigned by the shard
  // of the pair's canonical endpoint, so it is owned here unless the node
  // was matched across ranks — those few ids are fetched point-to-point
  // from the coarse shard owners below.
  std::vector<std::vector<std::uint64_t>> requests(p);
  for (NodeID i = 0; i < num_owned; ++i) {
    const NodeID c = fine.owned_to_coarse[i];
    if (coarse.knows(c)) {
      result.owned_[i] = coarse.block(c);
    } else {
      requests[coarse_level.owner_of_node(c, p)].push_back(c);
    }
  }
  hash_map<NodeID, BlockID> remote;
  rendezvous_lookup(
      std::move(requests), pe,
      [&](NodeID c) { return coarse.block(c); },
      [&](NodeID c, BlockID b) { remote.emplace(c, b); });
  for (NodeID i = 0; i < num_owned; ++i) {
    if (result.owned_[i] == kInvalidBlock) {
      result.owned_[i] = remote.at(fine.owned_to_coarse[i]);
    }
  }

  // Block weights from the sharded node weights: partial sums over the
  // owned nodes, one O(k) all-reduce.
  const StaticGraph& resident = fine.shard.csr();
  std::vector<std::uint64_t> partial(result.k_, 0);
  for (NodeID i = 0; i < num_owned; ++i) {
    partial[result.owned_[i]] +=
        static_cast<std::uint64_t>(resident.node_weight(i));
  }
  const std::vector<std::uint64_t> sums =
      pe.all_reduce_sum_vec(std::move(partial));
  result.block_weight_.reserve(result.k_);
  for (const std::uint64_t w : sums) {
    result.block_weight_.push_back(static_cast<NodeWeight>(w));
  }
  return result;
}

Partition DistPartition::materialize(PEContext& pe) const {
  assert(level_ != nullptr && "materializing needs the level ownership map");
  const int p = pe.size();
  std::vector<std::uint64_t> words(owned_.begin(), owned_.end());
  const auto gathered =
      // kappa-lint: allow(no-partition-gathers, "the one sanctioned gather: the final PartitionResult")
      pe.all_gather_vectors(std::move(words));
  std::vector<BlockID> assignment(level_->global_n, 0);
  for (int q = 0; q < p; ++q) {
    std::size_t idx = 0;
    level_->for_each_owned_of_rank(q, p, [&](NodeID u) {
      assignment[u] = static_cast<BlockID>(gathered[q][idx++]);
    });
  }
  return Partition(std::move(assignment), k_, block_weight_);
}

}  // namespace kappa
