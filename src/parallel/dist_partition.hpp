/// \file dist_partition.hpp
/// \brief The sharded partition-state store: block ids live only where
/// they are needed — no rank holds the O(n_l) assignment vector.
///
/// The distributed hierarchy store (PR 4) removed every replicated level
/// graph, but the partition itself was still replicated: each
/// uncoarsening step all-gathered O(n_l) block ids so that every PE could
/// answer block(u) for every node. This subsystem makes the partition the
/// last O(n) state to go sub-linear per rank:
///
///   * owned entries — each rank stores the block of exactly its
///     shard-owned nodes of one hierarchy level (the same ownership map
///     the DistLevel already replicates in O(num_shards)),
///   * a ghost-block cache — blocks of non-owned nodes this rank needs
///     (members of its §5.2 block-row store and the targets of their
///     resident rows), filled by point-to-point fetches from the shard
///     owners and kept current by the moved-node deltas every rank
///     applies after each refinement color class,
///   * replicated O(k) block weights, maintained incrementally from the
///     deltas and re-derived per level with one O(k) all-reduce.
///
/// Uncoarsening projects shard-locally: each rank maps its owned fine
/// nodes through its own slice of the contraction map and fetches the few
/// cross-rank coarse ids (halo pairs) point-to-point — no block-id vector
/// is ever all-gathered. The full assignment is materialized exactly
/// once, for the final PartitionResult (carrying a kappa-lint allow()
/// for the no-partition-gathers check).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/partition.hpp"
#include "parallel/comm_stats.hpp"
#include "parallel/dist_hierarchy.hpp"
#include "parallel/pe_runtime.hpp"
#include "util/seeded_hash.hpp"
#include "util/types.hpp"

namespace kappa {

/// One rank's share of the partition state of one hierarchy level.
class DistPartition {
 public:
  DistPartition() = default;

  /// Seeds the sharded store for \p level from a replicated partition —
  /// the once-gathered coarsest assignment after initial partitioning.
  /// Each rank keeps only its owned entries; no communication.
  DistPartition(const DistLevel& level, const Partition& replicated,
                PEContext& pe);

  /// Fully-cached stand-in with no owned domain, used by tests and
  /// oracles that have a replica anyway (e.g. the distributed-quotient
  /// equivalence suite). fetch/project/materialize are unavailable.
  [[nodiscard]] static DistPartition from_replica(const Partition& replicated);

  [[nodiscard]] BlockID k() const { return k_; }

  /// Block of \p global. The node must be known here: shard-owned, or
  /// learned/fetched into the ghost-block cache.
  [[nodiscard]] BlockID block(NodeID global) const {
    if (level_ != nullptr) {
      const NodeID local = level_->shard.local_of(global);
      if (local != kInvalidNode && level_->shard.is_owned(local)) {
        return owned_[local];
      }
    }
    return cache_.at(global);
  }

  /// Whether this rank can answer block(\p global) locally.
  [[nodiscard]] bool knows(NodeID global) const {
    if (level_ != nullptr) {
      const NodeID local = level_->shard.local_of(global);
      if (local != kInvalidNode && level_->shard.is_owned(local)) return true;
    }
    return cache_.count(global) > 0;
  }

  /// Records the block of a non-owned node in the ghost-block cache (the
  /// §5.2 data distribution and row migrations tell the block owner the
  /// blocks it needs without a fetch). Owned nodes are ignored — their
  /// entries are authoritative already.
  void learn(NodeID global, BlockID b);

  /// Applies one committed move: updates every entry this rank holds for
  /// \p u (owned or cached; ranks that hold neither still account the
  /// replicated block weights). Every rank applies every gathered delta,
  /// which is what keeps owned entries, caches and weights globally
  /// consistent.
  void apply_move(NodeID u, BlockID from, BlockID to, NodeWeight weight);

  /// Targeted entry update of the async scheduler's point-to-point
  /// invalidations: overwrites whatever entry this rank holds for \p u
  /// (owned entry, cached entry, or a fresh cache insert) without touching
  /// the block weights. Unlike apply_move() it tolerates a stale previous
  /// value — mid-iteration the async mode keeps entries only *causally*
  /// current (every invalidation chain for one node is ordered through
  /// the lock arbiter), not globally synchronized.
  void update_entry(NodeID u, BlockID to);

  /// Shifts the replicated weight account of one block (async executors
  /// and partners book their pair's moves; other ranks catch up at the
  /// iteration-end weight refresh).
  void adjust_block_weight(BlockID b, NodeWeight delta) {
    block_weight_[b] += delta;
  }

  /// Overwrites the replicated O(k) block weights with authoritative
  /// values (the async iteration-end owner-contribution all-reduce).
  void set_block_weights(std::vector<NodeWeight> weights);

  /// Shard-owner rank of \p global under this level's ownership map.
  [[nodiscard]] int shard_owner(NodeID global) const {
    assert(level_ != nullptr && "ownership map required");
    return level_->owner_of_node(global, num_pes_);
  }

  [[nodiscard]] NodeWeight block_weight(BlockID b) const {
    return block_weight_[b];
  }

  [[nodiscard]] NodeWeight max_block_weight() const {
    NodeWeight mx = 0;
    for (const NodeWeight w : block_weight_) mx = std::max(mx, w);
    return mx;
  }

  /// Fetches the blocks of every unknown id in \p needed from the shard
  /// owners (one deterministic request/response rendezvous over the
  /// channels) and caches them. Collective in lockstep: every rank must
  /// call, with its own — possibly empty — need list.
  void fetch_blocks(std::span<const NodeID> needed, PEContext& pe);

  /// Like fetch_blocks(), but re-fetches cached ids too: the async
  /// iteration-end cache refresh, which replaces possibly-stale ghost
  /// entries with the shard owners' authoritative (post-drain) values.
  /// Owned ids in \p needed are skipped — they are authoritative here.
  void refresh_blocks(std::span<const NodeID> needed, PEContext& pe);

  /// Shard-local uncoarsening projection: each rank maps its owned nodes
  /// of \p fine through its slice of the contraction map; the few coarse
  /// ids owned by other ranks (cross-rank matched pairs) are fetched
  /// point-to-point, and block weights are re-derived with one O(k)
  /// all-reduce. No O(n_l) gather anywhere.
  [[nodiscard]] static DistPartition project(const DistLevel& fine,
                                             const DistLevel& coarse_level,
                                             const DistPartition& coarse,
                                             PEContext& pe);

  /// Materializes the full replicated partition — the one permitted
  /// block-id gather, used exactly once to fill the final
  /// PartitionResult.
  [[nodiscard]] Partition materialize(PEContext& pe) const;

  /// Resident size of this rank's partition state: owned entries plus
  /// ghost-block cache entries (arcs unused).
  [[nodiscard]] ShardFootprint footprint() const {
    ShardFootprint fp;
    fp.owned_nodes = owned_.size();
    fp.ghost_nodes = cache_.size();
    return fp;
  }

 private:
  const DistLevel* level_ = nullptr;  ///< ownership map; null: replica mode
  int num_pes_ = 1;
  int rank_ = 0;
  BlockID k_ = 0;
  /// Blocks of the shard-owned nodes, indexed by owned local id.
  std::vector<BlockID> owned_;
  /// Ghost-block cache: global id -> block for non-owned nodes.
  hash_map<NodeID, BlockID> cache_;
  /// Replicated per-block weights (O(k)).
  std::vector<NodeWeight> block_weight_;
};

}  // namespace kappa
