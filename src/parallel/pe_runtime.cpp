#include "parallel/pe_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace kappa {

PEContext::PEContext(PERuntime& runtime, int rank, std::uint64_t seed)
    : runtime_(runtime), rank_(rank), rng_(Rng(seed).fork(rank)) {}

int PEContext::size() const { return runtime_.num_pes_; }

void PEContext::send(int dest, std::vector<std::uint64_t> payload) {
  ++stats_.messages_sent;
  stats_.words_sent += payload.size();
  if (halo_level_ >= 0) {
    const std::size_t level = static_cast<std::size_t>(halo_level_);
    if (stats_.halo_per_level.size() <= level) {
      stats_.halo_per_level.resize(level + 1);
    }
    ++stats_.halo_per_level[level].messages;
    stats_.halo_per_level[level].words += payload.size();
  }
  runtime_.mailboxes_[dest].push({rank_, std::move(payload)});
}

Message PEContext::receive(int source) {
  return runtime_.mailboxes_[rank_].pop(source);
}

std::optional<Message> PEContext::try_receive(int source) {
  return runtime_.mailboxes_[rank_].try_pop(source);
}

void PEContext::barrier() {
  ++stats_.barriers;
  runtime_.barrier_->arrive_and_wait();
}

std::uint64_t PEContext::all_reduce_sum(std::uint64_t value) {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : all_gather(value)) sum += v;
  return sum;
}

std::vector<std::uint64_t> PEContext::all_reduce_sum_vec(
    std::vector<std::uint64_t> values) {
  const std::size_t len = values.size();
  std::vector<std::uint64_t> sum(len, 0);
  for (const auto& contribution : all_gather_vectors(std::move(values))) {
    assert(contribution.size() == len && "all PEs must contribute equally");
    for (std::size_t i = 0; i < len; ++i) sum[i] += contribution[i];
  }
  return sum;
}

std::uint64_t PEContext::all_reduce_max(std::uint64_t value) {
  std::uint64_t result = 0;
  for (const std::uint64_t v : all_gather(value)) {
    result = std::max(result, v);
  }
  return result;
}

std::vector<std::uint64_t> PEContext::all_gather(std::uint64_t value) {
  // Write phase and read phase are separated by barriers, so the shared
  // scratch is data-race free (distinct ranks write distinct slots).
  runtime_.collective_scratch_[rank_] = value;
  barrier();
  std::vector<std::uint64_t> result = runtime_.collective_scratch_;
  barrier();
  // A collective delivers this PE's contribution to every *other* rank:
  // one message and one payload copy per destination (a flat all-gather
  // sends nothing with p = 1).
  const std::uint64_t destinations =
      static_cast<std::uint64_t>(runtime_.num_pes_ - 1);
  stats_.messages_sent += destinations;
  stats_.words_sent += destinations;
  return result;
}

std::vector<std::vector<std::uint64_t>> PEContext::all_gather_vectors(
    std::vector<std::uint64_t> payload) {
  const std::uint64_t destinations =
      static_cast<std::uint64_t>(runtime_.num_pes_ - 1);
  stats_.messages_sent += destinations;
  stats_.words_sent += destinations * payload.size();
  runtime_.vector_scratch_[rank_] = std::move(payload);
  barrier();
  std::vector<std::vector<std::uint64_t>> result = runtime_.vector_scratch_;
  barrier();
  return result;
}

std::vector<std::uint64_t> PEContext::broadcast(
    const std::vector<std::uint64_t>& payload, int root) {
  if (rank_ == root) {
    runtime_.broadcast_scratch_ = payload;
    // Only the root puts data on the wire: one copy per destination rank.
    const std::uint64_t destinations =
        static_cast<std::uint64_t>(runtime_.num_pes_ - 1);
    stats_.messages_sent += destinations;
    stats_.words_sent += destinations * payload.size();
  }
  barrier();
  std::vector<std::uint64_t> result = runtime_.broadcast_scratch_;
  barrier();
  return result;
}

PERuntime::PERuntime(int num_pes, std::uint64_t seed)
    : num_pes_(num_pes),
      seed_(seed),
      mailboxes_(num_pes),
      barrier_(std::make_unique<std::barrier<>>(num_pes)),
      collective_scratch_(num_pes, 0),
      vector_scratch_(num_pes) {}

std::vector<CommStats> PERuntime::run(
    const std::function<void(PEContext&)>& program) {
  std::vector<CommStats> stats(num_pes_);
  std::vector<std::thread> threads;
  threads.reserve(num_pes_);
  for (int rank = 0; rank < num_pes_; ++rank) {
    threads.emplace_back([this, &program, &stats, rank]() {
      PEContext context(*this, rank, seed_);
      program(context);
      stats[rank] = context.stats();
    });
  }
  for (auto& thread : threads) thread.join();
  return stats;
}

}  // namespace kappa
