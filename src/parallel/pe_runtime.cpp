#include "parallel/pe_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <thread>

#include "parallel/transport_inproc.hpp"
#include "util/trace.hpp"

namespace kappa {

namespace {

/// Order-independent fingerprint mismatch beats a deadlock: FNV-1a over
/// a word sequence, used by PESubGroup::validate to compare owner maps.
std::uint64_t fnv1a(const std::vector<int>& words) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const int w : words) {
    hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(w));
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

PEContext::PEContext(Transport& transport, std::uint64_t seed)
    : transport_(transport),
      rank_(transport.rank()),
      rng_(Rng(seed).fork(rank_)) {}

void PEContext::send(int dest, std::vector<std::uint64_t> payload) {
  ++stats_.messages_sent;
  stats_.words_sent += payload.size();
  if (halo_level_ >= 0) {
    const std::size_t level = static_cast<std::size_t>(halo_level_);
    if (stats_.halo_per_level.size() <= level) {
      stats_.halo_per_level.resize(level + 1);
    }
    ++stats_.halo_per_level[level].messages;
    stats_.halo_per_level[level].words += payload.size();
  }
  KAPPA_TRACE_SPAN("net.send", static_cast<std::uint64_t>(dest),
                   payload.size() * sizeof(std::uint64_t));
  transport_.send(dest, Lane::kApp, std::move(payload));
}

Message PEContext::receive(int source) {
  // Only time the genuinely blocking path: a receive that is satisfied
  // immediately is work, not idleness.
  if (auto ready = transport_.try_receive(source, Lane::kApp)) {
    ++stats_.messages_received;
    stats_.words_received += ready->payload.size();
    return std::move(*ready);
  }
  const std::uint64_t start = trace_now_ns();
  Message msg = transport_.receive(source, Lane::kApp);
  const std::uint64_t end = trace_now_ns();
  stats_.recv_idle_ns += end - start;
  if (TraceRecorder* recorder = thread_trace()) {
    recorder->span("net.recv.wait", start, end,
                   static_cast<std::uint64_t>(msg.source),
                   msg.payload.size() * sizeof(std::uint64_t));
  }
  ++stats_.messages_received;
  stats_.words_received += msg.payload.size();
  return msg;
}

std::optional<Message> PEContext::try_receive(int source) {
  auto msg = transport_.try_receive(source, Lane::kApp);
  if (msg) {
    ++stats_.messages_received;
    stats_.words_received += msg->payload.size();
  }
  return msg;
}

void PEContext::barrier() {
  ++stats_.barriers;
  const std::uint64_t start = trace_now_ns();
  transport_.barrier();
  const std::uint64_t end = trace_now_ns();
  stats_.collective_idle_ns += end - start;
  if (TraceRecorder* recorder = thread_trace()) {
    recorder->span("net.barrier", start, end);
  }
}

std::uint64_t PEContext::wire_bytes_sent() const {
  return transport_.wire_bytes_sent();
}

std::uint64_t PEContext::wire_bytes_received() const {
  return transport_.wire_bytes_received();
}

void PEContext::enable_watch(const ProgressBoard* board,
                             int heartbeat_interval_ms) {
  transport_.enable_watch(board, heartbeat_interval_ms);
}

void PEContext::disable_watch() { transport_.disable_watch(); }

std::optional<PeerHealth> PEContext::peer_health(int peer) const {
  return transport_.peer_health(peer);
}

std::vector<LaneQueueDepth> PEContext::queue_depths() const {
  return transport_.queue_depths();
}

std::uint64_t PEContext::heartbeat_frames_sent() const {
  return transport_.heartbeat_frames_sent();
}

std::uint64_t PEContext::heartbeat_words_sent() const {
  return transport_.heartbeat_words_sent();
}

Message PEContext::collective_receive(int source) {
  if (auto ready = transport_.try_receive(source, Lane::kCollective)) {
    ++stats_.messages_received;
    stats_.words_received += ready->payload.size();
    return std::move(*ready);
  }
  const std::uint64_t start = trace_now_ns();
  Message msg = transport_.receive(source, Lane::kCollective);
  const std::uint64_t end = trace_now_ns();
  stats_.collective_idle_ns += end - start;
  if (TraceRecorder* recorder = thread_trace()) {
    recorder->span("net.collective.wait", start, end,
                   static_cast<std::uint64_t>(msg.source),
                   msg.payload.size() * sizeof(std::uint64_t));
  }
  ++stats_.messages_received;
  stats_.words_received += msg.payload.size();
  return msg;
}

std::uint64_t PEContext::all_reduce_sum(std::uint64_t value) {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : all_gather(value)) sum += v;
  return sum;
}

std::vector<std::uint64_t> PEContext::all_reduce_sum_vec(
    std::vector<std::uint64_t> values) {
  const std::size_t len = values.size();
  std::vector<std::uint64_t> sum(len, 0);
  for (const auto& contribution : all_gather_vectors(std::move(values))) {
    assert(contribution.size() == len && "all PEs must contribute equally");
    for (std::size_t i = 0; i < len; ++i) sum[i] += contribution[i];
  }
  return sum;
}

std::uint64_t PEContext::all_reduce_max(std::uint64_t value) {
  std::uint64_t result = 0;
  for (const std::uint64_t v : all_gather(value)) {
    result = std::max(result, v);
  }
  return result;
}

// The collectives below are generic flat exchanges over transport
// point-to-point on the collective lane: rank r sends to (r + offset) mod
// p and receives from (r - offset) mod p for offset = 1..p-1, the same
// deterministic order on every backend. The CommStats charging is the
// wire *model* — one message and one payload copy per destination rank —
// which for these flat algorithms coincides exactly with the physical
// sends, so the pinned counter semantics are unchanged.

std::vector<std::uint64_t> PEContext::all_gather(std::uint64_t value) {
  const int p = size();
  const std::uint64_t destinations = static_cast<std::uint64_t>(p - 1);
  ++stats_.barriers;  // a collective is a synchronization point
  stats_.messages_sent += destinations;
  stats_.words_sent += destinations;
  std::vector<std::uint64_t> result(static_cast<std::size_t>(p));
  result[static_cast<std::size_t>(rank_)] = value;
  for (int offset = 1; offset < p; ++offset) {
    transport_.send((rank_ + offset) % p, Lane::kCollective, {value});
  }
  for (int offset = 1; offset < p; ++offset) {
    const int source = (rank_ - offset + p) % p;
    result[static_cast<std::size_t>(source)] =
        collective_receive(source).payload.at(0);
  }
  return result;
}

std::vector<std::vector<std::uint64_t>> PEContext::all_gather_vectors(
    std::vector<std::uint64_t> payload) {
  const int p = size();
  const std::uint64_t destinations = static_cast<std::uint64_t>(p - 1);
  ++stats_.barriers;  // a collective is a synchronization point
  stats_.messages_sent += destinations;
  stats_.words_sent += destinations * payload.size();
  std::vector<std::vector<std::uint64_t>> result(static_cast<std::size_t>(p));
  for (int offset = 1; offset < p; ++offset) {
    transport_.send((rank_ + offset) % p, Lane::kCollective, payload);
  }
  result[static_cast<std::size_t>(rank_)] = std::move(payload);
  for (int offset = 1; offset < p; ++offset) {
    const int source = (rank_ - offset + p) % p;
    result[static_cast<std::size_t>(source)] =
        std::move(collective_receive(source).payload);
  }
  return result;
}

std::vector<std::uint64_t> PEContext::broadcast(
    const std::vector<std::uint64_t>& payload, int root) {
  const int p = size();
  ++stats_.barriers;  // a collective is a synchronization point
  if (rank_ == root) {
    // Only the root puts data on the wire: one copy per destination rank.
    const std::uint64_t destinations = static_cast<std::uint64_t>(p - 1);
    stats_.messages_sent += destinations;
    stats_.words_sent += destinations * payload.size();
    for (int offset = 1; offset < p; ++offset) {
      transport_.send((rank_ + offset) % p, Lane::kCollective, payload);
    }
    return payload;
  }
  return collective_receive(root).payload;
}

PESubGroup::PESubGroup(PEContext& parent, std::vector<int> owner_of_virtual,
                       std::vector<int> neighbor_ranks)
    : parent_(parent),
      owner_(std::move(owner_of_virtual)),
      neighbors_(std::move(neighbor_ranks)) {
  const int p = parent_.size();
  for (const int o : owner_) {
    if (o < 0 || o >= p) {
      throw std::invalid_argument(
          "PESubGroup: virtual PE owner " + std::to_string(o) +
          " outside the parent rank range [0, " + std::to_string(p) + ")");
    }
  }
  std::sort(neighbors_.begin(), neighbors_.end());
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    const int q = neighbors_[i];
    if (q < 0 || q >= p) {
      throw std::invalid_argument(
          "PESubGroup: neighbor rank " + std::to_string(q) +
          " outside the parent rank range [0, " + std::to_string(p) + ")");
    }
    if (q == parent_.rank()) {
      throw std::invalid_argument(
          "PESubGroup: rank " + std::to_string(q) +
          " lists itself as a neighbor");
    }
    if (i > 0 && neighbors_[i - 1] == q) {
      throw std::invalid_argument(
          "PESubGroup: duplicate neighbor rank " + std::to_string(q) +
          " (exchange() would double-send the bundle)");
    }
  }
#ifndef NDEBUG
  // The cross-rank invariants would otherwise surface as a deadlock deep
  // inside exchange(); debug builds pay one collective here to turn that
  // into an immediate, explanatory error on every rank.
  validate();
#endif
}

void PESubGroup::validate() {
  // Every rank publishes [owner-map fingerprint, its neighbor list...];
  // afterwards each rank can check the global invariants locally and all
  // ranks reach the same verdict.
  std::vector<std::uint64_t> mine;
  mine.reserve(1 + neighbors_.size());
  mine.push_back(fnv1a(owner_));
  for (const int q : neighbors_) {
    mine.push_back(static_cast<std::uint64_t>(q));
  }
  const std::vector<std::vector<std::uint64_t>> all =
      parent_.all_gather_vectors(std::move(mine));

  const std::uint64_t owner_hash = all[static_cast<std::size_t>(
      parent_.rank())][0];
  for (std::size_t r = 0; r < all.size(); ++r) {
    if (all[r].at(0) != owner_hash) {
      throw std::invalid_argument(
          "PESubGroup: rank " + std::to_string(r) +
          " built the group with a different virtual-PE owner map than "
          "rank " + std::to_string(parent_.rank()));
    }
  }
  const auto lists = [&all](int rank, int neighbor) {
    const std::vector<std::uint64_t>& row =
        all[static_cast<std::size_t>(rank)];
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i] == static_cast<std::uint64_t>(neighbor)) return true;
    }
    return false;
  };
  for (std::size_t r = 0; r < all.size(); ++r) {
    for (std::size_t i = 1; i < all[r].size(); ++i) {
      const int q = static_cast<int>(all[r][i]);
      if (!lists(q, static_cast<int>(r))) {
        throw std::invalid_argument(
            "PESubGroup: asymmetric neighbor lists — rank " +
            std::to_string(r) + " lists rank " + std::to_string(q) +
            " but not vice versa; exchange() would deadlock waiting for "
            "a bundle that is never sent");
      }
    }
  }
}

void PESubGroup::post(int from, int to, std::vector<std::uint64_t> payload) {
  assert(owner_[static_cast<std::size_t>(from)] == parent_.rank() &&
         "only locally hosted virtual PEs may send");
  outbox_.push_back({from, to, std::move(payload)});
}

std::vector<VirtualMessage> PESubGroup::exchange() {
  std::vector<VirtualMessage> inbox;
  // Bundle wire format: repeated records [from, to, len, words...].
  std::vector<std::vector<std::uint64_t>> bundles(neighbors_.size());
  for (VirtualMessage& msg : outbox_) {
    const int dest = owner_[static_cast<std::size_t>(msg.to)];
    if (dest == parent_.rank()) {
      inbox.push_back(std::move(msg));
      continue;
    }
    const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), dest);
    assert(it != neighbors_.end() && *it == dest &&
           "virtual destination hosted outside the neighbor set");
    auto& bundle = bundles[static_cast<std::size_t>(it - neighbors_.begin())];
    bundle.push_back(static_cast<std::uint64_t>(msg.from));
    bundle.push_back(static_cast<std::uint64_t>(msg.to));
    bundle.push_back(msg.payload.size());
    bundle.insert(bundle.end(), msg.payload.begin(), msg.payload.end());
  }
  outbox_.clear();

  // Every neighbor gets a bundle every round, empty or not, so the
  // matching receives below never deadlock and need no barrier.
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    parent_.send(neighbors_[i], std::move(bundles[i]));
  }
  for (const int q : neighbors_) {
    const Message msg = parent_.receive(q);
    std::size_t pos = 0;
    while (pos < msg.payload.size()) {
      VirtualMessage vm;
      vm.from = static_cast<int>(msg.payload[pos]);
      vm.to = static_cast<int>(msg.payload[pos + 1]);
      const std::size_t len = msg.payload[pos + 2];
      pos += 3;
      vm.payload.assign(msg.payload.begin() + static_cast<std::ptrdiff_t>(pos),
                        msg.payload.begin() +
                            static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
      inbox.push_back(std::move(vm));
    }
  }
  std::sort(inbox.begin(), inbox.end(),
            [](const VirtualMessage& a, const VirtualMessage& b) {
              return a.to != b.to ? a.to < b.to : a.from < b.from;
            });
  return inbox;
}

PERuntime::PERuntime(int num_pes, std::uint64_t seed)
    : fabric_(make_inproc_fabric(num_pes)), seed_(seed) {}

PERuntime::PERuntime(std::unique_ptr<TransportFabric> fabric,
                     std::uint64_t seed)
    : fabric_(std::move(fabric)), seed_(seed) {
  if (!fabric_) {
    throw std::invalid_argument("PERuntime: null transport fabric");
  }
}

PERuntime::~PERuntime() = default;

int PERuntime::num_pes() const { return fabric_->size(); }

int PERuntime::primary_rank() const {
  const std::vector<int> locals = fabric_->local_ranks();
  return *std::min_element(locals.begin(), locals.end());
}

const char* PERuntime::backend() const { return fabric_->name(); }

std::vector<CommStats> PERuntime::run(
    const std::function<void(PEContext&)>& program) {
  const std::vector<int> locals = fabric_->local_ranks();
  std::vector<CommStats> stats(static_cast<std::size_t>(num_pes()));
  std::vector<std::exception_ptr> errors(locals.size());
  std::vector<std::thread> threads;
  threads.reserve(locals.size());
  for (std::size_t i = 0; i < locals.size(); ++i) {
    const int rank = locals[i];
    threads.emplace_back([this, &program, &stats, &errors, i, rank]() {
      try {
        Transport& endpoint = fabric_->endpoint(rank);
        // Wire bytes accumulate over the endpoint's lifetime; report this
        // run's delta.
        const std::uint64_t wire_sent_before = endpoint.wire_bytes_sent();
        const std::uint64_t wire_received_before =
            endpoint.wire_bytes_received();
        const std::uint64_t hb_frames_before =
            endpoint.heartbeat_frames_sent();
        const std::uint64_t hb_words_before =
            endpoint.heartbeat_words_sent();
        PEContext context(endpoint, seed_);
        program(context);
        CommStats& out = stats[static_cast<std::size_t>(rank)];
        out = context.stats();
        out.wire_bytes_sent =
            endpoint.wire_bytes_sent() - wire_sent_before;
        out.wire_bytes_received =
            endpoint.wire_bytes_received() - wire_received_before;
        out.heartbeat_frames_sent =
            endpoint.heartbeat_frames_sent() - hb_frames_before;
        out.heartbeat_words_sent =
            endpoint.heartbeat_words_sent() - hb_words_before;
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return stats;
}

}  // namespace kappa
