#include "parallel/pe_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace kappa {

namespace {

/// Monotonic nanoseconds for the idle-time counters.
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PEContext::PEContext(PERuntime& runtime, int rank, std::uint64_t seed)
    : runtime_(runtime), rank_(rank), rng_(Rng(seed).fork(rank)) {}

int PEContext::size() const { return runtime_.num_pes_; }

void PEContext::send(int dest, std::vector<std::uint64_t> payload) {
  ++stats_.messages_sent;
  stats_.words_sent += payload.size();
  if (halo_level_ >= 0) {
    const std::size_t level = static_cast<std::size_t>(halo_level_);
    if (stats_.halo_per_level.size() <= level) {
      stats_.halo_per_level.resize(level + 1);
    }
    ++stats_.halo_per_level[level].messages;
    stats_.halo_per_level[level].words += payload.size();
  }
  runtime_.mailboxes_[dest].push({rank_, std::move(payload)});
}

Message PEContext::receive(int source) {
  // Only time the genuinely blocking path: a receive that is satisfied
  // from the mailbox immediately is work, not idleness.
  if (auto ready = runtime_.mailboxes_[rank_].try_pop(source)) {
    return std::move(*ready);
  }
  const std::uint64_t start = now_ns();
  Message msg = runtime_.mailboxes_[rank_].pop(source);
  stats_.recv_idle_ns += now_ns() - start;
  return msg;
}

std::optional<Message> PEContext::try_receive(int source) {
  return runtime_.mailboxes_[rank_].try_pop(source);
}

void PEContext::barrier() {
  ++stats_.barriers;
  const std::uint64_t start = now_ns();
  runtime_.barrier_->arrive_and_wait();
  stats_.collective_idle_ns += now_ns() - start;
}

std::uint64_t PEContext::all_reduce_sum(std::uint64_t value) {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : all_gather(value)) sum += v;
  return sum;
}

std::vector<std::uint64_t> PEContext::all_reduce_sum_vec(
    std::vector<std::uint64_t> values) {
  const std::size_t len = values.size();
  std::vector<std::uint64_t> sum(len, 0);
  for (const auto& contribution : all_gather_vectors(std::move(values))) {
    assert(contribution.size() == len && "all PEs must contribute equally");
    for (std::size_t i = 0; i < len; ++i) sum[i] += contribution[i];
  }
  return sum;
}

std::uint64_t PEContext::all_reduce_max(std::uint64_t value) {
  std::uint64_t result = 0;
  for (const std::uint64_t v : all_gather(value)) {
    result = std::max(result, v);
  }
  return result;
}

std::vector<std::uint64_t> PEContext::all_gather(std::uint64_t value) {
  // Write phase and read phase are separated by barriers, so the shared
  // scratch is data-race free (distinct ranks write distinct slots).
  runtime_.collective_scratch_[rank_] = value;
  barrier();
  std::vector<std::uint64_t> result = runtime_.collective_scratch_;
  barrier();
  // A collective delivers this PE's contribution to every *other* rank:
  // one message and one payload copy per destination (a flat all-gather
  // sends nothing with p = 1).
  const std::uint64_t destinations =
      static_cast<std::uint64_t>(runtime_.num_pes_ - 1);
  stats_.messages_sent += destinations;
  stats_.words_sent += destinations;
  return result;
}

std::vector<std::vector<std::uint64_t>> PEContext::all_gather_vectors(
    std::vector<std::uint64_t> payload) {
  const std::uint64_t destinations =
      static_cast<std::uint64_t>(runtime_.num_pes_ - 1);
  stats_.messages_sent += destinations;
  stats_.words_sent += destinations * payload.size();
  runtime_.vector_scratch_[rank_] = std::move(payload);
  barrier();
  std::vector<std::vector<std::uint64_t>> result = runtime_.vector_scratch_;
  barrier();
  return result;
}

std::vector<std::uint64_t> PEContext::broadcast(
    const std::vector<std::uint64_t>& payload, int root) {
  if (rank_ == root) {
    runtime_.broadcast_scratch_ = payload;
    // Only the root puts data on the wire: one copy per destination rank.
    const std::uint64_t destinations =
        static_cast<std::uint64_t>(runtime_.num_pes_ - 1);
    stats_.messages_sent += destinations;
    stats_.words_sent += destinations * payload.size();
  }
  barrier();
  std::vector<std::uint64_t> result = runtime_.broadcast_scratch_;
  barrier();
  return result;
}

PESubGroup::PESubGroup(PEContext& parent, std::vector<int> owner_of_virtual,
                       std::vector<int> neighbor_ranks)
    : parent_(parent),
      owner_(std::move(owner_of_virtual)),
      neighbors_(std::move(neighbor_ranks)) {
  std::sort(neighbors_.begin(), neighbors_.end());
  assert(!std::binary_search(neighbors_.begin(), neighbors_.end(),
                             parent_.rank()) &&
         "a rank is not its own neighbor");
}

void PESubGroup::post(int from, int to, std::vector<std::uint64_t> payload) {
  assert(owner_[static_cast<std::size_t>(from)] == parent_.rank() &&
         "only locally hosted virtual PEs may send");
  outbox_.push_back({from, to, std::move(payload)});
}

std::vector<VirtualMessage> PESubGroup::exchange() {
  std::vector<VirtualMessage> inbox;
  // Bundle wire format: repeated records [from, to, len, words...].
  std::vector<std::vector<std::uint64_t>> bundles(neighbors_.size());
  for (VirtualMessage& msg : outbox_) {
    const int dest = owner_[static_cast<std::size_t>(msg.to)];
    if (dest == parent_.rank()) {
      inbox.push_back(std::move(msg));
      continue;
    }
    const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), dest);
    assert(it != neighbors_.end() && *it == dest &&
           "virtual destination hosted outside the neighbor set");
    auto& bundle = bundles[static_cast<std::size_t>(it - neighbors_.begin())];
    bundle.push_back(static_cast<std::uint64_t>(msg.from));
    bundle.push_back(static_cast<std::uint64_t>(msg.to));
    bundle.push_back(msg.payload.size());
    bundle.insert(bundle.end(), msg.payload.begin(), msg.payload.end());
  }
  outbox_.clear();

  // Every neighbor gets a bundle every round, empty or not, so the
  // matching receives below never deadlock and need no barrier.
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    parent_.send(neighbors_[i], std::move(bundles[i]));
  }
  for (const int q : neighbors_) {
    const Message msg = parent_.receive(q);
    std::size_t pos = 0;
    while (pos < msg.payload.size()) {
      VirtualMessage vm;
      vm.from = static_cast<int>(msg.payload[pos]);
      vm.to = static_cast<int>(msg.payload[pos + 1]);
      const std::size_t len = msg.payload[pos + 2];
      pos += 3;
      vm.payload.assign(msg.payload.begin() + static_cast<std::ptrdiff_t>(pos),
                        msg.payload.begin() +
                            static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
      inbox.push_back(std::move(vm));
    }
  }
  std::sort(inbox.begin(), inbox.end(),
            [](const VirtualMessage& a, const VirtualMessage& b) {
              return a.to != b.to ? a.to < b.to : a.from < b.from;
            });
  return inbox;
}

PERuntime::PERuntime(int num_pes, std::uint64_t seed)
    : num_pes_(num_pes),
      seed_(seed),
      mailboxes_(num_pes),
      barrier_(std::make_unique<std::barrier<>>(num_pes)),
      collective_scratch_(num_pes, 0),
      vector_scratch_(num_pes) {}

std::vector<CommStats> PERuntime::run(
    const std::function<void(PEContext&)>& program) {
  std::vector<CommStats> stats(num_pes_);
  std::vector<std::thread> threads;
  threads.reserve(num_pes_);
  for (int rank = 0; rank < num_pes_; ++rank) {
    threads.emplace_back([this, &program, &stats, rank]() {
      PEContext context(*this, rank, seed_);
      program(context);
      stats[rank] = context.stats();
    });
  }
  for (auto& thread : threads) thread.join();
  return stats;
}

}  // namespace kappa
