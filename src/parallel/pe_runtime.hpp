/// \file pe_runtime.hpp
/// \brief SPMD runtime over a pluggable transport: ranks as PEs, a
/// Transport as the interconnect.
///
/// This module substitutes the paper's MPI layer (200-node InfiniBand
/// cluster): an SPMD program is a function executed once per rank, each
/// with a seeded private RNG stream, blocking point-to-point messaging, a
/// barrier, and the collectives KaPPa needs (all-reduce, broadcast,
/// all-gather). The physical interconnect is behind the Transport
/// interface (transport.hpp): the default in-process fabric hosts all
/// ranks as threads of one process; the TCP fabric spans processes, one
/// rank each. The collectives are generic algorithms over transport
/// point-to-point — every backend exchanges the identical words in the
/// identical order, so the partition is bit-identical across backends.
///
/// Communication volume counters stand in for the wire so scalability
/// experiments can report the machine-independent communication shape
/// alongside wall time; the TCP backend additionally measures real
/// socket bytes (CommStats::wire_bytes_*).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/comm_stats.hpp"
#include "parallel/transport.hpp"
#include "util/random.hpp"

namespace kappa {

/// Handle a PE's code receives: identifies the PE and mediates all
/// communication. Mirrors the shape of an MPI communicator + rank.
class PEContext {
 public:
  /// Binds the context to one rank's transport endpoint. \p seed derives
  /// the per-rank RNG stream (identical derivation on every backend).
  PEContext(Transport& transport, std::uint64_t seed);

  /// This PE's rank in [0, size()).
  [[nodiscard]] int rank() const { return rank_; }

  /// Number of PEs (across all processes of the run).
  [[nodiscard]] int size() const { return transport_.size(); }

  /// Private, deterministic RNG stream ("each with a different seed for
  /// the random number generator", §4).
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Sends a word buffer to \p dest (non-blocking, buffered).
  void send(int dest, std::vector<std::uint64_t> payload);

  /// Blocks until a message from \p source arrives (-1: any source).
  /// Throws TransportError when the backend reports a dead peer or an
  /// exceeded receive deadline.
  [[nodiscard]] Message receive(int source = -1);

  /// Non-blocking receive.
  [[nodiscard]] std::optional<Message> try_receive(int source = -1);

  /// Synchronizes all PEs.
  void barrier();

  /// Sum of one value over all PEs (returned on every PE).
  [[nodiscard]] std::uint64_t all_reduce_sum(std::uint64_t value);

  /// Elementwise sum of a fixed-length vector over all PEs (every PE must
  /// contribute the same length). The small-vector reduction behind the
  /// per-block weight sums of the distributed hierarchy's uncoarsening
  /// projection (MPI_Allreduce in the paper's terms).
  [[nodiscard]] std::vector<std::uint64_t> all_reduce_sum_vec(
      std::vector<std::uint64_t> values);

  /// Maximum of one value over all PEs.
  [[nodiscard]] std::uint64_t all_reduce_max(std::uint64_t value);

  /// Every PE contributes one value; all PEs receive the full vector.
  [[nodiscard]] std::vector<std::uint64_t> all_gather(std::uint64_t value);

  /// Variable-length all-gather: every PE contributes a word buffer; all
  /// PEs receive every buffer, indexed by rank. The irregular collective
  /// behind the per-level contraction-map exchange and the moved-node
  /// deltas of SPMD refinement (MPI_Allgatherv in the paper's terms).
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> all_gather_vectors(
      std::vector<std::uint64_t> payload);

  /// Root's buffer is distributed to every PE.
  [[nodiscard]] std::vector<std::uint64_t> broadcast(
      const std::vector<std::uint64_t>& payload, int root);

  /// Communication counters of this PE.
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Bytes this rank's transport endpoint has put on / taken off the
  /// physical wire so far (endpoint-lifetime totals, zero on the
  /// in-process backend). The trace collector snapshots these mid-run
  /// for the per-rank metrics; PERuntime::run still reports the exact
  /// per-run delta in its returned CommStats.
  [[nodiscard]] std::uint64_t wire_bytes_sent() const;
  [[nodiscard]] std::uint64_t wire_bytes_received() const;

  // --- kappa-watch forwarders (observer-only) ---------------------------
  // The watch layer (parallel/watch.cpp) is the only caller; algorithm
  // layers are forbidden to touch these (lint rule
  // heartbeat-lane-isolation). All of them are thread-safe against the
  // rank thread — they read transport-internal atomics/mutex state and
  // never touch the modeled CommStats.

  /// Starts publishing \p board to peers (heartbeat frames on TCP, board
  /// registry in-process). \p board must outlive disable_watch().
  void enable_watch(const ProgressBoard* board, int heartbeat_interval_ms);
  /// Stops publishing; joins the backend's heartbeat thread if any.
  void disable_watch();
  /// Latest liveness knowledge about \p peer (empty: nothing heard yet).
  [[nodiscard]] std::optional<PeerHealth> peer_health(int peer) const;
  /// Inbound queue depths per (source, lane) of this rank's endpoint.
  [[nodiscard]] std::vector<LaneQueueDepth> queue_depths() const;
  /// Heartbeat frames / words this endpoint sent (lifetime totals, like
  /// wire_bytes_*; PERuntime::run reports the per-run delta).
  [[nodiscard]] std::uint64_t heartbeat_frames_sent() const;
  [[nodiscard]] std::uint64_t heartbeat_words_sent() const;

  /// Attributes subsequent point-to-point sends to the halo-exchange
  /// counters of coarsening level \p level (see CommStats::halo_per_level);
  /// pass -1 to stop attributing. The totals always count everything.
  void set_halo_level(int level) { halo_level_ = level; }

  /// Records a scheduling round this rank sat out (no pair executed, no
  /// side shipped) — see CommStats::rounds_waited.
  void count_idle_round() { ++stats_.rounds_waited; }

 private:
  /// Receive on the collective lane, idle time charged to
  /// CommStats::collective_idle_ns.
  [[nodiscard]] Message collective_receive(int source);

  Transport& transport_;
  int rank_;
  Rng rng_;
  CommStats stats_;
  int halo_level_ = -1;
};

/// One virtual-PE message delivered by PESubGroup::exchange().
struct VirtualMessage {
  int from = 0;  ///< sending virtual PE (block id in the coloring protocol)
  int to = 0;    ///< receiving virtual PE, hosted on this rank
  std::vector<std::uint64_t> payload;
};

/// Sub-communicator: a group of virtual PEs laid over the ranks of a
/// parent PEContext. The §5.1 coloring protocol wants one PE per *block*,
/// but inside the refiner there are only p ranks for k blocks — this class
/// nests the block-PE scope into the refiner's rank set. Virtual PE v
/// lives on rank owner[v]; messages between virtual PEs on one rank never
/// touch the wire, and messages between ranks travel as one bundle per
/// (neighbor rank, exchange round), so a protocol round costs each rank at
/// most |neighbor ranks| messages instead of a collective over all p.
///
/// All participating ranks must construct the group with the same
/// owner map and symmetric neighbor lists (q lists r iff r lists q) and
/// call exchange() in lockstep; ranks with an empty neighbor list may
/// still host virtual PEs whose messages are all rank-local.
///
/// Construction fail-fast: locally malformed arguments (owner or
/// neighbor rank out of range, self-neighbor, duplicate neighbor) throw
/// std::invalid_argument immediately. The cross-rank invariants —
/// symmetric neighbor lists, one agreed owner map — cannot be checked
/// locally; validate() checks them collectively, and debug builds run it
/// automatically at construction, so a bad group throws on every rank
/// instead of deadlocking inside exchange().
class PESubGroup {
 public:
  PESubGroup(PEContext& parent, std::vector<int> owner_of_virtual,
             std::vector<int> neighbor_ranks);

  /// Collectively checks the cross-rank invariants (must be called by all
  /// ranks of the parent context in lockstep): every rank built the group
  /// with the same owner map, and the neighbor lists are symmetric.
  /// Throws std::invalid_argument on every rank when violated.
  void validate();

  /// Queues a message from virtual PE \p from (hosted here) to \p to.
  void post(int from, int to, std::vector<std::uint64_t> payload);

  /// Flushes queued messages as one bundle per neighbor rank (always sent,
  /// possibly empty, so receives are matched without a barrier) and blocks
  /// for the neighbors' bundles. Returns the messages addressed to virtual
  /// PEs hosted on this rank, sorted by (to, from) — a deterministic order
  /// independent of arrival interleaving.
  [[nodiscard]] std::vector<VirtualMessage> exchange();

 private:
  PEContext& parent_;
  std::vector<int> owner_;
  std::vector<int> neighbors_;
  std::vector<VirtualMessage> outbox_;
};

/// Runs SPMD programs over a transport fabric: one PE per rank hosted in
/// this process (all of them on the in-process fabric, exactly one on the
/// TCP fabric — the remaining ranks run the same program in their own
/// processes).
class PERuntime {
 public:
  /// Creates the default in-process runtime with \p num_pes PEs. \p seed
  /// derives the per-PE RNG streams. Throws std::invalid_argument for
  /// num_pes < 1.
  explicit PERuntime(int num_pes, std::uint64_t seed = 1);

  /// Creates a runtime over an explicit fabric (e.g. make_tcp_fabric).
  explicit PERuntime(std::unique_ptr<TransportFabric> fabric,
                     std::uint64_t seed = 1);

  ~PERuntime();

  /// Executes \p program on every locally hosted PE (one thread each) and
  /// joins. Returns the communication statistics indexed by *global*
  /// rank; only locally hosted slots are populated (aggregate with
  /// total_comm_stats()). A PE whose program throws rethrows here after
  /// all local PEs finished.
  std::vector<CommStats> run(const std::function<void(PEContext&)>& program);

  /// Total PEs of the run, across all processes.
  [[nodiscard]] int num_pes() const;

  /// Lowest rank hosted in this process: the rank that owns process-wide
  /// side effects (result materialization, output files). Rank 0 for the
  /// in-process fabric; this process's rank for TCP.
  [[nodiscard]] int primary_rank() const;

  /// Backend name of the underlying fabric ("inproc", "tcp").
  [[nodiscard]] const char* backend() const;

 private:
  std::unique_ptr<TransportFabric> fabric_;
  std::uint64_t seed_;
};

}  // namespace kappa
