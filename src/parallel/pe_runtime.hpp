/// \file pe_runtime.hpp
/// \brief SPMD runtime: threads as PEs, channels as the interconnect.
///
/// This module substitutes the paper's MPI layer (200-node InfiniBand
/// cluster) on a single machine: an SPMD program is a function executed by
/// p threads, each with a rank, a seeded private RNG stream, blocking
/// point-to-point messaging, a barrier, and the collectives KaPPa needs
/// (all-reduce, broadcast, all-gather). Communication volume counters
/// stand in for the wire so scalability experiments can report the
/// machine-independent communication shape alongside wall time.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/channel.hpp"
#include "parallel/comm_stats.hpp"
#include "util/random.hpp"

namespace kappa {

class PERuntime;

/// Handle a PE's code receives: identifies the PE and mediates all
/// communication. Mirrors the shape of an MPI communicator + rank.
class PEContext {
 public:
  PEContext(PERuntime& runtime, int rank, std::uint64_t seed);

  /// This PE's rank in [0, size()).
  [[nodiscard]] int rank() const { return rank_; }

  /// Number of PEs.
  [[nodiscard]] int size() const;

  /// Private, deterministic RNG stream ("each with a different seed for
  /// the random number generator", §4).
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Sends a word buffer to \p dest (non-blocking, buffered).
  void send(int dest, std::vector<std::uint64_t> payload);

  /// Blocks until a message from \p source arrives (-1: any source).
  [[nodiscard]] Message receive(int source = -1);

  /// Non-blocking receive.
  [[nodiscard]] std::optional<Message> try_receive(int source = -1);

  /// Synchronizes all PEs.
  void barrier();

  /// Sum of one value over all PEs (returned on every PE).
  [[nodiscard]] std::uint64_t all_reduce_sum(std::uint64_t value);

  /// Elementwise sum of a fixed-length vector over all PEs (every PE must
  /// contribute the same length). The small-vector reduction behind the
  /// per-block weight sums of the distributed hierarchy's uncoarsening
  /// projection (MPI_Allreduce in the paper's terms).
  [[nodiscard]] std::vector<std::uint64_t> all_reduce_sum_vec(
      std::vector<std::uint64_t> values);

  /// Maximum of one value over all PEs.
  [[nodiscard]] std::uint64_t all_reduce_max(std::uint64_t value);

  /// Every PE contributes one value; all PEs receive the full vector.
  [[nodiscard]] std::vector<std::uint64_t> all_gather(std::uint64_t value);

  /// Variable-length all-gather: every PE contributes a word buffer; all
  /// PEs receive every buffer, indexed by rank. The irregular collective
  /// behind the per-level contraction-map exchange and the moved-node
  /// deltas of SPMD refinement (MPI_Allgatherv in the paper's terms).
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> all_gather_vectors(
      std::vector<std::uint64_t> payload);

  /// Root's buffer is distributed to every PE.
  [[nodiscard]] std::vector<std::uint64_t> broadcast(
      const std::vector<std::uint64_t>& payload, int root);

  /// Communication counters of this PE.
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Attributes subsequent point-to-point sends to the halo-exchange
  /// counters of coarsening level \p level (see CommStats::halo_per_level);
  /// pass -1 to stop attributing. The totals always count everything.
  void set_halo_level(int level) { halo_level_ = level; }

  /// Records a scheduling round this rank sat out (no pair executed, no
  /// side shipped) — see CommStats::rounds_waited.
  void count_idle_round() { ++stats_.rounds_waited; }

 private:
  PERuntime& runtime_;
  int rank_;
  Rng rng_;
  CommStats stats_;
  int halo_level_ = -1;
};

/// One virtual-PE message delivered by PESubGroup::exchange().
struct VirtualMessage {
  int from = 0;  ///< sending virtual PE (block id in the coloring protocol)
  int to = 0;    ///< receiving virtual PE, hosted on this rank
  std::vector<std::uint64_t> payload;
};

/// Sub-communicator: a group of virtual PEs laid over the ranks of a
/// parent PEContext. The §5.1 coloring protocol wants one PE per *block*,
/// but inside the refiner there are only p ranks for k blocks — this class
/// nests the block-PE scope into the refiner's rank set. Virtual PE v
/// lives on rank owner[v]; messages between virtual PEs on one rank never
/// touch the wire, and messages between ranks travel as one bundle per
/// (neighbor rank, exchange round), so a protocol round costs each rank at
/// most |neighbor ranks| messages instead of a collective over all p.
///
/// All participating ranks must construct the group with the same
/// owner map and symmetric neighbor lists (q lists r iff r lists q) and
/// call exchange() in lockstep; ranks with an empty neighbor list may
/// still host virtual PEs whose messages are all rank-local.
class PESubGroup {
 public:
  PESubGroup(PEContext& parent, std::vector<int> owner_of_virtual,
             std::vector<int> neighbor_ranks);

  /// Queues a message from virtual PE \p from (hosted here) to \p to.
  void post(int from, int to, std::vector<std::uint64_t> payload);

  /// Flushes queued messages as one bundle per neighbor rank (always sent,
  /// possibly empty, so receives are matched without a barrier) and blocks
  /// for the neighbors' bundles. Returns the messages addressed to virtual
  /// PEs hosted on this rank, sorted by (to, from) — a deterministic order
  /// independent of arrival interleaving.
  [[nodiscard]] std::vector<VirtualMessage> exchange();

 private:
  PEContext& parent_;
  std::vector<int> owner_;
  std::vector<int> neighbors_;
  std::vector<VirtualMessage> outbox_;
};

/// Owns the PE threads and their mailboxes; runs SPMD programs.
class PERuntime {
 public:
  /// Creates a runtime with \p num_pes PEs. \p seed derives the per-PE
  /// RNG streams.
  explicit PERuntime(int num_pes, std::uint64_t seed = 1);

  /// Executes \p program on every PE (one thread each) and joins.
  /// Returns the per-rank communication statistics, indexed by rank
  /// (aggregate with total_comm_stats()).
  std::vector<CommStats> run(const std::function<void(PEContext&)>& program);

  [[nodiscard]] int num_pes() const { return num_pes_; }

 private:
  friend class PEContext;

  int num_pes_;
  std::uint64_t seed_;
  std::vector<Mailbox> mailboxes_;
  std::unique_ptr<std::barrier<>> barrier_;
  // Scratch used by the collectives (indexed by rank; data-race free
  // because writes are separated from reads by barriers).
  std::vector<std::uint64_t> collective_scratch_;
  std::vector<std::uint64_t> broadcast_scratch_;
  std::vector<std::vector<std::uint64_t>> vector_scratch_;
};

}  // namespace kappa
