#include "parallel/shard_graph.hpp"

#include <algorithm>
#include <cassert>

#include "graph/dynamic_overlay.hpp"
#include "parallel/wire_format.hpp"

namespace kappa {

NodeID decode_row_words(const std::vector<std::uint64_t>& words,
                        std::size_t& cursor, GraphRow& row) {
  const NodeID id = static_cast<NodeID>(words[cursor]);
  row.weight = bits_weight(words[cursor + 1]);
  const std::uint64_t narcs = words[cursor + 2];
  cursor += 3;
  row.targets.clear();
  row.weights.clear();
  row.targets.reserve(narcs);
  row.weights.reserve(narcs);
  for (std::uint64_t j = 0; j < narcs; ++j) {
    row.targets.push_back(static_cast<NodeID>(words[cursor]));
    row.weights.push_back(bits_weight(words[cursor + 1]));
    cursor += 2;
  }
  return id;
}

// ------------------------------------------------------------ ShardGraph ----

ShardGraph::ShardGraph(const StaticGraph& level, const DistGraph& dist,
                       PEContext& pe) {
  const int p = pe.size();
  const int rank = pe.rank();
  const std::vector<BlockID> my_shards = dist.shards_of_rank(rank, p);

  // Owned nodes: the union of this rank's virtual shards, sorted by
  // global id (per-shard lists are sorted already).
  std::vector<NodeID> owned;
  for (const BlockID s : my_shards) {
    const std::vector<NodeID>& nodes = dist.shard(s).nodes;
    owned.insert(owned.end(), nodes.begin(), nodes.end());
  }
  std::sort(owned.begin(), owned.end());
  num_owned_ = static_cast<NodeID>(owned.size());

  // Static core: the subgraph induced by the owned set. This replica
  // read is the initial data distribution of the level; every structure
  // the matching inner loops touch afterwards is resident.
  const Subgraph core = induced_subgraph(level, owned);

  // Rank-remote cross arcs define the one-hop ghost layer. Cross arcs
  // between two shards of this rank stay inside the core.
  struct GhostArc {
    NodeID u;  ///< owned endpoint (global id)
    NodeID v;  ///< ghost endpoint (global id)
    EdgeWeight w;
  };
  std::vector<GhostArc> ghost_arcs;
  for (const BlockID s : my_shards) {
    for (const CrossShardArc& arc : dist.shard(s).cross_arcs) {
      if (dist.owner_of_node(arc.v, p) != rank) {
        ghost_arcs.push_back({arc.u, arc.v, arc.weight});
      }
    }
  }
  std::vector<NodeID> ghosts;
  ghosts.reserve(ghost_arcs.size());
  for (const GhostArc& arc : ghost_arcs) ghosts.push_back(arc.v);
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

  local_to_global_ = owned;
  local_to_global_.insert(local_to_global_.end(), ghosts.begin(),
                          ghosts.end());
  global_to_local_.reserve(local_to_global_.size());
  for (NodeID local = 0; local < local_to_global_.size(); ++local) {
    global_to_local_.emplace(local_to_global_[local], local);
  }

  // Owned weighted degrees are computable locally: core row sum plus the
  // rank-remote cross arc weights.
  weighted_degrees_.assign(local_to_global_.size(), 0);
  for (NodeID i = 0; i < num_owned_; ++i) {
    weighted_degrees_[i] = core.graph.weighted_degree(i);
  }
  for (const GhostArc& arc : ghost_arcs) {
    weighted_degrees_[global_to_local_.at(arc.u)] += arc.w;
  }

  // --- Ghost refresh over channels: every neighboring rank sends, per
  // owned boundary node the receiver sees as a ghost, the triple
  // (global id, node weight, full-row weighted degree). The peer set is
  // symmetric (u adjacent to a node of q iff q has u as a ghost), so
  // each side knows exactly whom to expect. ---
  std::vector<char> is_peer(p, 0);
  for (const NodeID g : ghosts) {
    is_peer[dist.owner_of_node(g, p)] = 1;
  }
  {
    std::vector<std::vector<std::uint64_t>> to_peer(p);
    NodeID last_u = kInvalidNode;
    std::vector<int> peers_of_u;
    for (const GhostArc& arc : ghost_arcs) {
      if (arc.u != last_u) {
        last_u = arc.u;
        peers_of_u.clear();
      }
      const int q = dist.owner_of_node(arc.v, p);
      if (std::find(peers_of_u.begin(), peers_of_u.end(), q) !=
          peers_of_u.end()) {
        continue;
      }
      peers_of_u.push_back(q);
      const NodeID lu = global_to_local_.at(arc.u);
      to_peer[q].push_back(arc.u);
      to_peer[q].push_back(weight_bits(core.graph.node_weight(lu)));
      to_peer[q].push_back(weight_bits(weighted_degrees_[lu]));
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && is_peer[q]) pe.send(q, std::move(to_peer[q]));
    }
  }
  std::vector<NodeWeight> ghost_weight(ghosts.size(), 0);
  for (int q = 0; q < p; ++q) {
    if (q == rank || !is_peer[q]) continue;
    const Message msg = pe.receive(q);
    for (std::size_t i = 0; i + 2 < msg.payload.size(); i += 3) {
      const NodeID g = static_cast<NodeID>(msg.payload[i]);
      const NodeID local = global_to_local_.at(g);
      assert(local >= num_owned_);
      ghost_weight[local - num_owned_] = bits_weight(msg.payload[i + 1]);
      weighted_degrees_[local] = bits_weight(msg.payload[i + 2]);
    }
  }

  // --- Ghost intake through the §5.2 hybrid structure: the received
  // halo enters a DynamicOverlay over the owned core (ghosts as
  // migrated nodes, owned boundary nodes gaining overlay edges into the
  // halo), which is then sealed into the compact local CSR. ---
  DynamicOverlay intake(core.graph, core.local_to_global);
  for (std::size_t i = 0; i < ghosts.size(); ++i) {
    intake.add_migrated_node(ghosts[i], ghost_weight[i]);
  }
  for (const GhostArc& arc : ghost_arcs) {
    intake.add_migrated_edge(arc.u, arc.v, arc.w);  // owned -> ghost
    intake.add_migrated_edge(arc.v, arc.u, arc.w);  // mirror arc
  }

  std::vector<EdgeID> xadj;
  xadj.reserve(local_to_global_.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(local_to_global_.size());
  for (NodeID local = 0; local < local_to_global_.size(); ++local) {
    const NodeID global = local_to_global_[local];
    vwgt.push_back(intake.node_weight(global));
    intake.for_each_neighbor(global, [&](NodeID to_global, EdgeWeight w) {
      adj.push_back(global_to_local_.at(to_global));
      ewgt.push_back(w);
    });
    xadj.push_back(adj.size());
  }
  csr_ = StaticGraph(std::move(xadj), std::move(adj), std::move(ewgt),
                     std::move(vwgt));
}

ShardGraph::ShardGraph(ShardGraphParts parts) {
  num_owned_ = static_cast<NodeID>(parts.owned.size());
  assert(parts.owned_rows.ids.size() == parts.owned.size());
  assert(parts.ghost_weights.size() == parts.ghosts.size());
  assert(parts.ghost_weighted_degrees.size() == parts.ghosts.size());

  local_to_global_ = std::move(parts.owned);
  local_to_global_.insert(local_to_global_.end(), parts.ghosts.begin(),
                          parts.ghosts.end());
  global_to_local_.reserve(local_to_global_.size());
  for (NodeID local = 0; local < local_to_global_.size(); ++local) {
    global_to_local_.emplace(local_to_global_[local], local);
  }

  // Ghost mirror rows: the arcs back into the owned set, derived from the
  // owned rows' ghost targets (kept sorted by owned endpoint — the order
  // is resident-only state that never feeds a p-sensitive stream).
  std::vector<std::vector<std::pair<NodeID, EdgeWeight>>> mirror(
      parts.ghosts.size());
  for (NodeID i = 0; i < num_owned_; ++i) {
    for (EdgeID e = parts.owned_rows.xadj[i]; e < parts.owned_rows.xadj[i + 1];
         ++e) {
      const NodeID local = global_to_local_.at(parts.owned_rows.adj[e]);
      if (local >= num_owned_) {
        mirror[local - num_owned_].emplace_back(i, parts.owned_rows.ewgt[e]);
      }
    }
  }

  std::vector<EdgeID> xadj;
  xadj.reserve(local_to_global_.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(local_to_global_.size());
  for (NodeID i = 0; i < num_owned_; ++i) {
    vwgt.push_back(parts.owned_rows.vwgt[i]);
    for (EdgeID e = parts.owned_rows.xadj[i]; e < parts.owned_rows.xadj[i + 1];
         ++e) {
      adj.push_back(global_to_local_.at(parts.owned_rows.adj[e]));
      ewgt.push_back(parts.owned_rows.ewgt[e]);
    }
    xadj.push_back(adj.size());
  }
  for (std::size_t g = 0; g < parts.ghosts.size(); ++g) {
    vwgt.push_back(parts.ghost_weights[g]);
    for (const auto& [owned_local, w] : mirror[g]) {
      adj.push_back(owned_local);
      ewgt.push_back(w);
    }
    xadj.push_back(adj.size());
  }
  csr_ = StaticGraph(std::move(xadj), std::move(adj), std::move(ewgt),
                     std::move(vwgt));

  // Owned weighted degrees from the full resident rows, ghost entries as
  // received from the owners.
  weighted_degrees_.assign(local_to_global_.size(), 0);
  for (NodeID i = 0; i < num_owned_; ++i) {
    weighted_degrees_[i] = csr_.weighted_degree(i);
  }
  for (std::size_t g = 0; g < parts.ghosts.size(); ++g) {
    weighted_degrees_[num_owned_ + g] = parts.ghost_weighted_degrees[g];
  }
}

ShardFootprint ShardGraph::footprint() const {
  ShardFootprint fp;
  fp.owned_nodes = num_owned();
  fp.ghost_nodes = num_ghost();
  fp.arcs = csr_.num_arcs();
  return fp;
}

// --------------------------------------------------------- BlockRowShard ----

BlockRowShard::BlockRowShard(const StaticGraph& level,
                             const std::vector<BlockID>& assignment, BlockID k,
                             int rank, int num_pes)
    : rank_(rank), num_pes_(num_pes), members_(k) {
  std::vector<NodeID> mine;
  for (NodeID u = 0; u < level.num_nodes(); ++u) {
    const BlockID b = assignment[u];
    if (owner_of_block(b, num_pes) != rank) continue;
    mine.push_back(u);
    members_[b].push_back(u);  // ascending u keeps the lists sorted
  }
  core_ = extract_rows(level, mine);
  core_index_.reserve(core_.ids.size());
  for (NodeID i = 0; i < core_.ids.size(); ++i) {
    core_index_.emplace(core_.ids[i], i);
  }
  resident_nodes_ = mine.size();
  resident_arcs_ = core_.num_arcs();
}

BlockRowShard::BlockRowShard(RowSet core,
                             const std::vector<BlockID>& row_blocks, BlockID k,
                             int rank, int num_pes)
    : rank_(rank), num_pes_(num_pes), core_(std::move(core)), members_(k) {
  assert(row_blocks.size() == core_.ids.size() &&
         "one block per pre-distributed row");
  for (NodeID i = 0; i < core_.ids.size(); ++i) {
    const BlockID b = row_blocks[i];
    assert(owner_of_block(b, num_pes) == rank &&
           "every shipped row must belong to one of this rank's blocks");
    members_[b].push_back(core_.ids[i]);  // ascending ids keep lists sorted
  }
  core_index_.reserve(core_.ids.size());
  for (NodeID i = 0; i < core_.ids.size(); ++i) {
    core_index_.emplace(core_.ids[i], i);
  }
  resident_nodes_ = core_.ids.size();
  resident_arcs_ = core_.num_arcs();
}

GraphRow BlockRowShard::row(NodeID global) const {
  const GraphRowView view = row_view(global);
  GraphRow result;
  result.weight = view.weight;
  result.targets.assign(view.targets.begin(), view.targets.end());
  result.weights.assign(view.weights.begin(), view.weights.end());
  return result;
}

GraphRowView BlockRowShard::row_view(NodeID global) const {
  const auto mig = migrated_.find(global);
  if (mig != migrated_.end()) {
    return {mig->second.weight, mig->second.targets, mig->second.weights};
  }
  const auto it = core_index_.find(global);
  assert(it != core_index_.end() && departed_.count(global) == 0 &&
         "row lookup requires a resident node");
  const NodeID i = it->second;
  return {core_.vwgt[i],
          std::span<const NodeID>(core_.adj.data() + core_.xadj[i],
                                  core_.adj.data() + core_.xadj[i + 1]),
          std::span<const EdgeWeight>(core_.ewgt.data() + core_.xadj[i],
                                      core_.ewgt.data() + core_.xadj[i + 1])};
}

GraphRow BlockRowShard::apply_move(NodeID u, BlockID from, BlockID to,
                                   const GraphRow* incoming_row) {
  const bool from_mine = owns_block(from);
  const bool to_mine = owns_block(to);
  GraphRow departing;
  if (from_mine) erase_member(from, u);
  if (to_mine) insert_member(to, u);
  if (from_mine && !to_mine) {
    departing = row(u);
    if (migrated_.erase(u) == 0) departed_.emplace(u, 1);
    resident_nodes_ -= 1;
    resident_arcs_ -= departing.targets.size();
  } else if (!from_mine && to_mine) {
    resident_nodes_ += 1;
    if (departed_.erase(u) > 0) {
      // The node returns home: its core row never left, un-tombstone it.
      resident_arcs_ +=
          core_.xadj[core_index_.at(u) + 1] - core_.xadj[core_index_.at(u)];
    } else {
      assert(incoming_row != nullptr &&
             "a row migrating in must be shipped by its old owner");
      resident_arcs_ += incoming_row->targets.size();
      migrated_.emplace(u, *incoming_row);
    }
  }
  return departing;
}

ShardFootprint BlockRowShard::footprint() const {
  ShardFootprint fp;
  fp.owned_nodes = resident_nodes_;
  fp.arcs = resident_arcs_;
  return fp;
}

void BlockRowShard::insert_member(BlockID b, NodeID u) {
  std::vector<NodeID>& list = members_[b];
  list.insert(std::lower_bound(list.begin(), list.end(), u), u);
}

void BlockRowShard::erase_member(BlockID b, NodeID u) {
  std::vector<NodeID>& list = members_[b];
  const auto it = std::lower_bound(list.begin(), list.end(), u);
  assert(it != list.end() && *it == u);
  list.erase(it);
}

}  // namespace kappa
