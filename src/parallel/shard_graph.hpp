/// \file shard_graph.hpp
/// \brief Per-PE data sharding of the SPMD pipeline: the owned-node CSR
/// with a one-hop ghost layer (§3.3) and the §5.2 block-row store.
///
/// The paper's distributed design gives every PE only its own node shard
/// plus a halo of ghost nodes — resident graph memory is O(n/p + halo),
/// not O(n). Two structures realize that here:
///
///   ShardGraph   — built per contraction level for the SPMD matcher: a
///     compact CSR over the rank's owned nodes (union of its virtual
///     shards) plus the one-hop ghost layer. The owned core comes from
///     induced_subgraph(); ghosts are taken in through a DynamicOverlay
///     (the §5.2 hybrid structure) and sealed into the final local CSR.
///     Ghost node weights and weighted degrees are dynamic per level and
///     are *not* read off the replica: they arrive over channels from
///     the owning ranks, so the CommStats counters see every ghost
///     refresh.
///
///   BlockRowShard — built per uncoarsening level for the SPMD refiner:
///     the CSR rows of the nodes currently assigned to this rank's
///     blocks (blocks are owned round-robin, block b -> rank b mod p).
///     "Immediately after uncontracting a matching, every PE stores the
///     partition it is responsible for in a static adjacency array
///     representation ... In addition, we use a hash table to store
///     migrated nodes and a second edge array" (§5.2): the level-start
///     rows are the static core; nodes that migrate between blocks
///     mid-level move their rows between ranks through the hash-table
///     side store.
///
/// Rows travel verbatim (source id space, source arc order; see
/// RowSet in graph/subgraph.hpp), so every structure assembled from them
/// is a pure function of the replica content and the partition state —
/// independent of which rank held or shipped the data. That invariant is
/// what keeps the SPMD pipeline's results identical for every PE count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/static_graph.hpp"
#include "graph/subgraph.hpp"
#include "parallel/comm_stats.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/wire_format.hpp"
#include "util/seeded_hash.hpp"
#include "util/types.hpp"

namespace kappa {

/// Pre-assembled ingredients of a ShardGraph when no replica exists to
/// extract them from: the distributed hierarchy store builds each coarse
/// level's parts shard-locally (owned rows from the halo-exchanged
/// contraction, ghost weights/degrees from the peer refresh) and seals
/// them here. Rows are in *global* id space; ids must be sorted.
struct ShardGraphParts {
  std::vector<NodeID> owned;                        ///< sorted global ids
  RowSet owned_rows;                                ///< rows of `owned`
  std::vector<NodeID> ghosts;                       ///< sorted global ids
  std::vector<NodeWeight> ghost_weights;            ///< parallel to ghosts
  std::vector<EdgeWeight> ghost_weighted_degrees;   ///< parallel to ghosts
};

/// One rank's resident graph for one matching level: compact CSR over
/// owned nodes (local ids [0, num_owned())) followed by the one-hop
/// ghost layer (local ids [num_owned(), num_local())). Owned rows carry
/// the node's full arc list (owned and ghost targets, as local ids);
/// ghost rows carry only the mirror arcs back into the owned set.
class ShardGraph {
 public:
  ShardGraph() = default;

  /// Builds the resident graph of \p pe's rank from the rank-filtered
  /// \p dist over \p level. Ghost weights and weighted degrees are
  /// exchanged with the neighboring ranks over \p pe's channels
  /// (counted in its CommStats); with one PE the ghost layer is empty.
  ShardGraph(const StaticGraph& level, const DistGraph& dist, PEContext& pe);

  /// Seals pre-assembled \p parts into the local CSR — the replica-free
  /// construction path of the distributed hierarchy store. Ghost mirror
  /// rows are derived from the owned rows' ghost targets.
  explicit ShardGraph(ShardGraphParts parts);

  /// The sealed local CSR (owned rows first, then ghost rows).
  [[nodiscard]] const StaticGraph& csr() const { return csr_; }

  [[nodiscard]] NodeID num_owned() const { return num_owned_; }
  [[nodiscard]] NodeID num_ghost() const {
    return static_cast<NodeID>(local_to_global_.size()) - num_owned_;
  }
  [[nodiscard]] NodeID num_local() const {
    return static_cast<NodeID>(local_to_global_.size());
  }

  [[nodiscard]] bool is_owned(NodeID local) const {
    return local < num_owned_;
  }

  /// Global id of a resident node.
  [[nodiscard]] NodeID global_of(NodeID local) const {
    return local_to_global_[local];
  }

  /// Local id of a global node; kInvalidNode if not resident here.
  [[nodiscard]] NodeID local_of(NodeID global) const {
    const auto it = global_to_local_.find(global);
    return it == global_to_local_.end() ? kInvalidNode : it->second;
  }

  /// Full-row weighted degrees by local id: owned entries computed from
  /// the resident row, ghost entries received from the owner.
  [[nodiscard]] const std::vector<EdgeWeight>& weighted_degrees() const {
    return weighted_degrees_;
  }

  /// Resident size of this structure (owned + halo nodes, resident arcs).
  [[nodiscard]] ShardFootprint footprint() const;

 private:
  NodeID num_owned_ = 0;
  StaticGraph csr_;
  std::vector<NodeID> local_to_global_;
  hash_map<NodeID, NodeID> global_to_local_;
  std::vector<EdgeWeight> weighted_degrees_;
};

/// One full CSR row in global id space — the unit the refiner's stores
/// exchange when a node's block (and with it the row's home rank)
/// changes.
struct GraphRow {
  NodeWeight weight = 0;
  std::vector<NodeID> targets;      ///< global ids, replica arc order
  std::vector<EdgeWeight> weights;  ///< parallel to targets
};

/// Zero-copy view of a resident row (spans into the owning store).
struct GraphRowView {
  NodeWeight weight = 0;
  std::span<const NodeID> targets;
  std::span<const EdgeWeight> weights;
};

/// Appends one row in the shared wire layout [id, weight, narcs,
/// (target, weight)*], keeping only the arcs \p keep admits. The single
/// encoder behind pair-side shipping, row migration and the block-row
/// distribution of the SPMD pipeline.
template <typename Keep>
void append_row_words(std::vector<std::uint64_t>& words, NodeID id,
                      const GraphRowView& row, Keep&& keep);

/// Decodes one row at \p cursor (inverse of append_row_words), advancing
/// the cursor; returns the node id.
NodeID decode_row_words(const std::vector<std::uint64_t>& words,
                        std::size_t& cursor, GraphRow& row);

/// One rank's §5.2 block-row store for one uncoarsening level: the rows
/// of all nodes currently assigned to the rank's blocks. The level-start
/// extraction is the static core; rows that migrate in mid-level live in
/// the hash-table side store; rows that migrate out are tombstoned.
class BlockRowShard {
 public:
  /// Rank that owns block \p b in a runtime of \p num_pes PEs.
  [[nodiscard]] static int owner_of_block(BlockID b, int num_pes) {
    return static_cast<int>(b % static_cast<BlockID>(num_pes));
  }

  /// Extracts the rows of the nodes whose block \p assignment maps to
  /// \p rank's blocks.
  BlockRowShard(const StaticGraph& level,
                const std::vector<BlockID>& assignment, BlockID k, int rank,
                int num_pes);

  /// Assembles the store from pre-distributed rows — the replica-free
  /// path of the SPMD pipeline, whose rows arrive from the shard owners
  /// over channels together with each row's block. \p core must hold
  /// exactly the rows of the nodes assigned to this rank's blocks, sorted
  /// by global id, targets in global id space; \p row_blocks is parallel
  /// to core.ids (no rank holds the full assignment vector anymore — the
  /// partition state itself is sharded, see parallel/dist_partition.hpp).
  BlockRowShard(RowSet core, const std::vector<BlockID>& row_blocks, BlockID k,
                int rank, int num_pes);

  [[nodiscard]] int rank() const { return rank_; }

  /// Sorted global ids of the nodes currently in owned block \p b.
  [[nodiscard]] const std::vector<NodeID>& members(BlockID b) const {
    return members_[b];
  }

  /// Whether this rank owns block \p b.
  [[nodiscard]] bool owns_block(BlockID b) const {
    return owner_of_block(b, num_pes_) == rank_;
  }

  /// Read access to the row of a resident node (must be resident);
  /// returns an owned copy (for shipping).
  [[nodiscard]] GraphRow row(NodeID global) const;

  /// Zero-copy view of a resident row (must be resident); invalidated by
  /// apply_move() on the same node.
  [[nodiscard]] GraphRowView row_view(NodeID global) const;

  /// Visits every resident row as (global id, GraphRow view) without
  /// materializing copies: \p visit(NodeID, NodeWeight, span targets,
  /// span weights).
  template <typename Visitor>
  void for_each_resident_row(Visitor&& visit) const {
    for (NodeID i = 0; i < core_.ids.size(); ++i) {
      const NodeID u = core_.ids[i];
      if (departed_.count(u) > 0) continue;
      visit(u, core_.vwgt[i],
            std::span<const NodeID>(core_.adj.data() + core_.xadj[i],
                                    core_.adj.data() + core_.xadj[i + 1]),
            std::span<const EdgeWeight>(core_.ewgt.data() + core_.xadj[i],
                                        core_.ewgt.data() + core_.xadj[i + 1]));
    }
    // Migrated rows live in a hash map; visit them in sorted id order so
    // callers see a deterministic sequence regardless of the hash seed.
    std::vector<NodeID> migrated_ids;
    migrated_ids.reserve(migrated_.size());
    // kappa-lint: allow(determinism-sources, "keys are sorted before any visit")
    for (const auto& [u, r] : migrated_) migrated_ids.push_back(u);
    std::sort(migrated_ids.begin(), migrated_ids.end());
    for (const NodeID u : migrated_ids) {
      const GraphRow& r = migrated_.at(u);
      visit(u, r.weight, std::span<const NodeID>(r.targets),
            std::span<const EdgeWeight>(r.weights));
    }
  }

  /// Applies one committed move u: \p from -> \p to. Only membership and
  /// row residency are updated; \p incoming_row must be set when \p to
  /// is owned here but the row is not yet resident (shipped by the old
  /// owner). Returns the departing row when \p from is owned here and
  /// \p to is not (for shipping); empty otherwise.
  GraphRow apply_move(NodeID u, BlockID from, BlockID to,
                      const GraphRow* incoming_row);

  /// Resident size of this structure (rows + arcs currently held).
  [[nodiscard]] ShardFootprint footprint() const;

 private:
  void insert_member(BlockID b, NodeID u);
  void erase_member(BlockID b, NodeID u);

  int rank_ = 0;
  int num_pes_ = 1;
  RowSet core_;                                   ///< level-start rows
  hash_map<NodeID, NodeID> core_index_;  ///< global -> core slot
  hash_map<NodeID, GraphRow> migrated_;  ///< migrated-in rows
  hash_map<NodeID, char> departed_;      ///< tombstoned core rows
  std::vector<std::vector<NodeID>> members_;       ///< per block, sorted
  std::uint64_t resident_nodes_ = 0;
  std::uint64_t resident_arcs_ = 0;
};

template <typename Keep>
void append_row_words(std::vector<std::uint64_t>& words, NodeID id,
                      const GraphRowView& row, Keep&& keep) {
  words.push_back(id);
  words.push_back(weight_bits(row.weight));
  const std::size_t count_slot = words.size();
  words.push_back(0);
  std::uint64_t narcs = 0;
  for (std::size_t i = 0; i < row.targets.size(); ++i) {
    if (!keep(row.targets[i])) continue;
    words.push_back(row.targets[i]);
    words.push_back(weight_bits(row.weights[i]));
    ++narcs;
  }
  words[count_slot] = narcs;
}

}  // namespace kappa
