#include "parallel/spmd_phases.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <numeric>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "graph/dynamic_overlay.hpp"
#include "graph/metrics.hpp"
#include "parallel/dist_coloring.hpp"
#include "parallel/wire_format.hpp"
#include "refinement/band.hpp"
#include "refinement/edge_coloring.hpp"
#include "util/progress.hpp"
#include "util/seeded_hash.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kappa {

// -------------------------------------------------------- SPMD coarsening ----
//
// The whole coarsening phase lives in the distributed hierarchy store
// (parallel/dist_hierarchy.cpp): shard-local matching, gap resolution over
// peer channels, owner-computes contraction with halo exchange. Nothing in
// this section may gather contraction maps or level graphs — the CI guard
// checks that no all_gather appears above the initial-partitioning marker.

DistHierarchy SpmdCoarsener::coarsen(const StaticGraph& graph) {
  CoarseningOptions options = coarsening_options(graph, config_);
  options.warm_start = warm_start_;
  if (warm_start_ != nullptr) {
    options.max_pair_weight_cap = repartition_pair_weight_cap(graph, config_);
  }
  return DistHierarchy(graph, options, rng_, pe_, &stats_);
}

// ------------------------------------------------ SPMD initial partition ----

Partition SpmdInitialPartitioner::partition(const StaticGraph& coarsest) {
  const BlockID k = config_.k;
  const int p = pe_.size();
  const int rank = pe_.rank();
  const NodeID n = coarsest.num_nodes();

  // Attempt pool: the paper repeats initial partitioning "init. repeats"
  // times on each of its p = k PEs. Attempts are keyed by index — not by
  // rank — so the pool and its winner are independent of the physical PE
  // count; the cap keeps huge k from turning this cheap phase into a
  // bottleneck.
  const int attempts =
      std::max(config_.init_repeats,
               std::min(config_.init_repeats * static_cast<int>(k), 32));

  InitialPartitionOptions options;
  options.eps = config_.eps;
  options.repeats = 1;

  // My share of the attempts, each with its private stream (§4: "each with
  // a different seed for the random number generator").
  constexpr std::uint64_t kWorst = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_infeasible = kWorst;
  std::uint64_t best_cut = kWorst;
  std::uint64_t best_attempt = kWorst;
  Partition best;
  for (int a = rank; a < attempts; a += p) {
    Rng attempt_rng = rng_.fork(static_cast<std::uint64_t>(a));
    Partition candidate = initial_partition(coarsest, k, options, attempt_rng);
    const std::uint64_t infeasible =
        is_balanced(coarsest, candidate, config_.eps) ? 0 : 1;
    const std::uint64_t cut =
        static_cast<std::uint64_t>(edge_cut(coarsest, candidate));
    const std::uint64_t attempt = static_cast<std::uint64_t>(a);
    if (std::tie(infeasible, cut, attempt) <
        std::tie(best_infeasible, best_cut, best_attempt)) {
      best_infeasible = infeasible;
      best_cut = cut;
      best_attempt = attempt;
      best = std::move(candidate);
    }
  }

  // All-reduce the winner: lexicographic (feasibility, cut, attempt) —
  // the attempt index makes the pick unique and p-invariant.
  const auto entries =
      pe_.all_gather_vectors({best_infeasible, best_cut, best_attempt});
  int winner = 0;
  for (int q = 1; q < p; ++q) {
    if (std::tie(entries[q][0], entries[q][1], entries[q][2]) <
        std::tie(entries[winner][0], entries[winner][1], entries[winner][2])) {
      winner = q;
    }
  }

  // The winning PE broadcasts its solution (§4: "The best solution is then
  // broadcast to all PEs").
  std::vector<std::uint64_t> words;
  if (rank == winner) {
    words.reserve(n);
    for (NodeID u = 0; u < n; ++u) words.push_back(best.block(u));
  }
  const std::vector<std::uint64_t> assignment_words =
      pe_.broadcast(words, winner);
  std::vector<BlockID> assignment(n);
  for (NodeID u = 0; u < n; ++u) {
    assignment[u] = static_cast<BlockID>(assignment_words[u]);
  }
  return Partition(coarsest, std::move(assignment), k);
}

// -------------------------------------------------------- SPMD refinement ----

QuotientGraph gather_quotient(const BlockRowShard& store,
                              const DistPartition& partition, BlockID k,
                              PEContext& pe) {
  // Local contributions per block pair: the minimal (node, arc position)
  // at which one of my resident rows sees the pair (the first-encounter
  // key of a full row scan), my share of the cut weight (counted from the
  // bu < bv side, whose row is resident at exactly one rank), and my
  // boundary nodes. Target blocks come from the sharded partition state's
  // ghost-block cache — no rank consults an assignment replica. The same
  // shape accumulates the merged result below.
  struct PairContribution {
    NodeID first_u = kInvalidNode;
    std::uint64_t first_pos = 0;
    EdgeWeight cut = 0;
    std::vector<NodeID> boundary;
  };
  std::map<std::pair<BlockID, BlockID>, PairContribution> local;
  for (BlockID bu = 0; bu < k; ++bu) {
    if (!store.owns_block(bu)) continue;
    for (const NodeID u : store.members(bu)) {
      const GraphRowView row = store.row_view(u);
      for (std::size_t pos = 0; pos < row.targets.size(); ++pos) {
        const BlockID bv = partition.block(row.targets[pos]);
        if (bv == bu) continue;
        const auto key = std::minmax(bu, bv);
        PairContribution& c = local[{key.first, key.second}];
        if (std::tie(u, pos) < std::tie(c.first_u, c.first_pos)) {
          c.first_u = u;
          c.first_pos = pos;
        }
        if (bu < bv) c.cut += row.weights[pos];
        if (c.boundary.empty() || c.boundary.back() != u) {
          c.boundary.push_back(u);  // each row is visited exactly once
        }
      }
    }
  }

  std::vector<std::uint64_t> words;
  for (const auto& [key, c] : local) {
    words.push_back(pack_pair(key.first, key.second));
    words.push_back(c.first_u);
    words.push_back(c.first_pos);
    words.push_back(weight_bits(c.cut));
    words.push_back(c.boundary.size());
    words.insert(words.end(), c.boundary.begin(), c.boundary.end());
  }

  // Merge the all-gathered contributions — identical code over identical
  // data on every PE. (O(boundary) per rank, not O(n_l): block ids never
  // travel here.)
  hash_map<std::uint64_t, PairContribution> merged;
  for (const auto& vec :
       // kappa-lint: allow(no-refinement-block-gathers, "O(boundary) quotient contributions, never block ids")
       pe.all_gather_vectors(std::move(words))) {
    std::size_t i = 0;
    while (i + 4 < vec.size()) {
      const std::uint64_t key = vec[i];
      const NodeID first_u = static_cast<NodeID>(vec[i + 1]);
      const std::uint64_t first_pos = vec[i + 2];
      const EdgeWeight cut = bits_weight(vec[i + 3]);
      const std::size_t count = vec[i + 4];
      PairContribution& m = merged[key];
      if (std::tie(first_u, first_pos) < std::tie(m.first_u, m.first_pos)) {
        m.first_u = first_u;
        m.first_pos = first_pos;
      }
      m.cut += cut;
      for (std::size_t j = 0; j < count; ++j) {
        m.boundary.push_back(static_cast<NodeID>(vec[i + 5 + j]));
      }
      i += 5 + count;
    }
  }

  // Order the pairs exactly as a sequential row scan first encounters
  // them, then finalize the boundary lists (sorted, unique).
  std::vector<std::uint64_t> keys;
  keys.reserve(merged.size());
  // kappa-lint: allow(determinism-sources, "keys are sorted by first-encounter order right below")
  for (const auto& [key, m] : merged) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [&](std::uint64_t x, std::uint64_t y) {
    const PairContribution& mx = merged.at(x);
    const PairContribution& my = merged.at(y);
    return std::tie(mx.first_u, mx.first_pos) <
           std::tie(my.first_u, my.first_pos);
  });
  std::vector<QuotientEdge> edges;
  edges.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    PairContribution& m = merged.at(key);
    std::sort(m.boundary.begin(), m.boundary.end());
    m.boundary.erase(std::unique(m.boundary.begin(), m.boundary.end()),
                     m.boundary.end());
    const auto [a, b] = unpack_pair(key);
    edges.push_back({static_cast<BlockID>(a), static_cast<BlockID>(b), m.cut,
                     std::move(m.boundary)});
  }
  return QuotientGraph(k, std::move(edges));
}

namespace {

/// One side of a pair view: the (sorted) band with its full in-pair rows
/// plus the (sorted) same-side fringe — the one-hop frozen context whose
/// ids classify the stub blocks at the executor.
struct PairSide {
  std::vector<NodeID> band_ids;
  std::vector<GraphRow> band_rows;  ///< parallel; arcs filtered to in-pair
  std::vector<NodeID> fringe_ids;
};

/// Builds block \p side's half of the pair {a, b} view at its owner. With
/// \p ship_depth <= 0 the band is the whole block (legacy whole-block
/// shipping). Otherwise the §5.2 bounded boundary-band BFS on the
/// resident rows, seeded by the side's *current* pair boundary plus the
/// quotient edge's seeds that still sit in this side — stale seeds whose
/// node left the pair are skipped before any row is touched (a departed
/// node's row is no longer resident here). Every cross-side step of the
/// free two-block band BFS lands on a current pair-boundary node, so the
/// union of the two per-side bands equals the band the sequential
/// boundary_band() would compute on a replica.
PairSide build_pair_side(const BlockRowShard& store,
                         const DistPartition& partition, BlockID a, BlockID b,
                         BlockID side, const std::vector<NodeID>& stale_seeds,
                         int ship_depth) {
  const BlockID other = side == a ? b : a;
  auto filtered_row = [&](NodeID u) {
    const GraphRowView view = store.row_view(u);
    GraphRow row;
    row.weight = view.weight;
    for (std::size_t i = 0; i < view.targets.size(); ++i) {
      const BlockID bt = partition.block(view.targets[i]);
      if (bt != a && bt != b) continue;
      row.targets.push_back(view.targets[i]);
      row.weights.push_back(view.weights[i]);
    }
    return row;
  };

  PairSide out;
  if (ship_depth <= 0) {
    out.band_ids = store.members(side);
    out.band_rows.reserve(out.band_ids.size());
    for (const NodeID u : out.band_ids) {
      out.band_rows.push_back(filtered_row(u));
    }
    return out;
  }

  // Seeds: the side's current pair boundary plus the still-in-side
  // quotient seeds (they keep the view search's stale-seeded BFS covered,
  // which is what makes depth = infinity reproduce whole-block shipping).
  std::vector<NodeID> seeds;
  for (const NodeID u : store.members(side)) {
    const GraphRowView row = store.row_view(u);
    for (const NodeID t : row.targets) {
      if (partition.block(t) == other) {
        seeds.push_back(u);
        break;
      }
    }
  }
  for (const NodeID s : stale_seeds) {
    if (partition.knows(s) && partition.block(s) == side) seeds.push_back(s);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  out.band_ids = boundary_band_side(
      side, seeds, ship_depth,
      [&](NodeID u) { return partition.block(u); },
      [&](NodeID u, auto&& visit) {
        const GraphRowView row = store.row_view(u);
        for (const NodeID t : row.targets) visit(t);
      });

  out.band_rows.reserve(out.band_ids.size());
  hash_set<NodeID> fringe;
  for (const NodeID u : out.band_ids) {
    GraphRow row = filtered_row(u);
    for (const NodeID t : row.targets) {
      if (partition.block(t) == side &&
          !std::binary_search(out.band_ids.begin(), out.band_ids.end(), t)) {
        fringe.insert(t);
      }
    }
    out.band_rows.push_back(std::move(row));
  }
  out.fringe_ids.assign(fringe.begin(), fringe.end());
  std::sort(out.fringe_ids.begin(), out.fringe_ids.end());
  return out;
}

/// Wire layout of a pair side: [band count, band rows..., fringe count,
/// fringe ids...]. Band rows travel in the shared row codec.
std::vector<std::uint64_t> encode_pair_side(const PairSide& side) {
  std::vector<std::uint64_t> words;
  words.push_back(side.band_ids.size());
  for (std::size_t i = 0; i < side.band_ids.size(); ++i) {
    const GraphRow& row = side.band_rows[i];
    append_row_words(words, side.band_ids[i],
                     {row.weight, row.targets, row.weights},
                     [](NodeID) { return true; });
  }
  words.push_back(side.fringe_ids.size());
  words.insert(words.end(), side.fringe_ids.begin(), side.fringe_ids.end());
  return words;
}

/// Inverse of encode_pair_side().
PairSide decode_pair_side(const std::vector<std::uint64_t>& words) {
  PairSide side;
  std::size_t cursor = 0;
  const std::uint64_t bands = words[cursor++];
  side.band_ids.reserve(bands);
  side.band_rows.reserve(bands);
  for (std::uint64_t i = 0; i < bands; ++i) {
    GraphRow row;
    side.band_ids.push_back(decode_row_words(words, cursor, row));
    side.band_rows.push_back(std::move(row));
  }
  const std::uint64_t fringes = words[cursor++];
  side.fringe_ids.reserve(fringes);
  for (std::uint64_t i = 0; i < fringes; ++i) {
    side.fringe_ids.push_back(static_cast<NodeID>(words[cursor++]));
  }
  return side;
}

/// A pair-local view: the two shipped/local bands as movable nodes with
/// their full in-pair rows, plus the frozen stubs — fringe nodes and any
/// cross-side band-row target outside the other band (possible when
/// mid-level moves created boundary the stale quotient seeds miss). Stubs
/// carry their true block, so every band gain is exact, but they are
/// non-movable: their rows are only the mirror arcs back into the bands,
/// and their weights are never read. View ids ascend with global ids and
/// the block weights are the caller-supplied *global* pair weights, so
/// the search on the view is a pure function of the pair and the supplied
/// state — independent of p and of which rank executes. (The oracle path
/// passes the globally consistent replicated weights; the async path
/// passes the block owners' authoritative accounts.)
struct PairView {
  StaticGraph graph;
  Partition partition;
  std::vector<NodeID> to_global;
  std::vector<BlockID> entry;  ///< entry block per view node
  std::vector<char> movable;   ///< band nodes; stubs are frozen context
  std::vector<NodeID> seeds;   ///< boundary seeds, mapped into view ids
};

PairView build_pair_view(const PairSide& side_a, const PairSide& side_b,
                         NodeWeight weight_a, NodeWeight weight_b,
                         const QuotientEdge& edge, BlockID k) {
  auto in_band = [](const std::vector<NodeID>& ids, NodeID u) {
    return std::binary_search(ids.begin(), ids.end(), u);
  };

  // Stub nodes with their blocks: the shipped same-side fringes, plus any
  // band-row target not otherwise in the view — by construction a
  // cross-side target (same-side targets are covered by the fringe), so
  // its block is the partner block of the row's side. Ordered map keeps
  // the id enumeration deterministic.
  std::map<NodeID, BlockID> stubs;
  for (const NodeID f : side_a.fringe_ids) stubs.emplace(f, edge.a);
  for (const NodeID f : side_b.fringe_ids) stubs.emplace(f, edge.b);
  auto add_cross_stubs = [&](const PairSide& side, BlockID cross_block) {
    for (const GraphRow& row : side.band_rows) {
      for (const NodeID t : row.targets) {
        if (!in_band(side_a.band_ids, t) && !in_band(side_b.band_ids, t)) {
          stubs.emplace(t, cross_block);
        }
      }
    }
  };
  add_cross_stubs(side_a, edge.b);
  add_cross_stubs(side_b, edge.a);

  PairView view;
  view.to_global.reserve(side_a.band_ids.size() + side_b.band_ids.size() +
                         stubs.size());
  view.to_global.insert(view.to_global.end(), side_a.band_ids.begin(),
                        side_a.band_ids.end());
  view.to_global.insert(view.to_global.end(), side_b.band_ids.begin(),
                        side_b.band_ids.end());
  for (const auto& [id, block] : stubs) view.to_global.push_back(id);
  std::sort(view.to_global.begin(), view.to_global.end());

  hash_map<NodeID, NodeID> to_view;
  to_view.reserve(view.to_global.size());
  for (NodeID i = 0; i < view.to_global.size(); ++i) {
    to_view.emplace(view.to_global[i], i);
  }

  // Stub rows: the mirror arcs of every band arc into the stub, collected
  // in a deterministic scan (side a's rows in ascending id order, then
  // side b's, arcs in row order).
  hash_map<NodeID, std::vector<std::pair<NodeID, EdgeWeight>>>
      mirrors;
  for (const PairSide* side : {&side_a, &side_b}) {
    for (std::size_t i = 0; i < side->band_ids.size(); ++i) {
      const GraphRow& row = side->band_rows[i];
      for (std::size_t j = 0; j < row.targets.size(); ++j) {
        if (stubs.count(row.targets[j]) > 0) {
          mirrors[row.targets[j]].emplace_back(side->band_ids[i],
                                               row.weights[j]);
        }
      }
    }
  }

  std::vector<EdgeID> xadj;
  xadj.reserve(view.to_global.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(view.to_global.size());
  view.entry.reserve(view.to_global.size());
  view.movable.reserve(view.to_global.size());
  auto side_row = [&](const PairSide& side, NodeID global) -> const GraphRow* {
    const auto it = std::lower_bound(side.band_ids.begin(),
                                     side.band_ids.end(), global);
    if (it == side.band_ids.end() || *it != global) return nullptr;
    return &side.band_rows[static_cast<std::size_t>(it -
                                                    side.band_ids.begin())];
  };
  for (const NodeID global : view.to_global) {
    const GraphRow* row = side_row(side_a, global);
    BlockID block = edge.a;
    if (row == nullptr) {
      row = side_row(side_b, global);
      block = edge.b;
    }
    if (row != nullptr) {
      vwgt.push_back(row->weight);
      view.entry.push_back(block);
      view.movable.push_back(1);
      for (std::size_t i = 0; i < row->targets.size(); ++i) {
        adj.push_back(to_view.at(row->targets[i]));
        ewgt.push_back(row->weights[i]);
      }
    } else {
      // Frozen stub: true block for exact gains, mirror arcs only, weight
      // unused (a stub never enters a band, so it is never moved).
      vwgt.push_back(0);
      view.entry.push_back(stubs.at(global));
      view.movable.push_back(0);
      const auto it = mirrors.find(global);
      if (it != mirrors.end()) {
        for (const auto& [band_global, w] : it->second) {
          adj.push_back(to_view.at(band_global));
          ewgt.push_back(w);
        }
      }
    }
    xadj.push_back(adj.size());
  }
  view.graph = StaticGraph(std::move(xadj), std::move(adj), std::move(ewgt),
                           std::move(vwgt));

  // The view partition carries the *global* block weights of the pair so
  // that the balance bounds of the confined search equal the replicated
  // search's (with whole-block shipping every member is present and the
  // values coincide with a per-node sum).
  std::vector<NodeWeight> block_weights(k, 0);
  block_weights[edge.a] = weight_a;
  block_weights[edge.b] = weight_b;
  view.partition = Partition(std::vector<BlockID>(view.entry), k,
                             std::move(block_weights));

  // Boundary seeds from the quotient construction; seeds that left the
  // pair in an earlier color class of this iteration are absent from the
  // view, and in-pair seeds are always band members (the side builders
  // seed their BFS with them).
  for (const NodeID u : edge.boundary) {
    const auto it = to_view.find(u);
    if (it != to_view.end() && view.movable[it->second]) {
      view.seeds.push_back(it->second);
    }
  }
  return view;
}

}  // namespace

SpmdRefiner::SpmdRefiner(const StaticGraph& finest, const Config& config,
                         PEContext& pe, const Partition* warm)
    : finest_(finest),
      config_(config),
      pe_(pe),
      rng_(Rng(config.seed).fork(3)),
      global_bound_(max_block_weight_bound(finest, config.k, config.eps)),
      warm_(warm) {}

namespace {

/// After the §5.2 data distribution of a level: record the store's
/// members in the partition state (a member of block b is in block b) and
/// fetch the blocks of every resident row's targets from their shard
/// owners — the working set the quotient construction, the band builders
/// and the in-pair filters read. Collective (the fetch rendezvous), so
/// every rank passes through here in lockstep.
void sync_partition_with_store(const BlockRowShard& store,
                               DistPartition& partition, BlockID k,
                               PEContext& pe) {
  for (BlockID b = 0; b < k; ++b) {
    if (!store.owns_block(b)) continue;
    for (const NodeID u : store.members(b)) partition.learn(u, b);
  }
  std::vector<NodeID> needed;
  store.for_each_resident_row(
      [&](NodeID, NodeWeight, std::span<const NodeID> targets,
          std::span<const EdgeWeight>) {
        needed.insert(needed.end(), targets.begin(), targets.end());
      });
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  partition.fetch_blocks(needed, pe);
}

}  // namespace

void SpmdRefiner::refine(const DistHierarchy& hierarchy, std::size_t level,
                         DistPartition& partition) {
  PairwiseRefinerOptions options = level_refine_options(
      config_, global_bound_, hierarchy.level_max_node_weight(level));
  // Within a PE the pairs run sequentially; concurrency comes from the
  // PEs themselves.
  options.num_threads = 1;
  const BlockID k = partition.k();
  const Rng level_rng = rng_.fork(level);

  // §5.2: "immediately after uncontracting a matching, every PE stores
  // the partition it is responsible for in a static adjacency array
  // representation" — the data distribution step. Rows arrive from their
  // shard owners with their block words; the ghost-block cache is then
  // refreshed for the resident rows' targets, and every refinement inner
  // loop below reads resident rows, shipped bands, or the sharded
  // partition state. The finest level's store is retained: it drives the
  // rebalancing insurance and doubles as the incrementally maintained
  // §5.2 migration view.
  if (level == 0) {
    finest_store_.emplace(hierarchy.distribute_block_rows(0, partition, k));
    sync_partition_with_store(*finest_store_, partition, k, pe_);
    partition_footprint_.merge_peak(partition.footprint());
    footprint_.merge_peak(finest_store_->footprint());
    run_pairwise(*finest_store_, partition, options, level_rng);
    partition_footprint_.merge_peak(partition.footprint());
    return;
  }
  BlockRowShard store = hierarchy.distribute_block_rows(level, partition, k);
  sync_partition_with_store(store, partition, k, pe_);
  partition_footprint_.merge_peak(partition.footprint());
  footprint_.merge_peak(store.footprint());
  run_pairwise(store, partition, options, level_rng);
  partition_footprint_.merge_peak(partition.footprint());
}

void SpmdRefiner::run_pairwise(BlockRowShard& store, DistPartition& partition,
                               const PairwiseRefinerOptions& options,
                               const Rng& base_rng) {
  const BlockID k = partition.k();
  // Band-limited shipping follows the pass's band depth (escalated by the
  // rebalance insurance); 0 = legacy whole-block shipping.
  const int ship_depth = config_.band_shipping ? options.bfs_depth : 0;

  // Async pays its staleness bill where nodes are heaviest: on the small
  // coarse levels every block sits in an in-flight pair at once and a
  // single gain-misjudged move of a contracted supernode can cost more
  // cut than the level's refinement wins — while the barrier bill those
  // levels would save is negligible, their wall-clock share being tiny.
  // So the async scheduler engages only on levels large enough that
  // per-move stakes are small and the barrier savings real; the coarse
  // tail keeps the color-class oracle. The level size is collectively
  // agreed (an all-reduce over the distributed row counts), so every
  // rank picks the same scheduler.
  constexpr std::uint64_t kAsyncMinLevelNodes = 4096;
  bool use_async = false;
  if (config_.async_refinement) {
    std::uint64_t my_rows = 0;
    for (BlockID b = 0; b < k; ++b) {
      if (store.owns_block(b)) my_rows += store.members(b).size();
    }
    use_async = pe_.all_reduce_sum(my_rows) >= kAsyncMinLevelNodes;
  }

  int no_change_streak = 0;
  for (int global = 0; global < options.max_global_iterations; ++global) {
    KAPPA_TRACE_SPAN("refine.iteration", static_cast<std::uint64_t>(global),
                     use_async ? 1 : 0);
    progress_iteration(static_cast<std::uint32_t>(global));
    // Quotient graph from all-gathered per-rank contributions — merged
    // identically on every PE, so both schedulers below start from the
    // same pair list in the same order.
    const QuotientGraph quotient = [&] {
      KAPPA_TRACE_SPAN("refine.quotient");
      return gather_quotient(store, partition, k, pe_);
    }();
    if (quotient.edges().empty()) break;  // every block is isolated

    EdgeWeight my_cut_gain = 0;
    NodeWeight my_imbalance_gain = 0;
    if (use_async) {
      run_async_iteration(store, partition, options, base_rng, quotient,
                          global, ship_depth, my_cut_gain, my_imbalance_gain);
    } else {
      run_color_classes(store, partition, options, base_rng, quotient, global,
                        ship_depth, my_cut_gain, my_imbalance_gain);
    }

    // Stop rule on the *global* iteration gains (modular arithmetic makes
    // the unsigned all-reduce exact for signed sums).
    const EdgeWeight cut_gain = static_cast<EdgeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_cut_gain)));
    const NodeWeight imbalance_gain = static_cast<NodeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_imbalance_gain)));
    if (cut_gain > 0 || imbalance_gain > 0) {
      no_change_streak = 0;
    } else if (++no_change_streak >= options.stop_no_change) {
      break;
    }
  }

  // Async polish: one color-class iteration on the now globally
  // consistent state. Mid-iteration the async scheduler works against
  // cached third-block entries that can lag by one invalidation hop, so
  // an occasional pair move is gain-misjudged; the polish re-runs every
  // pair with exact state and only improving moves apply, recovering
  // those moves at the cost of a single synchronized round (instead of
  // one per iteration, which is the barrier bill this scheduler kills).
  // All ranks leave the loop in the same iteration (the stop rule is
  // all-reduced), so the polish collectives stay aligned.
  if (use_async) {
    const QuotientGraph quotient = [&] {
      KAPPA_TRACE_SPAN("refine.quotient");
      return gather_quotient(store, partition, k, pe_);
    }();
    if (!quotient.edges().empty()) {
      EdgeWeight polish_cut_gain = 0;
      NodeWeight polish_imbalance_gain = 0;
      run_color_classes(store, partition, options, base_rng, quotient,
                        options.max_global_iterations, ship_depth,
                        polish_cut_gain, polish_imbalance_gain);
    }
  }
  partition_footprint_.merge_peak(partition.footprint());
}

void SpmdRefiner::run_color_classes(BlockRowShard& store,
                                    DistPartition& partition,
                                    const PairwiseRefinerOptions& options,
                                    const Rng& base_rng,
                                    const QuotientGraph& quotient, int global,
                                    int ship_depth, EdgeWeight& my_cut_gain,
                                    NodeWeight& my_imbalance_gain) {
  const int p = pe_.size();
  const int rank = pe_.rank();
  const BlockID k = partition.k();

  // The schedule: an edge coloring of the quotient. Both variants draw
  // the identical coloring from the same forked stream — the in-refiner
  // §5.1 protocol (virtual block-PEs nested on the p ranks) fills in only
  // the colors of edges incident to locally hosted blocks, which is
  // exactly the executor/partner knowledge the loops below read, while
  // the replicated greedy twin colors everything on every rank.
  Rng color_rng = base_rng.fork(coloring_fork_tag(global));
  const EdgeColoring coloring =
      config_.dist_coloring
          ? distributed_color_quotient_edges(quotient, color_rng, pe_).coloring
          : color_quotient_edges(quotient, color_rng);

  for (int color = 0; color < coloring.num_colors; ++color) {
    KAPPA_TRACE_SPAN("refine.color_class", static_cast<std::uint64_t>(color));
    const std::vector<std::size_t> pairs = coloring.color_class(color);
    // No empty-class skip: with the partial in-refiner coloring a rank
    // may see none of a class's pairs but must still join the class's
    // delta collective below. (Full-coloring classes are never globally
    // empty — the greedy min-free rule uses every color below
    // num_colors.)
    bool participated = false;

    // A pair {a, b} is executed by the owner of block a; the owner of
    // block b ships its side of the pair — the §5.2 boundary band plus
    // fringe, not the whole block. All sends of the class are posted
    // before any receive; per-source FIFO delivery pairs them with the
    // executor's receives, which follow the same class order.
    for (const std::size_t j : pairs) {
      const QuotientEdge& edge = quotient.edges()[j];
      const int executor = BlockRowShard::owner_of_block(edge.a, p);
      const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
      if (partner_owner == rank && executor != rank) {
        KAPPA_TRACE_SPAN("pair.ship", edge.a, edge.b);
        const PairSide side = build_pair_side(store, partition, edge.a,
                                              edge.b, edge.b, edge.boundary,
                                              ship_depth);
        std::vector<std::uint64_t> words = encode_pair_side(side);
        ship_stats_.pairs_shipped += 1;
        ship_stats_.rows_shipped +=
            side.band_ids.size() + side.fringe_ids.size();
        ship_stats_.words_shipped += words.size();
        ship_stats_.whole_block_rows += store.members(edge.b).size();
        participated = true;
        pe_.send(executor, std::move(words));
      }
    }

    std::vector<std::uint64_t> delta_words;
    for (const std::size_t j : pairs) {
      const QuotientEdge& edge = quotient.edges()[j];
      if (BlockRowShard::owner_of_block(edge.a, p) != rank) continue;
      KAPPA_TRACE_SPAN("pair.execute", edge.a, edge.b);
      const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
      const PairSide side_a = build_pair_side(
          store, partition, edge.a, edge.b, edge.a, edge.boundary, ship_depth);
      const PairSide side_b =
          partner_owner == rank
              ? build_pair_side(store, partition, edge.a, edge.b, edge.b,
                                edge.boundary, ship_depth)
              : decode_pair_side(pe_.receive(partner_owner).payload);
      PairView view =
          build_pair_view(side_a, side_b, partition.block_weight(edge.a),
                          partition.block_weight(edge.b), edge, k);
      ship_stats_.pairs_executed += 1;
      progress_pair();
      participated = true;
      if (partner_owner != rank) {
        // The shipped partner band is this pair's transient intake.
        ShardFootprint with_intake = store.footprint();
        with_intake.ghost_nodes +=
            side_b.band_ids.size() + side_b.fringe_ids.size();
        for (const GraphRow& row : side_b.band_rows) {
          with_intake.arcs += row.targets.size();
        }
        footprint_.merge_peak(with_intake);
      }

      const PairRefineResult result = refine_pair(
          view.graph, view.partition, edge.a, edge.b, view.seeds, options,
          base_rng, pair_seed_tag(global, j), /*collect_moves=*/true,
          &view.movable);
      my_cut_gain += result.cut_gain;
      my_imbalance_gain += result.imbalance_gain;
      for (const auto& [vu, to] : result.moves) {
        delta_words.push_back(pack_pair(view.to_global[vu], to));
        delta_words.push_back(weight_bits(view.graph.node_weight(vu)));
        delta_words.push_back(view.entry[vu]);
      }
    }
    if (!participated) pe_.count_idle_round();

    // Moved-node delta exchange: deltas carry (node, to), weight and
    // the entry block, so every PE can apply the gathered moves to the
    // partition state it holds — owned entries, cached entries and the
    // replicated block weights — without any rank knowing the full
    // assignment. The volume is O(moves), never O(n_l).
    const auto gathered =
        // kappa-lint: allow(no-refinement-block-gathers, "O(moves) round deltas, never block ids")
        pe_.all_gather_vectors(std::move(delta_words));
    struct Migration {
      NodeID u;
      BlockID from;
      BlockID to;
    };
    std::vector<Migration> migrations;
    for (const auto& vec : gathered) {
      for (std::size_t i = 0; i + 2 < vec.size(); i += 3) {
        const auto [u, to_raw] = unpack_pair(vec[i]);
        const BlockID to = static_cast<BlockID>(to_raw);
        const NodeWeight w = bits_weight(vec[i + 1]);
        const BlockID from = static_cast<BlockID>(vec[i + 2]);
        if (from == to) continue;
        partition.apply_move(u, from, to, w);
        migrations.push_back({u, from, to});
      }
    }

    // Row migration with a schedule every rank derives from the same
    // gathered deltas: the old owner ships the full row plus the blocks
    // of its targets (it had them cached for its own searches; the new
    // owner needs them for the next quotient construction and band
    // filters), the new owner takes the row into the §5.2 hash-table
    // side store.
    std::vector<std::vector<std::uint64_t>> outbox(p);
    std::vector<int> expect_from(p, 0);
    for (const Migration& m : migrations) {
      const int old_owner = BlockRowShard::owner_of_block(m.from, p);
      const int new_owner = BlockRowShard::owner_of_block(m.to, p);
      if (old_owner == new_owner) {
        if (old_owner == rank) store.apply_move(m.u, m.from, m.to, nullptr);
        continue;
      }
      if (old_owner == rank) {
        const GraphRow row = store.apply_move(m.u, m.from, m.to, nullptr);
        append_row_words(outbox[new_owner], m.u,
                         {row.weight, row.targets, row.weights},
                         [](NodeID) { return true; });
        for (const NodeID t : row.targets) {
          outbox[new_owner].push_back(partition.block(t));
        }
      } else if (new_owner == rank) {
        ++expect_from[old_owner];
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank && !outbox[q].empty()) pe_.send(q, std::move(outbox[q]));
    }
    std::vector<std::vector<std::uint64_t>> inbox(p);
    std::vector<std::size_t> cursor(p, 0);
    for (int q = 0; q < p; ++q) {
      if (expect_from[q] > 0) inbox[q] = pe_.receive(q).payload;
    }
    for (const Migration& m : migrations) {
      const int old_owner = BlockRowShard::owner_of_block(m.from, p);
      const int new_owner = BlockRowShard::owner_of_block(m.to, p);
      if (new_owner != rank || old_owner == rank || old_owner == new_owner) {
        continue;
      }
      GraphRow row;
      const NodeID id =
          decode_row_words(inbox[old_owner], cursor[old_owner], row);
      assert(id == m.u);
      (void)id;
      partition.learn(m.u, m.to);
      for (const NodeID t : row.targets) {
        partition.learn(
            t, static_cast<BlockID>(inbox[old_owner][cursor[old_owner]++]));
      }
      store.apply_move(m.u, m.from, m.to, &row);
    }
    footprint_.merge_peak(store.footprint());
  }
}

// ----------------------------------------------- SPMD async refinement ----
//
// The barrier-free pair scheduler: rank 0 arbitrates per-block locks, a
// pair {a, b} is granted the moment both blocks are free, and everything
// a pair touches travels point-to-point — the partner side, the moved-node
// deltas, the migrating rows, and targeted cache invalidations to exactly
// the ranks that own or ghost-cache affected rows. No collective appears
// between the quotient construction and the iteration-end weight
// all-reduce (the CI guard greps this section for all_gather).
//
// Message flow per granted pair (executor E = owner of a, partner P =
// owner of b; P == E short-circuits everything locally):
//
//   arbiter -> E : GRANT(j)          arbiter -> P : SHIP(j)
//   P -> E : SIDE(j, weight_b, band)
//   E refines, applies, books both block weights, then
//   E -> P : MOVES(j, deltas, departing a-side rows)
//   E -> * : INVAL(u, to) for a-side movers' interest sets
//   P applies, books, takes the a-side rows, then
//   P -> * : INVAL for b-side movers      P -> E : ROWS(j, b-side rows)
//   E takes the b-side rows and E -> arbiter : DONE(j)
//
// Safety rests on three happens-before chains through the mailboxes:
// (1) pairs sharing a block are serialized by the arbiter (re-grant only
// after DONE), so each node's invalidation chain is causally ordered;
// (2) every INVAL is pushed before its pair's DONE is pushed, so when the
// arbiter has seen every DONE and broadcasts ITER_END, all INVALs already
// sit ahead of it in the FIFO mailboxes — the loop drains them before it
// exits; (3) a block's owner books its weight before the block can be
// re-granted, so the executor always refines with authoritative weights
// for both blocks. Everything else (third-party ghost caches, third-party
// weight copies) may go stale mid-iteration and is restored at the
// iteration seam: one O(k) owner-contribution weight all-reduce plus a
// ghost-cache refresh against the shard owners.

namespace {

/// Monotonic nanoseconds for the async lock-window events — the
/// sanctioned trace clock (the timestamps feed the async stats log and
/// the trace, never partition state).
std::uint64_t async_now_ns() { return trace_now_ns(); }

// First payload word of every async-scheduler message.
constexpr std::uint64_t kMsgGrant = 1;    ///< arbiter -> executor: [tag, j]
constexpr std::uint64_t kMsgShip = 2;     ///< arbiter -> partner: [tag, j]
constexpr std::uint64_t kMsgSide = 3;     ///< partner -> executor
constexpr std::uint64_t kMsgMoves = 4;    ///< executor -> partner
constexpr std::uint64_t kMsgRows = 5;     ///< partner -> executor (the ACK)
constexpr std::uint64_t kMsgInval = 6;    ///< targeted cache invalidations
constexpr std::uint64_t kMsgDone = 7;     ///< executor -> arbiter: [tag, j]
constexpr std::uint64_t kMsgIterEnd = 8;  ///< arbiter -> all: [tag]

/// One committed move of an async pair.
struct AsyncDelta {
  NodeID u = 0;
  BlockID from = 0;
  BlockID to = 0;
  NodeWeight w = 0;
};

}  // namespace

void SpmdRefiner::run_async_iteration(
    BlockRowShard& store, DistPartition& partition,
    const PairwiseRefinerOptions& options, const Rng& base_rng,
    const QuotientGraph& quotient, int global, int ship_depth,
    EdgeWeight& my_cut_gain, NodeWeight& my_imbalance_gain) {
  const int p = pe_.size();
  const int rank = pe_.rank();
  const BlockID k = partition.k();
  const std::vector<QuotientEdge>& edges = quotient.edges();
  const std::size_t num_pairs = edges.size();
  constexpr int kArbiter = 0;
  bool participated = false;

  // --- Arbiter state (rank 0 only): the owner-arbitrated block locks and
  // the ungranted pairs in quotient order. ---
  std::vector<char> busy(k, 0);
  std::vector<std::size_t> ungranted;
  std::size_t done_pairs = 0;
  auto grant_ready = [&]() {
    std::size_t w = 0;
    for (std::size_t r = 0; r < ungranted.size(); ++r) {
      const std::size_t j = ungranted[r];
      const QuotientEdge& e = edges[j];
      if (busy[e.a] != 0 || busy[e.b] != 0) {
        ungranted[w++] = ungranted[r];
        continue;
      }
      busy[e.a] = 1;
      busy[e.b] = 1;
      const int executor = BlockRowShard::owner_of_block(e.a, p);
      const int partner_owner = BlockRowShard::owner_of_block(e.b, p);
      // GRANT is pushed before SHIP, so the executor's FIFO mailbox
      // always delivers GRANT(j) ahead of the partner's SIDE(j).
      pe_.send(executor, {kMsgGrant, j});
      if (partner_owner != executor) pe_.send(partner_owner, {kMsgShip, j});
    }
    ungranted.resize(w);
    // Lock-table summary for kappa-watch stall reports: how many blocks
    // the arbiter currently holds locked, how many granted pairs are
    // still in flight, how many are done this iteration.
    std::uint64_t locked = 0;
    for (const char b : busy) locked += (b != 0) ? 1u : 0u;
    progress_aux(ProgressAux::kAsyncLocksHeld, locked);
    progress_aux(ProgressAux::kAsyncGrantsInFlight,
                 num_pairs - ungranted.size() - done_pairs);
    progress_aux(ProgressAux::kAsyncPairsDone, done_pairs);
  };
  if (rank == kArbiter) {
    ungranted.reserve(num_pairs);
    for (std::size_t j = 0; j < num_pairs; ++j) ungranted.push_back(j);
    grant_ready();
  }

  // Queues INVAL(u -> to) for every rank whose state can reference u —
  // u's shard owner (the authority the iteration-end refresh asks) and
  // the owners of the blocks of u's row targets (their resident rows have
  // u as a target, so their quotient contributions and band filters read
  // block(u)). The two ranks of the pair itself apply the full delta list
  // and are skipped.
  auto queue_invals = [&](NodeID u, BlockID to,
                          std::span<const NodeID> row_targets, int skip,
                          std::vector<std::vector<std::uint64_t>>& outbox) {
    std::vector<int> interested;
    interested.push_back(partition.shard_owner(u));
    for (const NodeID t : row_targets) {
      interested.push_back(
          BlockRowShard::owner_of_block(partition.block(t), p));
    }
    std::sort(interested.begin(), interested.end());
    interested.erase(std::unique(interested.begin(), interested.end()),
                     interested.end());
    for (const int q : interested) {
      if (q == rank || q == skip) continue;
      if (outbox[static_cast<std::size_t>(q)].empty()) {
        outbox[static_cast<std::size_t>(q)].push_back(kMsgInval);
      }
      outbox[static_cast<std::size_t>(q)].push_back(pack_pair(u, to));
    }
  };
  auto flush_invals = [&](std::vector<std::vector<std::uint64_t>>& outbox) {
    for (int q = 0; q < p; ++q) {
      auto& words = outbox[static_cast<std::size_t>(q)];
      if (!words.empty()) pe_.send(q, std::move(words));
    }
  };

  // --- Executor-side in-flight pair state. ---
  struct InFlight {
    bool granted = false;
    bool side_ready = false;
    PairSide side_b;
    NodeWeight weight_b = 0;
  };
  hash_map<std::size_t, InFlight> inflight;
  struct AwaitRows {
    std::vector<AsyncDelta> returning;  ///< this pair's b-side movers
    std::uint64_t begin_ns = 0;
  };
  hash_map<std::size_t, AwaitRows> awaiting;

  // Runs pair j once grant and partner side are in hand: refine on the
  // pair view, apply the deltas locally (entries plus both blocks' weight
  // accounts — authoritative for block a here), ship the moves with the
  // departing a-side rows, and queue the targeted invalidations. With a
  // remote partner, completion is deferred until its ROWS ACK.
  auto execute_pair = [&](std::size_t j, InFlight& run) {
    const QuotientEdge& edge = edges[j];
    const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
    const bool local_partner = partner_owner == rank;
    participated = true;
    const std::uint64_t begin_ns = async_now_ns();

    const PairSide side_a = build_pair_side(store, partition, edge.a, edge.b,
                                            edge.a, edge.boundary, ship_depth);
    if (local_partner) {
      run.side_b = build_pair_side(store, partition, edge.a, edge.b, edge.b,
                                   edge.boundary, ship_depth);
      run.weight_b = partition.block_weight(edge.b);
    } else {
      // The shipped partner band is this pair's transient intake.
      ShardFootprint with_intake = store.footprint();
      with_intake.ghost_nodes +=
          run.side_b.band_ids.size() + run.side_b.fringe_ids.size();
      for (const GraphRow& row : run.side_b.band_rows) {
        with_intake.arcs += row.targets.size();
      }
      footprint_.merge_peak(with_intake);
    }
    PairView view =
        build_pair_view(side_a, run.side_b, partition.block_weight(edge.a),
                        run.weight_b, edge, k);
    ship_stats_.pairs_executed += 1;
    progress_pair();

    const PairRefineResult result = refine_pair(
        view.graph, view.partition, edge.a, edge.b, view.seeds, options,
        base_rng, pair_seed_tag(global, j), /*collect_moves=*/true,
        &view.movable);
    my_cut_gain += result.cut_gain;
    my_imbalance_gain += result.imbalance_gain;

    std::vector<AsyncDelta> deltas;
    for (const auto& [vu, to] : result.moves) {
      const BlockID from = view.entry[vu];
      if (from == static_cast<BlockID>(to)) continue;
      deltas.push_back({view.to_global[vu], from, static_cast<BlockID>(to),
                        view.graph.node_weight(vu)});
    }
    for (const AsyncDelta& d : deltas) {
      partition.update_entry(d.u, d.to);
      partition.adjust_block_weight(d.from, -d.w);
      partition.adjust_block_weight(d.to, d.w);
    }

    std::vector<std::vector<std::uint64_t>> inval(
        static_cast<std::size_t>(p));
    if (local_partner) {
      for (const AsyncDelta& d : deltas) {
        queue_invals(d.u, d.to, store.row_view(d.u).targets, /*skip=*/-1,
                     inval);
        store.apply_move(d.u, d.from, d.to, nullptr);
      }
      flush_invals(inval);
      footprint_.merge_peak(store.footprint());
      const std::uint64_t end_ns = async_now_ns();
      async_events_.push_back({edge.a, edge.b, begin_ns, end_ns});
      if (TraceRecorder* recorder = thread_trace()) {
        recorder->span("async.pair", begin_ns, end_ns, edge.a, edge.b);
      }
      pe_.send(kArbiter, {kMsgDone, j});
      return;
    }

    // MOVES carries the delta list followed by the departing a-side rows
    // (each with its targets' blocks, like the oracle's row migration).
    std::vector<std::uint64_t> moves{kMsgMoves, j, deltas.size()};
    AwaitRows wait;
    wait.begin_ns = begin_ns;
    for (const AsyncDelta& d : deltas) {
      moves.push_back(pack_pair(d.u, d.to));
      moves.push_back(weight_bits(d.w));
      moves.push_back(d.from);
    }
    for (const AsyncDelta& d : deltas) {
      if (d.from != edge.a) {
        wait.returning.push_back(d);
        continue;
      }
      const GraphRow row = store.apply_move(d.u, d.from, d.to, nullptr);
      queue_invals(d.u, d.to, row.targets, partner_owner, inval);
      append_row_words(moves, d.u, {row.weight, row.targets, row.weights},
                       [](NodeID) { return true; });
      for (const NodeID t : row.targets) {
        moves.push_back(partition.block(t));
      }
    }
    // INVALs before MOVES: the partner's ROWS (and with it this pair's
    // DONE) can only follow, which is what keeps every INVAL ahead of
    // ITER_END in its destination mailbox.
    flush_invals(inval);
    pe_.send(partner_owner, std::move(moves));
    awaiting.emplace(j, std::move(wait));
  };

  // Partner side of MOVES: apply the executor's deltas (entries plus both
  // weight accounts — authoritative for block b here), take over the
  // a-side rows, then invalidate for the departing b-side movers and ship
  // their rows back as the completion ACK.
  auto handle_moves = [&](const Message& msg) {
    std::size_t cursor = 1;
    const std::size_t j = msg.payload[cursor++];
    const QuotientEdge& edge = edges[j];
    KAPPA_TRACE_SPAN("async.moves", edge.a, edge.b);
    const int executor = BlockRowShard::owner_of_block(edge.a, p);
    const std::size_t num_deltas = msg.payload[cursor++];
    std::vector<AsyncDelta> deltas(num_deltas);
    for (AsyncDelta& d : deltas) {
      const auto [u, to] = unpack_pair(msg.payload[cursor++]);
      d.u = static_cast<NodeID>(u);
      d.to = static_cast<BlockID>(to);
      d.w = bits_weight(msg.payload[cursor++]);
      d.from = static_cast<BlockID>(msg.payload[cursor++]);
    }
    for (const AsyncDelta& d : deltas) {
      partition.update_entry(d.u, d.to);
      partition.adjust_block_weight(d.from, -d.w);
      partition.adjust_block_weight(d.to, d.w);
    }
    for (const AsyncDelta& d : deltas) {
      if (d.from != edge.a) continue;
      GraphRow row;
      const NodeID id = decode_row_words(msg.payload, cursor, row);
      assert(id == d.u);
      (void)id;
      for (const NodeID t : row.targets) {
        const BlockID bt = static_cast<BlockID>(msg.payload[cursor++]);
        // Fill-if-unknown: the shipped word may be staler than a block
        // this rank already tracks causally (u's own entry was just set
        // from the delta list above).
        if (!partition.knows(t)) partition.update_entry(t, bt);
      }
      store.apply_move(d.u, d.from, d.to, &row);
    }
    std::vector<std::vector<std::uint64_t>> inval(
        static_cast<std::size_t>(p));
    std::vector<std::uint64_t> rows{kMsgRows, j};
    for (const AsyncDelta& d : deltas) {
      if (d.from != edge.b) continue;
      const GraphRow row = store.apply_move(d.u, d.from, d.to, nullptr);
      queue_invals(d.u, d.to, row.targets, executor, inval);
      append_row_words(rows, d.u, {row.weight, row.targets, row.weights},
                       [](NodeID) { return true; });
      for (const NodeID t : row.targets) {
        rows.push_back(partition.block(t));
      }
    }
    flush_invals(inval);  // before the ACK — see the ordering note above
    pe_.send(executor, std::move(rows));
    footprint_.merge_peak(store.footprint());
  };

  // Executor side of ROWS: take over the returning b-side rows, then
  // report the pair done.
  auto handle_rows = [&](const Message& msg) {
    std::size_t cursor = 1;
    const std::size_t j = msg.payload[cursor++];
    const QuotientEdge& edge = edges[j];
    AwaitRows wait = std::move(awaiting.at(j));
    awaiting.erase(j);
    for (const AsyncDelta& d : wait.returning) {
      GraphRow row;
      const NodeID id = decode_row_words(msg.payload, cursor, row);
      assert(id == d.u);
      (void)id;
      for (const NodeID t : row.targets) {
        const BlockID bt = static_cast<BlockID>(msg.payload[cursor++]);
        if (!partition.knows(t)) partition.update_entry(t, bt);
      }
      store.apply_move(d.u, d.from, d.to, &row);
    }
    footprint_.merge_peak(store.footprint());
    const std::uint64_t end_ns = async_now_ns();
    async_events_.push_back({edge.a, edge.b, wait.begin_ns, end_ns});
    if (TraceRecorder* recorder = thread_trace()) {
      recorder->span("async.pair", wait.begin_ns, end_ns, edge.a, edge.b);
    }
    pe_.send(kArbiter, {kMsgDone, j});
  };

  // --- The event loop: blocking any-source receives, dispatch on the
  // tag. The arbiter exits once every pair reported DONE (its mailbox is
  // provably drained at that point); everyone else exits on ITER_END,
  // behind which no INVAL can hide. ---
  bool iter_done = num_pairs == 0;  // caller guards this; exit everywhere
  while (!iter_done) {
    const Message msg = pe_.receive(-1);
    switch (msg.payload[0]) {
      case kMsgGrant: {
        const std::size_t j = msg.payload[1];
        KAPPA_TRACE_INSTANT("async.grant", j);
        InFlight& run = inflight[j];
        run.granted = true;
        const bool local_partner =
            BlockRowShard::owner_of_block(edges[j].b, p) == rank;
        if (local_partner || run.side_ready) {
          execute_pair(j, run);
          inflight.erase(j);
        }
        break;
      }
      case kMsgShip: {
        const std::size_t j = msg.payload[1];
        const QuotientEdge& edge = edges[j];
        KAPPA_TRACE_SPAN("async.ship", edge.a, edge.b);
        const int executor = BlockRowShard::owner_of_block(edge.a, p);
        const PairSide side = build_pair_side(
            store, partition, edge.a, edge.b, edge.b, edge.boundary,
            ship_depth);
        std::vector<std::uint64_t> words{
            kMsgSide, j, weight_bits(partition.block_weight(edge.b))};
        const std::vector<std::uint64_t> body = encode_pair_side(side);
        words.insert(words.end(), body.begin(), body.end());
        ship_stats_.pairs_shipped += 1;
        ship_stats_.rows_shipped +=
            side.band_ids.size() + side.fringe_ids.size();
        ship_stats_.words_shipped += words.size();
        ship_stats_.whole_block_rows += store.members(edge.b).size();
        participated = true;
        pe_.send(executor, std::move(words));
        break;
      }
      case kMsgSide: {
        const std::size_t j = msg.payload[1];
        InFlight& run = inflight[j];
        run.weight_b = bits_weight(msg.payload[2]);
        run.side_b = decode_pair_side(std::vector<std::uint64_t>(
            msg.payload.begin() + 3, msg.payload.end()));
        run.side_ready = true;
        if (run.granted) {
          execute_pair(j, run);
          inflight.erase(j);
        }
        break;
      }
      case kMsgMoves:
        handle_moves(msg);
        break;
      case kMsgRows:
        handle_rows(msg);
        break;
      case kMsgInval:
        for (std::size_t i = 1; i < msg.payload.size(); ++i) {
          const auto [u, to] = unpack_pair(msg.payload[i]);
          partition.update_entry(static_cast<NodeID>(u),
                                 static_cast<BlockID>(to));
        }
        break;
      case kMsgDone: {
        assert(rank == kArbiter);
        const std::size_t j = msg.payload[1];
        busy[edges[j].a] = 0;
        busy[edges[j].b] = 0;
        ++done_pairs;
        grant_ready();
        if (done_pairs == num_pairs) {
          for (int q = 0; q < p; ++q) {
            if (q != rank) pe_.send(q, {kMsgIterEnd});
          }
          iter_done = true;
        }
        break;
      }
      case kMsgIterEnd:
        iter_done = true;
        break;
    }
  }
  assert(inflight.empty() && awaiting.empty() && ungranted.empty());
  if (rank == kArbiter) {
    progress_aux(ProgressAux::kAsyncLocksHeld, 0);
    progress_aux(ProgressAux::kAsyncGrantsInFlight, 0);
  }
  if (!participated && num_pairs > 0) pe_.count_idle_round();

  // --- Iteration seam: restore global consistency. Authoritative O(k)
  // block weights from the owners' member lists (every move is booked at
  // both owners before ITER_END, so the member lists are final), then a
  // ghost-cache refresh against the shard owners — whose entries are
  // exact because every mover's interest set includes its shard owner and
  // all INVALs drained before the loop exited. ---
  std::vector<std::uint64_t> partial(k, 0);
  for (BlockID b = 0; b < k; ++b) {
    if (!store.owns_block(b)) continue;
    for (const NodeID u : store.members(b)) {
      partial[b] += static_cast<std::uint64_t>(store.row_view(u).weight);
    }
  }
  const std::vector<std::uint64_t> sums =
      pe_.all_reduce_sum_vec(std::move(partial));
  std::vector<NodeWeight> weights;
  weights.reserve(k);
  for (const std::uint64_t w : sums) {
    weights.push_back(static_cast<NodeWeight>(w));
  }
  partition.set_block_weights(std::move(weights));

  std::vector<NodeID> needed;
  store.for_each_resident_row(
      [&](NodeID, NodeWeight, std::span<const NodeID> targets,
          std::span<const EdgeWeight>) {
        needed.insert(needed.end(), targets.begin(), targets.end());
      });
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  partition.refresh_blocks(needed, pe_);
}

// ------------------------------------------- end SPMD async refinement ----

void SpmdRefiner::rebalance(DistPartition& partition) {
  assert(finest_store_.has_value() &&
         "refine(level 0) must run before rebalance");
  // The insurance loop (§5.2 exception rule): should the finest level
  // still be overloaded, run additional MaxLoad-driven iterations with
  // escalating band depth through the same distributed color-class
  // machinery — on the retained finest-level store, never on a replica.
  // The Lmax check reads the replicated O(k) block weights only. Mirrors
  // rebalance_until_feasible() in loop shape and RNG forks.
  for (int attempt = 0;
       attempt < kMaxRebalanceAttempts &&
       partition.max_block_weight() > global_bound_;
       ++attempt) {
    PairwiseRefinerOptions options =
        rebalance_options(config_, finest_, global_bound_, attempt);
    options.num_threads = 1;
    run_pairwise(*finest_store_, partition, options, rng_.fork(100 + attempt));
  }
}

MigrationIntake SpmdRefiner::migration_intake() const {
  assert(warm_ != nullptr && "migration accounting needs the warm input");
  assert(finest_store_.has_value());
  const BlockRowShard& store = *finest_store_;
  const BlockID k = warm_->k();

  // The store was maintained incrementally by the moved-node deltas and
  // row migrations of refine/rebalance, so at this point it holds exactly
  // the rows of the nodes in this rank's final blocks — the population of
  // the §5.2 migration view, with block membership read off the member
  // lists themselves (a member of block b is in block b; no partition
  // replica is consulted). Seal the view: kept nodes (same block as the
  // warm input) form the static core, everything else is a migrated-in
  // node in the overlay's hash-addressed secondary edge array.
  std::vector<std::pair<NodeID, BlockID>> residents;
  for (BlockID b = 0; b < k; ++b) {
    if (!store.owns_block(b)) continue;
    for (const NodeID u : store.members(b)) residents.emplace_back(u, b);
  }
  std::sort(residents.begin(), residents.end());

  std::vector<NodeID> kept;
  std::vector<NodeID> incoming;
  for (const auto& [u, b] : residents) {
    if (b == warm_->block(u)) {
      kept.push_back(u);
    } else {
      incoming.push_back(u);
    }
  }

  // Static core: the subgraph induced by the kept nodes, assembled from
  // resident rows.
  hash_map<NodeID, NodeID> kept_index;
  kept_index.reserve(kept.size());
  for (NodeID i = 0; i < kept.size(); ++i) kept_index.emplace(kept[i], i);
  std::vector<EdgeID> xadj;
  xadj.reserve(kept.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(kept.size());
  for (const NodeID u : kept) {
    const GraphRowView row = store.row_view(u);
    vwgt.push_back(row.weight);
    for (std::size_t i = 0; i < row.targets.size(); ++i) {
      const auto it = kept_index.find(row.targets[i]);
      if (it == kept_index.end()) continue;
      adj.push_back(it->second);
      ewgt.push_back(row.weights[i]);
    }
    xadj.push_back(adj.size());
  }
  const StaticGraph core(std::move(xadj), std::move(adj), std::move(ewgt),
                         std::move(vwgt));

  DynamicOverlay view(core, kept);
  for (const NodeID u : incoming) {
    view.add_migrated_node(u, store.row_view(u).weight);
  }
  for (const NodeID u : incoming) {
    const GraphRowView row = store.row_view(u);
    for (std::size_t i = 0; i < row.targets.size(); ++i) {
      if (view.contains(row.targets[i])) {
        view.add_migrated_edge(u, row.targets[i], row.weights[i]);
      }
    }
  }
  return {static_cast<NodeID>(view.num_migrated()), view.num_overlay_edges()};
}

// ------------------------------------------------------------ SPMD driver ----

PartitionResult run_multilevel_spmd(const StaticGraph& graph,
                                    const Config& config,
                                    SpmdCoarsener& coarsener,
                                    InitialPartitioner& initial,
                                    SpmdRefiner& refiner) {
  Timer total_timer;
  PartitionResult result;

  // --- Phase 1: contraction into the distributed hierarchy store (§3). ---
  Timer phase_timer;
  progress_phase(ProgressPhase::kCoarsen);
  DistHierarchy hierarchy = [&] {
    KAPPA_TRACE_SPAN("phase.coarsen");
    return coarsener.coarsen(graph);
  }();
  result.coarsening_time = phase_timer.elapsed_s();
  result.hierarchy_levels = hierarchy.num_levels();
  result.coarsest_nodes = hierarchy.level_nodes(hierarchy.num_levels() - 1);
  result.hierarchy_level_nodes.reserve(hierarchy.num_levels());
  for (std::size_t l = 0; l < hierarchy.num_levels(); ++l) {
    result.hierarchy_level_nodes.push_back(hierarchy.level_nodes(l));
  }

  // --- Phase 2: initial partitioning on the once-gathered coarsest (§4). ---
  phase_timer.restart();
  progress_phase(ProgressPhase::kInitial);
  Partition coarsest_partition = [&] {
    KAPPA_TRACE_SPAN("phase.initial");
    initial.observe_hierarchy(hierarchy);
    return initial.partition(hierarchy.coarsest());
  }();
  result.initial_time = phase_timer.elapsed_s();

  // --- Phase 3: uncoarsening with pairwise refinement (§5). The partition
  // state is sharded end to end: seeded at the coarsest level, projected
  // shard-locally through the contraction maps, refined on band-limited
  // views, and materialized exactly once for the result. ---
  phase_timer.restart();
  progress_phase(ProgressPhase::kRefine);
  DistPartition partition = [&] {
    KAPPA_TRACE_SPAN("phase.refine");
    DistPartition refined = hierarchy.lift(coarsest_partition);
    for (std::size_t level = hierarchy.num_levels(); level-- > 0;) {
      KAPPA_TRACE_SPAN("refine.level", level);
      progress_level(static_cast<std::uint32_t>(level));
      if (level + 1 < hierarchy.num_levels()) {
        refined = hierarchy.project(level, refined);
      }
      refiner.refine(hierarchy, level, refined);
    }
    {
      KAPPA_TRACE_SPAN("phase.rebalance");
      progress_phase(ProgressPhase::kRebalance);
      refiner.rebalance(refined);
    }
    return refined;
  }();
  result.refinement_time = phase_timer.elapsed_s();

  progress_phase(ProgressPhase::kMaterialize);
  Partition final_partition = [&] {
    KAPPA_TRACE_SPAN("phase.materialize");
    return hierarchy.materialize(partition);
  }();
  result.cut = edge_cut(graph, final_partition);
  result.balance = balance(graph, final_partition);
  result.balanced = is_balanced(graph, final_partition, config.eps);
  result.partition = std::move(final_partition);
  result.total_time = total_timer.elapsed_s();
  progress_phase(ProgressPhase::kDone);
  return result;
}

}  // namespace kappa
