#include "parallel/spmd_phases.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <numeric>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "graph/dynamic_overlay.hpp"
#include "graph/metrics.hpp"
#include "parallel/wire_format.hpp"
#include "refinement/edge_coloring.hpp"
#include "util/timer.hpp"

namespace kappa {

// -------------------------------------------------------- SPMD coarsening ----
//
// The whole coarsening phase lives in the distributed hierarchy store
// (parallel/dist_hierarchy.cpp): shard-local matching, gap resolution over
// peer channels, owner-computes contraction with halo exchange. Nothing in
// this section may gather contraction maps or level graphs — the CI guard
// checks that no all_gather appears above the initial-partitioning marker.

DistHierarchy SpmdCoarsener::coarsen(const StaticGraph& graph) {
  CoarseningOptions options = coarsening_options(graph, config_);
  options.warm_start = warm_start_;
  if (warm_start_ != nullptr) {
    options.max_pair_weight_cap = repartition_pair_weight_cap(graph, config_);
  }
  return DistHierarchy(graph, options, rng_, pe_, &stats_);
}

// ------------------------------------------------ SPMD initial partition ----

Partition SpmdInitialPartitioner::partition(const StaticGraph& coarsest) {
  const BlockID k = config_.k;
  const int p = pe_.size();
  const int rank = pe_.rank();
  const NodeID n = coarsest.num_nodes();

  // Attempt pool: the paper repeats initial partitioning "init. repeats"
  // times on each of its p = k PEs. Attempts are keyed by index — not by
  // rank — so the pool and its winner are independent of the physical PE
  // count; the cap keeps huge k from turning this cheap phase into a
  // bottleneck.
  const int attempts =
      std::max(config_.init_repeats,
               std::min(config_.init_repeats * static_cast<int>(k), 32));

  InitialPartitionOptions options;
  options.eps = config_.eps;
  options.repeats = 1;

  // My share of the attempts, each with its private stream (§4: "each with
  // a different seed for the random number generator").
  constexpr std::uint64_t kWorst = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_infeasible = kWorst;
  std::uint64_t best_cut = kWorst;
  std::uint64_t best_attempt = kWorst;
  Partition best;
  for (int a = rank; a < attempts; a += p) {
    Rng attempt_rng = rng_.fork(static_cast<std::uint64_t>(a));
    Partition candidate = initial_partition(coarsest, k, options, attempt_rng);
    const std::uint64_t infeasible =
        is_balanced(coarsest, candidate, config_.eps) ? 0 : 1;
    const std::uint64_t cut =
        static_cast<std::uint64_t>(edge_cut(coarsest, candidate));
    const std::uint64_t attempt = static_cast<std::uint64_t>(a);
    if (std::tie(infeasible, cut, attempt) <
        std::tie(best_infeasible, best_cut, best_attempt)) {
      best_infeasible = infeasible;
      best_cut = cut;
      best_attempt = attempt;
      best = std::move(candidate);
    }
  }

  // All-reduce the winner: lexicographic (feasibility, cut, attempt) —
  // the attempt index makes the pick unique and p-invariant.
  const auto entries =
      pe_.all_gather_vectors({best_infeasible, best_cut, best_attempt});
  int winner = 0;
  for (int q = 1; q < p; ++q) {
    if (std::tie(entries[q][0], entries[q][1], entries[q][2]) <
        std::tie(entries[winner][0], entries[winner][1], entries[winner][2])) {
      winner = q;
    }
  }

  // The winning PE broadcasts its solution (§4: "The best solution is then
  // broadcast to all PEs").
  std::vector<std::uint64_t> words;
  if (rank == winner) {
    words.reserve(n);
    for (NodeID u = 0; u < n; ++u) words.push_back(best.block(u));
  }
  const std::vector<std::uint64_t> assignment_words =
      pe_.broadcast(words, winner);
  std::vector<BlockID> assignment(n);
  for (NodeID u = 0; u < n; ++u) {
    assignment[u] = static_cast<BlockID>(assignment_words[u]);
  }
  return Partition(coarsest, std::move(assignment), k);
}

// -------------------------------------------------------- SPMD refinement ----

QuotientGraph gather_quotient(const BlockRowShard& store,
                              const Partition& partition, BlockID k,
                              PEContext& pe) {
  // Local contributions per block pair: the minimal (node, arc position)
  // at which one of my resident rows sees the pair (the first-encounter
  // key of a full row scan), my share of the cut weight (counted from the
  // bu < bv side, whose row is resident at exactly one rank), and my
  // boundary nodes. The same shape accumulates the merged result below.
  struct PairContribution {
    NodeID first_u = kInvalidNode;
    std::uint64_t first_pos = 0;
    EdgeWeight cut = 0;
    std::vector<NodeID> boundary;
  };
  std::map<std::pair<BlockID, BlockID>, PairContribution> local;
  store.for_each_resident_row([&](NodeID u, NodeWeight /*weight*/,
                                  std::span<const NodeID> targets,
                                  std::span<const EdgeWeight> weights) {
    const BlockID bu = partition.block(u);
    for (std::size_t pos = 0; pos < targets.size(); ++pos) {
      const BlockID bv = partition.block(targets[pos]);
      if (bv == bu) continue;
      const auto key = std::minmax(bu, bv);
      PairContribution& c = local[{key.first, key.second}];
      if (std::tie(u, pos) < std::tie(c.first_u, c.first_pos)) {
        c.first_u = u;
        c.first_pos = pos;
      }
      if (bu < bv) c.cut += weights[pos];
      if (c.boundary.empty() || c.boundary.back() != u) {
        c.boundary.push_back(u);  // each row is visited exactly once
      }
    }
  });

  std::vector<std::uint64_t> words;
  for (const auto& [key, c] : local) {
    words.push_back(pack_pair(key.first, key.second));
    words.push_back(c.first_u);
    words.push_back(c.first_pos);
    words.push_back(weight_bits(c.cut));
    words.push_back(c.boundary.size());
    words.insert(words.end(), c.boundary.begin(), c.boundary.end());
  }

  // Merge the all-gathered contributions — identical code over identical
  // data on every PE.
  std::unordered_map<std::uint64_t, PairContribution> merged;
  for (const auto& vec : pe.all_gather_vectors(std::move(words))) {
    std::size_t i = 0;
    while (i + 4 < vec.size()) {
      const std::uint64_t key = vec[i];
      const NodeID first_u = static_cast<NodeID>(vec[i + 1]);
      const std::uint64_t first_pos = vec[i + 2];
      const EdgeWeight cut = bits_weight(vec[i + 3]);
      const std::size_t count = vec[i + 4];
      PairContribution& m = merged[key];
      if (std::tie(first_u, first_pos) < std::tie(m.first_u, m.first_pos)) {
        m.first_u = first_u;
        m.first_pos = first_pos;
      }
      m.cut += cut;
      for (std::size_t j = 0; j < count; ++j) {
        m.boundary.push_back(static_cast<NodeID>(vec[i + 5 + j]));
      }
      i += 5 + count;
    }
  }

  // Order the pairs exactly as a sequential row scan first encounters
  // them, then finalize the boundary lists (sorted, unique).
  std::vector<std::uint64_t> keys;
  keys.reserve(merged.size());
  for (const auto& [key, m] : merged) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [&](std::uint64_t x, std::uint64_t y) {
    const PairContribution& mx = merged.at(x);
    const PairContribution& my = merged.at(y);
    return std::tie(mx.first_u, mx.first_pos) <
           std::tie(my.first_u, my.first_pos);
  });
  std::vector<QuotientEdge> edges;
  edges.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    PairContribution& m = merged.at(key);
    std::sort(m.boundary.begin(), m.boundary.end());
    m.boundary.erase(std::unique(m.boundary.begin(), m.boundary.end()),
                     m.boundary.end());
    const auto [a, b] = unpack_pair(key);
    edges.push_back({static_cast<BlockID>(a), static_cast<BlockID>(b), m.cut,
                     std::move(m.boundary)});
  }
  return QuotientGraph(k, std::move(edges));
}

namespace {

/// Whether an arc target stays inside the pair {a, b}.
auto in_pair(const Partition& partition, BlockID a, BlockID b) {
  return [&partition, a, b](NodeID v) {
    const BlockID bv = partition.block(v);
    return bv == a || bv == b;
  };
}

/// Encodes one rank's rows of block \p b for the pair {a, b}, in
/// ascending global id order, arcs filtered to in-pair endpoints (the
/// only arcs a pair search can read).
std::vector<std::uint64_t> encode_block_rows(const BlockRowShard& store,
                                             const Partition& partition,
                                             BlockID a, BlockID b) {
  std::vector<std::uint64_t> words;
  for (const NodeID u : store.members(b)) {
    append_row_words(words, u, store.row_view(u), in_pair(partition, a, b));
  }
  return words;
}

/// One side of a pair view: node ids (ascending) with their in-pair rows.
struct SideRows {
  std::vector<NodeID> ids;
  std::vector<GraphRow> rows;
};

/// Materializes a side from the local store (filtering to in-pair arcs).
SideRows local_side_rows(const BlockRowShard& store,
                         const Partition& partition, BlockID a, BlockID b,
                         BlockID side) {
  const auto keep = in_pair(partition, a, b);
  SideRows result;
  for (const NodeID u : store.members(side)) {
    const GraphRowView view = store.row_view(u);
    GraphRow filtered;
    filtered.weight = view.weight;
    for (std::size_t i = 0; i < view.targets.size(); ++i) {
      if (!keep(view.targets[i])) continue;
      filtered.targets.push_back(view.targets[i]);
      filtered.weights.push_back(view.weights[i]);
    }
    result.ids.push_back(u);
    result.rows.push_back(std::move(filtered));
  }
  return result;
}

/// Decodes a side shipped by the partner owner (inverse of
/// encode_block_rows, which applied the same filter at the sender).
SideRows decode_side_rows(const std::vector<std::uint64_t>& words) {
  SideRows result;
  std::size_t i = 0;
  while (i + 2 < words.size()) {
    GraphRow row;
    const NodeID u = decode_row_words(words, i, row);
    result.ids.push_back(u);
    result.rows.push_back(std::move(row));
  }
  return result;
}

/// A pair-local view: the subgraph induced by the nodes of blocks a and b
/// (view ids assigned in ascending global order — a pure function of the
/// pair and the partition state, independent of p and of which rank
/// executes), plus a k-block partition whose a/b weights equal the global
/// block weights (every node of either block is in the view). Arcs to
/// third blocks are dropped: they contribute zero to every two-way FM
/// gain, so the search on the view is step-for-step the search a
/// replicated implementation would run.
struct PairView {
  StaticGraph graph;
  Partition partition;
  std::vector<NodeID> to_global;
  std::vector<NodeID> seeds;  ///< boundary seeds, mapped into view ids
};

PairView build_pair_view(const SideRows& side_a, const SideRows& side_b,
                         const Partition& partition, const QuotientEdge& edge,
                         BlockID k) {
  PairView view;
  view.to_global.reserve(side_a.ids.size() + side_b.ids.size());
  std::merge(side_a.ids.begin(), side_a.ids.end(), side_b.ids.begin(),
             side_b.ids.end(), std::back_inserter(view.to_global));

  std::unordered_map<NodeID, NodeID> to_view;
  to_view.reserve(view.to_global.size());
  for (NodeID i = 0; i < view.to_global.size(); ++i) {
    to_view.emplace(view.to_global[i], i);
  }
  auto row_of = [&](NodeID global) -> const GraphRow& {
    const auto a_it =
        std::lower_bound(side_a.ids.begin(), side_a.ids.end(), global);
    if (a_it != side_a.ids.end() && *a_it == global) {
      return side_a.rows[static_cast<std::size_t>(a_it - side_a.ids.begin())];
    }
    const auto b_it =
        std::lower_bound(side_b.ids.begin(), side_b.ids.end(), global);
    assert(b_it != side_b.ids.end() && *b_it == global);
    return side_b.rows[static_cast<std::size_t>(b_it - side_b.ids.begin())];
  };

  std::vector<EdgeID> xadj;
  xadj.reserve(view.to_global.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(view.to_global.size());
  std::vector<BlockID> assignment;
  assignment.reserve(view.to_global.size());
  for (const NodeID global : view.to_global) {
    const GraphRow& row = row_of(global);
    vwgt.push_back(row.weight);
    assignment.push_back(partition.block(global));
    for (std::size_t i = 0; i < row.targets.size(); ++i) {
      adj.push_back(to_view.at(row.targets[i]));
      ewgt.push_back(row.weights[i]);
    }
    xadj.push_back(adj.size());
  }
  view.graph = StaticGraph(std::move(xadj), std::move(adj), std::move(ewgt),
                           std::move(vwgt));
  view.partition = Partition(view.graph, std::move(assignment), k);

  // Boundary seeds from the quotient construction; seeds that left the
  // pair in an earlier color class of this iteration are simply absent
  // from the view (a replicated path skips them inside the band BFS).
  for (const NodeID u : edge.boundary) {
    const auto it = to_view.find(u);
    if (it != to_view.end()) view.seeds.push_back(it->second);
  }
  return view;
}

}  // namespace

SpmdRefiner::SpmdRefiner(const StaticGraph& finest, const Config& config,
                         PEContext& pe, const Partition* warm)
    : finest_(finest),
      config_(config),
      pe_(pe),
      rng_(Rng(config.seed).fork(3)),
      global_bound_(max_block_weight_bound(finest, config.k, config.eps)),
      warm_(warm) {}

void SpmdRefiner::refine(const DistHierarchy& hierarchy, std::size_t level,
                         Partition& partition) {
  PairwiseRefinerOptions options = level_refine_options(
      config_, global_bound_, hierarchy.level_max_node_weight(level));
  // Within a PE the pairs run sequentially; concurrency comes from the
  // PEs themselves.
  options.num_threads = 1;
  const BlockID k = partition.k();
  const Rng level_rng = rng_.fork(level);

  // §5.2: "immediately after uncontracting a matching, every PE stores
  // the partition it is responsible for in a static adjacency array
  // representation" — the data distribution step. For coarse levels the
  // rows arrive from their shard owners over channels; every refinement
  // inner loop below reads resident rows, shipped rows, or the
  // replicated partition state. The finest level's store is retained: it
  // drives the rebalancing insurance and doubles as the incrementally
  // maintained §5.2 migration view.
  if (level == 0) {
    finest_store_.emplace(hierarchy.distribute_block_rows(0, partition, k));
    footprint_.merge_peak(finest_store_->footprint());
    run_pairwise(*finest_store_, partition, options, level_rng);
    return;
  }
  BlockRowShard store = hierarchy.distribute_block_rows(level, partition, k);
  footprint_.merge_peak(store.footprint());
  run_pairwise(store, partition, options, level_rng);
}

void SpmdRefiner::run_pairwise(BlockRowShard& store, Partition& partition,
                               const PairwiseRefinerOptions& options,
                               const Rng& base_rng) {
  const int p = pe_.size();
  const int rank = pe_.rank();
  const BlockID k = partition.k();

  int no_change_streak = 0;
  for (int global = 0; global < options.max_global_iterations; ++global) {
    // Quotient graph from all-gathered per-rank contributions; coloring
    // runs replicated on the merged result with identical streams, so
    // every PE schedules the same pairs into the same color classes.
    const QuotientGraph quotient = gather_quotient(store, partition, k, pe_);
    if (quotient.edges().empty()) break;  // every block is isolated

    Rng color_rng = base_rng.fork(coloring_fork_tag(global));
    const EdgeColoring coloring = color_quotient_edges(quotient, color_rng);

    EdgeWeight my_cut_gain = 0;
    NodeWeight my_imbalance_gain = 0;
    for (int color = 0; color < coloring.num_colors; ++color) {
      const std::vector<std::size_t> pairs = coloring.color_class(color);
      if (pairs.empty()) continue;

      // A pair {a, b} is executed by the owner of block a; the owner of
      // block b ships its side of the pair (§5.2: "send copies of this
      // boundary array to the partner PE"). All sends of the class are
      // posted before any receive; per-source FIFO delivery pairs them
      // with the executor's receives, which follow the same class order.
      for (const std::size_t j : pairs) {
        const QuotientEdge& edge = quotient.edges()[j];
        const int executor = BlockRowShard::owner_of_block(edge.a, p);
        const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
        if (partner_owner == rank && executor != rank) {
          pe_.send(executor,
                   encode_block_rows(store, partition, edge.a, edge.b));
        }
      }

      std::vector<std::uint64_t> delta_words;
      for (const std::size_t j : pairs) {
        const QuotientEdge& edge = quotient.edges()[j];
        if (BlockRowShard::owner_of_block(edge.a, p) != rank) continue;
        const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
        const SideRows side_a =
            local_side_rows(store, partition, edge.a, edge.b, edge.a);
        const SideRows side_b =
            partner_owner == rank
                ? local_side_rows(store, partition, edge.a, edge.b, edge.b)
                : decode_side_rows(pe_.receive(partner_owner).payload);
        PairView view = build_pair_view(side_a, side_b, partition, edge, k);
        if (partner_owner != rank) {
          // The shipped partner side is this pair's transient intake.
          ShardFootprint with_intake = store.footprint();
          with_intake.ghost_nodes += side_b.ids.size();
          for (const GraphRow& row : side_b.rows) {
            with_intake.arcs += row.targets.size();
          }
          footprint_.merge_peak(with_intake);
        }

        const PairRefineResult result = refine_pair(
            view.graph, view.partition, edge.a, edge.b, view.seeds, options,
            base_rng, pair_seed_tag(global, j), /*collect_moves=*/true);
        my_cut_gain += result.cut_gain;
        my_imbalance_gain += result.imbalance_gain;
        for (const auto& [vu, to] : result.moves) {
          delta_words.push_back(pack_pair(view.to_global[vu], to));
          delta_words.push_back(weight_bits(view.graph.node_weight(vu)));
        }
      }

      // Moved-node delta exchange: every PE applies the gathered moves to
      // its replicated partition state (executors included — their moves
      // so far live only in the pair view), then the rows of nodes whose
      // block owner changed migrate to their new home rank.
      const auto gathered = pe_.all_gather_vectors(std::move(delta_words));
      struct Migration {
        NodeID u;
        BlockID from;
        BlockID to;
      };
      std::vector<Migration> migrations;
      for (const auto& vec : gathered) {
        for (std::size_t i = 0; i + 1 < vec.size(); i += 2) {
          const auto [u, to_raw] = unpack_pair(vec[i]);
          const BlockID to = static_cast<BlockID>(to_raw);
          const NodeWeight w = bits_weight(vec[i + 1]);
          const BlockID from = partition.block(u);
          if (from == to) continue;
          partition.move(u, to, w);
          migrations.push_back({u, from, to});
        }
      }

      // Row migration with a schedule every rank derives from the same
      // gathered deltas: the old owner ships the full row, the new owner
      // takes it into the §5.2 hash-table side store.
      std::vector<std::vector<std::uint64_t>> outbox(p);
      std::vector<int> expect_from(p, 0);
      for (const Migration& m : migrations) {
        const int old_owner = BlockRowShard::owner_of_block(m.from, p);
        const int new_owner = BlockRowShard::owner_of_block(m.to, p);
        if (old_owner == new_owner) {
          if (old_owner == rank) store.apply_move(m.u, m.from, m.to, nullptr);
          continue;
        }
        if (old_owner == rank) {
          const GraphRow row = store.apply_move(m.u, m.from, m.to, nullptr);
          append_row_words(outbox[new_owner], m.u,
                           {row.weight, row.targets, row.weights},
                           [](NodeID) { return true; });
        } else if (new_owner == rank) {
          ++expect_from[old_owner];
        }
      }
      for (int q = 0; q < p; ++q) {
        if (q != rank && !outbox[q].empty()) pe_.send(q, std::move(outbox[q]));
      }
      std::vector<std::vector<std::uint64_t>> inbox(p);
      std::vector<std::size_t> cursor(p, 0);
      for (int q = 0; q < p; ++q) {
        if (expect_from[q] > 0) inbox[q] = pe_.receive(q).payload;
      }
      for (const Migration& m : migrations) {
        const int old_owner = BlockRowShard::owner_of_block(m.from, p);
        const int new_owner = BlockRowShard::owner_of_block(m.to, p);
        if (new_owner != rank || old_owner == rank || old_owner == new_owner) {
          continue;
        }
        GraphRow row;
        const NodeID id =
            decode_row_words(inbox[old_owner], cursor[old_owner], row);
        assert(id == m.u);
        (void)id;
        store.apply_move(m.u, m.from, m.to, &row);
      }
      footprint_.merge_peak(store.footprint());
    }

    // Stop rule on the *global* iteration gains (modular arithmetic makes
    // the unsigned all-reduce exact for signed sums).
    const EdgeWeight cut_gain = static_cast<EdgeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_cut_gain)));
    const NodeWeight imbalance_gain = static_cast<NodeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_imbalance_gain)));
    if (cut_gain > 0 || imbalance_gain > 0) {
      no_change_streak = 0;
    } else if (++no_change_streak >= options.stop_no_change) {
      break;
    }
  }
}

void SpmdRefiner::rebalance(Partition& partition) {
  assert(finest_store_.has_value() &&
         "refine(level 0) must run before rebalance");
  // The insurance loop (§5.2 exception rule): should the finest level
  // still be overloaded, run additional MaxLoad-driven iterations with
  // escalating band depth through the same distributed color-class
  // machinery — on the retained finest-level store, never on a replica.
  // Mirrors rebalance_until_feasible() in loop shape and RNG forks.
  for (int attempt = 0; attempt < kMaxRebalanceAttempts &&
                        !is_balanced(finest_, partition, config_.eps);
       ++attempt) {
    PairwiseRefinerOptions options =
        rebalance_options(config_, finest_, global_bound_, attempt);
    options.num_threads = 1;
    run_pairwise(*finest_store_, partition, options, rng_.fork(100 + attempt));
  }
}

MigrationIntake SpmdRefiner::migration_intake(
    const Partition& final_partition) const {
  assert(warm_ != nullptr && "migration accounting needs the warm input");
  assert(finest_store_.has_value());
  const BlockRowShard& store = *finest_store_;

  // The store was maintained incrementally by the moved-node deltas and
  // row migrations of refine/rebalance, so at this point it holds exactly
  // the rows of the nodes in this rank's final blocks — the population of
  // the §5.2 migration view. Seal the view from it: kept nodes (same
  // block as the warm input) form the static core, everything else is a
  // migrated-in node in the overlay's hash-addressed secondary edge
  // array.
  std::vector<NodeID> residents;
  store.for_each_resident_row(
      [&](NodeID u, NodeWeight, std::span<const NodeID>,
          std::span<const EdgeWeight>) { residents.push_back(u); });
  std::sort(residents.begin(), residents.end());

  std::vector<NodeID> kept;
  std::vector<NodeID> incoming;
  for (const NodeID u : residents) {
    assert(final_partition.block(u) != kInvalidBlock);
    if (final_partition.block(u) == warm_->block(u)) {
      kept.push_back(u);
    } else {
      incoming.push_back(u);
    }
  }

  // Static core: the subgraph induced by the kept nodes, assembled from
  // resident rows.
  std::unordered_map<NodeID, NodeID> kept_index;
  kept_index.reserve(kept.size());
  for (NodeID i = 0; i < kept.size(); ++i) kept_index.emplace(kept[i], i);
  std::vector<EdgeID> xadj;
  xadj.reserve(kept.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(kept.size());
  for (const NodeID u : kept) {
    const GraphRowView row = store.row_view(u);
    vwgt.push_back(row.weight);
    for (std::size_t i = 0; i < row.targets.size(); ++i) {
      const auto it = kept_index.find(row.targets[i]);
      if (it == kept_index.end()) continue;
      adj.push_back(it->second);
      ewgt.push_back(row.weights[i]);
    }
    xadj.push_back(adj.size());
  }
  const StaticGraph core(std::move(xadj), std::move(adj), std::move(ewgt),
                         std::move(vwgt));

  DynamicOverlay view(core, kept);
  for (const NodeID u : incoming) {
    view.add_migrated_node(u, store.row_view(u).weight);
  }
  for (const NodeID u : incoming) {
    const GraphRowView row = store.row_view(u);
    for (std::size_t i = 0; i < row.targets.size(); ++i) {
      if (view.contains(row.targets[i])) {
        view.add_migrated_edge(u, row.targets[i], row.weights[i]);
      }
    }
  }
  return {static_cast<NodeID>(view.num_migrated()), view.num_overlay_edges()};
}

// ------------------------------------------------------------ SPMD driver ----

PartitionResult run_multilevel_spmd(const StaticGraph& graph,
                                    const Config& config,
                                    SpmdCoarsener& coarsener,
                                    InitialPartitioner& initial,
                                    SpmdRefiner& refiner) {
  Timer total_timer;
  PartitionResult result;

  // --- Phase 1: contraction into the distributed hierarchy store (§3). ---
  Timer phase_timer;
  DistHierarchy hierarchy = coarsener.coarsen(graph);
  result.coarsening_time = phase_timer.elapsed_s();
  result.hierarchy_levels = hierarchy.num_levels();
  result.coarsest_nodes = hierarchy.level_nodes(hierarchy.num_levels() - 1);
  result.hierarchy_level_nodes.reserve(hierarchy.num_levels());
  for (std::size_t l = 0; l < hierarchy.num_levels(); ++l) {
    result.hierarchy_level_nodes.push_back(hierarchy.level_nodes(l));
  }

  // --- Phase 2: initial partitioning on the once-gathered coarsest (§4). ---
  phase_timer.restart();
  initial.observe_hierarchy(hierarchy);
  Partition partition = initial.partition(hierarchy.coarsest());
  result.initial_time = phase_timer.elapsed_s();

  // --- Phase 3: uncoarsening with pairwise refinement (§5), projecting
  // through the sharded contraction maps. ---
  phase_timer.restart();
  for (std::size_t level = hierarchy.num_levels(); level-- > 0;) {
    if (level + 1 < hierarchy.num_levels()) {
      partition = hierarchy.project(level, partition);
    }
    refiner.refine(hierarchy, level, partition);
  }
  refiner.rebalance(partition);
  result.refinement_time = phase_timer.elapsed_s();

  result.cut = edge_cut(graph, partition);
  result.balance = balance(graph, partition);
  result.balanced = is_balanced(graph, partition, config.eps);
  result.partition = std::move(partition);
  result.total_time = total_timer.elapsed_s();
  return result;
}

}  // namespace kappa
