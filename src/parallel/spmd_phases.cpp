#include "parallel/spmd_phases.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "graph/metrics.hpp"
#include "graph/quotient_graph.hpp"
#include "matching/tentative_match.hpp"
#include "refinement/edge_coloring.hpp"

namespace kappa {

namespace {

/// Canonical identity of an undirected edge, agreed on by both endpoint
/// owners (candidate indices are PE-local and never cross the wire).
std::uint64_t edge_key(NodeID u, NodeID v) {
  const NodeID lo = std::min(u, v);
  const NodeID hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::uint64_t pack_pair(NodeID u, NodeID v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

// -------------------------------------------------------- SPMD coarsening ----

Hierarchy SpmdCoarsener::coarsen(const StaticGraph& graph) {
  // The shared level loop makes all stop rules, the pair-weight bound and
  // the warm-start filter common with the sequential coarsener; only the
  // matcher differs. All loop decisions depend on replicated state, so
  // every PE executes the same number of levels (and hence the same
  // collectives).
  CoarseningOptions options = coarsening_options(graph, config_);
  options.warm_start = warm_start_;
  return build_hierarchy_with(
      graph, options,
      [this](const StaticGraph& current, const MatchingOptions& match_options,
             std::size_t level) {
        return spmd_match(current, match_options, level);
      });
}

std::vector<NodeID> SpmdCoarsener::spmd_match(const StaticGraph& current,
                                              const MatchingOptions& options,
                                              std::size_t level) {
  const NodeID n = current.num_nodes();
  const int p = pe_.size();
  const int rank = pe_.rank();
  const Rng level_rng = rng_.fork(level);

  // Small levels are matched replicated with identical streams (the paper
  // replicates the coarsest graphs anyway). The threshold depends only on
  // the config — never on p — to keep the result p-invariant.
  const BlockID num_shards = config_.matching_pes;
  if (num_shards <= 1 || n <= 4 * num_shards) {
    Rng match_rng = level_rng.fork(0);
    return compute_matching(current, config_.matcher, options, match_rng);
  }

  const DistGraph dist(current, num_shards);
  const std::vector<BlockID> my_shards = dist.shards_of_rank(rank, p);

  // --- Phase 1: sequential matching per owned shard (§3.3). ---
  std::vector<NodeID> partner(n);
  std::iota(partner.begin(), partner.end(), NodeID{0});
  for (const BlockID s : my_shards) {
    const GraphShard& shard = dist.shard(s);
    if (shard.nodes.empty()) continue;
    const Subgraph sub = shard.induced(current);
    Rng shard_rng = level_rng.fork(1 + s);
    const std::vector<NodeID> local =
        compute_matching(sub.graph, config_.matcher, options, shard_rng);
    for (NodeID lu = 0; lu < local.size(); ++lu) {
      const NodeID lv = local[lu];
      if (lv <= lu) continue;  // handle each pair once, skip unmatched
      const NodeID u = sub.local_to_global[lu];
      const NodeID v = sub.local_to_global[lv];
      partner[u] = v;
      partner[v] = u;
    }
  }
  for (const BlockID s : my_shards) {
    for (const NodeID u : dist.shard(s).nodes) {
      if (partner[u] != u && u < partner[u]) ++stats_.local_pairs;
    }
  }

  // Rating of the tentative local match at each of my nodes (0 if
  // unmatched). Remote entries are filled by the exchange below.
  const TentativeMatchRater rater(current, options);
  std::vector<double> match_rating(n, 0.0);
  for (const BlockID s : my_shards) {
    for (const NodeID u : dist.shard(s).nodes) {
      match_rating[u] = rater.match_rating(u, partner[u]);
    }
  }

  // --- Phase 2: boundary-candidate exchange over channels. Every PE tells
  // every neighbor-owning PE the tentative match rating of its boundary
  // nodes; both owners of a cross-shard edge can then evaluate the gap
  // condition identically. ---
  {
    std::vector<std::vector<std::uint64_t>> to_peer(p);
    for (const BlockID s : my_shards) {
      NodeID last_u = kInvalidNode;
      std::vector<int> peers_of_u;  // ranks already served for last_u
      for (const CrossShardArc& arc : dist.shard(s).cross_arcs) {
        if (arc.u != last_u) {
          last_u = arc.u;
          peers_of_u.clear();
        }
        // Unmatched boundary nodes stay at the receiver's default of 0.0,
        // so only matched ones need to cross the wire.
        if (match_rating[arc.u] == 0.0) continue;
        const int q = dist.owner_of_node(arc.v, p);
        if (q == rank) continue;
        if (std::find(peers_of_u.begin(), peers_of_u.end(), q) !=
            peers_of_u.end()) {
          continue;
        }
        peers_of_u.push_back(q);
        to_peer[q].push_back(arc.u);
        to_peer[q].push_back(std::bit_cast<std::uint64_t>(match_rating[arc.u]));
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank) pe_.send(q, std::move(to_peer[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      const Message msg = pe_.receive(q);
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        match_rating[static_cast<NodeID>(msg.payload[i])] =
            std::bit_cast<double>(msg.payload[i + 1]);
      }
    }
  }

  // --- Phase 3: the gap graph (§3.3): cross-shard edges whose rating
  // beats the tentative local matches at both endpoints. A spanning edge
  // is materialized at both owners; an edge between two of my own shards
  // once. ---
  struct GapCandidate {
    NodeID u;  ///< my endpoint
    NodeID v;  ///< other endpoint (possibly also mine)
    double rating;
  };
  std::vector<GapCandidate> cands;
  for (const BlockID s : my_shards) {
    for (const CrossShardArc& arc : dist.shard(s).cross_arcs) {
      const NodeID u = arc.u;
      const NodeID v = arc.v;
      const bool v_mine = dist.owner_of_node(v, p) == rank;
      if (v_mine && u > v) continue;  // the mirror arc covers it
      double r = 0.0;
      if (rater.admits_gap_edge(u, v, arc.weight, match_rating[u],
                                match_rating[v], &r)) {
        cands.push_back({u, v, r});
      }
    }
  }

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::unordered_map<NodeID, std::vector<std::size_t>> incident;
  std::vector<std::vector<std::size_t>> spanning(p);  // by remote owner
  for (std::size_t i = 0; i < cands.size(); ++i) {
    incident[cands[i].u].push_back(i);
    const int q = dist.owner_of_node(cands[i].v, p);
    if (q == rank) {
      incident[cands[i].v].push_back(i);
    } else {
      spanning[q].push_back(i);
    }
  }

  // --- Phase 4: iterated locally-heaviest rounds. Each round, every node
  // nominates its best remaining gap edge; an edge nominated from both
  // sides is matched and dissolves tentative local matches. Nominations
  // for spanning edges cross the wire; newly matched nodes are
  // all-gathered; a zero all-reduce terminates every PE in the same
  // round. ---
  std::vector<std::uint8_t> alive(cands.size(), 1);
  std::vector<std::uint8_t> taken(n, 0);
  auto better = [&](std::size_t i, std::size_t b) {
    if (cands[i].rating != cands[b].rating) {
      return cands[i].rating > cands[b].rating;
    }
    return edge_key(cands[i].u, cands[i].v) < edge_key(cands[b].u, cands[b].v);
  };
  while (true) {
    ++stats_.gap_rounds;
    std::unordered_map<NodeID, std::size_t> best;
    for (const auto& [x, list] : incident) {
      if (taken[x]) continue;
      std::size_t b = kNone;
      for (const std::size_t i : list) {
        if (alive[i] && (b == kNone || better(i, b))) b = i;
      }
      if (b != kNone) best[x] = b;
    }
    auto best_at = [&](NodeID x, std::size_t i) {
      const auto it = best.find(x);
      return it != best.end() && it->second == i;
    };

    // Nomination exchange for spanning candidates.
    std::unordered_set<std::uint64_t> remote_best;
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      std::vector<std::uint64_t> words;
      for (const std::size_t i : spanning[q]) {
        if (alive[i] && best_at(cands[i].u, i)) {
          words.push_back(edge_key(cands[i].u, cands[i].v));
        }
      }
      pe_.send(q, std::move(words));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      const Message msg = pe_.receive(q);
      remote_best.insert(msg.payload.begin(), msg.payload.end());
    }

    // Decide on the nominations alone: two distinct both-nominated edges
    // can never share an endpoint (best is one edge per node), so
    // simultaneous resolution is safe — and unlike a mid-pass taken
    // check, it is independent of candidate list order, which keeps the
    // outcome identical for every p.
    auto dissolve = [&](NodeID x) {
      const NodeID prev = partner[x];  // tentative partner: same shard
      if (prev != x) partner[prev] = prev;
    };
    std::vector<std::uint64_t> newly_taken;
    std::uint64_t matched_here = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!alive[i]) continue;
      const NodeID u = cands[i].u;
      const NodeID v = cands[i].v;
      const bool v_mine = dist.owner_of_node(v, p) == rank;
      const bool u_nominates = best_at(u, i);
      const bool v_nominates =
          v_mine ? best_at(v, i) : remote_best.contains(edge_key(u, v));
      if (u_nominates && v_nominates) {
        dissolve(u);
        partner[u] = v;
        if (v_mine) {
          dissolve(v);
          partner[v] = u;
        }
        taken[u] = 1;
        taken[v] = 1;
        newly_taken.push_back(u);
        newly_taken.push_back(v);
        alive[i] = 0;
        if (v_mine || u < v) {  // count each pair once globally
          ++matched_here;
          ++stats_.gap_pairs;
        }
      }
    }

    for (const auto& vec : pe_.all_gather_vectors(std::move(newly_taken))) {
      for (const std::uint64_t w : vec) taken[static_cast<NodeID>(w)] = 1;
    }
    // Retire candidates that lost an endpoint this round — after the
    // taken-sync, so every PE (and every p) kills the same set.
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (alive[i] && (taken[cands[i].u] || taken[cands[i].v])) alive[i] = 0;
    }
    if (pe_.all_reduce_sum(matched_here) == 0) break;
  }

  // --- Phase 5: all-gather the contraction map. Each PE contributes the
  // matched pairs whose canonical (lower) endpoint it owns; every PE
  // assembles the identical full partner vector and contracts. ---
  std::vector<std::uint64_t> pair_words;
  for (const BlockID s : my_shards) {
    for (const NodeID u : dist.shard(s).nodes) {
      if (partner[u] != u && u < partner[u]) {
        pair_words.push_back(pack_pair(u, partner[u]));
      }
    }
  }
  std::vector<NodeID> full(n);
  std::iota(full.begin(), full.end(), NodeID{0});
  for (const auto& vec : pe_.all_gather_vectors(std::move(pair_words))) {
    for (const std::uint64_t w : vec) {
      const NodeID u = static_cast<NodeID>(w >> 32);
      const NodeID v = static_cast<NodeID>(w & 0xffffffffULL);
      full[u] = v;
      full[v] = u;
    }
  }
  return full;
}

// ------------------------------------------------ SPMD initial partition ----

Partition SpmdInitialPartitioner::partition(const StaticGraph& coarsest) {
  const BlockID k = config_.k;
  const int p = pe_.size();
  const int rank = pe_.rank();
  const NodeID n = coarsest.num_nodes();

  // Attempt pool: the paper repeats initial partitioning "init. repeats"
  // times on each of its p = k PEs. Attempts are keyed by index — not by
  // rank — so the pool and its winner are independent of the physical PE
  // count; the cap keeps huge k from turning this cheap phase into a
  // bottleneck.
  const int attempts =
      std::max(config_.init_repeats,
               std::min(config_.init_repeats * static_cast<int>(k), 32));

  InitialPartitionOptions options;
  options.eps = config_.eps;
  options.repeats = 1;

  // My share of the attempts, each with its private stream (§4: "each with
  // a different seed for the random number generator").
  constexpr std::uint64_t kWorst = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_infeasible = kWorst;
  std::uint64_t best_cut = kWorst;
  std::uint64_t best_attempt = kWorst;
  Partition best;
  for (int a = rank; a < attempts; a += p) {
    Rng attempt_rng = rng_.fork(static_cast<std::uint64_t>(a));
    Partition candidate = initial_partition(coarsest, k, options, attempt_rng);
    const std::uint64_t infeasible =
        is_balanced(coarsest, candidate, config_.eps) ? 0 : 1;
    const std::uint64_t cut =
        static_cast<std::uint64_t>(edge_cut(coarsest, candidate));
    const std::uint64_t attempt = static_cast<std::uint64_t>(a);
    if (std::tie(infeasible, cut, attempt) <
        std::tie(best_infeasible, best_cut, best_attempt)) {
      best_infeasible = infeasible;
      best_cut = cut;
      best_attempt = attempt;
      best = std::move(candidate);
    }
  }

  // All-reduce the winner: lexicographic (feasibility, cut, attempt) —
  // the attempt index makes the pick unique and p-invariant.
  const auto entries =
      pe_.all_gather_vectors({best_infeasible, best_cut, best_attempt});
  int winner = 0;
  for (int q = 1; q < p; ++q) {
    if (std::tie(entries[q][0], entries[q][1], entries[q][2]) <
        std::tie(entries[winner][0], entries[winner][1], entries[winner][2])) {
      winner = q;
    }
  }

  // The winning PE broadcasts its solution (§4: "The best solution is then
  // broadcast to all PEs").
  std::vector<std::uint64_t> words;
  if (rank == winner) {
    words.reserve(n);
    for (NodeID u = 0; u < n; ++u) words.push_back(best.block(u));
  }
  const std::vector<std::uint64_t> assignment_words =
      pe_.broadcast(words, winner);
  std::vector<BlockID> assignment(n);
  for (NodeID u = 0; u < n; ++u) {
    assignment[u] = static_cast<BlockID>(assignment_words[u]);
  }
  return Partition(coarsest, std::move(assignment), k);
}

// -------------------------------------------------------- SPMD refinement ----

SpmdRefiner::SpmdRefiner(const StaticGraph& finest, const Config& config,
                         PEContext& pe)
    : config_(config),
      pe_(pe),
      rng_(Rng(config.seed).fork(3)),
      global_bound_(max_block_weight_bound(finest, config.k, config.eps)) {}

void SpmdRefiner::refine(const StaticGraph& graph, Partition& partition,
                         std::size_t level) {
  PairwiseRefinerOptions options =
      level_refine_options(config_, global_bound_, graph);
  // Within a PE the pairs run sequentially; concurrency comes from the
  // PEs themselves.
  options.num_threads = 1;

  const int p = pe_.size();
  const int rank = pe_.rank();
  const Rng level_rng = rng_.fork(level);

  int no_change_streak = 0;
  for (int global = 0; global < options.max_global_iterations; ++global) {
    // Quotient graph and coloring are computed replicated from identical
    // partition state and identical streams, so every PE schedules the
    // same pairs into the same color classes.
    const QuotientGraph quotient(graph, partition);
    if (quotient.edges().empty()) break;  // every block is isolated

    Rng color_rng = level_rng.fork(coloring_fork_tag(global));
    const EdgeColoring coloring = color_quotient_edges(quotient, color_rng);

    EdgeWeight my_cut_gain = 0;
    NodeWeight my_imbalance_gain = 0;
    for (int color = 0; color < coloring.num_colors; ++color) {
      const std::vector<std::size_t> pairs = coloring.color_class(color);
      if (pairs.empty()) continue;

      // My share of this color class. The pairs of one class touch
      // disjoint blocks and pair searches read only pair-local state
      // (bands, gains and imbalance are functions of the two blocks), so
      // refining them on replicas and merging deltas is equivalent to
      // refining them all on one shared partition.
      std::vector<std::uint64_t> delta_words;
      for (std::size_t j = static_cast<std::size_t>(rank); j < pairs.size();
           j += static_cast<std::size_t>(p)) {
        const QuotientEdge& edge = quotient.edges()[pairs[j]];
        // Move tracking feeds the delta exchange; with a single PE there
        // is nobody to send deltas to (p is identical on every PE, so
        // this stays in lockstep).
        const PairRefineResult result = refine_pair(
            graph, partition, edge.a, edge.b, edge.boundary, options,
            level_rng, pair_seed_tag(global, pairs[j]),
            /*collect_moves=*/p > 1);
        my_cut_gain += result.cut_gain;
        my_imbalance_gain += result.imbalance_gain;
        for (const auto& [u, b] : result.moves) {
          delta_words.push_back(pack_pair(u, b));
        }
      }

      // Exchange moved-node deltas; apply everyone else's moves to the
      // local replica. Deltas of one class are node-disjoint, so the
      // application order does not matter.
      const auto gathered = pe_.all_gather_vectors(std::move(delta_words));
      for (int q = 0; q < p; ++q) {
        if (q == rank) continue;
        for (const std::uint64_t w : gathered[q]) {
          const NodeID u = static_cast<NodeID>(w >> 32);
          const BlockID b = static_cast<BlockID>(w & 0xffffffffULL);
          if (partition.block(u) != b) {
            partition.move(u, b, graph.node_weight(u));
          }
        }
      }
    }

    // Stop rule on the *global* iteration gains (modular arithmetic makes
    // the unsigned all-reduce exact for signed sums).
    const EdgeWeight cut_gain = static_cast<EdgeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_cut_gain)));
    const NodeWeight imbalance_gain = static_cast<NodeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_imbalance_gain)));
    if (cut_gain > 0 || imbalance_gain > 0) {
      no_change_streak = 0;
    } else if (++no_change_streak >= options.stop_no_change) {
      break;
    }
  }
}

void SpmdRefiner::rebalance(const StaticGraph& graph, Partition& partition) {
  // The insurance loop runs replicated: with identical streams and
  // single-threaded pair execution it is deterministic, so the replicas
  // stay in lockstep without communication.
  rebalance_until_feasible(graph, partition, config_, global_bound_, rng_,
                           /*num_threads=*/1);
}

}  // namespace kappa
