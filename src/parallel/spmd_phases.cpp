#include "parallel/spmd_phases.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <map>
#include <numeric>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "graph/metrics.hpp"
#include "matching/tentative_match.hpp"
#include "parallel/wire_format.hpp"
#include "refinement/edge_coloring.hpp"

namespace kappa {

namespace {

/// Appends one row in the shared wire layout [id, weight, narcs,
/// (target, weight)*], keeping only the arcs \p keep admits. The single
/// encoder behind both the pair-side shipping and the row migration of
/// the SPMD refiner.
template <typename Keep>
void append_row_words(std::vector<std::uint64_t>& words, NodeID id,
                      const GraphRowView& row, Keep&& keep) {
  words.push_back(id);
  words.push_back(weight_bits(row.weight));
  const std::size_t count_slot = words.size();
  words.push_back(0);
  std::uint64_t narcs = 0;
  for (std::size_t i = 0; i < row.targets.size(); ++i) {
    if (!keep(row.targets[i])) continue;
    words.push_back(row.targets[i]);
    words.push_back(weight_bits(row.weights[i]));
    ++narcs;
  }
  words[count_slot] = narcs;
}

/// Decodes one row at \p cursor (inverse of append_row_words), advancing
/// the cursor; returns the node id.
NodeID decode_row_words(const std::vector<std::uint64_t>& words,
                        std::size_t& cursor, GraphRow& row) {
  const NodeID id = static_cast<NodeID>(words[cursor]);
  row.weight = bits_weight(words[cursor + 1]);
  const std::uint64_t narcs = words[cursor + 2];
  cursor += 3;
  row.targets.clear();
  row.weights.clear();
  row.targets.reserve(narcs);
  row.weights.reserve(narcs);
  for (std::uint64_t j = 0; j < narcs; ++j) {
    row.targets.push_back(static_cast<NodeID>(words[cursor]));
    row.weights.push_back(bits_weight(words[cursor + 1]));
    cursor += 2;
  }
  return id;
}

}  // namespace

// -------------------------------------------------------- SPMD coarsening ----

Hierarchy SpmdCoarsener::coarsen(const StaticGraph& graph) {
  // The shared level loop makes all stop rules, the pair-weight bound and
  // the warm-start filter common with the sequential coarsener; only the
  // matcher differs. All loop decisions depend on replicated state, so
  // every PE executes the same number of levels (and hence the same
  // collectives).
  CoarseningOptions options = coarsening_options(graph, config_);
  options.warm_start = warm_start_;
  return build_hierarchy_with(
      graph, options,
      [this](const StaticGraph& current, const MatchingOptions& match_options,
             std::size_t level) {
        return spmd_match(current, match_options, level);
      });
}

std::vector<NodeID> SpmdCoarsener::spmd_match(const StaticGraph& current,
                                              const MatchingOptions& options,
                                              std::size_t level) {
  const NodeID n = current.num_nodes();
  const int p = pe_.size();
  const int rank = pe_.rank();
  const Rng level_rng = rng_.fork(level);

  // Small levels are matched replicated with identical streams (the paper
  // replicates the coarsest graphs anyway). The threshold depends only on
  // the config — never on p — to keep the result p-invariant.
  const BlockID num_shards = config_.matching_pes;
  if (num_shards <= 1 || n <= 4 * num_shards) {
    Rng match_rng = level_rng.fork(0);
    return compute_matching(current, config_.matcher, options, match_rng);
  }

  // The ownership map plus this rank's shard structure only; the level's
  // resident data is the owned-node CSR with its one-hop ghost layer,
  // whose weights and weighted degrees arrive over channels inside the
  // ShardGraph build (counted in CommStats). Every matching inner loop
  // below reads resident data only — never the shared replica.
  const DistGraph dist(current, num_shards, rank, p);
  const std::vector<BlockID> my_shards = dist.shards_of_rank(rank, p);
  const ShardGraph shard(current, dist, pe_);
  const StaticGraph& resident = shard.csr();
  const NodeID num_owned = shard.num_owned();
  const NodeID num_local = shard.num_local();
  stats_.footprint.merge_peak(shard.footprint());

  // --- Phase 1: sequential matching per owned shard (§3.3), on shard
  // subgraphs cut out of the resident CSR. Local ids are assigned in
  // ascending global order, so the induced shard graphs — and with them
  // the matcher streams — are identical for every p. ---
  std::vector<NodeID> partner(num_local);  // local ids; ghosts stay unmatched
  std::iota(partner.begin(), partner.end(), NodeID{0});
  for (const BlockID s : my_shards) {
    const GraphShard& shard_s = dist.shard(s);
    if (shard_s.nodes.empty()) continue;
    std::vector<NodeID> locals;
    locals.reserve(shard_s.nodes.size());
    for (const NodeID u : shard_s.nodes) locals.push_back(shard.local_of(u));
    const Subgraph sub = induced_subgraph(resident, locals);
    Rng shard_rng = level_rng.fork(1 + s);
    const std::vector<NodeID> matched =
        compute_matching(sub.graph, config_.matcher, options, shard_rng);
    for (NodeID lu = 0; lu < matched.size(); ++lu) {
      const NodeID lv = matched[lu];
      if (lv <= lu) continue;  // handle each pair once, skip unmatched
      const NodeID u = sub.local_to_global[lu];
      const NodeID v = sub.local_to_global[lv];
      partner[u] = v;
      partner[v] = u;
    }
  }
  for (NodeID u = 0; u < num_owned; ++u) {
    if (partner[u] != u && u < partner[u]) ++stats_.local_pairs;
  }

  // Rating of the tentative local match at each owned node (0 if
  // unmatched); ghost entries are filled by the exchange below. The
  // rater runs on the resident CSR with the exchanged ghost degrees.
  const TentativeMatchRater rater(resident, options,
                                  shard.weighted_degrees());
  std::vector<double> match_rating(num_local, 0.0);
  for (NodeID u = 0; u < num_owned; ++u) {
    match_rating[u] = rater.match_rating(u, partner[u]);
  }

  // --- Phase 2: boundary-candidate exchange over channels (global ids
  // on the wire). Every PE tells every neighbor-owning PE the tentative
  // match rating of its boundary nodes; both owners of a cross-shard
  // edge can then evaluate the gap condition identically. ---
  {
    std::vector<std::vector<std::uint64_t>> to_peer(p);
    for (const BlockID s : my_shards) {
      NodeID last_u = kInvalidNode;
      std::vector<int> peers_of_u;  // ranks already served for last_u
      for (const CrossShardArc& arc : dist.shard(s).cross_arcs) {
        if (arc.u != last_u) {
          last_u = arc.u;
          peers_of_u.clear();
        }
        // Unmatched boundary nodes stay at the receiver's default of 0.0,
        // so only matched ones need to cross the wire.
        if (match_rating[shard.local_of(arc.u)] == 0.0) continue;
        const int q = dist.owner_of_node(arc.v, p);
        if (q == rank) continue;
        if (std::find(peers_of_u.begin(), peers_of_u.end(), q) !=
            peers_of_u.end()) {
          continue;
        }
        peers_of_u.push_back(q);
        to_peer[q].push_back(arc.u);
        to_peer[q].push_back(std::bit_cast<std::uint64_t>(
            match_rating[shard.local_of(arc.u)]));
      }
    }
    for (int q = 0; q < p; ++q) {
      if (q != rank) pe_.send(q, std::move(to_peer[q]));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      const Message msg = pe_.receive(q);
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        match_rating[shard.local_of(static_cast<NodeID>(msg.payload[i]))] =
            std::bit_cast<double>(msg.payload[i + 1]);
      }
    }
  }

  // --- Phase 3: the gap graph (§3.3): cross-shard edges whose rating
  // beats the tentative local matches at both endpoints. A spanning edge
  // is materialized at both owners; an edge between two of my own shards
  // once. ---
  struct GapCandidate {
    NodeID u;         ///< my endpoint (local id)
    NodeID v;         ///< other endpoint (local id: owned or ghost)
    NodeID u_global;
    NodeID v_global;
    double rating;
  };
  std::vector<GapCandidate> cands;
  for (const BlockID s : my_shards) {
    for (const CrossShardArc& arc : dist.shard(s).cross_arcs) {
      const NodeID lu = shard.local_of(arc.u);
      const NodeID lv = shard.local_of(arc.v);
      const bool v_mine = shard.is_owned(lv);
      if (v_mine && arc.u > arc.v) continue;  // the mirror arc covers it
      double r = 0.0;
      if (rater.admits_gap_edge(lu, lv, arc.weight, match_rating[lu],
                                match_rating[lv], &r)) {
        cands.push_back({lu, lv, arc.u, arc.v, r});
      }
    }
  }

  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::unordered_map<NodeID, std::vector<std::size_t>> incident;  // local id
  std::vector<std::vector<std::size_t>> spanning(p);  // by remote owner
  for (std::size_t i = 0; i < cands.size(); ++i) {
    incident[cands[i].u].push_back(i);
    const int q = dist.owner_of_node(cands[i].v_global, p);
    if (q == rank) {
      incident[cands[i].v].push_back(i);
    } else {
      spanning[q].push_back(i);
    }
  }

  // --- Phase 4: iterated locally-heaviest rounds. Each round, every node
  // nominates its best remaining gap edge; an edge nominated from both
  // sides is matched and dissolves tentative local matches. Nominations
  // for spanning edges cross the wire; newly matched nodes are
  // all-gathered; a zero all-reduce terminates every PE in the same
  // round. ---
  std::vector<std::uint8_t> alive(cands.size(), 1);
  std::vector<std::uint8_t> taken(num_local, 0);
  auto better = [&](std::size_t i, std::size_t b) {
    if (cands[i].rating != cands[b].rating) {
      return cands[i].rating > cands[b].rating;
    }
    return edge_key(cands[i].u_global, cands[i].v_global) <
           edge_key(cands[b].u_global, cands[b].v_global);
  };
  while (true) {
    ++stats_.gap_rounds;
    std::unordered_map<NodeID, std::size_t> best;
    for (const auto& [x, list] : incident) {
      if (taken[x]) continue;
      std::size_t b = kNone;
      for (const std::size_t i : list) {
        if (alive[i] && (b == kNone || better(i, b))) b = i;
      }
      if (b != kNone) best[x] = b;
    }
    auto best_at = [&](NodeID x, std::size_t i) {
      const auto it = best.find(x);
      return it != best.end() && it->second == i;
    };

    // Nomination exchange for spanning candidates.
    std::unordered_set<std::uint64_t> remote_best;
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      std::vector<std::uint64_t> words;
      for (const std::size_t i : spanning[q]) {
        if (alive[i] && best_at(cands[i].u, i)) {
          words.push_back(edge_key(cands[i].u_global, cands[i].v_global));
        }
      }
      pe_.send(q, std::move(words));
    }
    for (int q = 0; q < p; ++q) {
      if (q == rank) continue;
      const Message msg = pe_.receive(q);
      remote_best.insert(msg.payload.begin(), msg.payload.end());
    }

    // Decide on the nominations alone: two distinct both-nominated edges
    // can never share an endpoint (best is one edge per node), so
    // simultaneous resolution is safe — and unlike a mid-pass taken
    // check, it is independent of candidate list order, which keeps the
    // outcome identical for every p.
    auto dissolve = [&](NodeID x) {
      const NodeID prev = partner[x];  // tentative partner: same shard
      if (prev != x) partner[prev] = prev;
    };
    std::vector<std::uint64_t> newly_taken;
    std::uint64_t matched_here = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!alive[i]) continue;
      const NodeID u = cands[i].u;
      const NodeID v = cands[i].v;
      const bool v_mine = shard.is_owned(v);
      const bool u_nominates = best_at(u, i);
      const bool v_nominates =
          v_mine ? best_at(v, i)
                 : remote_best.contains(
                       edge_key(cands[i].u_global, cands[i].v_global));
      if (u_nominates && v_nominates) {
        dissolve(u);
        partner[u] = v;
        if (v_mine) {
          dissolve(v);
          partner[v] = u;
        }
        taken[u] = 1;
        taken[v] = 1;
        newly_taken.push_back(cands[i].u_global);
        newly_taken.push_back(cands[i].v_global);
        alive[i] = 0;
        if (v_mine || cands[i].u_global < cands[i].v_global) {
          ++matched_here;  // count each pair once globally
          ++stats_.gap_pairs;
        }
      }
    }

    for (const auto& vec : pe_.all_gather_vectors(std::move(newly_taken))) {
      for (const std::uint64_t w : vec) {
        const NodeID l = shard.local_of(static_cast<NodeID>(w));
        if (l != kInvalidNode) taken[l] = 1;
      }
    }
    // Retire candidates that lost an endpoint this round — after the
    // taken-sync, so every PE (and every p) kills the same set.
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (alive[i] && (taken[cands[i].u] || taken[cands[i].v])) alive[i] = 0;
    }
    if (pe_.all_reduce_sum(matched_here) == 0) break;
  }

  // --- Phase 5: all-gather the contraction map. Each PE contributes the
  // matched pairs whose canonical (lower global id) endpoint it owns;
  // every PE assembles the identical full partner vector and contracts. ---
  std::vector<std::uint64_t> pair_words;
  for (NodeID u = 0; u < num_owned; ++u) {
    if (partner[u] == u) continue;
    const NodeID gu = shard.global_of(u);
    const NodeID gv = shard.global_of(partner[u]);
    if (gu < gv) pair_words.push_back(pack_pair(gu, gv));
  }
  std::vector<NodeID> full(n);
  std::iota(full.begin(), full.end(), NodeID{0});
  for (const auto& vec : pe_.all_gather_vectors(std::move(pair_words))) {
    for (const std::uint64_t w : vec) {
      const auto [u, v] = unpack_pair(w);
      full[u] = v;
      full[v] = u;
    }
  }
  return full;
}

// ------------------------------------------------ SPMD initial partition ----

Partition SpmdInitialPartitioner::partition(const StaticGraph& coarsest) {
  const BlockID k = config_.k;
  const int p = pe_.size();
  const int rank = pe_.rank();
  const NodeID n = coarsest.num_nodes();

  // Attempt pool: the paper repeats initial partitioning "init. repeats"
  // times on each of its p = k PEs. Attempts are keyed by index — not by
  // rank — so the pool and its winner are independent of the physical PE
  // count; the cap keeps huge k from turning this cheap phase into a
  // bottleneck.
  const int attempts =
      std::max(config_.init_repeats,
               std::min(config_.init_repeats * static_cast<int>(k), 32));

  InitialPartitionOptions options;
  options.eps = config_.eps;
  options.repeats = 1;

  // My share of the attempts, each with its private stream (§4: "each with
  // a different seed for the random number generator").
  constexpr std::uint64_t kWorst = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_infeasible = kWorst;
  std::uint64_t best_cut = kWorst;
  std::uint64_t best_attempt = kWorst;
  Partition best;
  for (int a = rank; a < attempts; a += p) {
    Rng attempt_rng = rng_.fork(static_cast<std::uint64_t>(a));
    Partition candidate = initial_partition(coarsest, k, options, attempt_rng);
    const std::uint64_t infeasible =
        is_balanced(coarsest, candidate, config_.eps) ? 0 : 1;
    const std::uint64_t cut =
        static_cast<std::uint64_t>(edge_cut(coarsest, candidate));
    const std::uint64_t attempt = static_cast<std::uint64_t>(a);
    if (std::tie(infeasible, cut, attempt) <
        std::tie(best_infeasible, best_cut, best_attempt)) {
      best_infeasible = infeasible;
      best_cut = cut;
      best_attempt = attempt;
      best = std::move(candidate);
    }
  }

  // All-reduce the winner: lexicographic (feasibility, cut, attempt) —
  // the attempt index makes the pick unique and p-invariant.
  const auto entries =
      pe_.all_gather_vectors({best_infeasible, best_cut, best_attempt});
  int winner = 0;
  for (int q = 1; q < p; ++q) {
    if (std::tie(entries[q][0], entries[q][1], entries[q][2]) <
        std::tie(entries[winner][0], entries[winner][1], entries[winner][2])) {
      winner = q;
    }
  }

  // The winning PE broadcasts its solution (§4: "The best solution is then
  // broadcast to all PEs").
  std::vector<std::uint64_t> words;
  if (rank == winner) {
    words.reserve(n);
    for (NodeID u = 0; u < n; ++u) words.push_back(best.block(u));
  }
  const std::vector<std::uint64_t> assignment_words =
      pe_.broadcast(words, winner);
  std::vector<BlockID> assignment(n);
  for (NodeID u = 0; u < n; ++u) {
    assignment[u] = static_cast<BlockID>(assignment_words[u]);
  }
  return Partition(coarsest, std::move(assignment), k);
}

// -------------------------------------------------------- SPMD refinement ----

QuotientGraph gather_quotient(const BlockRowShard& store,
                              const Partition& partition, BlockID k,
                              PEContext& pe) {
  // Local contributions per block pair: the minimal (node, arc position)
  // at which one of my resident rows sees the pair (the replica scan's
  // first-encounter key), my share of the cut weight (counted from the
  // bu < bv side, whose row is resident at exactly one rank), and my
  // boundary nodes. The same shape accumulates the merged result below.
  struct PairContribution {
    NodeID first_u = kInvalidNode;
    std::uint64_t first_pos = 0;
    EdgeWeight cut = 0;
    std::vector<NodeID> boundary;
  };
  std::map<std::pair<BlockID, BlockID>, PairContribution> local;
  store.for_each_resident_row([&](NodeID u, NodeWeight /*weight*/,
                                  std::span<const NodeID> targets,
                                  std::span<const EdgeWeight> weights) {
    const BlockID bu = partition.block(u);
    for (std::size_t pos = 0; pos < targets.size(); ++pos) {
      const BlockID bv = partition.block(targets[pos]);
      if (bv == bu) continue;
      const auto key = std::minmax(bu, bv);
      PairContribution& c = local[{key.first, key.second}];
      if (std::tie(u, pos) < std::tie(c.first_u, c.first_pos)) {
        c.first_u = u;
        c.first_pos = pos;
      }
      if (bu < bv) c.cut += weights[pos];
      if (c.boundary.empty() || c.boundary.back() != u) {
        c.boundary.push_back(u);  // each row is visited exactly once
      }
    }
  });

  std::vector<std::uint64_t> words;
  for (const auto& [key, c] : local) {
    words.push_back(pack_pair(key.first, key.second));
    words.push_back(c.first_u);
    words.push_back(c.first_pos);
    words.push_back(weight_bits(c.cut));
    words.push_back(c.boundary.size());
    words.insert(words.end(), c.boundary.begin(), c.boundary.end());
  }

  // Merge the all-gathered contributions — identical code over identical
  // data on every PE.
  std::unordered_map<std::uint64_t, PairContribution> merged;
  for (const auto& vec : pe.all_gather_vectors(std::move(words))) {
    std::size_t i = 0;
    while (i + 4 < vec.size()) {
      const std::uint64_t key = vec[i];
      const NodeID first_u = static_cast<NodeID>(vec[i + 1]);
      const std::uint64_t first_pos = vec[i + 2];
      const EdgeWeight cut = bits_weight(vec[i + 3]);
      const std::size_t count = vec[i + 4];
      PairContribution& m = merged[key];
      if (std::tie(first_u, first_pos) < std::tie(m.first_u, m.first_pos)) {
        m.first_u = first_u;
        m.first_pos = first_pos;
      }
      m.cut += cut;
      for (std::size_t j = 0; j < count; ++j) {
        m.boundary.push_back(static_cast<NodeID>(vec[i + 5 + j]));
      }
      i += 5 + count;
    }
  }

  // Order the pairs exactly as the sequential replica scan first
  // encounters them, then finalize the boundary lists (sorted, unique —
  // as the sequential construction leaves them).
  std::vector<std::uint64_t> keys;
  keys.reserve(merged.size());
  for (const auto& [key, m] : merged) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [&](std::uint64_t x, std::uint64_t y) {
    const PairContribution& mx = merged.at(x);
    const PairContribution& my = merged.at(y);
    return std::tie(mx.first_u, mx.first_pos) <
           std::tie(my.first_u, my.first_pos);
  });
  std::vector<QuotientEdge> edges;
  edges.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    PairContribution& m = merged.at(key);
    std::sort(m.boundary.begin(), m.boundary.end());
    m.boundary.erase(std::unique(m.boundary.begin(), m.boundary.end()),
                     m.boundary.end());
    const auto [a, b] = unpack_pair(key);
    edges.push_back({static_cast<BlockID>(a), static_cast<BlockID>(b), m.cut,
                     std::move(m.boundary)});
  }
  return QuotientGraph(k, std::move(edges));
}

namespace {

/// Whether an arc target stays inside the pair {a, b}.
auto in_pair(const Partition& partition, BlockID a, BlockID b) {
  return [&partition, a, b](NodeID v) {
    const BlockID bv = partition.block(v);
    return bv == a || bv == b;
  };
}

/// Encodes one rank's rows of block \p b for the pair {a, b}, in
/// ascending global id order, arcs filtered to in-pair endpoints (the
/// only arcs a pair search can read).
std::vector<std::uint64_t> encode_block_rows(const BlockRowShard& store,
                                             const Partition& partition,
                                             BlockID a, BlockID b) {
  std::vector<std::uint64_t> words;
  for (const NodeID u : store.members(b)) {
    append_row_words(words, u, store.row_view(u), in_pair(partition, a, b));
  }
  return words;
}

/// One side of a pair view: node ids (ascending) with their in-pair rows.
struct SideRows {
  std::vector<NodeID> ids;
  std::vector<GraphRow> rows;
};

/// Materializes a side from the local store (filtering to in-pair arcs).
SideRows local_side_rows(const BlockRowShard& store,
                         const Partition& partition, BlockID a, BlockID b,
                         BlockID side) {
  const auto keep = in_pair(partition, a, b);
  SideRows result;
  for (const NodeID u : store.members(side)) {
    const GraphRowView view = store.row_view(u);
    GraphRow filtered;
    filtered.weight = view.weight;
    for (std::size_t i = 0; i < view.targets.size(); ++i) {
      if (!keep(view.targets[i])) continue;
      filtered.targets.push_back(view.targets[i]);
      filtered.weights.push_back(view.weights[i]);
    }
    result.ids.push_back(u);
    result.rows.push_back(std::move(filtered));
  }
  return result;
}

/// Decodes a side shipped by the partner owner (inverse of
/// encode_block_rows, which applied the same filter at the sender).
SideRows decode_side_rows(const std::vector<std::uint64_t>& words) {
  SideRows result;
  std::size_t i = 0;
  while (i + 2 < words.size()) {
    GraphRow row;
    const NodeID u = decode_row_words(words, i, row);
    result.ids.push_back(u);
    result.rows.push_back(std::move(row));
  }
  return result;
}

/// A pair-local view: the subgraph induced by the nodes of blocks a and b
/// (view ids assigned in ascending global order — a pure function of the
/// pair and the partition state, independent of p and of which rank
/// executes), plus a k-block partition whose a/b weights equal the global
/// block weights (every node of either block is in the view). Arcs to
/// third blocks are dropped: they contribute zero to every two-way FM
/// gain, so the search on the view is step-for-step the search the
/// replica implementation would run.
struct PairView {
  StaticGraph graph;
  Partition partition;
  std::vector<NodeID> to_global;
  std::vector<NodeID> seeds;  ///< boundary seeds, mapped into view ids
};

PairView build_pair_view(const SideRows& side_a, const SideRows& side_b,
                         const Partition& partition, const QuotientEdge& edge,
                         BlockID k) {
  PairView view;
  view.to_global.reserve(side_a.ids.size() + side_b.ids.size());
  std::merge(side_a.ids.begin(), side_a.ids.end(), side_b.ids.begin(),
             side_b.ids.end(), std::back_inserter(view.to_global));

  std::unordered_map<NodeID, NodeID> to_view;
  to_view.reserve(view.to_global.size());
  for (NodeID i = 0; i < view.to_global.size(); ++i) {
    to_view.emplace(view.to_global[i], i);
  }
  auto row_of = [&](NodeID global) -> const GraphRow& {
    const auto a_it =
        std::lower_bound(side_a.ids.begin(), side_a.ids.end(), global);
    if (a_it != side_a.ids.end() && *a_it == global) {
      return side_a.rows[static_cast<std::size_t>(a_it - side_a.ids.begin())];
    }
    const auto b_it =
        std::lower_bound(side_b.ids.begin(), side_b.ids.end(), global);
    assert(b_it != side_b.ids.end() && *b_it == global);
    return side_b.rows[static_cast<std::size_t>(b_it - side_b.ids.begin())];
  };

  std::vector<EdgeID> xadj;
  xadj.reserve(view.to_global.size() + 1);
  xadj.push_back(0);
  std::vector<NodeID> adj;
  std::vector<EdgeWeight> ewgt;
  std::vector<NodeWeight> vwgt;
  vwgt.reserve(view.to_global.size());
  std::vector<BlockID> assignment;
  assignment.reserve(view.to_global.size());
  for (const NodeID global : view.to_global) {
    const GraphRow& row = row_of(global);
    vwgt.push_back(row.weight);
    assignment.push_back(partition.block(global));
    for (std::size_t i = 0; i < row.targets.size(); ++i) {
      adj.push_back(to_view.at(row.targets[i]));
      ewgt.push_back(row.weights[i]);
    }
    xadj.push_back(adj.size());
  }
  view.graph = StaticGraph(std::move(xadj), std::move(adj), std::move(ewgt),
                           std::move(vwgt));
  view.partition = Partition(view.graph, std::move(assignment), k);

  // Boundary seeds from the quotient construction; seeds that left the
  // pair in an earlier color class of this iteration are simply absent
  // from the view (the replica path skips them inside the band BFS).
  for (const NodeID u : edge.boundary) {
    const auto it = to_view.find(u);
    if (it != to_view.end()) view.seeds.push_back(it->second);
  }
  return view;
}

}  // namespace

SpmdRefiner::SpmdRefiner(const StaticGraph& finest, const Config& config,
                         PEContext& pe)
    : config_(config),
      pe_(pe),
      rng_(Rng(config.seed).fork(3)),
      global_bound_(max_block_weight_bound(finest, config.k, config.eps)) {}

void SpmdRefiner::refine(const StaticGraph& graph, Partition& partition,
                         std::size_t level) {
  PairwiseRefinerOptions options =
      level_refine_options(config_, global_bound_, graph);
  // Within a PE the pairs run sequentially; concurrency comes from the
  // PEs themselves.
  options.num_threads = 1;

  const int p = pe_.size();
  const int rank = pe_.rank();
  const BlockID k = partition.k();
  const Rng level_rng = rng_.fork(level);

  // §5.2: "immediately after uncontracting a matching, every PE stores
  // the partition it is responsible for in a static adjacency array
  // representation" — this rank extracts the rows of its blocks' nodes
  // once per level (the data distribution step); every refinement inner
  // loop below reads resident rows, shipped rows, or the replicated
  // partition state, never the shared graph replica.
  BlockRowShard store(graph, partition.assignment(), k, rank, p);
  footprint_.merge_peak(store.footprint());

  int no_change_streak = 0;
  for (int global = 0; global < options.max_global_iterations; ++global) {
    // Quotient graph from all-gathered per-rank contributions; coloring
    // runs replicated on the merged result with identical streams, so
    // every PE schedules the same pairs into the same color classes.
    const QuotientGraph quotient = gather_quotient(store, partition, k, pe_);
    if (quotient.edges().empty()) break;  // every block is isolated

    Rng color_rng = level_rng.fork(coloring_fork_tag(global));
    const EdgeColoring coloring = color_quotient_edges(quotient, color_rng);

    EdgeWeight my_cut_gain = 0;
    NodeWeight my_imbalance_gain = 0;
    for (int color = 0; color < coloring.num_colors; ++color) {
      const std::vector<std::size_t> pairs = coloring.color_class(color);
      if (pairs.empty()) continue;

      // A pair {a, b} is executed by the owner of block a; the owner of
      // block b ships its side of the pair (§5.2: "send copies of this
      // boundary array to the partner PE"). All sends of the class are
      // posted before any receive; per-source FIFO delivery pairs them
      // with the executor's receives, which follow the same class order.
      for (const std::size_t j : pairs) {
        const QuotientEdge& edge = quotient.edges()[j];
        const int executor = BlockRowShard::owner_of_block(edge.a, p);
        const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
        if (partner_owner == rank && executor != rank) {
          pe_.send(executor,
                   encode_block_rows(store, partition, edge.a, edge.b));
        }
      }

      std::vector<std::uint64_t> delta_words;
      for (const std::size_t j : pairs) {
        const QuotientEdge& edge = quotient.edges()[j];
        if (BlockRowShard::owner_of_block(edge.a, p) != rank) continue;
        const int partner_owner = BlockRowShard::owner_of_block(edge.b, p);
        const SideRows side_a =
            local_side_rows(store, partition, edge.a, edge.b, edge.a);
        const SideRows side_b =
            partner_owner == rank
                ? local_side_rows(store, partition, edge.a, edge.b, edge.b)
                : decode_side_rows(pe_.receive(partner_owner).payload);
        PairView view = build_pair_view(side_a, side_b, partition, edge, k);
        if (partner_owner != rank) {
          // The shipped partner side is this pair's transient intake.
          ShardFootprint with_intake = store.footprint();
          with_intake.ghost_nodes += side_b.ids.size();
          for (const GraphRow& row : side_b.rows) {
            with_intake.arcs += row.targets.size();
          }
          footprint_.merge_peak(with_intake);
        }

        const PairRefineResult result = refine_pair(
            view.graph, view.partition, edge.a, edge.b, view.seeds, options,
            level_rng, pair_seed_tag(global, j), /*collect_moves=*/true);
        my_cut_gain += result.cut_gain;
        my_imbalance_gain += result.imbalance_gain;
        for (const auto& [vu, to] : result.moves) {
          delta_words.push_back(pack_pair(view.to_global[vu], to));
          delta_words.push_back(weight_bits(view.graph.node_weight(vu)));
        }
      }

      // Moved-node delta exchange: every PE applies the gathered moves to
      // its replicated partition state (executors included — their moves
      // so far live only in the pair view), then the rows of nodes whose
      // block owner changed migrate to their new home rank.
      const auto gathered = pe_.all_gather_vectors(std::move(delta_words));
      struct Migration {
        NodeID u;
        BlockID from;
        BlockID to;
      };
      std::vector<Migration> migrations;
      for (const auto& vec : gathered) {
        for (std::size_t i = 0; i + 1 < vec.size(); i += 2) {
          const auto [u, to_raw] = unpack_pair(vec[i]);
          const BlockID to = static_cast<BlockID>(to_raw);
          const NodeWeight w = bits_weight(vec[i + 1]);
          const BlockID from = partition.block(u);
          if (from == to) continue;
          partition.move(u, to, w);
          migrations.push_back({u, from, to});
        }
      }

      // Row migration with a schedule every rank derives from the same
      // gathered deltas: the old owner ships the full row, the new owner
      // takes it into the §5.2 hash-table side store.
      std::vector<std::vector<std::uint64_t>> outbox(p);
      std::vector<int> expect_from(p, 0);
      for (const Migration& m : migrations) {
        const int old_owner = BlockRowShard::owner_of_block(m.from, p);
        const int new_owner = BlockRowShard::owner_of_block(m.to, p);
        if (old_owner == new_owner) {
          if (old_owner == rank) store.apply_move(m.u, m.from, m.to, nullptr);
          continue;
        }
        if (old_owner == rank) {
          const GraphRow row = store.apply_move(m.u, m.from, m.to, nullptr);
          append_row_words(outbox[new_owner], m.u,
                           {row.weight, row.targets, row.weights},
                           [](NodeID) { return true; });
        } else if (new_owner == rank) {
          ++expect_from[old_owner];
        }
      }
      for (int q = 0; q < p; ++q) {
        if (q != rank && !outbox[q].empty()) pe_.send(q, std::move(outbox[q]));
      }
      std::vector<std::vector<std::uint64_t>> inbox(p);
      std::vector<std::size_t> cursor(p, 0);
      for (int q = 0; q < p; ++q) {
        if (expect_from[q] > 0) inbox[q] = pe_.receive(q).payload;
      }
      for (const Migration& m : migrations) {
        const int old_owner = BlockRowShard::owner_of_block(m.from, p);
        const int new_owner = BlockRowShard::owner_of_block(m.to, p);
        if (new_owner != rank || old_owner == rank || old_owner == new_owner) {
          continue;
        }
        GraphRow row;
        const NodeID id =
            decode_row_words(inbox[old_owner], cursor[old_owner], row);
        assert(id == m.u);
        (void)id;
        store.apply_move(m.u, m.from, m.to, &row);
      }
      footprint_.merge_peak(store.footprint());
    }

    // Stop rule on the *global* iteration gains (modular arithmetic makes
    // the unsigned all-reduce exact for signed sums).
    const EdgeWeight cut_gain = static_cast<EdgeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_cut_gain)));
    const NodeWeight imbalance_gain = static_cast<NodeWeight>(
        pe_.all_reduce_sum(static_cast<std::uint64_t>(my_imbalance_gain)));
    if (cut_gain > 0 || imbalance_gain > 0) {
      no_change_streak = 0;
    } else if (++no_change_streak >= options.stop_no_change) {
      break;
    }
  }
}

void SpmdRefiner::rebalance(const StaticGraph& graph, Partition& partition) {
  // The insurance loop runs replicated on the level replica: with
  // identical streams and single-threaded pair execution it is
  // deterministic, so the replicas stay in lockstep without
  // communication. (It fires only when the finest level is still
  // infeasible — distributing it is not worth a protocol; the main
  // refinement loop above never touches the replica.)
  rebalance_until_feasible(graph, partition, config_, global_bound_, rng_,
                           /*num_threads=*/1);
}

}  // namespace kappa
