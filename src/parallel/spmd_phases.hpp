/// \file spmd_phases.hpp
/// \brief SPMD implementations of the three pipeline phases (§3-§5).
///
/// Every PE of the runtime constructs its own phase instances inside the
/// SPMD program and runs the shared run_multilevel_spmd() driver. The
/// graph *data* is sharded end to end: every coarsening level exists only
/// as per-PE shards of the distributed hierarchy store
/// (parallel/dist_hierarchy.hpp), and the partition *state* is sharded
/// too (parallel/dist_partition.hpp) — each rank holds block ids only for
/// its shard-owned nodes plus a ghost-block cache maintained by the
/// moved-node deltas. The phases synchronize internally:
///
///   SpmdCoarsener          — builds the DistHierarchy: shard-local
///     matching with gap resolution over peer channels, owner-computes
///     contraction with halo exchange of boundary match decisions and
///     coarse-edge contributions (§3.3). No contraction map and no level
///     graph is ever gathered.
///   SpmdInitialPartitioner — best-of-p on the once-gathered coarsest
///     graph: the attempts (each with a private RNG stream) are
///     distributed over the PEs, an all-reduce picks the winner and the
///     owning PE broadcasts the partition (§4).
///   SpmdRefiner            — per level, the rows travel from their shard
///     owners to the owners of their nodes' blocks (§5.2 BlockRowShard
///     data distribution, each row with its block word); the quotient
///     graph is merged from per-rank contributions and a pair {a, b} is
///     executed by block a's owner on a pair-local view. Partner-block
///     shipping is band-limited (§5.2): each owner runs the bounded
///     boundary-band BFS on its resident rows and ships only the band
///     plus a one-hop fringe of frozen context nodes — the pair search is
///     confined to the band, with exact gains, and migration volume drops
///     from |block| to |band| per pair. Two schedulers drive the pairs:
///
///       * the color-class oracle (default): rounds follow an edge
///         coloring of the quotient — computed by the §5.1 protocol
///         running *inside* the refiner (virtual block-PEs nested on the
///         p ranks, config.dist_coloring) or by the replicated greedy
///         twin, both drawing the identical coloring from the same seed.
///         Moved-node deltas (with entry block and weight) plus migrating
///         rows are exchanged after every color class; every rank applies
///         every delta, which keeps the sharded partition state and the
///         replicated O(k) block weights globally consistent.
///       * the async scheduler (config.async_refinement): no rounds — an
///         arbiter rank hands out owner-arbitrated block locks, a pair
///         runs the moment both blocks are free, and the deltas travel
///         point-to-point only to the executor/partner pair plus the
///         ranks that own or ghost-cache affected rows (targeted
///         invalidations). One O(k) weight all-reduce and a ghost-cache
///         refresh per iteration restore global consistency at the seam.
///         It engages only on levels above a size threshold — the coarse
///         tail, where supernode moves are high-stakes and the barrier
///         bill negligible, keeps the oracle — and finishes with one
///         color-class polish iteration on consistent state that
///         recovers gain-misjudged moves.
///
///     The rebalancing insurance loop runs through the same machinery on
///     the retained finest-level store, which also seals the §5.2
///     migration view on warm starts.
///
/// Determinism: all work units are keyed to *virtual* ids — shards, attempt
/// indices, quotient-edge indices — and their RNG streams are forked from
/// config.seed with those ids; every pair view is a pure function of the
/// globally consistent store + partition state. The physical PE count p
/// only decides which PE executes which unit, so a fixed seed yields the
/// identical partition for every p (verified by spmd_pipeline_test and
/// dist_partition_test, p = 1..9 incl. ragged p and p > k). The async
/// scheduler deliberately trades this bit-identity for wall-clock: its
/// outcome depends on message arrival order (verified no worse on cut by
/// async_refinement_test), while the oracle keeps the reproducibility
/// contract for every preset.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/phases.hpp"
#include "graph/quotient_graph.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/dist_hierarchy.hpp"
#include "parallel/dist_partition.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/shard_graph.hpp"

namespace kappa {

/// Distributed quotient-graph construction (§5.1 on sharded data): every
/// rank contributes the cut arcs its resident block rows see — target
/// blocks answered by the sharded partition state's ghost-block cache —
/// and the all-gathered contributions are merged identically on every PE:
/// same edge order (first-encounter order of a row scan), same cut
/// weights, same sorted boundary lists. Exposed for the shard-graph test
/// suite.
[[nodiscard]] QuotientGraph gather_quotient(const BlockRowShard& store,
                                            const DistPartition& partition,
                                            BlockID k, PEContext& pe);

class SpmdCoarsener {
 public:
  /// A non-null \p warm_start restricts contraction to intra-block pairs
  /// of that assignment (the repartitioning coarsening policy) by giving
  /// the matchers the block constraint.
  SpmdCoarsener(const Config& config, PEContext& pe,
                const Partition* warm_start = nullptr)
      : config_(config),
        pe_(pe),
        rng_(Rng(config.seed).fork(1)),
        warm_start_(warm_start) {}

  /// Builds the distributed hierarchy store of \p graph.
  [[nodiscard]] DistHierarchy coarsen(const StaticGraph& graph);

  [[nodiscard]] const SpmdCoarseningStats& stats() const { return stats_; }

 private:
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
  const Partition* warm_start_;
  SpmdCoarseningStats stats_;
};

class SpmdInitialPartitioner final : public InitialPartitioner {
 public:
  SpmdInitialPartitioner(const Config& config, PEContext& pe)
      : config_(config), pe_(pe), rng_(Rng(config.seed).fork(2)) {}

  [[nodiscard]] Partition partition(const StaticGraph& coarsest) override;

 private:
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
};

class SpmdRefiner {
 public:
  /// \p warm is the repartitioning input assignment (nullptr on
  /// from-scratch runs); it anchors the migration view.
  SpmdRefiner(const StaticGraph& finest, const Config& config, PEContext& pe,
              const Partition* warm = nullptr);

  /// Refines the sharded \p partition on hierarchy level \p level in
  /// place. The level's rows are distributed into this rank's block-row
  /// store and the partition state's ghost-block cache is refreshed for
  /// the resident rows' targets; the finest level's store is retained for
  /// rebalance() and the migration view.
  void refine(const DistHierarchy& hierarchy, std::size_t level,
              DistPartition& partition);

  /// Post-pass on the finest level: the §5.2 exception rule applied until
  /// the Lmax bound holds (or attempts run out), running through the same
  /// distributed color-class machinery as refine() on the retained
  /// finest-level store.
  void rebalance(DistPartition& partition);

  /// Warm starts only: this rank's §5.2 migration view, sealed from the
  /// incrementally maintained finest-level store. Block membership is
  /// read exclusively from the store (a member of block b is in block b —
  /// no partition replica is consulted); the warm input assignment is the
  /// resident-by-contract API input.
  [[nodiscard]] MigrationIntake migration_intake() const;

  /// Peak resident size of this PE's §5.2 block-row store over all
  /// levels, including the transient partner-band intake of pair
  /// searches (reported as the ghost component).
  [[nodiscard]] const ShardFootprint& footprint() const { return footprint_; }

  /// Peak resident size of this PE's sharded partition state over all
  /// levels (owned entries + ghost-block cache).
  [[nodiscard]] const ShardFootprint& partition_footprint() const {
    return partition_footprint_;
  }

  /// This rank's §5.2 pair-shipping volume (band vs. whole block).
  [[nodiscard]] const PairShipStats& ship_stats() const { return ship_stats_; }

  /// Async mode only: the lock windows of the pairs this rank executed
  /// (execution start to completion ACK). Events sharing a block never
  /// overlap — the observable form of the arbiter's lock discipline,
  /// pinned by the lock-safety test and plotted by the wall-clock bench.
  [[nodiscard]] const std::vector<AsyncPairEvent>& async_events() const {
    return async_events_;
  }

 private:
  /// One pairwise_refine()-shaped run on the distributed store: global
  /// iterations over the merged quotient, each executed by the scheduler
  /// config_ selects (color-class oracle or async block locks), with the
  /// shared stop rule on the all-reduced iteration gains. In oracle mode
  /// the outcome mirrors the replicated implementation's loop, RNG forks
  /// and stop rules exactly — a pure function of (store content,
  /// partition state, options, rng), independent of p.
  void run_pairwise(BlockRowShard& store, DistPartition& partition,
                    const PairwiseRefinerOptions& options, const Rng& base_rng);

  /// One oracle iteration: color classes as global rounds, pair execution
  /// at the block-a owner, moved-node delta all-gather and row migration
  /// after every class. The coloring comes from the in-refiner §5.1
  /// protocol (config_.dist_coloring) or the replicated greedy — the
  /// identical coloring either way.
  void run_color_classes(BlockRowShard& store, DistPartition& partition,
                         const PairwiseRefinerOptions& options,
                         const Rng& base_rng, const QuotientGraph& quotient,
                         int global, int ship_depth, EdgeWeight& my_cut_gain,
                         NodeWeight& my_imbalance_gain);

  /// One async iteration: the barrier-free event loop with owner-
  /// arbitrated block locks and point-to-point deltas (see the .cpp
  /// section marked "SPMD async refinement").
  void run_async_iteration(BlockRowShard& store, DistPartition& partition,
                           const PairwiseRefinerOptions& options,
                           const Rng& base_rng, const QuotientGraph& quotient,
                           int global, int ship_depth,
                           EdgeWeight& my_cut_gain,
                           NodeWeight& my_imbalance_gain);

  const StaticGraph& finest_;
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
  NodeWeight global_bound_;
  const Partition* warm_;
  ShardFootprint footprint_;
  ShardFootprint partition_footprint_;
  PairShipStats ship_stats_;
  std::vector<AsyncPairEvent> async_events_;
  /// The finest level's store, retained after refine(level 0) for the
  /// rebalancing insurance loop and the migration view.
  std::optional<BlockRowShard> finest_store_;
};

/// The SPMD twin of run_multilevel(): coarsen into the distributed
/// hierarchy store, initial-partition the once-gathered coarsest graph,
/// then project and refine level by level through the sharded contraction
/// maps and the sharded partition state, and run the distributed
/// rebalancing insurance. The full assignment is materialized exactly
/// once, for the returned PartitionResult. Every PE calls this with
/// identical arguments; the phases synchronize internally.
[[nodiscard]] PartitionResult run_multilevel_spmd(const StaticGraph& graph,
                                                  const Config& config,
                                                  SpmdCoarsener& coarsener,
                                                  InitialPartitioner& initial,
                                                  SpmdRefiner& refiner);

}  // namespace kappa
