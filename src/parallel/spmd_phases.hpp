/// \file spmd_phases.hpp
/// \brief SPMD implementations of the three pipeline phases (§3-§5).
///
/// Each class implements one phase interface of core/phases.hpp for
/// execution on the PE runtime: every PE of the runtime constructs its own
/// instance inside the SPMD program and runs the shared run_multilevel()
/// driver on its replica of the graph. The phases synchronize internally:
///
///   SpmdCoarsener          — per level, the graph is sharded
///     (parallel/dist_graph.hpp); each PE matches its shards' induced
///     subgraphs locally, boundary match ratings are exchanged pairwise
///     over channels, the gap graph is resolved in locally-heaviest rounds
///     with per-round channel exchanges, and the matched pairs (the
///     contraction map) are all-gathered so every PE contracts the level
///     identically (§3.3).
///   SpmdInitialPartitioner — best-of-p: the attempts (each with a private
///     RNG stream) are distributed over the PEs, an all-reduce picks the
///     winner and the owning PE broadcasts the partition (§4).
///   SpmdRefiner            — per level, refinement rounds are scheduled
///     by an edge coloring of the quotient graph; the pairs of one color
///     class touch disjoint blocks, so PEs refine them concurrently on
///     their replicas and exchange moved-node deltas afterwards (§5).
///
/// Determinism: all work units are keyed to *virtual* ids — shards, attempt
/// indices, quotient-edge indices — and their RNG streams are forked from
/// config.seed with those ids. The physical PE count p only decides which
/// PE executes which unit, so a fixed seed yields the identical partition
/// for every p (verified by spmd_pipeline_test).
#pragma once

#include <cstdint>
#include <vector>

#include "core/phases.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/pe_runtime.hpp"

namespace kappa {

/// Matching shape of the SPMD coarsening phase, accumulated over all
/// levels on one PE (this PE's contribution, not a global total).
struct SpmdCoarseningStats {
  NodeID local_pairs = 0;      ///< pairs this PE matched inside its shards
  NodeID gap_pairs = 0;        ///< cross-shard pairs this PE decided
  std::size_t gap_rounds = 0;  ///< locally-heaviest rounds over all levels
};

class SpmdCoarsener final : public Coarsener {
 public:
  /// A non-null \p warm_start restricts contraction to intra-block pairs
  /// of that assignment (the repartitioning coarsening policy); the
  /// filter runs replicated inside the shared hierarchy builder, so the
  /// PEs stay in lockstep.
  SpmdCoarsener(const Config& config, PEContext& pe,
                const Partition* warm_start = nullptr)
      : config_(config),
        pe_(pe),
        rng_(Rng(config.seed).fork(1)),
        warm_start_(warm_start) {}

  [[nodiscard]] Hierarchy coarsen(const StaticGraph& graph) override;

  [[nodiscard]] const SpmdCoarseningStats& stats() const { return stats_; }

 private:
  /// One SPMD matching round on \p current: local matching per owned
  /// shard, boundary-rating exchange, gap resolution, all-gather of the
  /// matched pairs. Returns the full partner vector (identical on every
  /// PE).
  [[nodiscard]] std::vector<NodeID> spmd_match(const StaticGraph& current,
                                               const MatchingOptions& options,
                                               std::size_t level);

  const Config& config_;
  PEContext& pe_;
  Rng rng_;
  const Partition* warm_start_;
  SpmdCoarseningStats stats_;
};

class SpmdInitialPartitioner final : public InitialPartitioner {
 public:
  SpmdInitialPartitioner(const Config& config, PEContext& pe)
      : config_(config), pe_(pe), rng_(Rng(config.seed).fork(2)) {}

  [[nodiscard]] Partition partition(const StaticGraph& coarsest) override;

 private:
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
};

class SpmdRefiner final : public Refiner {
 public:
  SpmdRefiner(const StaticGraph& finest, const Config& config, PEContext& pe);

  void refine(const StaticGraph& graph, Partition& partition,
              std::size_t level) override;
  void rebalance(const StaticGraph& graph, Partition& partition) override;

 private:
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
  NodeWeight global_bound_;
};

}  // namespace kappa
