/// \file spmd_phases.hpp
/// \brief SPMD implementations of the three pipeline phases (§3-§5).
///
/// Each class implements one phase interface of core/phases.hpp for
/// execution on the PE runtime: every PE of the runtime constructs its own
/// instance inside the SPMD program and runs the shared run_multilevel()
/// driver. The graph *data* is sharded (parallel/shard_graph.hpp): the
/// phases' inner loops read each rank's resident structures, never the
/// shared level replica — the replica is touched only at the per-level
/// data-distribution step and by the replicated small-graph/rebalance
/// fallbacks. The phases synchronize internally:
///
///   SpmdCoarsener          — per level, each rank builds its owned+ghost
///     ShardGraph (ghost weights refreshed over channels, counted in
///     CommStats), matches its shards' induced subgraphs locally,
///     exchanges boundary match ratings pairwise over channels, resolves
///     the gap graph in locally-heaviest rounds with per-round channel
///     exchanges, and all-gathers the matched pairs (the contraction
///     map) so every PE contracts the level identically (§3.3).
///   SpmdInitialPartitioner — best-of-p: the attempts (each with a private
///     RNG stream) are distributed over the PEs, an all-reduce picks the
///     winner and the owning PE broadcasts the partition (§4).
///   SpmdRefiner            — per level, each rank stores the rows of the
///     nodes in its blocks (§5.2 BlockRowShard); the quotient graph is
///     merged from per-rank contributions, refinement rounds are
///     scheduled by an edge coloring of it, a pair {a, b} is executed by
///     block a's owner on a pair-local view assembled from its own rows
///     plus block b's rows shipped by the partner owner, and moved-node
///     deltas plus migrating rows are exchanged after every color class
///     (§5).
///
/// Determinism: all work units are keyed to *virtual* ids — shards, attempt
/// indices, quotient-edge indices — and their RNG streams are forked from
/// config.seed with those ids. The physical PE count p only decides which
/// PE executes which unit, so a fixed seed yields the identical partition
/// for every p (verified by spmd_pipeline_test).
#pragma once

#include <cstdint>
#include <vector>

#include "core/phases.hpp"
#include "graph/quotient_graph.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/shard_graph.hpp"

namespace kappa {

/// Distributed quotient-graph construction (§5.1 on sharded data): every
/// rank contributes the cut arcs its resident block rows see; the
/// all-gathered contributions are merged identically on every PE,
/// reproducing the replica-scan QuotientGraph bit for bit — same edge
/// order (first-encounter order of the scan), same cut weights, same
/// sorted boundary lists. Exposed for the shard-graph test suite.
[[nodiscard]] QuotientGraph gather_quotient(const BlockRowShard& store,
                                            const Partition& partition,
                                            BlockID k, PEContext& pe);

/// Matching shape of the SPMD coarsening phase, accumulated over all
/// levels on one PE (this PE's contribution, not a global total).
struct SpmdCoarseningStats {
  NodeID local_pairs = 0;      ///< pairs this PE matched inside its shards
  NodeID gap_pairs = 0;        ///< cross-shard pairs this PE decided
  std::size_t gap_rounds = 0;  ///< locally-heaviest rounds over all levels
  /// Peak resident size of this PE's ghost-layer ShardGraph over all
  /// levels (owned + one-hop halo).
  ShardFootprint footprint;
};

class SpmdCoarsener final : public Coarsener {
 public:
  /// A non-null \p warm_start restricts contraction to intra-block pairs
  /// of that assignment (the repartitioning coarsening policy); the
  /// filter runs replicated inside the shared hierarchy builder, so the
  /// PEs stay in lockstep.
  SpmdCoarsener(const Config& config, PEContext& pe,
                const Partition* warm_start = nullptr)
      : config_(config),
        pe_(pe),
        rng_(Rng(config.seed).fork(1)),
        warm_start_(warm_start) {}

  [[nodiscard]] Hierarchy coarsen(const StaticGraph& graph) override;

  [[nodiscard]] const SpmdCoarseningStats& stats() const { return stats_; }

 private:
  /// One SPMD matching round on \p current: local matching per owned
  /// shard, boundary-rating exchange, gap resolution, all-gather of the
  /// matched pairs. Returns the full partner vector (identical on every
  /// PE).
  [[nodiscard]] std::vector<NodeID> spmd_match(const StaticGraph& current,
                                               const MatchingOptions& options,
                                               std::size_t level);

  const Config& config_;
  PEContext& pe_;
  Rng rng_;
  const Partition* warm_start_;
  SpmdCoarseningStats stats_;
};

class SpmdInitialPartitioner final : public InitialPartitioner {
 public:
  SpmdInitialPartitioner(const Config& config, PEContext& pe)
      : config_(config), pe_(pe), rng_(Rng(config.seed).fork(2)) {}

  [[nodiscard]] Partition partition(const StaticGraph& coarsest) override;

 private:
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
};

class SpmdRefiner final : public Refiner {
 public:
  SpmdRefiner(const StaticGraph& finest, const Config& config, PEContext& pe);

  void refine(const StaticGraph& graph, Partition& partition,
              std::size_t level) override;
  void rebalance(const StaticGraph& graph, Partition& partition) override;

  /// Peak resident size of this PE's §5.2 block-row store over all
  /// levels, including the transient partner-block intake of pair
  /// searches (reported as the ghost component).
  [[nodiscard]] const ShardFootprint& footprint() const { return footprint_; }

 private:
  const Config& config_;
  PEContext& pe_;
  Rng rng_;
  NodeWeight global_bound_;
  ShardFootprint footprint_;
};

}  // namespace kappa
