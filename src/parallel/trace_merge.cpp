/// \file trace_merge.cpp
/// \brief Snapshot/event wire codecs, the clock-offset handshake, and the
/// rank-0 merge.
#include "parallel/trace_merge.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace kappa {

namespace {

constexpr int kOffsetRounds = 4;

void encode_footprint(const ShardFootprint& f,
                      std::vector<std::uint64_t>& out) {
  out.push_back(f.owned_nodes);
  out.push_back(f.ghost_nodes);
  out.push_back(f.arcs);
}

ShardFootprint decode_footprint(const std::vector<std::uint64_t>& in,
                                std::size_t& pos) {
  ShardFootprint f;
  f.owned_nodes = in.at(pos++);
  f.ghost_nodes = in.at(pos++);
  f.arcs = in.at(pos++);
  return f;
}

void encode_snapshot(const RankSnapshot& s, std::vector<std::uint64_t>& out) {
  const CommStats& c = s.comm;
  out.push_back(c.messages_sent);
  out.push_back(c.words_sent);
  out.push_back(c.messages_received);
  out.push_back(c.words_received);
  out.push_back(c.barriers);
  out.push_back(c.collective_idle_ns);
  out.push_back(c.recv_idle_ns);
  out.push_back(c.rounds_waited);
  out.push_back(c.wire_bytes_sent);
  out.push_back(c.wire_bytes_received);
  out.push_back(c.heartbeat_frames_sent);
  out.push_back(c.heartbeat_words_sent);
  out.push_back(c.halo_per_level.size());
  for (const LevelHaloStats& h : c.halo_per_level) {
    out.push_back(h.messages);
    out.push_back(h.words);
  }
  encode_footprint(s.shard_memory, out);
  encode_footprint(s.hierarchy_memory, out);
  encode_footprint(s.partition_memory, out);
  out.push_back(s.pair_ship.pairs_executed);
  out.push_back(s.pair_ship.pairs_shipped);
  out.push_back(s.pair_ship.rows_shipped);
  out.push_back(s.pair_ship.words_shipped);
  out.push_back(s.pair_ship.whole_block_rows);
  out.push_back(s.async_pairs);
  out.push_back(s.async_lock_ns);
}

RankSnapshot decode_snapshot(const std::vector<std::uint64_t>& in,
                             std::size_t& pos) {
  RankSnapshot s;
  CommStats& c = s.comm;
  c.messages_sent = in.at(pos++);
  c.words_sent = in.at(pos++);
  c.messages_received = in.at(pos++);
  c.words_received = in.at(pos++);
  c.barriers = in.at(pos++);
  c.collective_idle_ns = in.at(pos++);
  c.recv_idle_ns = in.at(pos++);
  c.rounds_waited = in.at(pos++);
  c.wire_bytes_sent = in.at(pos++);
  c.wire_bytes_received = in.at(pos++);
  c.heartbeat_frames_sent = in.at(pos++);
  c.heartbeat_words_sent = in.at(pos++);
  c.halo_per_level.resize(in.at(pos++));
  for (LevelHaloStats& h : c.halo_per_level) {
    h.messages = in.at(pos++);
    h.words = in.at(pos++);
  }
  s.shard_memory = decode_footprint(in, pos);
  s.hierarchy_memory = decode_footprint(in, pos);
  s.partition_memory = decode_footprint(in, pos);
  s.pair_ship.pairs_executed = in.at(pos++);
  s.pair_ship.pairs_shipped = in.at(pos++);
  s.pair_ship.rows_shipped = in.at(pos++);
  s.pair_ship.words_shipped = in.at(pos++);
  s.pair_ship.whole_block_rows = in.at(pos++);
  s.async_pairs = in.at(pos++);
  s.async_lock_ns = in.at(pos++);
  return s;
}

/// Appends the recorder's buffer: per-rank name table, then the events
/// referencing it by index.
void encode_buffer(const TraceRecorder& recorder,
                   std::vector<std::uint64_t>& out) {
  std::map<std::string, std::uint64_t> interned;
  std::vector<const std::string*> names;
  std::vector<std::uint64_t> indices;
  indices.reserve(recorder.read_events().size());
  for (const TraceEvent& event : recorder.read_events()) {
    const auto [it, fresh] =
        interned.try_emplace(event.name, interned.size());
    if (fresh) names.push_back(&it->first);
    indices.push_back(it->second);
  }
  out.push_back(recorder.read_dropped());
  out.push_back(names.size());
  for (const std::string* name : names) {
    out.push_back(name->size());
    for (const char c : *name) {
      out.push_back(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  const auto& events = recorder.read_events();
  out.push_back(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    out.push_back(indices[i]);
    out.push_back(static_cast<std::uint64_t>(events[i].kind));
    out.push_back(events[i].start_ns);
    out.push_back(events[i].dur_ns);
    out.push_back(events[i].arg0);
    out.push_back(events[i].arg1);
  }
}

/// Interns \p name into the merged table, returning its index.
std::uint32_t intern(const std::string& name, MergedTrace& merged,
                     std::map<std::string, std::uint32_t>& table) {
  const auto [it, fresh] = table.try_emplace(
      name, static_cast<std::uint32_t>(merged.names.size()));
  if (fresh) merged.names.push_back(name);
  return it->second;
}

std::uint64_t shift_ns(std::uint64_t ns, std::int64_t offset) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(ns) + offset);
}

}  // namespace

CollectedTrace collect_trace(PEContext& pe, const TraceRecorder& recorder,
                             const RankSnapshot& mine) {
  const int p = pe.size();
  const int rank = pe.rank();
  CollectedTrace collected;

  if (rank != 0) {
    // Handshake: echo rank-local time for each of rank 0's pings.
    for (int round = 0; round < kOffsetRounds; ++round) {
      (void)pe.receive(0);
      pe.send(0, {trace_now_ns()});
    }
    std::vector<std::uint64_t> buffer;
    encode_snapshot(mine, buffer);
    encode_buffer(recorder, buffer);
    pe.send(0, std::move(buffer));
    return collected;
  }

  // Rank 0: estimate each rank's clock offset (minimum-RTT midpoint),
  // then gather the buffers in rank order. Sequential per rank keeps the
  // ping-pong free of queueing noise from other ranks' replies.
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(p), 0);
  for (int q = 1; q < p; ++q) {
    std::uint64_t best_rtt = ~std::uint64_t{0};
    for (int round = 0; round < kOffsetRounds; ++round) {
      const std::uint64_t t0 = trace_now_ns();
      pe.send(q, {0});
      const Message reply = pe.receive(q);
      const std::uint64_t t1 = trace_now_ns();
      const std::uint64_t rtt = t1 - t0;
      if (rtt < best_rtt) {
        best_rtt = rtt;
        const std::uint64_t midpoint = t0 + (t1 - t0) / 2;
        offsets[static_cast<std::size_t>(q)] =
            static_cast<std::int64_t>(midpoint) -
            static_cast<std::int64_t>(reply.payload.at(0));
      }
    }
  }

  MergedTrace& merged = collected.trace;
  merged.num_ranks = p;
  merged.dropped_per_rank.assign(static_cast<std::size_t>(p), 0);
  merged.clock_offset_ns = offsets;
  collected.ranks.assign(static_cast<std::size_t>(p), RankSnapshot{});
  collected.ranks[0] = mine;
  std::map<std::string, std::uint32_t> table;

  for (int q = 1; q < p; ++q) {
    const Message msg = pe.receive(q);
    std::size_t pos = 0;
    collected.ranks[static_cast<std::size_t>(q)] =
        decode_snapshot(msg.payload, pos);
    merged.dropped_per_rank[static_cast<std::size_t>(q)] =
        msg.payload.at(pos++);
    std::vector<std::uint32_t> local_names;
    const std::uint64_t num_names = msg.payload.at(pos++);
    local_names.reserve(num_names);
    for (std::uint64_t n = 0; n < num_names; ++n) {
      std::string name(msg.payload.at(pos++), '\0');
      for (char& c : name) {
        c = static_cast<char>(msg.payload.at(pos++));
      }
      local_names.push_back(intern(name, merged, table));
    }
    const std::int64_t offset = offsets[static_cast<std::size_t>(q)];
    const std::uint64_t num_events = msg.payload.at(pos++);
    for (std::uint64_t n = 0; n < num_events; ++n) {
      MergedTraceEvent event;
      event.name_index = local_names.at(msg.payload.at(pos++));
      event.kind = static_cast<TraceEventKind>(msg.payload.at(pos++));
      event.start_ns = shift_ns(msg.payload.at(pos++), offset);
      event.dur_ns = msg.payload.at(pos++);
      event.arg0 = msg.payload.at(pos++);
      event.arg1 = msg.payload.at(pos++);
      event.rank = q;
      merged.events.push_back(event);
    }
  }

  // Own buffer last: it now also contains the net spans of the
  // collection itself, so the timeline shows what collection cost.
  merged.dropped_per_rank[0] = recorder.read_dropped();
  for (const TraceEvent& event : recorder.read_events()) {
    merged.events.push_back({intern(event.name, merged, table), 0,
                             event.start_ns, event.dur_ns, event.arg0,
                             event.arg1, event.kind});
  }

  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const MergedTraceEvent& a, const MergedTraceEvent& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.dur_ns > b.dur_ns;
                   });
  return collected;
}

}  // namespace kappa
