/// \file trace_merge.hpp
/// \brief End-of-run trace collection: clock-offset handshake + gather of
/// every rank's event buffer and observability snapshot on global rank 0.
///
/// The collector is a collective over the run's PEContext, called once by
/// every rank AFTER the partition is materialized — its handshake and
/// gather traffic shows up in CommStats (honestly: collection is part of
/// the run) but can never influence the partition, which is the
/// observer-only guarantee the trace_test determinism check pins.
///
/// Clock alignment: the in-process backend shares one steady clock, so
/// offsets are zero by construction. Across TCP processes rank 0
/// ping-pongs each rank (a few rounds, keeping the minimum-RTT sample)
/// and estimates offset_q = T_q - (T_0 + T_1)/2 — the classic NTP
/// midpoint, exact when the two legs are symmetric, bounded by RTT/2
/// when not. On one host the processes still share CLOCK_MONOTONIC, so
/// the estimate doubles as a self-check (it must come out near zero).
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/comm_stats.hpp"
#include "parallel/pe_runtime.hpp"
#include "util/trace.hpp"

namespace kappa {

/// One rank's scalar observability block, shipped to rank 0 alongside its
/// trace buffer. On the TCP backend each process only observes its own
/// counters; gathering these makes rank 0's metrics as complete as an
/// in-process run's.
struct RankSnapshot {
  CommStats comm;
  ShardFootprint shard_memory;
  ShardFootprint hierarchy_memory;
  ShardFootprint partition_memory;
  PairShipStats pair_ship;
  std::uint64_t async_pairs = 0;    ///< async lock windows this rank ran
  std::uint64_t async_lock_ns = 0;  ///< summed width of those windows
};

/// Result of collect_trace(): populated on global rank 0, empty (zero
/// ranks) everywhere else.
struct CollectedTrace {
  MergedTrace trace;
  std::vector<RankSnapshot> ranks;
};

/// Collective: every rank of \p pe's run must call it exactly once, at
/// the same program point. Rank 0 returns the merged, clock-aligned
/// trace plus every rank's snapshot; other ranks return an empty result
/// after shipping their buffers.
[[nodiscard]] CollectedTrace collect_trace(PEContext& pe,
                                           const TraceRecorder& recorder,
                                           const RankSnapshot& mine);

}  // namespace kappa
