/// \file transport.hpp
/// \brief The pluggable transport layer under the PE runtime.
///
/// The paper ran KaPPa over MPI on a 200-node InfiniBand cluster; this
/// reproduction substituted threads-as-PEs. Every per-rank structure is
/// now sub-linear, so nothing forces single-process execution any more —
/// this interface abstracts the interconnect so one SPMD run can span
/// threads (transport_inproc.hpp, the default, bit-identical to the
/// original thread runtime) or processes connected by TCP sockets
/// (transport_tcp.hpp), and eventually machines.
///
/// The contract is deliberately minimal: point-to-point send / receive /
/// try_receive on two logical lanes plus a barrier. Everything else the
/// algorithms use — the collectives (all-reduce, all-gather, broadcast)
/// — is layered *above* this interface as generic algorithms in
/// PEContext (pe_runtime.cpp), so every backend runs the identical
/// protocol, exchanges the identical words, and produces the identical
/// partition from the same seed.
///
/// Lanes keep collective traffic and application point-to-point traffic
/// from being confused: a collective implemented as p2p messages must
/// never satisfy an application receive(source) and vice versa. Within
/// one (source, lane) pair delivery is FIFO; the SPMD discipline (every
/// rank executes the same global sequence of collective operations)
/// makes positional matching on the collective lane sound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/progress.hpp"

namespace kappa {

/// A message: source rank plus flat 64-bit word payload — the same
/// "serialize everything into buffers" discipline an MPI implementation
/// enforces, which keeps the algorithms honest about what they would
/// really communicate.
struct Message {
  int source = -1;
  std::vector<std::uint64_t> payload;
};

/// Failure surfaced by the transport layer: a peer died (connection
/// closed without the shutdown handshake), a blocking receive exceeded
/// its configured deadline, or the rendezvous could not be established.
/// A dead or hung peer must become one of these, never a silent hang.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Logical lanes multiplexed over one rank-to-rank link.
enum class Lane : std::uint8_t {
  kApp = 0,         ///< application point-to-point traffic (PEContext::send)
  kCollective = 1,  ///< collective-algorithm traffic (barrier, gathers)
  /// kappa-watch heartbeat frames: observer-only liveness traffic owned
  /// by the transport itself (enable_watch). Algorithm layers never send
  /// or receive on this lane — enforced by kappa-lint
  /// (heartbeat-lane-isolation) — so heartbeats can never satisfy an
  /// application or collective receive and the partition stays
  /// byte-identical with watch on or off.
  kHeartbeat = 2,
};

inline constexpr int kNumLanes = 3;

/// What this endpoint knows about one peer's liveness — fed by heartbeat
/// frames on the TCP backend and by direct board reads in-process.
struct PeerHealth {
  /// The transport saw the peer's connection die without the shutdown
  /// handshake. A dead peer also fails pending receives (TransportError).
  bool dead = false;
  /// The peer's last published progress word.
  ProgressSnapshot progress;
  /// trace_now_ns() when evidence of the peer last arrived here (a
  /// heartbeat frame; board-publication time in-process).
  std::uint64_t last_heard_ns = 0;
  /// trace_now_ns() when the peer's own progress last advanced — the
  /// number that separates *stalled* (connection up, progress frozen)
  /// from merely quiet.
  std::uint64_t last_change_ns = 0;
};

/// Queue depth of one (source, lane) mailbox — stall-report material:
/// a deep queue names the peer the wedged rank is not draining.
struct LaneQueueDepth {
  int source = -1;
  Lane lane = Lane::kApp;
  std::size_t depth = 0;
};

/// One rank's endpoint into the interconnect of a run. Thread ownership:
/// exactly one PE thread drives send/receive/barrier; backends may use
/// internal threads (e.g. socket readers) but the endpoint itself is not
/// a shared handle.
class Transport {
 public:
  virtual ~Transport() = default;

  /// This endpoint's rank in [0, size()).
  [[nodiscard]] virtual int rank() const = 0;

  /// Number of ranks across the whole run (all processes).
  [[nodiscard]] virtual int size() const = 0;

  /// Sends a word buffer to \p dest on \p lane (non-blocking, buffered).
  virtual void send(int dest, Lane lane, std::vector<std::uint64_t> payload) = 0;

  /// Blocks until a message from \p source (-1: any source) arrives on
  /// \p lane. Throws TransportError when the peer died or the backend's
  /// receive deadline passed — a failure is reported, never a hang.
  [[nodiscard]] virtual Message receive(int source, Lane lane) = 0;

  /// Non-blocking receive; empty optional if nothing matching is queued.
  /// Still throws TransportError once the transport has failed.
  [[nodiscard]] virtual std::optional<Message> try_receive(int source,
                                                           Lane lane) = 0;

  /// Synchronizes all ranks of the run: no rank returns before every rank
  /// has entered.
  virtual void barrier() = 0;

  /// Bytes this endpoint actually put on / took off the physical wire
  /// (frame headers included) over its lifetime. Zero for backends with
  /// no wire (in-process); the TCP backend measures real socket traffic,
  /// the counterpart to the modeled CommStats word counters.
  [[nodiscard]] virtual std::uint64_t wire_bytes_sent() const { return 0; }
  [[nodiscard]] virtual std::uint64_t wire_bytes_received() const { return 0; }

  // --- kappa-watch hooks (observer-only; defaults are no-ops) -----------
  // The watch layer (parallel/watch.cpp) drives these through PEContext;
  // algorithm layers never touch them (lint rule
  // heartbeat-lane-isolation).

  /// Starts publishing \p board to peers: the TCP backend spawns a
  /// heartbeat thread that sends the packed progress word to every peer
  /// on Lane::kHeartbeat each \p heartbeat_interval_ms; the in-process
  /// backend registers the board so peers read it directly. \p board must
  /// outlive disable_watch().
  virtual void enable_watch(const ProgressBoard* board,
                            int heartbeat_interval_ms) {
    (void)board;
    (void)heartbeat_interval_ms;
  }

  /// Stops heartbeats / unregisters the board; joins any internal
  /// heartbeat thread. Safe to call when watch was never enabled.
  virtual void disable_watch() {}

  /// Latest liveness knowledge about \p peer, or empty when this backend
  /// has none (watch off, or no heartbeat heard yet).
  [[nodiscard]] virtual std::optional<PeerHealth> peer_health(
      int peer) const {
    (void)peer;
    return std::nullopt;
  }

  /// Current per-(source, lane) inbound queue depths of this endpoint.
  [[nodiscard]] virtual std::vector<LaneQueueDepth> queue_depths() const {
    return {};
  }

  /// Heartbeat frames / payload words this endpoint put on the wire over
  /// its lifetime — the measured cost of the watch layer (included in
  /// wire_bytes_sent(), broken out here). Zero off the TCP backend.
  [[nodiscard]] virtual std::uint64_t heartbeat_frames_sent() const {
    return 0;
  }
  [[nodiscard]] virtual std::uint64_t heartbeat_words_sent() const {
    return 0;
  }
};

/// A fabric connects the ranks of one run and hands out the per-rank
/// endpoints hosted in this process: the in-process fabric hosts all of
/// them, a socket fabric exactly one. PERuntime::run executes the SPMD
/// program once per local rank; the same program runs in the other
/// processes of a multi-process fabric.
class TransportFabric {
 public:
  virtual ~TransportFabric() = default;

  /// Total ranks of the run, across all processes.
  [[nodiscard]] virtual int size() const = 0;

  /// The ranks hosted in this process, ascending.
  [[nodiscard]] virtual std::vector<int> local_ranks() const = 0;

  /// Endpoint of a locally hosted rank.
  [[nodiscard]] virtual Transport& endpoint(int rank) = 0;

  /// Human-readable backend name ("inproc", "tcp") for logs and results.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace kappa
