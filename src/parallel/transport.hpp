/// \file transport.hpp
/// \brief The pluggable transport layer under the PE runtime.
///
/// The paper ran KaPPa over MPI on a 200-node InfiniBand cluster; this
/// reproduction substituted threads-as-PEs. Every per-rank structure is
/// now sub-linear, so nothing forces single-process execution any more —
/// this interface abstracts the interconnect so one SPMD run can span
/// threads (transport_inproc.hpp, the default, bit-identical to the
/// original thread runtime) or processes connected by TCP sockets
/// (transport_tcp.hpp), and eventually machines.
///
/// The contract is deliberately minimal: point-to-point send / receive /
/// try_receive on two logical lanes plus a barrier. Everything else the
/// algorithms use — the collectives (all-reduce, all-gather, broadcast)
/// — is layered *above* this interface as generic algorithms in
/// PEContext (pe_runtime.cpp), so every backend runs the identical
/// protocol, exchanges the identical words, and produces the identical
/// partition from the same seed.
///
/// Lanes keep collective traffic and application point-to-point traffic
/// from being confused: a collective implemented as p2p messages must
/// never satisfy an application receive(source) and vice versa. Within
/// one (source, lane) pair delivery is FIFO; the SPMD discipline (every
/// rank executes the same global sequence of collective operations)
/// makes positional matching on the collective lane sound.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace kappa {

/// A message: source rank plus flat 64-bit word payload — the same
/// "serialize everything into buffers" discipline an MPI implementation
/// enforces, which keeps the algorithms honest about what they would
/// really communicate.
struct Message {
  int source = -1;
  std::vector<std::uint64_t> payload;
};

/// Failure surfaced by the transport layer: a peer died (connection
/// closed without the shutdown handshake), a blocking receive exceeded
/// its configured deadline, or the rendezvous could not be established.
/// A dead or hung peer must become one of these, never a silent hang.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Logical lanes multiplexed over one rank-to-rank link.
enum class Lane : std::uint8_t {
  kApp = 0,         ///< application point-to-point traffic (PEContext::send)
  kCollective = 1,  ///< collective-algorithm traffic (barrier, gathers)
};

inline constexpr int kNumLanes = 2;

/// One rank's endpoint into the interconnect of a run. Thread ownership:
/// exactly one PE thread drives send/receive/barrier; backends may use
/// internal threads (e.g. socket readers) but the endpoint itself is not
/// a shared handle.
class Transport {
 public:
  virtual ~Transport() = default;

  /// This endpoint's rank in [0, size()).
  [[nodiscard]] virtual int rank() const = 0;

  /// Number of ranks across the whole run (all processes).
  [[nodiscard]] virtual int size() const = 0;

  /// Sends a word buffer to \p dest on \p lane (non-blocking, buffered).
  virtual void send(int dest, Lane lane, std::vector<std::uint64_t> payload) = 0;

  /// Blocks until a message from \p source (-1: any source) arrives on
  /// \p lane. Throws TransportError when the peer died or the backend's
  /// receive deadline passed — a failure is reported, never a hang.
  [[nodiscard]] virtual Message receive(int source, Lane lane) = 0;

  /// Non-blocking receive; empty optional if nothing matching is queued.
  /// Still throws TransportError once the transport has failed.
  [[nodiscard]] virtual std::optional<Message> try_receive(int source,
                                                           Lane lane) = 0;

  /// Synchronizes all ranks of the run: no rank returns before every rank
  /// has entered.
  virtual void barrier() = 0;

  /// Bytes this endpoint actually put on / took off the physical wire
  /// (frame headers included) over its lifetime. Zero for backends with
  /// no wire (in-process); the TCP backend measures real socket traffic,
  /// the counterpart to the modeled CommStats word counters.
  [[nodiscard]] virtual std::uint64_t wire_bytes_sent() const { return 0; }
  [[nodiscard]] virtual std::uint64_t wire_bytes_received() const { return 0; }
};

/// A fabric connects the ranks of one run and hands out the per-rank
/// endpoints hosted in this process: the in-process fabric hosts all of
/// them, a socket fabric exactly one. PERuntime::run executes the SPMD
/// program once per local rank; the same program runs in the other
/// processes of a multi-process fabric.
class TransportFabric {
 public:
  virtual ~TransportFabric() = default;

  /// Total ranks of the run, across all processes.
  [[nodiscard]] virtual int size() const = 0;

  /// The ranks hosted in this process, ascending.
  [[nodiscard]] virtual std::vector<int> local_ranks() const = 0;

  /// Endpoint of a locally hosted rank.
  [[nodiscard]] virtual Transport& endpoint(int rank) = 0;

  /// Human-readable backend name ("inproc", "tcp") for logs and results.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace kappa
