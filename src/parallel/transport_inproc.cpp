#include "parallel/transport_inproc.hpp"

#include <array>
#include <barrier>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/channel.hpp"

namespace kappa {

namespace {

class InprocFabric;

/// One rank's endpoint: borrows the fabric's shared mailboxes + barrier.
class InprocEndpoint final : public Transport {
 public:
  InprocEndpoint(InprocFabric& fabric, int rank)
      : fabric_(fabric), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override;
  void send(int dest, Lane lane, std::vector<std::uint64_t> payload) override;
  [[nodiscard]] Message receive(int source, Lane lane) override;
  [[nodiscard]] std::optional<Message> try_receive(int source,
                                                   Lane lane) override;
  void barrier() override;

 private:
  InprocFabric& fabric_;
  int rank_;
};

class InprocFabric final : public TransportFabric {
 public:
  explicit InprocFabric(int num_pes)
      : num_pes_(num_pes), mailboxes_(static_cast<std::size_t>(num_pes)),
        barrier_(num_pes) {
    endpoints_.reserve(static_cast<std::size_t>(num_pes));
    for (int rank = 0; rank < num_pes; ++rank) {
      endpoints_.emplace_back(*this, rank);
    }
  }

  [[nodiscard]] int size() const override { return num_pes_; }

  [[nodiscard]] std::vector<int> local_ranks() const override {
    std::vector<int> ranks(static_cast<std::size_t>(num_pes_));
    for (int rank = 0; rank < num_pes_; ++rank) {
      ranks[static_cast<std::size_t>(rank)] = rank;
    }
    return ranks;
  }

  [[nodiscard]] Transport& endpoint(int rank) override {
    return endpoints_.at(static_cast<std::size_t>(rank));
  }

  [[nodiscard]] const char* name() const override { return "inproc"; }

 private:
  friend class InprocEndpoint;

  int num_pes_;
  // One mailbox per (rank, lane): application p2p and collective traffic
  // never satisfy each other's receives.
  std::vector<std::array<Mailbox, kNumLanes>> mailboxes_;
  std::barrier<> barrier_;
  std::vector<InprocEndpoint> endpoints_;
};

int InprocEndpoint::size() const { return fabric_.num_pes_; }

void InprocEndpoint::send(int dest, Lane lane,
                          std::vector<std::uint64_t> payload) {
  fabric_.mailboxes_[static_cast<std::size_t>(dest)]
                    [static_cast<std::size_t>(lane)]
      .push({rank_, std::move(payload)});
}

Message InprocEndpoint::receive(int source, Lane lane) {
  return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]
                           [static_cast<std::size_t>(lane)]
      .pop(source);
}

std::optional<Message> InprocEndpoint::try_receive(int source, Lane lane) {
  return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]
                           [static_cast<std::size_t>(lane)]
      .try_pop(source);
}

void InprocEndpoint::barrier() { fabric_.barrier_.arrive_and_wait(); }

}  // namespace

std::unique_ptr<TransportFabric> make_inproc_fabric(int num_pes) {
  if (num_pes < 1) {
    throw std::invalid_argument(
        "in-process transport fabric needs at least one PE, got " +
        std::to_string(num_pes));
  }
  return std::make_unique<InprocFabric>(num_pes);
}

}  // namespace kappa
