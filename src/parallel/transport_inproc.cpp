#include "parallel/transport_inproc.hpp"

#include <array>
#include <atomic>
#include <barrier>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/channel.hpp"

namespace kappa {

namespace {

class InprocFabric;

/// One rank's endpoint: borrows the fabric's shared mailboxes + barrier.
class InprocEndpoint final : public Transport {
 public:
  InprocEndpoint(InprocFabric& fabric, int rank)
      : fabric_(fabric), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override;
  void send(int dest, Lane lane, std::vector<std::uint64_t> payload) override;
  [[nodiscard]] Message receive(int source, Lane lane) override;
  [[nodiscard]] std::optional<Message> try_receive(int source,
                                                   Lane lane) override;
  void barrier() override;

  // kappa-watch: in-process ranks share an address space, so there is no
  // heartbeat traffic — enable_watch registers the rank's board in the
  // fabric and peers read it directly (the degenerate, zero-cost form of
  // the heartbeat lane).
  void enable_watch(const ProgressBoard* board,
                    int heartbeat_interval_ms) override;
  void disable_watch() override;
  [[nodiscard]] std::optional<PeerHealth> peer_health(int peer) const override;
  [[nodiscard]] std::vector<LaneQueueDepth> queue_depths() const override;

 private:
  InprocFabric& fabric_;
  int rank_;
};

class InprocFabric final : public TransportFabric {
 public:
  explicit InprocFabric(int num_pes)
      : num_pes_(num_pes), mailboxes_(static_cast<std::size_t>(num_pes)),
        boards_(static_cast<std::size_t>(num_pes)), barrier_(num_pes) {
    endpoints_.reserve(static_cast<std::size_t>(num_pes));
    for (int rank = 0; rank < num_pes; ++rank) {
      endpoints_.emplace_back(*this, rank);
    }
  }

  [[nodiscard]] int size() const override { return num_pes_; }

  [[nodiscard]] std::vector<int> local_ranks() const override {
    std::vector<int> ranks(static_cast<std::size_t>(num_pes_));
    for (int rank = 0; rank < num_pes_; ++rank) {
      ranks[static_cast<std::size_t>(rank)] = rank;
    }
    return ranks;
  }

  [[nodiscard]] Transport& endpoint(int rank) override {
    return endpoints_.at(static_cast<std::size_t>(rank));
  }

  [[nodiscard]] const char* name() const override { return "inproc"; }

 private:
  friend class InprocEndpoint;

  int num_pes_;
  // One mailbox per (rank, lane): application p2p and collective traffic
  // never satisfy each other's receives.
  std::vector<std::array<Mailbox, kNumLanes>> mailboxes_;
  // kappa-watch board registry, one slot per rank. Boards are owned by
  // the watch layer and guaranteed (by core/partitioner.cpp) to outlive
  // the run, so a reader that loads a pointer just before the owner
  // unregisters it still dereferences live memory.
  std::vector<std::atomic<const ProgressBoard*>> boards_;
  std::barrier<> barrier_;
  std::vector<InprocEndpoint> endpoints_;
};

int InprocEndpoint::size() const { return fabric_.num_pes_; }

void InprocEndpoint::send(int dest, Lane lane,
                          std::vector<std::uint64_t> payload) {
  fabric_.mailboxes_[static_cast<std::size_t>(dest)]
                    [static_cast<std::size_t>(lane)]
      .push({rank_, std::move(payload)});
}

Message InprocEndpoint::receive(int source, Lane lane) {
  return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]
                           [static_cast<std::size_t>(lane)]
      .pop(source);
}

std::optional<Message> InprocEndpoint::try_receive(int source, Lane lane) {
  return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]
                           [static_cast<std::size_t>(lane)]
      .try_pop(source);
}

void InprocEndpoint::barrier() { fabric_.barrier_.arrive_and_wait(); }

void InprocEndpoint::enable_watch(const ProgressBoard* board,
                                  int heartbeat_interval_ms) {
  (void)heartbeat_interval_ms;  // no wire, no cadence
  fabric_.boards_[static_cast<std::size_t>(rank_)].store(
      board, std::memory_order_release);
}

void InprocEndpoint::disable_watch() {
  fabric_.boards_[static_cast<std::size_t>(rank_)].store(
      nullptr, std::memory_order_release);
}

std::optional<PeerHealth> InprocEndpoint::peer_health(int peer) const {
  if (peer < 0 || peer >= fabric_.num_pes_) return std::nullopt;
  const ProgressBoard* board =
      fabric_.boards_[static_cast<std::size_t>(peer)].load(
          std::memory_order_acquire);
  if (board == nullptr) return std::nullopt;
  PeerHealth health;
  health.progress = board->snapshot();
  // Shared clock and shared memory: the board itself is the freshest
  // possible evidence, so "last heard" and "last changed" coincide.
  health.last_heard_ns = health.progress.last_advance_ns;
  health.last_change_ns = health.progress.last_advance_ns;
  return health;
}

std::vector<LaneQueueDepth> InprocEndpoint::queue_depths() const {
  std::vector<LaneQueueDepth> depths;
  const auto& lanes = fabric_.mailboxes_[static_cast<std::size_t>(rank_)];
  for (int lane = 0; lane < kNumLanes; ++lane) {
    for (const auto& [source, depth] :
         lanes[static_cast<std::size_t>(lane)].depths()) {
      depths.push_back({source, static_cast<Lane>(lane), depth});
    }
  }
  return depths;
}

}  // namespace

std::unique_ptr<TransportFabric> make_inproc_fabric(int num_pes) {
  if (num_pes < 1) {
    throw std::invalid_argument(
        "in-process transport fabric needs at least one PE, got " +
        std::to_string(num_pes));
  }
  return std::make_unique<InprocFabric>(num_pes);
}

}  // namespace kappa
