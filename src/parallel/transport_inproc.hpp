/// \file transport_inproc.hpp
/// \brief In-process transport backend: threads as ranks, mailboxes as
/// the interconnect, a std::barrier as the barrier.
///
/// The default backend and the direct descendant of the original thread
/// runtime: all ranks live in one process, send() pushes into the
/// destination rank's lane mailbox, barrier() is a std::barrier over all
/// ranks. Bit-identical to the pre-transport runtime — the collectives
/// layered above (pe_runtime.cpp) exchange the same words in the same
/// order on every backend.
#pragma once

#include <memory>

#include "parallel/transport.hpp"

namespace kappa {

/// Creates the in-process fabric hosting all \p num_pes ranks in this
/// process. Throws std::invalid_argument for num_pes < 1.
[[nodiscard]] std::unique_ptr<TransportFabric> make_inproc_fabric(
    int num_pes);

}  // namespace kappa
