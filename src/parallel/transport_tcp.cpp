#include "parallel/transport_tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/channel.hpp"
#include "util/trace.hpp"

namespace kappa {

namespace {

using Clock = std::chrono::steady_clock;

/// Protocol constants. The magic doubles as an endianness/format canary:
/// a peer from a different build or byte order fails the handshake
/// instead of corrupting the word stream.
constexpr std::uint64_t kMagic = 0x6b6150506154llu;  // "kaPPaT"
constexpr std::uint64_t kProtocolVersion = 1;

/// Frame tags on the wire; the first two mirror Lane.
constexpr std::uint64_t kFrameApp = 0;
constexpr std::uint64_t kFrameCollective = 1;
constexpr std::uint64_t kFrameBye = 2;
/// kappa-watch heartbeat (Lane::kHeartbeat): a packed ProgressBoard
/// snapshot, sent by the transport's own heartbeat thread, delivered to
/// the receiver's peer-health table — never to a mailbox, so it can
/// never satisfy an application or collective receive.
constexpr std::uint64_t kFrameHeartbeat = 3;

/// How often a blocked receiver-thread read wakes up to check the stop
/// flag, and therefore the upper bound on teardown latency per peer.
constexpr int kReceiverPollMs = 200;

/// After local teardown begins, how long a receiver thread waits for the
/// peer's BYE/EOF before abandoning the connection. Our own BYE is
/// already on the wire by then, so an abandoned peer still shuts down
/// cleanly when it gets around to closing.
constexpr int kTeardownGraceMs = 1000;

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(left.count(), 0));
}

/// Writes the whole buffer or throws.
void write_full(int fd, const void* data, std::size_t bytes,
                const std::string& what) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(what + " (send)");
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
}

enum class ReadStatus { kOk, kEof, kTimeout };

/// Reads exactly \p bytes unless the connection ends cleanly *before the
/// first byte* (kEof) or nothing arrives within the socket's SO_RCVTIMEO
/// while nothing has been read yet (kTimeout). A connection dying in the
/// middle of a frame is an error, not an EOF. A mid-read SO_RCVTIMEO
/// expiry keeps waiting (the sender committed to the frame by starting
/// it) unless \p abort says to give up — that hook bounds teardown and
/// rendezvous deadlines.
ReadStatus read_full(int fd, void* data, std::size_t bytes,
                     const std::string& what,
                     const std::function<bool()>& abort = {}) {
  char* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::recv(fd, p + done, bytes - done, 0);
    if (n == 0) {
      if (done == 0) return ReadStatus::kEof;
      throw TransportError(what + ": connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (done == 0) return ReadStatus::kTimeout;
        if (abort && abort()) {
          throw TransportError(what + ": gave up waiting mid-frame");
        }
        continue;
      }
      throw_errno(what + " (recv)");
    }
    done += static_cast<std::size_t>(n);
  }
  return ReadStatus::kOk;
}

/// read_full with an absolute deadline instead of the socket timeout:
/// kOk or kEof, throws once \p deadline passes. The socket must already
/// carry a finite SO_RCVTIMEO so the poll loop can observe the deadline.
ReadStatus read_full_deadline(int fd, void* data, std::size_t bytes,
                              const std::string& what,
                              Clock::time_point deadline) {
  const auto expired = [deadline] { return Clock::now() >= deadline; };
  while (true) {
    const ReadStatus status = read_full(fd, data, bytes, what, expired);
    if (status != ReadStatus::kTimeout) return status;
    if (expired()) {
      throw TransportError(what + ": nothing received within the deadline");
    }
  }
}

void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_addr(std::uint32_t ip_host_order, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip_host_order);
  addr.sin_port = htons(port);
  return addr;
}

std::uint32_t resolve_ipv4(const std::string& host) {
  in_addr parsed{};
  if (::inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    throw TransportError("tcp transport: '" + host +
                         "' is not a dotted IPv4 address");
  }
  return ntohl(parsed.s_addr);
}

/// Binds + listens; returns (fd, bound port).
std::pair<int, std::uint16_t> make_listen_socket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("tcp transport: socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(INADDR_ANY, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("tcp transport: bind port " + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("tcp transport: getsockname");
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    throw_errno("tcp transport: listen");
  }
  return {fd, ntohs(addr.sin_port)};
}

/// Accepts one connection before \p deadline or throws.
int accept_with_deadline(int listen_fd, Clock::time_point deadline,
                         const std::string& what) {
  while (true) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ms = remaining_ms(deadline);
    const int ready = ::poll(&pfd, 1, std::max(ms, 1));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno(what + " (poll)");
    }
    if (ready > 0) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) return fd;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno(what + " (accept)");
    }
    if (ms == 0) {
      throw TransportError(what + ": no connection within the deadline");
    }
  }
}

/// Connects to \p addr, retrying with exponential backoff until
/// \p deadline (the peer's listener may not be up yet).
int connect_with_retry(const sockaddr_in& addr, Clock::time_point deadline,
                       const std::string& what) {
  int backoff_ms = 20;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno(what + " (socket)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (saved != ECONNREFUSED && saved != ETIMEDOUT && saved != EINTR &&
        saved != ENETUNREACH && saved != EHOSTUNREACH) {
      errno = saved;
      throw_errno(what + " (connect)");
    }
    if (Clock::now() >= deadline) {
      throw TransportError(what + ": gave up after the connect deadline (" +
                           std::strerror(saved) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min(backoff_ms, remaining_ms(deadline))));
    backoff_ms = std::min(backoff_ms * 2, 500);
  }
}

/// Rendezvous hello: {magic, version, rank, num_ranks, listen_port}.
struct Hello {
  std::uint64_t words[5];
};

Hello make_hello(int rank, int num_ranks, std::uint16_t listen_port) {
  return {{kMagic, kProtocolVersion, static_cast<std::uint64_t>(rank),
           static_cast<std::uint64_t>(num_ranks),
           static_cast<std::uint64_t>(listen_port)}};
}

void check_hello(const Hello& hello, int num_ranks,
                 const std::string& what) {
  if (hello.words[0] != kMagic) {
    throw TransportError(what + ": bad magic (foreign protocol, stale "
                                "peer, or mixed byte order)");
  }
  if (hello.words[1] != kProtocolVersion) {
    throw TransportError(what + ": protocol version mismatch");
  }
  if (hello.words[3] != static_cast<std::uint64_t>(num_ranks)) {
    throw TransportError(what + ": peer expects " +
                         std::to_string(hello.words[3]) +
                         " ranks, this run has " + std::to_string(num_ranks));
  }
  if (hello.words[2] >= hello.words[3]) {
    throw TransportError(what + ": peer rank out of range");
  }
}

/// One rank's endpoint over the socket mesh.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const TcpOptions& options) : options_(options) {
    if (options.num_ranks < 1) {
      throw std::invalid_argument(
          "tcp transport needs at least one rank, got " +
          std::to_string(options.num_ranks));
    }
    if (options.rank < 0 || options.rank >= options.num_ranks) {
      throw std::invalid_argument(
          "tcp transport rank " + std::to_string(options.rank) +
          " outside [0, " + std::to_string(options.num_ranks) + ")");
    }
    fds_.assign(static_cast<std::size_t>(options.num_ranks), -1);
    peers_.assign(static_cast<std::size_t>(options.num_ranks), PeerSlot{});
    hb_ok_.assign(static_cast<std::size_t>(options.num_ranks), 1);
    send_mutexes_ = std::vector<std::mutex>(
        static_cast<std::size_t>(options.num_ranks));
    for (int q = 0; q < options.num_ranks; ++q) {
      if (q == options.rank) continue;
      for (Mailbox& inbox : inbox_) inbox.register_source(q);
    }
    establish_mesh();
    for (int q = 0; q < options.num_ranks; ++q) {
      if (q == options.rank) continue;
      receivers_.emplace_back([this, q] { receive_loop(q); });
    }
    // One full synchronization before handing the endpoint out: every
    // rank's mesh and receiver threads are live, so the first real
    // message can never race the rendezvous.
    barrier();
  }

  ~TcpTransport() override {
    disable_watch();  // join the heartbeat thread before touching the fds
    stopping_.store(true, std::memory_order_release);
    const std::uint64_t bye[2] = {kFrameBye, 0};
    for (std::size_t q = 0; q < fds_.size(); ++q) {
      const int fd = fds_[q];
      if (fd < 0) continue;
      try {
        const std::lock_guard<std::mutex> lock(send_mutexes_[q]);
        write_full(fd, bye, sizeof bye, "bye");
      } catch (const TransportError&) {
        // The peer is already gone; nothing left to say.
      }
    }
    for (std::thread& t : receivers_) t.join();
    for (const int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
  }

  [[nodiscard]] int rank() const override { return options_.rank; }
  [[nodiscard]] int size() const override { return options_.num_ranks; }

  void send(int dest, Lane lane,
            std::vector<std::uint64_t> payload) override {
    const std::uint64_t header[2] = {
        lane == Lane::kApp ? kFrameApp : kFrameCollective, payload.size()};
    const int fd = fds_.at(static_cast<std::size_t>(dest));
    const std::string what =
        "tcp send to rank " + std::to_string(dest);
    {
      // The heartbeat thread shares this fd; the per-peer mutex keeps the
      // header+payload pair contiguous on the wire. Uncontended in the
      // unwatched case — one CAS against a ~microsecond syscall.
      const std::lock_guard<std::mutex> lock(
          send_mutexes_[static_cast<std::size_t>(dest)]);
      write_full(fd, header, sizeof header, what);
      if (!payload.empty()) {
        write_full(fd, payload.data(),
                   payload.size() * sizeof(std::uint64_t), what);
      }
    }
    bytes_sent_.fetch_add(sizeof header +
                              payload.size() * sizeof(std::uint64_t),
                          std::memory_order_relaxed);
  }

  [[nodiscard]] Message receive(int source, Lane lane) override {
    Mailbox& inbox = inbox_[static_cast<std::size_t>(lane)];
    if (options_.recv_timeout_ms <= 0) return inbox.pop(source);
    std::optional<Message> msg = inbox.pop_until(
        source,
        Clock::now() + std::chrono::milliseconds(options_.recv_timeout_ms));
    if (!msg) {
      throw TransportError(
          "tcp receive from rank " +
          (source < 0 ? std::string("any") : std::to_string(source)) +
          " timed out after " + std::to_string(options_.recv_timeout_ms) +
          " ms — peer hung, deadlocked, or fell behind the deadline");
    }
    return std::move(*msg);
  }

  [[nodiscard]] std::optional<Message> try_receive(int source,
                                                   Lane lane) override {
    return inbox_[static_cast<std::size_t>(lane)].try_pop(source);
  }

  /// Dissemination barrier over the collective lane: ceil(log2 p) rounds
  /// of one empty pulse each; when the last round completes, every rank
  /// has provably entered. Positional FIFO matching on the lane keeps
  /// overlapping barriers and gathers straight.
  void barrier() override {
    const int p = options_.num_ranks;
    for (int distance = 1; distance < p; distance <<= 1) {
      send((options_.rank + distance) % p, Lane::kCollective, {});
      (void)receive((options_.rank - distance + p) % p, Lane::kCollective);
    }
  }

  [[nodiscard]] std::uint64_t wire_bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wire_bytes_received() const override {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  void enable_watch(const ProgressBoard* board,
                    int heartbeat_interval_ms) override {
    if (board == nullptr || heartbeat_interval_ms <= 0 ||
        heartbeat_.joinable()) {
      return;
    }
    watch_board_ = board;
    {
      const std::lock_guard<std::mutex> lock(hb_mutex_);
      hb_stop_ = false;
    }
    heartbeat_ = std::thread(
        [this, heartbeat_interval_ms] { heartbeat_loop(heartbeat_interval_ms); });
  }

  void disable_watch() override {
    {
      const std::lock_guard<std::mutex> lock(hb_mutex_);
      hb_stop_ = true;
    }
    hb_cv_.notify_all();
    if (heartbeat_.joinable()) heartbeat_.join();
    watch_board_ = nullptr;
  }

  [[nodiscard]] std::optional<PeerHealth> peer_health(
      int peer) const override {
    if (peer < 0 || peer >= options_.num_ranks || peer == options_.rank) {
      return std::nullopt;
    }
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    const PeerSlot& slot = peers_[static_cast<std::size_t>(peer)];
    if (!slot.known && !slot.dead) return std::nullopt;
    PeerHealth health;
    health.dead = slot.dead;
    health.progress = slot.progress;
    health.last_heard_ns = slot.last_heard_ns;
    health.last_change_ns = slot.last_change_ns;
    return health;
  }

  [[nodiscard]] std::vector<LaneQueueDepth> queue_depths() const override {
    std::vector<LaneQueueDepth> depths;
    for (int lane = 0; lane < kNumLanes; ++lane) {
      for (const auto& [source, depth] :
           inbox_[static_cast<std::size_t>(lane)].depths()) {
        depths.push_back({source, static_cast<Lane>(lane), depth});
      }
    }
    return depths;
  }

  [[nodiscard]] std::uint64_t heartbeat_frames_sent() const override {
    return hb_frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t heartbeat_words_sent() const override {
    return hb_words_.load(std::memory_order_relaxed);
  }

 private:
  void establish_mesh() {
    const int p = options_.num_ranks;
    const int rank = options_.rank;
    if (p == 1) return;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.connect_timeout_ms);

    auto [listen_fd, listen_port] = make_listen_socket(
        rank == 0 ? options_.rendezvous_port : std::uint16_t{0});

    try {
      if (rank == 0) {
        // Collect every rank's hello over its rendezvous connection; the
        // connection itself becomes the mesh link (0, q).
        std::vector<std::uint64_t> table(
            static_cast<std::size_t>(2 * p), 0);
        for (int i = 1; i < p; ++i) {
          const int fd = accept_with_deadline(
              listen_fd, deadline, "tcp rendezvous: waiting for peers");
          Hello hello{};
          set_recv_timeout(fd, kReceiverPollMs);
          if (read_full_deadline(fd, hello.words, sizeof hello.words,
                                 "tcp rendezvous hello", deadline) !=
              ReadStatus::kOk) {
            ::close(fd);
            throw TransportError(
                "tcp rendezvous: peer disconnected during hello");
          }
          check_hello(hello, p, "tcp rendezvous");
          const int peer = static_cast<int>(hello.words[2]);
          if (peer == 0 || fds_[static_cast<std::size_t>(peer)] >= 0) {
            ::close(fd);
            throw TransportError("tcp rendezvous: duplicate rank " +
                                 std::to_string(peer));
          }
          sockaddr_in peer_addr{};
          socklen_t len = sizeof peer_addr;
          if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer_addr),
                            &len) != 0) {
            ::close(fd);
            throw_errno("tcp rendezvous: getpeername");
          }
          fds_[static_cast<std::size_t>(peer)] = fd;
          table[static_cast<std::size_t>(2 * peer)] =
              ntohl(peer_addr.sin_addr.s_addr);
          table[static_cast<std::size_t>(2 * peer + 1)] = hello.words[4];
        }
        // Every rank now known: publish the address table.
        for (int q = 1; q < p; ++q) {
          write_full(fds_[static_cast<std::size_t>(q)], table.data(),
                     table.size() * sizeof(std::uint64_t),
                     "tcp rendezvous table to rank " + std::to_string(q));
        }
      } else {
        const sockaddr_in rendezvous = make_addr(
            resolve_ipv4(options_.rendezvous_host), options_.rendezvous_port);
        const int fd0 = connect_with_retry(
            rendezvous, deadline,
            "tcp rendezvous: connecting to rank 0 at " +
                options_.rendezvous_host + ":" +
                std::to_string(options_.rendezvous_port));
        fds_[0] = fd0;
        const Hello hello = make_hello(rank, p, listen_port);
        write_full(fd0, hello.words, sizeof hello.words,
                   "tcp rendezvous hello");
        std::vector<std::uint64_t> table(static_cast<std::size_t>(2 * p));
        set_recv_timeout(fd0, kReceiverPollMs);
        if (read_full_deadline(fd0, table.data(),
                               table.size() * sizeof(std::uint64_t),
                               "tcp rendezvous table", deadline) !=
            ReadStatus::kOk) {
          throw TransportError(
              "tcp rendezvous: rank 0 disconnected before publishing the "
              "address table (another rank failed the handshake?)");
        }
        // Full mesh: connect to every lower rank, accept every higher.
        for (int q = 1; q < rank; ++q) {
          const sockaddr_in addr = make_addr(
              static_cast<std::uint32_t>(table[static_cast<std::size_t>(
                  2 * q)]),
              static_cast<std::uint16_t>(
                  table[static_cast<std::size_t>(2 * q + 1)]));
          const int fd = connect_with_retry(
              addr, deadline, "tcp mesh: connecting to rank " +
                                   std::to_string(q));
          const Hello mesh_hello = make_hello(rank, p, listen_port);
          write_full(fd, mesh_hello.words, sizeof mesh_hello.words,
                     "tcp mesh hello");
          fds_[static_cast<std::size_t>(q)] = fd;
        }
        for (int q = rank + 1; q < p; ++q) {
          const int fd = accept_with_deadline(
              listen_fd, deadline,
              "tcp mesh: waiting for higher ranks");
          Hello mesh_hello{};
          set_recv_timeout(fd, kReceiverPollMs);
          if (read_full_deadline(fd, mesh_hello.words,
                                 sizeof mesh_hello.words, "tcp mesh hello",
                                 deadline) != ReadStatus::kOk) {
            ::close(fd);
            throw TransportError(
                "tcp mesh: peer disconnected during hello");
          }
          check_hello(mesh_hello, p, "tcp mesh");
          const int peer = static_cast<int>(mesh_hello.words[2]);
          if (peer <= rank || fds_[static_cast<std::size_t>(peer)] >= 0) {
            ::close(fd);
            throw TransportError("tcp mesh: unexpected rank " +
                                 std::to_string(peer));
          }
          fds_[static_cast<std::size_t>(peer)] = fd;
        }
      }
    } catch (...) {
      ::close(listen_fd);
      for (int& fd : fds_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
      throw;
    }
    ::close(listen_fd);

    for (const int fd : fds_) {
      if (fd < 0) continue;
      set_nodelay(fd);
      // Receiver threads wake periodically to observe the stop flag.
      set_recv_timeout(fd, kReceiverPollMs);
    }
  }

  /// Drains frames from peer \p q into the lane mailboxes until the
  /// shutdown handshake (BYE then EOF), a failure, or local teardown.
  void receive_loop(int q) {
    const int fd = fds_[static_cast<std::size_t>(q)];
    const std::string what = "tcp receive from rank " + std::to_string(q);
    bool peer_done = false;
    Clock::time_point stop_seen{};
    try {
      while (true) {
        std::uint64_t header[2];
        const ReadStatus status =
            read_full(fd, header, sizeof header, what);
        if (status == ReadStatus::kTimeout) {
          // During teardown: once the peer said BYE (or stayed silent
          // past the grace) stop waiting for its EOF, so the destructor
          // never blocks on a peer that keeps its socket open.
          if (stopping_.load(std::memory_order_acquire)) {
            if (peer_done) return;
            if (stop_seen == Clock::time_point{}) {
              stop_seen = Clock::now();
            } else if (Clock::now() - stop_seen >
                       std::chrono::milliseconds(kTeardownGraceMs)) {
              return;
            }
          }
          continue;
        }
        if (status == ReadStatus::kEof) {
          if (peer_done) return;  // clean shutdown: BYE then EOF
          mark_peer_dead(q);
          fail_all(what + ": connection closed without shutdown handshake "
                          "— peer died");
          return;
        }
        if (header[0] == kFrameBye) {
          peer_done = true;
          for (Mailbox& inbox : inbox_) inbox.finish_source(q);
          continue;
        }
        if (header[0] != kFrameApp && header[0] != kFrameCollective &&
            header[0] != kFrameHeartbeat) {
          fail_all(what + ": corrupt frame tag " +
                   std::to_string(header[0]));
          return;
        }
        if (header[1] > (std::uint64_t{1} << 32)) {
          fail_all(what + ": implausible frame length " +
                   std::to_string(header[1]));
          return;
        }
        std::vector<std::uint64_t> payload(header[1]);
        if (!payload.empty()) {
          // The header arrived; the payload must follow. A mid-frame EOF
          // throws inside read_full; local teardown aborts the wait so a
          // half-frame from a hung peer cannot block the destructor.
          ReadStatus body = ReadStatus::kTimeout;
          const auto aborted = [this] {
            return stopping_.load(std::memory_order_acquire);
          };
          while (body == ReadStatus::kTimeout) {
            body = read_full(fd, payload.data(),
                             payload.size() * sizeof(std::uint64_t), what,
                             aborted);
            if (body == ReadStatus::kTimeout && aborted()) {
              throw TransportError(what + ": teardown during frame");
            }
          }
        }
        bytes_received_.fetch_add(
            sizeof header + payload.size() * sizeof(std::uint64_t),
            std::memory_order_relaxed);
        if (header[0] == kFrameHeartbeat) {
          // Observer lane: update the peer-health table, never a mailbox.
          note_heartbeat(q, payload);
          continue;
        }
        const Lane lane =
            header[0] == kFrameApp ? Lane::kApp : Lane::kCollective;
        inbox_[static_cast<std::size_t>(lane)].push({q, std::move(payload)});
      }
    } catch (const TransportError& error) {
      mark_peer_dead(q);
      fail_all(error.what());
    }
  }

  void fail_all(const std::string& reason) {
    for (Mailbox& inbox : inbox_) inbox.fail(reason);
  }

  /// What this endpoint has heard about one peer over the heartbeat lane.
  struct PeerSlot {
    bool known = false;
    bool dead = false;
    ProgressSnapshot progress;
    std::uint64_t last_heard_ns = 0;
    std::uint64_t last_change_ns = 0;
  };

  void mark_peer_dead(int q) {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    peers_[static_cast<std::size_t>(q)].dead = true;
  }

  /// Receiver thread: folds one heartbeat payload into the peer table.
  /// The advance counter decides "changed": a stopped peer (SIGSTOP) that
  /// resumes delivering stale queued frames still reads as unchanged
  /// until its board actually moves again.
  void note_heartbeat(int q, const std::vector<std::uint64_t>& payload) {
    if (payload.size() != ProgressBoard::kWireWords) return;
    std::array<std::uint64_t, ProgressBoard::kWireWords> words{};
    std::copy(payload.begin(), payload.end(), words.begin());
    const ProgressSnapshot snap = ProgressBoard::unpack(words);
    const std::uint64_t now = trace_now_ns();
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    PeerSlot& slot = peers_[static_cast<std::size_t>(q)];
    if (!slot.known || slot.progress.advances != snap.advances) {
      slot.last_change_ns = now;
    }
    slot.known = true;
    slot.progress = snap;
    slot.last_heard_ns = now;
  }

  /// Heartbeat thread body: one frame per peer per interval, first frame
  /// immediately so peers learn of this rank before its first silence.
  void heartbeat_loop(int interval_ms) {
    while (true) {
      send_heartbeats();
      std::unique_lock<std::mutex> lock(hb_mutex_);
      if (hb_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                          [this] { return hb_stop_; })) {
        return;
      }
    }
  }

  void send_heartbeats() {
    std::uint64_t frame[2 + ProgressBoard::kWireWords];
    frame[0] = kFrameHeartbeat;
    frame[1] = ProgressBoard::kWireWords;
    const auto words = watch_board_->pack();
    std::copy(words.begin(), words.end(), frame + 2);
    for (int q = 0; q < options_.num_ranks; ++q) {
      const std::size_t slot = static_cast<std::size_t>(q);
      if (q == options_.rank || fds_[slot] < 0 || hb_ok_[slot] == 0) {
        continue;
      }
      try {
        const std::lock_guard<std::mutex> lock(send_mutexes_[slot]);
        write_full(fds_[slot], frame, sizeof frame,
                   "tcp heartbeat to rank " + std::to_string(q));
      } catch (const TransportError&) {
        // This peer's link is gone; its receive_loop reports the death.
        // Stop heartbeating it so the watch thread never throws again.
        hb_ok_[slot] = 0;
        continue;
      }
      bytes_sent_.fetch_add(sizeof frame, std::memory_order_relaxed);
      hb_frames_.fetch_add(1, std::memory_order_relaxed);
      hb_words_.fetch_add(ProgressBoard::kWireWords,
                          std::memory_order_relaxed);
    }
  }

  TcpOptions options_;
  std::vector<int> fds_;  ///< mesh connection per rank; own rank = -1
  /// Serializes writers per peer fd: the PE thread (send) and the
  /// heartbeat thread share the socket; without this, frame bytes could
  /// interleave mid-frame and corrupt the stream.
  std::vector<std::mutex> send_mutexes_;
  std::array<Mailbox, kNumLanes> inbox_;
  std::vector<std::thread> receivers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};

  // kappa-watch state.
  const ProgressBoard* watch_board_ = nullptr;
  std::thread heartbeat_;
  std::mutex hb_mutex_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;           ///< guarded by hb_mutex_
  std::vector<char> hb_ok_;        ///< heartbeat thread only, after ctor
  std::atomic<std::uint64_t> hb_frames_{0};
  std::atomic<std::uint64_t> hb_words_{0};
  mutable std::mutex watch_mutex_;
  std::vector<PeerSlot> peers_;    ///< guarded by watch_mutex_
};

/// The fabric of a TCP process: exactly one locally hosted rank.
class TcpFabric final : public TransportFabric {
 public:
  explicit TcpFabric(const TcpOptions& options) : transport_(options) {}

  [[nodiscard]] int size() const override { return transport_.size(); }

  [[nodiscard]] std::vector<int> local_ranks() const override {
    return {transport_.rank()};
  }

  [[nodiscard]] Transport& endpoint(int rank) override {
    if (rank != transport_.rank()) {
      throw std::invalid_argument(
          "tcp fabric hosts only rank " + std::to_string(transport_.rank()) +
          ", not rank " + std::to_string(rank));
    }
    return transport_;
  }

  [[nodiscard]] const char* name() const override { return "tcp"; }

 private:
  TcpTransport transport_;
};

}  // namespace

std::unique_ptr<TransportFabric> make_tcp_fabric(const TcpOptions& options) {
  return std::make_unique<TcpFabric>(options);
}

}  // namespace kappa
