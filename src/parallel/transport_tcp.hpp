/// \file transport_tcp.hpp
/// \brief TCP socket transport backend: one SPMD run spanning processes.
///
/// Each process hosts exactly one rank. Rank 0 listens on the rendezvous
/// address; every other rank binds an ephemeral listen port, connects to
/// rank 0 with retry + backoff and announces (rank, listen port); rank 0
/// replies with the full address table, after which the ranks complete a
/// full mesh (rank i connects to every lower rank j > 0, accepts from
/// every higher one). Every connection carries length-prefixed frames of
/// 64-bit words — the wire_format.hpp word-buffer discipline made literal
/// bytes — tagged with the logical lane, and one receiver thread per peer
/// feeds the frames into the same mailbox path the in-process backend
/// uses.
///
/// Failure is loud by design: a connection that closes without the BYE
/// handshake poisons the mailbox (every receive throws TransportError),
/// and a blocking receive gives up after the configured deadline — a
/// dead or hung peer surfaces as an error within recv_timeout_ms, never
/// as a hang.
///
/// Wire assumption: the word stream travels in native byte order, i.e.
/// all ranks of one run must be homogeneous (the paper's cluster was).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "parallel/transport.hpp"

namespace kappa {

/// Configuration of one rank's TCP endpoint.
struct TcpOptions {
  int rank = 0;       ///< this process's rank in [0, num_ranks)
  int num_ranks = 1;  ///< total ranks of the run, across all processes

  /// Rank 0's rendezvous address. Rank 0 binds it; everyone else
  /// connects to it.
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;

  /// Total budget for establishing each connection of the mesh,
  /// including the connect retry/backoff loop (peers may start late).
  int connect_timeout_ms = 15000;

  /// Deadline of one blocking receive (and of each barrier round); a
  /// peer that stays silent longer surfaces as a TransportError. 0 waits
  /// forever. Must cover the longest compute imbalance between ranks.
  int recv_timeout_ms = 60000;
};

/// Creates the TCP fabric for this process's rank: performs the
/// rendezvous, establishes the full mesh, starts the receiver threads,
/// and synchronizes all ranks once before returning. Throws
/// TransportError when the mesh cannot be established within the
/// configured timeouts, std::invalid_argument for malformed options.
[[nodiscard]] std::unique_ptr<TransportFabric> make_tcp_fabric(
    const TcpOptions& options);

}  // namespace kappa
