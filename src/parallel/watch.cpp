#include "parallel/watch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/trace.hpp"

namespace kappa {
namespace {

/// Minimal JSON string escaping — span names are identifier-like
/// literals, but paths and env-provided strings may carry anything.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string j_str(const char* key, const std::string& value) {
  return std::string("\"") + key + "\":\"" + json_escape(value) + "\"";
}

std::string j_u64(const char* key, std::uint64_t value) {
  return std::string("\"") + key + "\":" + std::to_string(value);
}

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kApp:
      return "app";
    case Lane::kCollective:
      return "collective";
    case Lane::kHeartbeat:
      return "heartbeat";
  }
  return "?";
}

/// Classifies a peer from the transport's liveness knowledge. `stalled`
/// requires a configured timeout: without one, any quiet-but-connected
/// peer is simply `alive`.
const char* classify_peer(const std::optional<PeerHealth>& health,
                          std::uint64_t now_ns, std::uint64_t timeout_ns) {
  if (!health.has_value()) return "unknown";
  if (health->dead) return "dead";
  if (timeout_ns > 0 && health->last_change_ns != 0 &&
      now_ns > health->last_change_ns &&
      now_ns - health->last_change_ns >= timeout_ns) {
    return "stalled";
  }
  return "alive";
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

WatchOptions resolve_watch_options(const std::string& snapshot_path,
                                   int stall_timeout_ms, int sample_interval_ms,
                                   int heartbeat_interval_ms) {
  WatchOptions options;
  options.snapshot_path = snapshot_path;
  options.stall_timeout_ms = stall_timeout_ms;
  options.sample_interval_ms = sample_interval_ms;
  options.heartbeat_interval_ms = heartbeat_interval_ms;
  const char* env_path = std::getenv("KAPPA_WATCH_OUT");
  if (env_path != nullptr && *env_path != '\0') {
    options.snapshot_path = env_path;
  }
  options.stall_timeout_ms = static_cast<int>(env_u64(
      "KAPPA_STALL_TIMEOUT_MS",
      static_cast<std::uint64_t>(options.stall_timeout_ms)));
  options.sample_interval_ms = static_cast<int>(env_u64(
      "KAPPA_WATCH_INTERVAL_MS",
      static_cast<std::uint64_t>(options.sample_interval_ms)));
  options.heartbeat_interval_ms = static_cast<int>(env_u64(
      "KAPPA_HEARTBEAT_INTERVAL_MS",
      static_cast<std::uint64_t>(options.heartbeat_interval_ms)));
  options.sample_interval_ms = std::max(1, options.sample_interval_ms);
  options.heartbeat_interval_ms = std::max(1, options.heartbeat_interval_ms);
  return options;
}

void WatchSink::append(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!opened_) {
    opened_ = true;
    if (!path_.empty()) {
      out_.open(path_, std::ios::out | std::ios::trunc);
      if (!out_.is_open()) {
        std::fprintf(stderr, "kappa-watch: cannot open %s, falling back to stderr\n",
                     path_.c_str());
      }
    }
  }
  if (out_.is_open()) {
    out_ << json_line << '\n';
    out_.flush();
  } else {
    std::fprintf(stderr, "%s\n", json_line.c_str());
  }
}

RankWatch::RankWatch(PEContext& pe, const ProgressBoard& board,
                     WatchOptions options, WatchSink* sink, bool run_sampler)
    : pe_(pe), board_(board), options_(std::move(options)), sink_(sink) {
  pe_.enable_watch(&board_, options_.heartbeat_interval_ms);
  if (options_.stall_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  if (run_sampler && sink_ != nullptr && !options_.snapshot_path.empty()) {
    sampler_ = std::thread([this] { sampler_loop(); });
  }
}

RankWatch::~RankWatch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  if (sampler_.joinable()) sampler_.join();
  pe_.disable_watch();
}

void RankWatch::watchdog_loop() {
  const std::uint64_t timeout_ns =
      static_cast<std::uint64_t>(options_.stall_timeout_ms) * 1000000ull;
  // Check a few times per timeout window so a stall is reported within
  // ~1.25x the configured deadline, but never spin faster than 10 ms.
  const int tick_ms = std::clamp(options_.stall_timeout_ms / 4, 10, 250);
  // One report per stall episode: after reporting, stay quiet until the
  // advance counter moves again, then re-arm for the next episode.
  bool armed = true;
  std::uint64_t reported_advances = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    const ProgressSnapshot snap = board_.snapshot();
    const std::uint64_t now_ns = trace_now_ns();
    if (!armed && snap.advances != reported_advances) armed = true;
    if (armed && snap.last_advance_ns != 0 && now_ns > snap.last_advance_ns &&
        now_ns - snap.last_advance_ns >= timeout_ns) {
      emit_stall_report(snap, now_ns, now_ns - snap.last_advance_ns);
      armed = false;
      reported_advances = snap.advances;
      stall_reports_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

void RankWatch::sampler_loop() {
  std::uint64_t seq = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const bool stopping =
        cv_.wait_for(lock, std::chrono::milliseconds(options_.sample_interval_ms),
                     [this] { return stop_; });
    lock.unlock();
    emit_snapshot(seq++);
    if (stopping) return;  // final snapshot emitted — every run gets >= 1
    lock.lock();
  }
}

std::string RankWatch::rank_table_json(std::uint64_t now_ns) const {
  const std::uint64_t timeout_ns =
      static_cast<std::uint64_t>(options_.stall_timeout_ms) * 1000000ull;
  std::string out = "[";
  for (int q = 0; q < pe_.size(); ++q) {
    if (q > 0) out += ',';
    ProgressSnapshot snap;
    const char* state = "unknown";
    std::uint64_t change_ns = 0;
    if (q == pe_.rank()) {
      snap = board_.snapshot();
      change_ns = snap.last_advance_ns;
      state = "alive";
      if (timeout_ns > 0 && change_ns != 0 && now_ns > change_ns &&
          now_ns - change_ns >= timeout_ns) {
        state = "stalled";
      }
    } else {
      const std::optional<PeerHealth> health = pe_.peer_health(q);
      state = classify_peer(health, now_ns, timeout_ns);
      if (health.has_value()) {
        snap = health->progress;
        change_ns = health->last_change_ns;
      }
    }
    const std::uint64_t age_ms =
        (change_ns != 0 && now_ns > change_ns) ? (now_ns - change_ns) / 1000000ull
                                               : 0;
    out += '{';
    out += j_u64("rank", static_cast<std::uint64_t>(q)) + ',';
    out += j_str("state", state) + ',';
    out += j_str("phase", progress_phase_name(snap.phase)) + ',';
    out += j_u64("level", static_cast<std::uint64_t>(snap.level)) + ',';
    out += j_u64("iteration", static_cast<std::uint64_t>(snap.iteration)) + ',';
    out += j_u64("pairs", snap.pairs_executed) + ',';
    out += j_u64("advances", snap.advances) + ',';
    out += j_u64("age_ms", age_ms);
    out += '}';
  }
  out += ']';
  return out;
}

void RankWatch::emit_stall_report(const ProgressSnapshot& snap,
                                  std::uint64_t now_ns,
                                  std::uint64_t stalled_ns) {
  const std::uint64_t stalled_ms = stalled_ns / 1000000ull;
  const std::vector<const char*> spans = board_.open_spans();
  const std::vector<ProgressBoard::RecentEvent> recent = board_.recent_events();
  const std::vector<LaneQueueDepth> depths = pe_.queue_depths();

  // --- JSON record (kappa.stall.v1) -----------------------------------
  std::string json = "{";
  json += j_str("schema", "kappa.stall.v1") + ',';
  json += j_u64("rank", static_cast<std::uint64_t>(pe_.rank())) + ',';
  json += j_u64("t_ns", now_ns) + ',';
  json += j_u64("stalled_ms", stalled_ms) + ',';
  json += "\"progress\":{";
  json += j_str("phase", progress_phase_name(snap.phase)) + ',';
  json += j_u64("level", static_cast<std::uint64_t>(snap.level)) + ',';
  json += j_u64("iteration", static_cast<std::uint64_t>(snap.iteration)) + ',';
  json += j_u64("pairs", snap.pairs_executed) + ',';
  json += j_u64("advances", snap.advances) + ',';
  json += j_u64("last_advance_ns", snap.last_advance_ns);
  json += "},";
  json += "\"open_spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) json += ',';
    json += '"' + json_escape(spans[i]) + '"';
  }
  json += "],";
  json += "\"recent\":[";
  for (std::size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) json += ',';
    json += '{' + j_str("name", recent[i].name) + ',' +
            j_u64("t_ns", recent[i].at_ns) + '}';
  }
  json += "],";
  json += "\"queue_depths\":[";
  {
    bool first = true;
    for (const LaneQueueDepth& d : depths) {
      if (d.depth == 0) continue;
      if (!first) json += ',';
      first = false;
      json += '{' + j_u64("source", static_cast<std::uint64_t>(d.source)) +
              ',' + j_str("lane", lane_name(d.lane)) + ',' +
              j_u64("depth", d.depth) + '}';
    }
  }
  json += "],";
  json += "\"async\":{";
  json += j_u64("locks_held", board_.aux(ProgressAux::kAsyncLocksHeld)) + ',';
  json += j_u64("grants_in_flight",
                board_.aux(ProgressAux::kAsyncGrantsInFlight)) +
          ',';
  json += j_u64("pairs_done", board_.aux(ProgressAux::kAsyncPairsDone));
  json += "},";
  json += "\"peers\":" + rank_table_json(now_ns);
  json += '}';
  if (sink_ != nullptr) sink_->append(json);

  // --- human-readable block (stderr, one write to avoid interleaving) --
  std::string text = "kappa-watch: rank " + std::to_string(pe_.rank()) +
                     " STALLED for " + std::to_string(stalled_ms) +
                     " ms in phase " + progress_phase_name(snap.phase) +
                     " (level " + std::to_string(snap.level) + ", iteration " +
                     std::to_string(snap.iteration) + ", " +
                     std::to_string(snap.pairs_executed) + " pairs)\n";
  text += "  open spans:";
  if (spans.empty()) text += " (none)";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    text += (i == 0 ? " " : " > ");
    text += spans[i];
  }
  text += "\n  recent:";
  if (recent.empty()) text += " (none)";
  for (const ProgressBoard::RecentEvent& e : recent) {
    text += ' ';
    text += e.name;
  }
  text += "\n  queues:";
  {
    bool any = false;
    for (const LaneQueueDepth& d : depths) {
      if (d.depth == 0) continue;
      any = true;
      text += ' ';
      text += lane_name(d.lane);
      text += "<-" + std::to_string(d.source) + ":" + std::to_string(d.depth);
    }
    if (!any) text += " (empty)";
  }
  text += "\n  async: locks_held=" +
          std::to_string(board_.aux(ProgressAux::kAsyncLocksHeld)) +
          " grants_in_flight=" +
          std::to_string(board_.aux(ProgressAux::kAsyncGrantsInFlight)) +
          " pairs_done=" +
          std::to_string(board_.aux(ProgressAux::kAsyncPairsDone)) + "\n";
  text += "  peers:";
  {
    const std::uint64_t timeout_ns =
        static_cast<std::uint64_t>(options_.stall_timeout_ms) * 1000000ull;
    for (int q = 0; q < pe_.size(); ++q) {
      if (q == pe_.rank()) continue;
      text += " " + std::to_string(q) + "=" +
              classify_peer(pe_.peer_health(q), now_ns, timeout_ns);
    }
  }
  text += '\n';
  std::fputs(text.c_str(), stderr);
}

void RankWatch::emit_snapshot(std::uint64_t seq) {
  const std::uint64_t now_ns = trace_now_ns();
  const ProgressSnapshot snap = board_.snapshot();
  const std::uint64_t wire_sent = pe_.wire_bytes_sent();
  const std::uint64_t wire_received = pe_.wire_bytes_received();
  const std::uint64_t hb_frames = pe_.heartbeat_frames_sent();
  const std::uint64_t hb_words = pe_.heartbeat_words_sent();

  std::string json = "{";
  json += j_str("schema", "kappa.snapshot.v1") + ',';
  json += j_u64("seq", seq) + ',';
  json += j_u64("t_ns", now_ns) + ',';
  json += j_u64("rank", static_cast<std::uint64_t>(pe_.rank())) + ',';
  json += j_u64("num_ranks", static_cast<std::uint64_t>(pe_.size())) + ',';
  json += "\"metrics\":{";
  json += j_u64("wire_bytes_sent_delta", wire_sent - prev_wire_sent_) + ',';
  json +=
      j_u64("wire_bytes_received_delta", wire_received - prev_wire_received_) +
      ',';
  json += j_u64("heartbeat_frames_delta", hb_frames - prev_hb_frames_) + ',';
  json += j_u64("heartbeat_words_delta", hb_words - prev_hb_words_) + ',';
  json += j_u64("pairs_delta", snap.pairs_executed - prev_pairs_) + ',';
  json += j_u64("advances_delta", snap.advances - prev_advances_);
  json += "},";
  json += "\"ranks\":" + rank_table_json(now_ns);
  json += '}';
  prev_wire_sent_ = wire_sent;
  prev_wire_received_ = wire_received;
  prev_hb_frames_ = hb_frames;
  prev_hb_words_ = hb_words;
  prev_pairs_ = snap.pairs_executed;
  prev_advances_ = snap.advances;
  if (sink_ != nullptr) sink_->append(json);
}

}  // namespace kappa
