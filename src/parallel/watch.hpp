/// \file watch.hpp
/// \brief kappa-watch: live run health — the per-rank stall watchdog and
/// the streaming snapshot sampler over the ProgressBoard / heartbeat
/// substrate (util/progress.hpp, the transport watch hooks).
///
/// kappa-trace (trace_merge.hpp) explains a run after it ends; this layer
/// answers the operator's question *while the run is in flight*: is every
/// rank moving, and if not, which rank is slow, which is stalled, and
/// which is dead? Three verdicts with three distinct evidence sources:
///
///   dead    — the transport saw the peer's connection die without the
///             shutdown handshake (PR 7's dead-peer deadline); pending
///             receives also fail with TransportError.
///   stalled — the connection is up but the peer's progress word has not
///             advanced within the stall timeout. This is what a
///             SIGSTOP'd or wedged rank looks like: heartbeats stop (or
///             repeat an unchanged advance counter) while the socket
///             stays open.
///   alive   — progress evidence within the timeout.
///
/// Everything here is observer-only: RankWatch reads atomics and
/// transport introspection (queue depths, peer health) through PEContext
/// and writes JSONL + stderr; it never sends on an algorithm lane and
/// never feeds anything back, so the partition is byte-identical with
/// watch on or off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "parallel/pe_runtime.hpp"
#include "util/progress.hpp"

namespace kappa {

/// Knobs of the watch layer, after environment resolution.
struct WatchOptions {
  /// JSONL snapshot/stall-report path (--watch-out). Empty: no sampler;
  /// stall reports fall back to stderr.
  std::string snapshot_path;
  /// Stall watchdog timeout (--stall-timeout-ms); 0 disables the watchdog.
  int stall_timeout_ms = 0;
  /// Snapshot cadence of the rank-0 sampler.
  int sample_interval_ms = 250;
  /// Heartbeat cadence on multi-process transports.
  int heartbeat_interval_ms = 100;

  [[nodiscard]] bool enabled() const {
    return !snapshot_path.empty() || stall_timeout_ms > 0;
  }
};

/// Applies the environment overrides to the Config-level knobs:
/// KAPPA_WATCH_OUT and KAPPA_STALL_TIMEOUT_MS override the arguments,
/// KAPPA_WATCH_INTERVAL_MS / KAPPA_HEARTBEAT_INTERVAL_MS tune the
/// cadences. Mirrors trace_run_enabled()'s config-or-environment rule.
[[nodiscard]] WatchOptions resolve_watch_options(
    const std::string& snapshot_path, int stall_timeout_ms,
    int sample_interval_ms = 250, int heartbeat_interval_ms = 100);

/// Thread-safe JSONL appender shared by one process's RankWatch
/// instances. Opens the file lazily on the first record, so a rank whose
/// watch never has anything to say (no sampler, no stalls) leaves no
/// file behind. With an empty path, records go to stderr.
class WatchSink {
 public:
  explicit WatchSink(std::string path) : path_(std::move(path)) {}

  /// Appends one JSON record (no trailing newline in \p json_line) and
  /// flushes, so a reader tailing the file — or a post-mortem after a
  /// kill — always sees complete lines.
  void append(const std::string& json_line);

 private:
  std::mutex mutex_;
  std::string path_;
  std::ofstream out_;
  bool opened_ = false;
};

/// One rank's live-health observer: a watchdog thread that emits a
/// structured stall report when the rank's own board stops advancing for
/// stall_timeout_ms, and — on the sampling rank only — a sampler thread
/// streaming `kappa.snapshot.v1` records to the sink. Construction
/// enables the transport's watch hooks (heartbeats); destruction joins
/// both threads, emits the sampler's final snapshot, and disables the
/// hooks again. \p board and \p sink must outlive this object.
class RankWatch {
 public:
  RankWatch(PEContext& pe, const ProgressBoard& board, WatchOptions options,
            WatchSink* sink, bool run_sampler);
  ~RankWatch();
  RankWatch(const RankWatch&) = delete;
  RankWatch& operator=(const RankWatch&) = delete;

  /// Stall reports emitted so far (0 on a healthy run).
  [[nodiscard]] std::uint64_t stall_reports() const {
    return stall_reports_.load(std::memory_order_relaxed);
  }

 private:
  void watchdog_loop();
  void sampler_loop();
  void emit_stall_report(const ProgressSnapshot& snap, std::uint64_t now_ns,
                         std::uint64_t stalled_ns);
  void emit_snapshot(std::uint64_t seq);
  [[nodiscard]] std::string rank_table_json(std::uint64_t now_ns) const;

  PEContext& pe_;
  const ProgressBoard& board_;
  WatchOptions options_;
  WatchSink* sink_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;  ///< guarded by mutex_
  std::atomic<std::uint64_t> stall_reports_{0};
  std::thread watchdog_;
  std::thread sampler_;

  // Sampler delta baselines (sampler thread only).
  std::uint64_t prev_wire_sent_ = 0;
  std::uint64_t prev_wire_received_ = 0;
  std::uint64_t prev_hb_frames_ = 0;
  std::uint64_t prev_hb_words_ = 0;
  std::uint64_t prev_pairs_ = 0;
  std::uint64_t prev_advances_ = 0;
};

}  // namespace kappa
