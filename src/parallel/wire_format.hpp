/// \file wire_format.hpp
/// \brief Word encodings of the SPMD wire protocol.
///
/// Channel payloads are flat 64-bit word vectors (channel.hpp), so every
/// structured value that crosses the wire is packed into words here, in
/// one place. Two node ids share one word; the packing is only sound
/// while NodeID fits 32 bits, which the static_asserts below pin down —
/// if NodeID is ever widened, they fail the build at the packing site
/// instead of letting the high bits truncate silently.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>

#include "util/types.hpp"

namespace kappa {

static_assert(sizeof(NodeID) * 8 <= 32,
              "pack_pair()/edge_key() pack two NodeIDs into one 64-bit "
              "word; widen the wire format before widening NodeID");
static_assert(sizeof(BlockID) * 8 <= 32,
              "pack_pair() carries (NodeID, BlockID) move deltas in one "
              "word; widen the wire format before widening BlockID");

/// Canonical identity of an undirected edge, agreed on by both endpoint
/// owners regardless of which side packs it (candidate indices are
/// PE-local and never cross the wire).
[[nodiscard]] constexpr std::uint64_t edge_key(NodeID u, NodeID v) {
  const NodeID lo = u < v ? u : v;
  const NodeID hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) |
         static_cast<std::uint64_t>(hi);
}

/// Packs an ordered pair of 32-bit ids into one word (matched pairs,
/// (node, block) move deltas).
[[nodiscard]] constexpr std::uint64_t pack_pair(std::uint32_t first,
                                                std::uint32_t second) {
  return (static_cast<std::uint64_t>(first) << 32) |
         static_cast<std::uint64_t>(second);
}

/// Inverse of pack_pair().
[[nodiscard]] constexpr std::pair<std::uint32_t, std::uint32_t> unpack_pair(
    std::uint64_t word) {
  return {static_cast<std::uint32_t>(word >> 32),
          static_cast<std::uint32_t>(word & 0xffffffffULL)};
}

/// Node and edge weights (signed 64-bit) travel as their bit pattern.
[[nodiscard]] inline std::uint64_t weight_bits(std::int64_t w) {
  return std::bit_cast<std::uint64_t>(w);
}

/// Inverse of weight_bits().
[[nodiscard]] inline std::int64_t bits_weight(std::uint64_t bits) {
  return std::bit_cast<std::int64_t>(bits);
}

}  // namespace kappa
