#include "refinement/band.hpp"

#include <cstdint>

namespace kappa {

std::vector<NodeID> boundary_band_from_seeds(const StaticGraph& graph,
                                             const Partition& partition,
                                             BlockID a, BlockID b,
                                             const std::vector<NodeID>& seeds,
                                             int depth,
                                             const std::vector<char>* movable) {
  // Per-thread scratch to avoid O(n) allocations per pair (the band is
  // typically a small fraction of the graph).
  thread_local std::vector<std::uint32_t> stamp;
  thread_local std::uint32_t epoch = 0;
  if (stamp.size() < graph.num_nodes()) {
    stamp.assign(graph.num_nodes(), 0);
    epoch = 0;
  }
  ++epoch;

  std::vector<NodeID> band;
  std::vector<NodeID> frontier;
  for (const NodeID u : seeds) {
    // Seed lists collected before earlier moves of the same level can be
    // stale: a seed whose node left the pair — or that no longer names a
    // node of this graph at all — must be skipped before any array it
    // would index is touched, not crash or pollute the band.
    if (u >= graph.num_nodes()) continue;
    const BlockID bu = partition.block(u);
    if (bu != a && bu != b) continue;
    if (movable != nullptr && !(*movable)[u]) continue;
    if (stamp[u] == epoch) continue;
    stamp[u] = epoch;
    band.push_back(u);
    frontier.push_back(u);
  }

  // Bounded BFS inside the two blocks (and inside the movable region —
  // frozen context nodes of a band-limited view are never entered).
  std::vector<NodeID> next;
  for (int level = 1; level < depth && !frontier.empty(); ++level) {
    next.clear();
    for (const NodeID u : frontier) {
      for (const NodeID v : graph.neighbors(u)) {
        if (stamp[v] == epoch) continue;
        const BlockID bv = partition.block(v);
        if (bv != a && bv != b) continue;
        if (movable != nullptr && !(*movable)[v]) continue;
        stamp[v] = epoch;
        band.push_back(v);
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return band;
}

std::vector<NodeID> boundary_band(const StaticGraph& graph,
                                  const Partition& partition, BlockID a,
                                  BlockID b, int depth) {
  std::vector<NodeID> seeds;
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    const BlockID bu = partition.block(u);
    if (bu != a && bu != b) continue;
    const BlockID other = bu == a ? b : a;
    for (const NodeID v : graph.neighbors(u)) {
      if (partition.block(v) == other) {
        seeds.push_back(u);
        break;
      }
    }
  }
  return boundary_band_from_seeds(graph, partition, a, b, seeds, depth);
}

}  // namespace kappa
