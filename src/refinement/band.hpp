/// \file band.hpp
/// \brief Boundary band extraction by bounded BFS (§5.2).
///
/// "Before a local search operation, we perform a bounded breadth first
/// search starting from the boundary of each block, and send copies of
/// this boundary array to the partner PE ... The local search is then
/// limited to this boundary area. This way, for large graphs, only a small
/// fraction of each block has to be communicated." If a search would
/// profit from leaving the band, it can do so in a later outer iteration.
#pragma once

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/seeded_hash.hpp"
#include "util/types.hpp"

namespace kappa {

/// Returns the band of blocks \p a and \p b: all nodes of these two blocks
/// reachable within \p depth BFS hops from the pair boundary (nodes of a
/// adjacent to b and vice versa), staying inside the two blocks. depth = 1
/// returns exactly the boundary nodes.
[[nodiscard]] std::vector<NodeID> boundary_band(const StaticGraph& graph,
                                                const Partition& partition,
                                                BlockID a, BlockID b,
                                                int depth);

/// Same, but seeded with a precomputed boundary list (as collected per
/// quotient edge during QuotientGraph construction) instead of scanning
/// all nodes. Seed lists can be stale after mid-level block moves: seeds
/// whose node left the pair — or that reference ids outside the graph
/// altogether, as happens when a seed list collected on one view outlives
/// a move — are skipped, never expanded. \p movable (optional, indexed by
/// node id) restricts the band to nodes marked movable; the BFS neither
/// admits nor crosses unmarked nodes. This is how a band-limited pair
/// view confines the search to the shipped band: the non-movable fringe
/// keeps gains exact but is frozen context.
[[nodiscard]] std::vector<NodeID> boundary_band_from_seeds(
    const StaticGraph& graph, const Partition& partition, BlockID a,
    BlockID b, const std::vector<NodeID>& seeds, int depth,
    const std::vector<char>* movable = nullptr);

/// One side of a pair band on a row store (§5.2 band shipping): bounded
/// BFS from \p seeds staying inside block \p side, expanding through the
/// rows the \p neighbors oracle serves. Seeds whose node left the side
/// (stale after mid-level moves) are skipped — the block oracle is
/// consulted before any row access, so a departed row is never touched.
/// Returns the band sorted by id. Because every cross-side step of the
/// free two-block BFS lands on a pair-boundary node (itself a seed when
/// the seed list carries the current boundary), the union of the two
/// per-side bands equals the two-block band of boundary_band().
///
/// \p block_of : NodeID -> BlockID (kInvalidBlock when unknown here)
/// \p neighbors: (NodeID u, visit(NodeID target)) over u's resident row
template <typename BlockOf, typename Neighbors>
[[nodiscard]] std::vector<NodeID> boundary_band_side(
    BlockID side, const std::vector<NodeID>& seeds, int depth,
    BlockOf&& block_of, Neighbors&& neighbors) {
  hash_set<NodeID> visited;
  std::vector<NodeID> band;
  std::vector<NodeID> frontier;
  for (const NodeID s : seeds) {
    if (block_of(s) != side) continue;  // stale seed: left the side
    if (!visited.insert(s).second) continue;
    band.push_back(s);
    frontier.push_back(s);
  }
  std::vector<NodeID> next;
  for (int level = 1; level < depth && !frontier.empty(); ++level) {
    next.clear();
    for (const NodeID u : frontier) {
      neighbors(u, [&](NodeID v) {
        if (block_of(v) != side || !visited.insert(v).second) return;
        band.push_back(v);
        next.push_back(v);
      });
    }
    frontier.swap(next);
  }
  std::sort(band.begin(), band.end());
  return band;
}

}  // namespace kappa
