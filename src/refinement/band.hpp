/// \file band.hpp
/// \brief Boundary band extraction by bounded BFS (§5.2).
///
/// "Before a local search operation, we perform a bounded breadth first
/// search starting from the boundary of each block, and send copies of
/// this boundary array to the partner PE ... The local search is then
/// limited to this boundary area. This way, for large graphs, only a small
/// fraction of each block has to be communicated." If a search would
/// profit from leaving the band, it can do so in a later outer iteration.
#pragma once

#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Returns the band of blocks \p a and \p b: all nodes of these two blocks
/// reachable within \p depth BFS hops from the pair boundary (nodes of a
/// adjacent to b and vice versa), staying inside the two blocks. depth = 1
/// returns exactly the boundary nodes.
[[nodiscard]] std::vector<NodeID> boundary_band(const StaticGraph& graph,
                                                const Partition& partition,
                                                BlockID a, BlockID b,
                                                int depth);

/// Same, but seeded with a precomputed boundary list (as collected per
/// quotient edge during QuotientGraph construction) instead of scanning
/// all nodes. Seeds that left the pair since collection are skipped.
[[nodiscard]] std::vector<NodeID> boundary_band_from_seeds(
    const StaticGraph& graph, const Partition& partition, BlockID a,
    BlockID b, const std::vector<NodeID>& seeds, int depth);

}  // namespace kappa
