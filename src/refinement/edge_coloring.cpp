#include "refinement/edge_coloring.hpp"

#include <algorithm>
#include <string>

namespace kappa {

namespace {

/// Smallest color unused at both endpoints — min(L ∩ L') of the protocol.
int min_free_color(const std::vector<bool>& used_a,
                   const std::vector<bool>& used_b) {
  for (int c = 0;; ++c) {
    const bool a_used =
        c < static_cast<int>(used_a.size()) && used_a[c];
    const bool b_used =
        c < static_cast<int>(used_b.size()) && used_b[c];
    if (!a_used && !b_used) return c;
  }
}

void mark_used(std::vector<bool>& used, int color) {
  if (static_cast<std::size_t>(color) >= used.size()) {
    used.resize(color + 1, false);
  }
  used[color] = true;
}

}  // namespace

EdgeColoring color_quotient_edges(const QuotientGraph& quotient,
                                  const Rng& rng) {
  const BlockID k = quotient.num_blocks();
  const std::size_t num_edges = quotient.edges().size();

  EdgeColoring coloring;
  coloring.color_of_edge.assign(num_edges, -1);
  if (num_edges == 0 || k == 0) return coloring;

  // One private stream per block, forked exactly like the PE runtime
  // forks rank streams: block b draws from rng.fork(b). This is what
  // makes the replicated simulation and the channel protocol
  // (parallel/dist_coloring) produce the *same* coloring from the same
  // seed — they are two executions of one randomized process.
  std::vector<Rng> block_rng;
  block_rng.reserve(k);
  for (BlockID b = 0; b < k; ++b) block_rng.push_back(rng.fork(b));

  // L(b): colors already used on edges incident to block b.
  std::vector<std::vector<bool>> used(k);
  // Uncolored incident edges per block, with lazy deletion (kept in
  // incident order — the candidate order of the protocol).
  std::vector<std::vector<std::size_t>> pending(k);
  for (BlockID b = 0; b < k; ++b) {
    pending[b] = quotient.incident(b);
  }

  constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);
  std::size_t colored = 0;
  while (colored < num_edges) {
    // --- Coin flips: every block is active or passive this round. ---
    std::vector<bool> active(k);
    for (BlockID b = 0; b < k; ++b) active[b] = block_rng[b].coin();

    // --- Active PEs each nominate one random uncolored incident edge. ---
    std::vector<std::size_t> nominated(k, kNoEdge);
    for (BlockID b = 0; b < k; ++b) {
      if (!active[b]) continue;
      auto& list = pending[b];
      // Lazy deletion of already-colored edges.
      std::erase_if(list, [&](std::size_t e) {
        return coloring.color_of_edge[e] != -1;
      });
      if (list.empty()) continue;
      nominated[b] = list[block_rng[b].bounded(list.size())];
    }

    // --- Passive PEs answer with min(L ∩ L'), serving their incident
    // edges in neighbor order (the order the protocol's per-channel
    // receives impose). Requests whose nominator is also active are
    // rejected (§5.1) — here: simply not served. ---
    for (BlockID v = 0; v < k; ++v) {
      if (active[v]) continue;
      for (const std::size_t e : quotient.incident(v)) {
        const QuotientEdge& edge = quotient.edges()[e];
        const BlockID u = edge.a == v ? edge.b : edge.a;
        if (!active[u] || nominated[u] != e) continue;
        const int c = min_free_color(used[u], used[v]);
        coloring.color_of_edge[e] = c;
        mark_used(used[u], c);
        mark_used(used[v], c);
        coloring.num_colors = std::max(coloring.num_colors, c + 1);
        ++colored;
      }
    }
  }
  return coloring;
}

std::string validate_coloring(const QuotientGraph& quotient,
                              const EdgeColoring& coloring) {
  if (coloring.color_of_edge.size() != quotient.edges().size()) {
    return "coloring size mismatch";
  }
  for (std::size_t i = 0; i < coloring.color_of_edge.size(); ++i) {
    if (coloring.color_of_edge[i] < 0) {
      return "uncolored edge " + std::to_string(i);
    }
  }
  for (BlockID b = 0; b < quotient.num_blocks(); ++b) {
    std::vector<int> seen;
    for (const std::size_t e : quotient.incident(b)) {
      seen.push_back(coloring.color_of_edge[e]);
    }
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
      return "two incident edges of block " + std::to_string(b) +
             " share a color";
    }
  }
  return {};
}

}  // namespace kappa
