/// \file edge_coloring.hpp
/// \brief Greedy edge coloring of the quotient graph (§5.1).
///
/// The colors partition the quotient edges into matchings; pairs of one
/// color touch disjoint blocks and can be refined concurrently. The paper
/// parallelizes the classic greedy coloring with a randomized
/// request/response protocol: every PE keeps a free-color list; each
/// round, PEs flip active/passive coins; an active PE u picks a random
/// uncolored incident edge {u,v} and sends it with its free list to v;
/// a passive v answers with c = min(L(u) ∩ L(v)); requests to other
/// active PEs are rejected. At most twice the optimal number of colors
/// is used.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/quotient_graph.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Result of an edge coloring: color of every quotient edge (indexed like
/// QuotientGraph::edges()) plus the number of colors used.
struct EdgeColoring {
  std::vector<int> color_of_edge;
  int num_colors = 0;

  /// Edge indices of one color class — a matching of Q.
  [[nodiscard]] std::vector<std::size_t> color_class(int color) const {
    std::vector<std::size_t> result;
    for (std::size_t i = 0; i < color_of_edge.size(); ++i) {
      if (color_of_edge[i] == color) result.push_back(i);
    }
    return result;
  }
};

/// Runs the randomized distributed protocol described in §5.1, simulated
/// round by round with one forked RNG stream per block (block b draws
/// from rng.fork(b), the same stream the PE runtime hands the protocol's
/// block-PE b). The channel variants in parallel/dist_coloring execute
/// the identical process and return the identical coloring for the same
/// seed — this replicated form is the deterministic oracle. Terminates
/// with certainty because every round with at least one active/passive
/// pair colors an edge and singleton conflicts are resolved by
/// re-flipping. The caller's generator is not advanced.
[[nodiscard]] EdgeColoring color_quotient_edges(const QuotientGraph& quotient,
                                                const Rng& rng);

/// Checks the coloring invariant: no two incident quotient edges share a
/// color; every edge is colored. Returns empty string if valid.
[[nodiscard]] std::string validate_coloring(const QuotientGraph& quotient,
                                            const EdgeColoring& coloring);

}  // namespace kappa
