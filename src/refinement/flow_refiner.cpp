#include "refinement/flow_refiner.hpp"

#include <cstdint>
#include <limits>
#include <vector>

#include "refinement/max_flow.hpp"

namespace kappa {

FlowRefineResult flow_refine_pair(const StaticGraph& graph,
                                  Partition& partition, BlockID a, BlockID b,
                                  std::span<const NodeID> band,
                                  const FlowRefineOptions& options) {
  FlowRefineResult result;
  if (band.empty()) return result;

  // Local indexing of the band (thread-local scratch, same pattern as FM).
  thread_local std::vector<std::uint32_t> local_index;
  thread_local std::vector<std::uint32_t> stamp;
  thread_local std::uint32_t epoch = 0;
  if (stamp.size() < graph.num_nodes()) {
    stamp.assign(graph.num_nodes(), 0);
    local_index.assign(graph.num_nodes(), 0);
    epoch = 0;
  }
  ++epoch;
  for (std::uint32_t i = 0; i < band.size(); ++i) {
    stamp[band[i]] = epoch;
    local_index[band[i]] = i;
  }

  const std::size_t s = band.size();
  const std::size_t t = band.size() + 1;
  FlowNetwork network(band.size() + 2);
  constexpr FlowNetwork::Flow kInf =
      std::numeric_limits<FlowNetwork::Flow>::max() / 4;

  // Current pair cut (to compare against the min cut value) and network
  // construction in one sweep.
  EdgeWeight old_pair_cut = 0;
  bool any_anchor_a = false;
  bool any_anchor_b = false;
  for (std::uint32_t i = 0; i < band.size(); ++i) {
    const NodeID u = band[i];
    const BlockID bu = partition.block(u);
    bool anchor_a = false;
    bool anchor_b = false;
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const NodeID v = graph.arc_target(e);
      const BlockID bv = partition.block(v);
      if (bu == a && bv == b) old_pair_cut += graph.arc_weight(e);
      if (stamp[v] == epoch) {
        // Band-internal edge: capacity once per undirected edge.
        if (u < v && (bv == a || bv == b)) {
          network.add_undirected_edge(i, local_index[v], graph.arc_weight(e));
        }
      } else if (bv == a) {
        anchor_a = true;  // rim neighbor stays in a: u is tied to s
      } else if (bv == b) {
        anchor_b = true;
      }
    }
    if (anchor_a) {
      network.add_edge(s, i, kInf);
      any_anchor_a = true;
    }
    if (anchor_b) {
      network.add_edge(i, t, kInf);
      any_anchor_b = true;
    }
  }

  // If the band swallowed a whole block there is no rim on that side and
  // the min cut would degenerate to "move everything". Anchor the band
  // node of that block farthest from the pair boundary instead (BFS
  // distance), preserving a non-trivial core.
  if (!any_anchor_a || !any_anchor_b) {
    std::vector<std::uint32_t> dist(band.size(),
                                    std::numeric_limits<std::uint32_t>::max());
    std::vector<std::uint32_t> queue;
    for (std::uint32_t i = 0; i < band.size(); ++i) {
      const NodeID u = band[i];
      const BlockID other = partition.block(u) == a ? b : a;
      for (const NodeID v : graph.neighbors(u)) {
        if (partition.block(v) == other) {
          dist[i] = 0;
          queue.push_back(i);
          break;
        }
      }
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::uint32_t i = queue[qi];
      const NodeID u = band[i];
      for (const NodeID v : graph.neighbors(u)) {
        if (stamp[v] != epoch) continue;
        const std::uint32_t j = local_index[v];
        if (dist[j] > dist[i] + 1) {
          dist[j] = dist[i] + 1;
          queue.push_back(j);
        }
      }
    }
    for (const BlockID side_block : {a, b}) {
      if ((side_block == a && any_anchor_a) ||
          (side_block == b && any_anchor_b)) {
        continue;
      }
      std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
      std::uint32_t best_dist = 0;
      for (std::uint32_t i = 0; i < band.size(); ++i) {
        if (partition.block(band[i]) != side_block) continue;
        const std::uint32_t d =
            dist[i] == std::numeric_limits<std::uint32_t>::max()
                ? std::numeric_limits<std::uint32_t>::max() - 1
                : dist[i];
        if (best == std::numeric_limits<std::uint32_t>::max() ||
            d > best_dist) {
          best = i;
          best_dist = d;
        }
      }
      if (best == std::numeric_limits<std::uint32_t>::max()) {
        return result;  // one side of the pair is empty: nothing to do
      }
      if (side_block == a) {
        network.add_edge(s, best, kInf);
      } else {
        network.add_edge(best, t, kInf);
      }
    }
  }

  const FlowNetwork::Flow flow = network.max_flow(s, t);
  if (flow >= old_pair_cut) return result;  // no strict improvement

  // The source side of the min cut goes to block a, the rest to b.
  const std::vector<bool> source_side = network.min_cut_source_side(s);

  // Feasibility check before touching the partition.
  NodeWeight weight_a = partition.block_weight(a);
  NodeWeight weight_b = partition.block_weight(b);
  for (std::uint32_t i = 0; i < band.size(); ++i) {
    const NodeID u = band[i];
    const BlockID target = source_side[i] ? a : b;
    const BlockID current = partition.block(u);
    if (target != current) {
      const NodeWeight w = graph.node_weight(u);
      if (current == a) {
        weight_a -= w;
        weight_b += w;
      } else {
        weight_a += w;
        weight_b -= w;
      }
    }
  }
  const NodeWeight bound_a = options.max_block_weight;
  const NodeWeight bound_b = options.max_block_weight_b != 0
                                 ? options.max_block_weight_b
                                 : options.max_block_weight;
  // Apply only if the move does not increase overload on either side.
  const NodeWeight old_overload =
      std::max<NodeWeight>(0, partition.block_weight(a) - bound_a) +
      std::max<NodeWeight>(0, partition.block_weight(b) - bound_b);
  const NodeWeight new_overload =
      std::max<NodeWeight>(0, weight_a - bound_a) +
      std::max<NodeWeight>(0, weight_b - bound_b);
  if (new_overload > old_overload) return result;

  for (std::uint32_t i = 0; i < band.size(); ++i) {
    const NodeID u = band[i];
    const BlockID target = source_side[i] ? a : b;
    if (partition.block(u) != target) {
      partition.move(u, target, graph.node_weight(u));
    }
  }
  result.cut_gain = old_pair_cut - static_cast<EdgeWeight>(flow);
  result.applied = true;
  return result;
}

}  // namespace kappa
