/// \file flow_refiner.hpp
/// \brief Flow-based pairwise refinement (the paper's §8 future work,
/// realized later in KaFFPa).
///
/// Within the pairwise framework, the cut between two blocks restricted
/// to the boundary band is exactly a minimum s-t cut problem: anchor the
/// band's inner rims to s and t, give band edges their weights as
/// capacities, and the min cut is the best possible pair cut achievable
/// by reassigning band nodes — a *global* optimum over the band, where FM
/// only hill-climbs. The catch is balance: a min cut may shift too much
/// weight, in which case the result is discarded (KaFFPa's adaptive
/// band-scaling is approximated here by the caller retrying with a
/// smaller depth).
#pragma once

#include <span>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/types.hpp"

namespace kappa {

/// Balance bounds for the flow step (same semantics as TwoWayFMOptions).
struct FlowRefineOptions {
  NodeWeight max_block_weight = 0;
  NodeWeight max_block_weight_b = 0;  ///< 0 = same as block a
};

/// Outcome of one flow step.
struct FlowRefineResult {
  EdgeWeight cut_gain = 0;  ///< improvement of the pair cut (0 if skipped)
  bool applied = false;     ///< false if the min cut was infeasible/worse
};

/// Runs one min-cut pass on the pair (a, b) restricted to \p band.
///
/// Precondition: \p band contains every node of blocks a/b that is on the
/// current pair boundary (bands from boundary_band*() satisfy this). The
/// move is applied only if it strictly improves the pair cut and both
/// blocks stay within their bounds; otherwise the partition is unchanged.
[[nodiscard]] FlowRefineResult flow_refine_pair(
    const StaticGraph& graph, Partition& partition, BlockID a, BlockID b,
    std::span<const NodeID> band, const FlowRefineOptions& options);

}  // namespace kappa
