#include "refinement/kway_refiner.hpp"

#include <algorithm>
#include <vector>

#include "graph/metrics.hpp"

namespace kappa {

EdgeWeight kway_refine(const StaticGraph& graph, Partition& partition,
                       const KWayRefinerOptions& options, Rng& rng) {
  const BlockID k = partition.k();
  EdgeWeight total_gain = 0;

  // Scatter array: connectivity of the current node to each block.
  std::vector<EdgeWeight> connectivity(k, 0);
  std::vector<BlockID> touched;

  for (int pass = 0; pass < options.passes; ++pass) {
    std::vector<NodeID> order = boundary_nodes(graph, partition);
    rng.shuffle(order);
    EdgeWeight pass_gain = 0;

    for (const NodeID u : order) {
      const BlockID own = partition.block(u);
      touched.clear();
      for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
        const BlockID b = partition.block(graph.arc_target(e));
        if (connectivity[b] == 0) touched.push_back(b);
        connectivity[b] += graph.arc_weight(e);
      }

      // Best admissible target block.
      const NodeWeight w = graph.node_weight(u);
      BlockID best = own;
      EdgeWeight best_conn = connectivity[own];
      for (const BlockID b : touched) {
        if (b == own) continue;
        const bool fits =
            partition.block_weight(b) + w <= options.max_block_weight;
        // Escaping an overloaded block is allowed into any lighter block.
        const bool escape =
            partition.block_weight(own) > options.max_block_weight &&
            partition.block_weight(b) + w < partition.block_weight(own);
        if (!fits && !escape) continue;
        if (connectivity[b] > best_conn ||
            (connectivity[b] == best_conn && b != best &&
             options.zero_gain_balance_moves &&
             partition.block_weight(b) + w < partition.block_weight(best))) {
          best = b;
          best_conn = connectivity[b];
        }
      }

      if (best != own) {
        pass_gain += connectivity[best] - connectivity[own];
        partition.move(u, best, w);
      }
      for (const BlockID b : touched) connectivity[b] = 0;
    }

    total_gain += pass_gain;
    if (pass_gain == 0) break;
  }
  return total_gain;
}

}  // namespace kappa
