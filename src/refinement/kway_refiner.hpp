/// \file kway_refiner.hpp
/// \brief Greedy k-way boundary refinement (the Metis-style refiner used
/// by the baseline partitioners).
///
/// Unlike KaPPa's pairwise FM this is a *global* greedy pass: boundary
/// nodes are visited in random order and moved to the adjacent block with
/// the largest positive gain if the balance constraint permits. It is fast
/// but has no hill-climbing ability — exactly the quality/speed trade-off
/// that separates kMetis/parMetis from KaPPa in the paper's tables.
#pragma once

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Options of the greedy k-way refiner.
struct KWayRefinerOptions {
  /// Maximum admissible block weight; moves that would exceed it are
  /// rejected (unless they come from an even more overloaded block).
  NodeWeight max_block_weight = 0;
  /// Number of sweeps over the boundary.
  int passes = 2;
  /// Also accept zero-gain moves that strictly improve balance.
  bool zero_gain_balance_moves = true;
};

/// Runs greedy refinement; returns the total cut improvement.
EdgeWeight kway_refine(const StaticGraph& graph, Partition& partition,
                       const KWayRefinerOptions& options, Rng& rng);

}  // namespace kappa
