#include "refinement/max_flow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace kappa {

FlowNetwork::FlowNetwork(std::size_t num_nodes)
    : head_(num_nodes), level_(num_nodes), iter_(num_nodes) {}

void FlowNetwork::add_edge(std::size_t u, std::size_t v, Flow capacity) {
  assert(u < head_.size() && v < head_.size() && u != v);
  head_[u].push_back({static_cast<std::uint32_t>(v),
                      static_cast<std::uint32_t>(head_[v].size()), capacity});
  head_[v].push_back({static_cast<std::uint32_t>(u),
                      static_cast<std::uint32_t>(head_[u].size() - 1), 0});
}

void FlowNetwork::add_undirected_edge(std::size_t u, std::size_t v,
                                      Flow capacity) {
  // Two antiparallel arcs sharing residual twins models an undirected
  // edge: flow in either direction consumes the same physical capacity.
  assert(u < head_.size() && v < head_.size() && u != v);
  head_[u].push_back({static_cast<std::uint32_t>(v),
                      static_cast<std::uint32_t>(head_[v].size()), capacity});
  head_[v].push_back({static_cast<std::uint32_t>(u),
                      static_cast<std::uint32_t>(head_[u].size() - 1),
                      capacity});
}

bool FlowNetwork::bfs_levels(std::size_t s, std::size_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::vector<std::size_t> queue;
  queue.push_back(s);
  level_[s] = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const std::size_t u = queue[i];
    for (const Arc& arc : head_[u]) {
      if (arc.capacity > 0 && level_[arc.to] == -1) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[t] >= 0;
}

FlowNetwork::Flow FlowNetwork::dfs_blocking(std::size_t u, std::size_t t,
                                            Flow limit) {
  if (u == t) return limit;
  for (std::size_t& i = iter_[u]; i < head_[u].size(); ++i) {
    Arc& arc = head_[u][i];
    if (arc.capacity <= 0 || level_[arc.to] != level_[u] + 1) continue;
    const Flow pushed =
        dfs_blocking(arc.to, t, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      head_[arc.to][arc.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

FlowNetwork::Flow FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  assert(s != t);
  Flow total = 0;
  while (bfs_levels(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const Flow pushed =
          dfs_blocking(s, t, std::numeric_limits<Flow>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::vector<bool> FlowNetwork::min_cut_source_side(std::size_t s) const {
  std::vector<bool> reachable(head_.size(), false);
  std::vector<std::size_t> stack{s};
  reachable[s] = true;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const Arc& arc : head_[u]) {
      if (arc.capacity > 0 && !reachable[arc.to]) {
        reachable[arc.to] = true;
        stack.push_back(arc.to);
      }
    }
  }
  return reachable;
}

}  // namespace kappa
