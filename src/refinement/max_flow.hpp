/// \file max_flow.hpp
/// \brief Dinic max-flow / min-cut on small explicit networks.
///
/// Substrate for the flow-based pairwise refinement the paper names as
/// future work (§8: "Other refinement algorithms, e.g., based on flows or
/// diffusion could be tried within our framework of pairwise
/// refinement"). The networks are band-local and small, so a plain Dinic
/// with adjacency lists is the right tool.
#pragma once

#include <cstdint>
#include <vector>

namespace kappa {

/// A flow network over dense node ids. Arcs are added with capacities;
/// add_edge() inserts the residual twin automatically.
class FlowNetwork {
 public:
  using Flow = std::int64_t;

  /// Creates a network with \p num_nodes nodes and no arcs.
  explicit FlowNetwork(std::size_t num_nodes);

  /// Adds a directed arc u -> v with capacity \p capacity (and the
  /// residual reverse arc with capacity 0). For an undirected edge call
  /// twice or use add_undirected_edge().
  void add_edge(std::size_t u, std::size_t v, Flow capacity);

  /// Adds an undirected edge of capacity \p capacity in both directions
  /// (the standard reduction for undirected min cut).
  void add_undirected_edge(std::size_t u, std::size_t v, Flow capacity);

  /// Computes the maximum s-t flow (Dinic: BFS level graph + blocking
  /// flows by DFS, O(V^2 E) worst case, far better on unit-ish networks).
  Flow max_flow(std::size_t s, std::size_t t);

  /// After max_flow(): true for nodes reachable from s in the residual
  /// network — the source side of a minimum cut.
  [[nodiscard]] std::vector<bool> min_cut_source_side(std::size_t s) const;

  [[nodiscard]] std::size_t num_nodes() const { return head_.size(); }

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t rev;  ///< index of the reverse arc in arcs_[to]
    Flow capacity;
  };

  bool bfs_levels(std::size_t s, std::size_t t);
  Flow dfs_blocking(std::size_t u, std::size_t t, Flow limit);

  std::vector<std::vector<Arc>> head_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace kappa
