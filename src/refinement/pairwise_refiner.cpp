#include "refinement/pairwise_refiner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/quotient_graph.hpp"
#include "refinement/band.hpp"
#include "refinement/edge_coloring.hpp"
#include "refinement/flow_refiner.hpp"
#include "util/seeded_hash.hpp"

namespace kappa {

namespace {

/// Recomputes the pair boundary among \p candidates and their in-pair
/// neighbors. After an FM pass only nodes inside the old band (or their
/// direct neighbors) can have become boundary, so this is complete.
std::vector<NodeID> refresh_boundary(const StaticGraph& graph,
                                     const Partition& partition, BlockID a,
                                     BlockID b,
                                     const std::vector<NodeID>& candidates) {
  std::vector<NodeID> expanded;
  expanded.reserve(candidates.size() * 2);
  for (const NodeID u : candidates) {
    expanded.push_back(u);
    for (const NodeID v : graph.neighbors(u)) {
      const BlockID bv = partition.block(v);
      if (bv == a || bv == b) expanded.push_back(v);
    }
  }
  std::sort(expanded.begin(), expanded.end());
  expanded.erase(std::unique(expanded.begin(), expanded.end()),
                 expanded.end());

  std::vector<NodeID> boundary;
  for (const NodeID u : expanded) {
    const BlockID bu = partition.block(u);
    if (bu != a && bu != b) continue;
    const BlockID other = bu == a ? b : a;
    for (const NodeID v : graph.neighbors(u)) {
      if (partition.block(v) == other) {
        boundary.push_back(u);
        break;
      }
    }
  }
  return boundary;
}

/// Runs one FM search on the pair, optionally duplicated with a second
/// seed — the better of the two outcomes is adopted.
TwoWayFMResult search_pair(const StaticGraph& graph, Partition& partition,
                           BlockID a, BlockID b,
                           const std::vector<NodeID>& band,
                           const PairwiseRefinerOptions& options, Rng rng_a,
                           Rng rng_b) {
  if (!options.duplicate_search) {
    return twoway_fm(graph, partition, a, b, band, options.fm, rng_a);
  }

  // Snapshot the pair state (band assignments suffice: FM only moves band
  // nodes between a and b).
  std::vector<BlockID> before(band.size());
  for (std::size_t i = 0; i < band.size(); ++i) {
    before[i] = partition.block(band[i]);
  }
  auto restore = [&](const std::vector<BlockID>& snapshot) {
    for (std::size_t i = 0; i < band.size(); ++i) {
      const NodeID u = band[i];
      if (partition.block(u) != snapshot[i]) {
        partition.move(u, snapshot[i], graph.node_weight(u));
      }
    }
  };

  const TwoWayFMResult result_a =
      twoway_fm(graph, partition, a, b, band, options.fm, rng_a);
  std::vector<BlockID> after_a(band.size());
  for (std::size_t i = 0; i < band.size(); ++i) {
    after_a[i] = partition.block(band[i]);
  }

  restore(before);
  const TwoWayFMResult result_b =
      twoway_fm(graph, partition, a, b, band, options.fm, rng_b);

  // Lexicographic comparison: prefer the larger imbalance gain, then the
  // larger cut gain ("the better partitioning of the two blocks is
  // adopted").
  const bool a_wins =
      result_a.imbalance_gain != result_b.imbalance_gain
          ? result_a.imbalance_gain > result_b.imbalance_gain
          : result_a.cut_gain > result_b.cut_gain;
  if (a_wins) {
    restore(after_a);
    return result_a;
  }
  return result_b;
}

}  // namespace

PairRefineResult refine_pair(const StaticGraph& graph, Partition& partition,
                             BlockID a, BlockID b,
                             const std::vector<NodeID>& boundary_seeds,
                             const PairwiseRefinerOptions& options,
                             const Rng& rng, std::uint64_t seed_tag,
                             bool collect_moves,
                             const std::vector<char>* movable) {
  PairRefineResult result;

  // Entry block of every node that ever enters a band; FM (and the flow
  // pass) only move band nodes, so the union of bands covers all moves.
  // First-entry order is recorded separately: moves are emitted in that
  // order, never in the hash map's.
  hash_map<NodeID, BlockID> entry_block;
  std::vector<NodeID> entry_order;
  auto record_band = [&](const std::vector<NodeID>& nodes) {
    if (!collect_moves) return;
    for (const NodeID u : nodes) {
      if (entry_block.emplace(u, partition.block(u)).second) {
        entry_order.push_back(u);
      }
    }
  };

  // One stream per pair (odd tags, disjoint from the coloring stream),
  // then one fork per local search: no two work units share a stream.
  const Rng pair_rng = rng.fork(2 * seed_tag + 1);

  std::vector<NodeID> band = boundary_band_from_seeds(
      graph, partition, a, b, boundary_seeds, options.bfs_depth, movable);
  record_band(band);
  for (int local = 0; local < options.local_iterations; ++local) {
    if (band.empty()) break;
    Rng rng_a = pair_rng.fork(2 * static_cast<std::uint64_t>(local));
    Rng rng_b = pair_rng.fork(2 * static_cast<std::uint64_t>(local) + 1);
    const TwoWayFMResult fm =
        search_pair(graph, partition, a, b, band, options, rng_a, rng_b);
    result.cut_gain += fm.cut_gain;
    result.imbalance_gain += fm.imbalance_gain;
    if (fm.moved_nodes == 0) break;  // converged for this pair
    if (local + 1 < options.local_iterations) {
      const std::vector<NodeID> boundary =
          refresh_boundary(graph, partition, a, b, band);
      band = boundary_band_from_seeds(graph, partition, a, b, boundary,
                                      options.bfs_depth, movable);
      record_band(band);
    }
  }
  if (options.use_flow) {
    // One min-cut pass on a freshly computed band (the flow model
    // requires the band to contain the entire current pair boundary).
    const std::vector<NodeID> boundary =
        refresh_boundary(graph, partition, a, b, band);
    band = boundary_band_from_seeds(graph, partition, a, b, boundary,
                                    options.bfs_depth, movable);
    record_band(band);
    FlowRefineOptions flow_options;
    flow_options.max_block_weight = options.fm.max_block_weight;
    flow_options.max_block_weight_b = options.fm.max_block_weight_b;
    const FlowRefineResult flow =
        flow_refine_pair(graph, partition, a, b, band, flow_options);
    result.cut_gain += flow.cut_gain;
  }

  for (const NodeID u : entry_order) {
    if (partition.block(u) != entry_block.at(u)) {
      result.moves.emplace_back(u, partition.block(u));
    }
  }
  return result;
}

PairwiseRefineReport pairwise_refine(const StaticGraph& graph,
                                     Partition& partition,
                                     const PairwiseRefinerOptions& options,
                                     Rng& rng) {
  PairwiseRefineReport report;
  int no_change_streak = 0;

  for (int global = 0; global < options.max_global_iterations; ++global) {
    const QuotientGraph quotient(graph, partition);
    if (quotient.edges().empty()) break;  // every block is isolated

    Rng color_rng = rng.fork(coloring_fork_tag(global));
    const EdgeColoring coloring = color_quotient_edges(quotient, color_rng);
    report.colors_last_iteration = coloring.num_colors;

    std::atomic<EdgeWeight> iteration_cut_gain{0};
    std::atomic<NodeWeight> iteration_imbalance_gain{0};

    for (int color = 0; color < coloring.num_colors; ++color) {
      const std::vector<std::size_t> pairs = coloring.color_class(color);
      if (pairs.empty()) continue;

      // One task per independent pair of this color class.
      auto run_pair = [&](std::size_t pair_index, std::uint64_t seed_tag) {
        const QuotientEdge& edge = quotient.edges()[pairs[pair_index]];
        const PairRefineResult result =
            refine_pair(graph, partition, edge.a, edge.b, edge.boundary,
                        options, rng, seed_tag, /*collect_moves=*/false);
        iteration_cut_gain += result.cut_gain;
        iteration_imbalance_gain += result.imbalance_gain;
      };

      const std::size_t threads = std::min<std::size_t>(
          std::max(options.num_threads, 1), pairs.size());
      if (threads <= 1) {
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          run_pair(i, pair_seed_tag(global, pairs[i]));
        }
      } else {
        // Pairs of one color class are block-disjoint, so the concurrent
        // FM searches touch disjoint partition entries and block weights.
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) {
          pool.emplace_back([&, t]() {
            for (std::size_t i = t; i < pairs.size(); i += threads) {
              run_pair(i, pair_seed_tag(global, pairs[i]));
            }
          });
        }
        for (auto& worker : pool) worker.join();
      }
    }

    report.total_cut_gain += iteration_cut_gain.load();
    report.total_imbalance_gain += iteration_imbalance_gain.load();
    report.global_iterations = global + 1;

    const bool improved =
        iteration_cut_gain.load() > 0 || iteration_imbalance_gain.load() > 0;
    if (improved) {
      no_change_streak = 0;
    } else if (++no_change_streak >= options.stop_no_change) {
      break;
    }
  }
  return report;
}

}  // namespace kappa
