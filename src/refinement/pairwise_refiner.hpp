/// \file pairwise_refiner.hpp
/// \brief Parallel pairwise refinement scheduled by edge colorings (§5).
///
/// The driving loop of KaPPa's refinement: at any time each PE works on
/// one pair of neighboring blocks, running two-way FM restricted to the
/// boundary band. Pairs are scheduled color class by color class of an
/// edge coloring of the quotient graph, so the pairs being refined at the
/// same time are independent. The nested loop structure (innermost FM,
/// local iterations, global iterations over all colors) and its
/// termination rules ("no improvement" / "no improvement twice in a row" /
/// iteration caps) follow §5 and Table 2.
#pragma once

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Knobs of the refinement phase (Table 2 rows).
struct PairwiseRefinerOptions {
  TwoWayFMOptions fm;
  /// Depth of the bounded boundary BFS (Table 2: 1 / 5 / 20).
  int bfs_depth = 5;
  /// Local search repetitions per scheduled pair (Table 2: 1 / 3 / 5).
  int local_iterations = 3;
  /// Cap on global iterations over the quotient edge coloring
  /// (Table 2: 1 / 15 / 15).
  int max_global_iterations = 15;
  /// Stop when this many consecutive global iterations brought no
  /// improvement (fast: 1, strong: 2; ignored by the minimal preset whose
  /// iteration cap is 1 anyway).
  int stop_no_change = 1;
  /// Threads executing independent pairs of one color class concurrently
  /// (stands in for the PEs of the MPI implementation).
  int num_threads = 1;
  /// Both PEs of a matched pair search with different seeds and the better
  /// result is adopted (§5: "both corresponding PEs will refine the
  /// partitions u and v using different seeds ... the better partitioning
  /// of the two blocks is adopted").
  bool duplicate_search = false;
  /// After the FM local iterations on a pair, run one min-cut pass on the
  /// band (flow_refiner.hpp) — the §8 future-work refinement. The flow
  /// move is only adopted when it strictly improves the pair cut without
  /// increasing overload.
  bool use_flow = false;
};

/// Aggregate outcome of a refinement run.
struct PairwiseRefineReport {
  EdgeWeight total_cut_gain = 0;
  NodeWeight total_imbalance_gain = 0;
  int global_iterations = 0;
  int colors_last_iteration = 0;
};

/// Refines \p partition in place. Never worsens the lexicographic
/// (imbalance, cut) objective of any pair, hence never the global cut at
/// fixed balance.
PairwiseRefineReport pairwise_refine(const StaticGraph& graph,
                                     Partition& partition,
                                     const PairwiseRefinerOptions& options,
                                     Rng& rng);

}  // namespace kappa
