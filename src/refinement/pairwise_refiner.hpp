/// \file pairwise_refiner.hpp
/// \brief Parallel pairwise refinement scheduled by edge colorings (§5).
///
/// The driving loop of KaPPa's refinement: at any time each PE works on
/// one pair of neighboring blocks, running two-way FM restricted to the
/// boundary band. Pairs are scheduled color class by color class of an
/// edge coloring of the quotient graph, so the pairs being refined at the
/// same time are independent. The nested loop structure (innermost FM,
/// local iterations, global iterations over all colors) and its
/// termination rules ("no improvement" / "no improvement twice in a row" /
/// iteration caps) follow §5 and Table 2.
#pragma once

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Knobs of the refinement phase (Table 2 rows).
struct PairwiseRefinerOptions {
  TwoWayFMOptions fm;
  /// Depth of the bounded boundary BFS (Table 2: 1 / 5 / 20).
  int bfs_depth = 5;
  /// Local search repetitions per scheduled pair (Table 2: 1 / 3 / 5).
  int local_iterations = 3;
  /// Cap on global iterations over the quotient edge coloring
  /// (Table 2: 1 / 15 / 15).
  int max_global_iterations = 15;
  /// Stop when this many consecutive global iterations brought no
  /// improvement (fast: 1, strong: 2; ignored by the minimal preset whose
  /// iteration cap is 1 anyway).
  int stop_no_change = 1;
  /// Threads executing independent pairs of one color class concurrently
  /// (stands in for the PEs of the MPI implementation).
  int num_threads = 1;
  /// Both PEs of a matched pair search with different seeds and the better
  /// result is adopted (§5: "both corresponding PEs will refine the
  /// partitions u and v using different seeds ... the better partitioning
  /// of the two blocks is adopted").
  bool duplicate_search = false;
  /// After the FM local iterations on a pair, run one min-cut pass on the
  /// band (flow_refiner.hpp) — the §8 future-work refinement. The flow
  /// move is only adopted when it strictly improves the pair cut without
  /// increasing overload.
  bool use_flow = false;
};

/// Aggregate outcome of a refinement run.
struct PairwiseRefineReport {
  EdgeWeight total_cut_gain = 0;
  NodeWeight total_imbalance_gain = 0;
  int global_iterations = 0;
  int colors_last_iteration = 0;
};

/// Outcome of refining one scheduled block pair.
struct PairRefineResult {
  EdgeWeight cut_gain = 0;
  NodeWeight imbalance_gain = 0;
  /// Nodes whose block changed, with their final block — the moved-node
  /// deltas a PE exchanges with the others after a color class (§5.2).
  std::vector<std::pair<NodeID, BlockID>> moves;
};

/// Refines one scheduled pair {a, b}: band BFS from \p boundary_seeds,
/// then the configured local FM iterations (optionally duplicated, with
/// the optional flow pass). Search streams are forked from \p rng with
/// \p seed_tag-derived tags, so equal tags reproduce equal searches
/// regardless of the caller's schedule — this is what keeps the SPMD
/// refiner's outcome independent of which PE executes the pair.
/// Move tracking costs a hash-map insert per band node; callers that do
/// not exchange deltas pass \p collect_moves = false to skip it.
/// \p movable (optional, indexed by node id) confines every band — and
/// with it every move — to the marked nodes: this is how a band-limited
/// pair view freezes its shipped fringe while keeping gains exact.
PairRefineResult refine_pair(const StaticGraph& graph, Partition& partition,
                             BlockID a, BlockID b,
                             const std::vector<NodeID>& boundary_seeds,
                             const PairwiseRefinerOptions& options,
                             const Rng& rng, std::uint64_t seed_tag,
                             bool collect_moves = true,
                             const std::vector<char>* movable = nullptr);

/// Seed tag of one scheduled pair within one global iteration. Shared by
/// pairwise_refine() and the SPMD refiner so both drivers run the exact
/// same searches for the same schedule. refine_pair() forks the pair's
/// stream from 2*tag + 1 (odd), keeping it disjoint from the (even)
/// coloring tags below; per-local-iteration streams are then forked from
/// the pair stream, so distinct work units never share a stream.
[[nodiscard]] inline std::uint64_t pair_seed_tag(
    int global_iteration, std::size_t quotient_edge_index) {
  return static_cast<std::uint64_t>(global_iteration) * 1000003 +
         static_cast<std::uint64_t>(quotient_edge_index);
}

/// Fork tag of the per-global-iteration coloring stream (shared likewise;
/// even, see pair_seed_tag).
[[nodiscard]] inline std::uint64_t coloring_fork_tag(int global_iteration) {
  return 2 * static_cast<std::uint64_t>(global_iteration);
}

/// Refines \p partition in place. Never worsens the lexicographic
/// (imbalance, cut) objective of any pair, hence never the global cut at
/// fixed balance.
PairwiseRefineReport pairwise_refine(const StaticGraph& graph,
                                     Partition& partition,
                                     const PairwiseRefinerOptions& options,
                                     Rng& rng);

}  // namespace kappa
