#include "refinement/twoway_fm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "util/addressable_pq.hpp"

namespace kappa {

namespace {

/// Per-thread reusable scratch space; avoids O(n) allocation per pair
/// search, which matters when k^2/2 pairs are refined on every level.
struct Workspace {
  std::vector<std::uint32_t> eligible_stamp;
  std::vector<std::uint32_t> moved_stamp;
  AddressablePQ<NodeID, EdgeWeight> pq[2];
  std::uint32_t epoch = 0;

  void prepare(NodeID n) {
    if (eligible_stamp.size() < n) {
      eligible_stamp.assign(n, 0);
      moved_stamp.assign(n, 0);
      pq[0].reset(n);
      pq[1].reset(n);
      epoch = 0;
    }
    ++epoch;
    pq[0].clear();
    pq[1].clear();
  }
};

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

/// Lexicographic objective value: (imbalance, cut change).
struct Objective {
  NodeWeight imbalance;
  EdgeWeight cut_delta;

  bool operator<(const Objective& other) const {
    if (imbalance != other.imbalance) return imbalance < other.imbalance;
    return cut_delta < other.cut_delta;
  }
};

}  // namespace

const char* queue_selection_name(QueueSelection s) {
  switch (s) {
    case QueueSelection::kTopGain:
      return "TopGain";
    case QueueSelection::kMaxLoad:
      return "MaxLoad";
    case QueueSelection::kAlternate:
      return "Alternate";
    case QueueSelection::kTopGainMaxLoad:
      return "TopGainMaxLoad";
  }
  return "?";
}

TwoWayFMResult twoway_fm(const StaticGraph& graph, Partition& partition,
                         BlockID a, BlockID b,
                         std::span<const NodeID> eligible,
                         const TwoWayFMOptions& options, Rng& rng) {
  Workspace& ws = workspace();
  ws.prepare(graph.num_nodes());
  const std::uint32_t epoch = ws.epoch;

  const BlockID blocks[2] = {a, b};
  auto side_of = [&](BlockID block) -> int { return block == a ? 0 : 1; };

  // Gain of moving u to the opposite block of the pair: edges to blocks
  // other than a/b are unaffected, so only pair-internal arcs count.
  auto gain_of = [&](NodeID u) -> EdgeWeight {
    const BlockID own = partition.block(u);
    const BlockID other = own == a ? b : a;
    EdgeWeight gain = 0;
    for (EdgeID e = graph.first_arc(u); e < graph.last_arc(u); ++e) {
      const BlockID bv = partition.block(graph.arc_target(e));
      if (bv == other) {
        gain += graph.arc_weight(e);
      } else if (bv == own) {
        gain -= graph.arc_weight(e);
      }
    }
    return gain;
  };
  auto is_pair_boundary = [&](NodeID u) -> bool {
    const BlockID other = partition.block(u) == a ? b : a;
    for (const NodeID v : graph.neighbors(u)) {
      if (partition.block(v) == other) return true;
    }
    return false;
  };

  // Mark eligibility and count eligible nodes per side.
  NodeID side_count[2] = {0, 0};
  for (const NodeID u : eligible) {
    assert(partition.block(u) == a || partition.block(u) == b);
    ws.eligible_stamp[u] = epoch;
    ++side_count[side_of(partition.block(u))];
  }

  // Initialize the queues in random order with the pair's boundary nodes.
  std::vector<NodeID> init(eligible.begin(), eligible.end());
  rng.shuffle(init);
  for (const NodeID u : init) {
    if (is_pair_boundary(u)) {
      ws.pq[side_of(partition.block(u))].push(u, gain_of(u));
    }
  }

  NodeWeight weight[2] = {partition.block_weight(a),
                          partition.block_weight(b)};
  const NodeWeight lmax[2] = {options.max_block_weight,
                              options.max_block_weight_b != 0
                                  ? options.max_block_weight_b
                                  : options.max_block_weight};
  auto imbalance_now = [&]() -> NodeWeight {
    return std::max<NodeWeight>(
        0, std::max(weight[0] - lmax[0], weight[1] - lmax[1]));
  };

  Objective current{imbalance_now(), 0};
  const NodeWeight initial_imbalance = current.imbalance;
  Objective best = current;
  std::size_t best_prefix = 0;  // number of moves in the adopted state
  std::vector<NodeID> moves;

  const NodeID min_side = std::min(side_count[0], side_count[1]);
  const std::size_t patience = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.patience_alpha *
                                  static_cast<double>(min_side)));
  std::size_t fruitless = 0;
  int alternate_side = rng.coin() ? 1 : 0;

  while (!ws.pq[0].empty() || !ws.pq[1].empty()) {
    // --- Queue selection (Table 4 left). ---
    int side = 0;
    // "Heavier" is relative to each side's bound so that unequal-target
    // bisections rebalance toward their own targets.
    const int heavier =
        weight[0] - lmax[0] >= weight[1] - lmax[1] ? 0 : 1;
    const bool overloaded = weight[0] > lmax[0] || weight[1] > lmax[1];
    switch (options.queue_selection) {
      case QueueSelection::kMaxLoad:
        side = heavier;
        break;
      case QueueSelection::kAlternate:
        alternate_side ^= 1;
        side = alternate_side;
        break;
      case QueueSelection::kTopGain:
      case QueueSelection::kTopGainMaxLoad:
        if (overloaded) {
          // The exception that keeps TopGain feasible: an overloaded
          // situation is resolved MaxLoad-style (§5.2).
          side = heavier;
        } else if (ws.pq[0].empty() || ws.pq[1].empty()) {
          side = ws.pq[0].empty() ? 1 : 0;
        } else if (ws.pq[0].top_key() != ws.pq[1].top_key()) {
          side = ws.pq[0].top_key() > ws.pq[1].top_key() ? 0 : 1;
        } else if (options.queue_selection ==
                   QueueSelection::kTopGainMaxLoad) {
          side = heavier;
        } else {
          side = rng.coin() ? 1 : 0;  // TopGain: random tie breaking
        }
        break;
    }
    if (ws.pq[side].empty()) side ^= 1;
    if (ws.pq[side].empty()) break;

    // --- Move the selected node. ---
    const NodeID u = ws.pq[side].top();
    const EdgeWeight gain = ws.pq[side].top_key();
    ws.pq[side].pop();

    const BlockID from = blocks[side];
    const BlockID to = blocks[side ^ 1];
    const NodeWeight w = graph.node_weight(u);
    if (weight[side] - w < 1) {
      // Never empty a block: an empty block loses its quotient edges and
      // can never be refilled by pairwise refinement, which bricks the
      // k-way partition. Cut gain must not annihilate small blocks.
      continue;
    }
    ws.moved_stamp[u] = epoch;
    partition.move(u, to, w);
    weight[side] -= w;
    weight[side ^ 1] += w;
    current.cut_delta -= gain;
    current.imbalance = imbalance_now();
    moves.push_back(u);

    if (current < best) {
      best = current;
      best_prefix = moves.size();
      fruitless = 0;
    } else if (++fruitless > patience) {
      break;  // FM patience exhausted (§5.2)
    }

    // --- Update gains of affected neighbors. ---
    for (const NodeID v : graph.neighbors(u)) {
      if (ws.eligible_stamp[v] != epoch || ws.moved_stamp[v] == epoch) {
        continue;
      }
      const BlockID bv = partition.block(v);
      if (bv != a && bv != b) continue;
      const int vside = side_of(bv);
      if (ws.pq[vside].contains(v)) {
        ws.pq[vside].update_key(v, gain_of(v));
      } else if (is_pair_boundary(v)) {
        ws.pq[vside].push(v, gain_of(v));
      }
    }
    (void)from;
  }

  // --- Roll back to the lexicographically best prefix. ---
  for (std::size_t i = moves.size(); i > best_prefix; --i) {
    const NodeID u = moves[i - 1];
    const BlockID back = partition.block(u) == a ? b : a;
    partition.move(u, back, graph.node_weight(u));
  }

  // After rollback the partition is exactly the best-prefix state, so the
  // adopted objective is `best`.
  TwoWayFMResult result;
  result.cut_gain = -best.cut_delta;
  result.imbalance_gain = initial_imbalance - best.imbalance;
  result.moved_nodes = static_cast<NodeID>(best_prefix);
  return result;
}

}  // namespace kappa
