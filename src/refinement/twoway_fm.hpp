/// \file twoway_fm.hpp
/// \brief FM local search between two blocks (§5.2).
///
/// For each of the two blocks under consideration a priority queue of
/// eligible nodes is kept, keyed by gain (cut decrease when moved to the
/// other side). Every node moves at most once per search. Queues are
/// initialized in random order with the pair's boundary nodes. Queue
/// selection strategies (Table 4 left): Alternating, MaxLoad, TopGain
/// (falling back to MaxLoad when a block is overloaded — the paper's
/// "exception" that makes TopGain feasible), TopGainMaxLoad.
///
/// The search stops after alpha * min(|A|, |B|) fruitless moves and rolls
/// back to the state with the lexicographically best
/// (imbalance, cutValue), where imbalance =
/// max(0, max(c(A) - Lmax, c(B) - Lmax)).
#pragma once

#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "graph/static_graph.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kappa {

/// Queue selection strategies evaluated in Table 4 (left).
enum class QueueSelection {
  kTopGain,         ///< larger top gain wins; MaxLoad when overloaded
  kMaxLoad,         ///< heavier block gives a node
  kAlternate,       ///< strictly alternate between A and B
  kTopGainMaxLoad,  ///< TopGain, ties broken by MaxLoad
};

/// Human-readable strategy name (for table output).
[[nodiscard]] const char* queue_selection_name(QueueSelection s);

/// Parameters of one two-way FM search.
struct TwoWayFMOptions {
  QueueSelection queue_selection = QueueSelection::kTopGain;
  /// FM patience: abort after alpha * min(|A|,|B|) moves without
  /// lexicographic improvement (Table 2: 1% / 5% / 20%; Walshaw mode 30%).
  double patience_alpha = 0.05;
  /// Balance bound Lmax for block a (see max_block_weight_bound()).
  NodeWeight max_block_weight = 0;
  /// Balance bound for block b; 0 means "same as block a". Unequal bounds
  /// arise in recursive bisection with non-power-of-two k, where the two
  /// sides have different target weights.
  NodeWeight max_block_weight_b = 0;
};

/// Outcome of one search. The adopted state never worsens the
/// lexicographic objective: either imbalance_gain > 0, or
/// imbalance_gain == 0 and cut_gain >= 0. (cut_gain may be negative only
/// when imbalance strictly improved.)
struct TwoWayFMResult {
  EdgeWeight cut_gain = 0;        ///< decrease of the total cut
  NodeWeight imbalance_gain = 0;  ///< decrease of pairwise imbalance (>= 0)
  NodeID moved_nodes = 0;         ///< nodes moved in the adopted state
};

/// Runs FM between blocks \p a and \p b of \p partition.
///
/// \param eligible nodes allowed to move — the band computed by
///        bounded BFS from the pair boundary (§5.2); all must currently
///        belong to block a or b.
///
/// Postcondition: the lexicographic objective
/// (pair imbalance, total cut) never worsens.
[[nodiscard]] TwoWayFMResult twoway_fm(const StaticGraph& graph,
                                       Partition& partition, BlockID a,
                                       BlockID b,
                                       std::span<const NodeID> eligible,
                                       const TwoWayFMOptions& options,
                                       Rng& rng);

}  // namespace kappa
