/// \file addressable_pq.hpp
/// \brief Addressable max-priority queue on a binary heap.
///
/// The FM local search (§5.2) keeps one priority queue of boundary nodes
/// per block, keyed by move gain, and must support decrease/increase-key
/// when a neighbor of a queued node moves. The paper states "Priority
/// queues for the local search are based on binary heaps"; this container
/// reproduces that choice: an array-backed binary max-heap plus a
/// position index from element id to heap slot.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace kappa {

/// Max-heap over elements identified by dense ids in [0, capacity), each
/// with a mutable integer key. All operations are O(log size) except
/// contains/key/top which are O(1).
///
/// \tparam Id   dense unsigned element identifier
/// \tparam Key  ordered key type (gain); largest key on top
template <typename Id, typename Key>
class AddressablePQ {
 public:
  AddressablePQ() = default;

  /// Creates a queue able to hold ids in [0, capacity).
  explicit AddressablePQ(std::size_t capacity) { reset(capacity); }

  /// Clears the queue and resizes the id universe.
  void reset(std::size_t capacity) {
    heap_.clear();
    pos_.assign(capacity, kFree);
  }

  /// Removes all elements, keeping the id universe.
  void clear() {
    for (const auto& entry : heap_) pos_[entry.id] = kFree;
    heap_.clear();
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool contains(Id id) const { return pos_[id] != kFree; }

  /// Key of a contained element.
  [[nodiscard]] Key key(Id id) const {
    assert(contains(id));
    return heap_[pos_[id]].key;
  }

  /// Id with the maximum key.
  [[nodiscard]] Id top() const {
    assert(!empty());
    return heap_.front().id;
  }

  /// Maximum key.
  [[nodiscard]] Key top_key() const {
    assert(!empty());
    return heap_.front().key;
  }

  /// Inserts a new element. Precondition: !contains(id).
  void push(Id id, Key key) {
    assert(!contains(id));
    pos_[id] = heap_.size();
    heap_.push_back({id, key});
    sift_up(heap_.size() - 1);
  }

  /// Removes the maximum element and returns its id.
  Id pop() {
    assert(!empty());
    const Id id = heap_.front().id;
    remove_at(0);
    return id;
  }

  /// Removes an arbitrary contained element.
  void erase(Id id) {
    assert(contains(id));
    remove_at(pos_[id]);
  }

  /// Changes the key of a contained element (either direction).
  void update_key(Id id, Key key) {
    assert(contains(id));
    const std::size_t slot = pos_[id];
    const Key old = heap_[slot].key;
    heap_[slot].key = key;
    if (key > old) {
      sift_up(slot);
    } else if (key < old) {
      sift_down(slot);
    }
  }

  /// Inserts or updates, whichever applies.
  void push_or_update(Id id, Key key) {
    if (contains(id)) {
      update_key(id, key);
    } else {
      push(id, key);
    }
  }

 private:
  struct Entry {
    Id id;
    Key key;
  };

  static constexpr std::size_t kFree = static_cast<std::size_t>(-1);

  void remove_at(std::size_t slot) {
    pos_[heap_[slot].id] = kFree;
    if (slot + 1 != heap_.size()) {
      const Key removed_key = heap_[slot].key;
      heap_[slot] = heap_.back();
      pos_[heap_[slot].id] = slot;
      heap_.pop_back();
      if (heap_[slot].key > removed_key) {
        sift_up(slot);
      } else {
        sift_down(slot);
      }
    } else {
      heap_.pop_back();
    }
  }

  void sift_up(std::size_t slot) {
    Entry entry = heap_[slot];
    while (slot > 0) {
      const std::size_t parent = (slot - 1) / 2;
      if (heap_[parent].key >= entry.key) break;
      heap_[slot] = heap_[parent];
      pos_[heap_[slot].id] = slot;
      slot = parent;
    }
    heap_[slot] = entry;
    pos_[entry.id] = slot;
  }

  void sift_down(std::size_t slot) {
    Entry entry = heap_[slot];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * slot + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].key > heap_[child].key) ++child;
      if (heap_[child].key <= entry.key) break;
      heap_[slot] = heap_[child];
      pos_[heap_[slot].id] = slot;
      slot = child;
    }
    heap_[slot] = entry;
    pos_[entry.id] = slot;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;
};

}  // namespace kappa
