/// \file bucket_pq.hpp
/// \brief Monotone-friendly bucket priority queue for integer gains.
///
/// FM implementations classically use bucket queues (Fiduccia–Mattheyses'
/// original data structure) because gains are small integers bounded by
/// the maximum weighted degree. This container offers O(1) push/update and
/// amortized O(range) scans, as an alternative to the binary heap the
/// paper reports using; the FM ablation bench compares both.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace kappa {

/// Max-priority bucket queue over dense ids with integer keys from a
/// bounded symmetric range [-max_abs_key, +max_abs_key].
template <typename Id>
class BucketPQ {
 public:
  BucketPQ() = default;

  /// \param capacity     id universe [0, capacity)
  /// \param max_abs_key  bound on |key| for every inserted element
  BucketPQ(std::size_t capacity, std::ptrdiff_t max_abs_key) {
    reset(capacity, max_abs_key);
  }

  void reset(std::size_t capacity, std::ptrdiff_t max_abs_key) {
    max_abs_key_ = max_abs_key;
    buckets_.assign(2 * max_abs_key + 1, {});
    where_.assign(capacity, Slot{kNoBucket, 0});
    top_bucket_ = -1;
    size_ = 0;
  }

  void clear() {
    for (auto& bucket : buckets_) bucket.clear();
    for (auto& slot : where_) slot.bucket = kNoBucket;
    top_bucket_ = -1;
    size_ = 0;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool contains(Id id) const {
    return where_[id].bucket != kNoBucket;
  }

  [[nodiscard]] std::ptrdiff_t key(Id id) const {
    assert(contains(id));
    return where_[id].bucket - max_abs_key_;
  }

  void push(Id id, std::ptrdiff_t k) {
    assert(!contains(id));
    assert(k >= -max_abs_key_ && k <= max_abs_key_);
    const std::ptrdiff_t bucket = k + max_abs_key_;
    where_[id] = {bucket, buckets_[bucket].size()};
    buckets_[bucket].push_back(id);
    top_bucket_ = std::max(top_bucket_, bucket);
    ++size_;
  }

  void erase(Id id) {
    assert(contains(id));
    const Slot slot = where_[id];
    auto& bucket = buckets_[slot.bucket];
    bucket[slot.index] = bucket.back();
    where_[bucket[slot.index]].index = slot.index;
    bucket.pop_back();
    where_[id].bucket = kNoBucket;
    --size_;
  }

  void update_key(Id id, std::ptrdiff_t k) {
    erase(id);
    push(id, k);
  }

  void push_or_update(Id id, std::ptrdiff_t k) {
    if (contains(id)) erase(id);
    push(id, k);
  }

  /// Id with the maximum key.
  [[nodiscard]] Id top() {
    settle();
    assert(!empty());
    return buckets_[top_bucket_].back();
  }

  [[nodiscard]] std::ptrdiff_t top_key() {
    settle();
    assert(!empty());
    return top_bucket_ - max_abs_key_;
  }

  Id pop() {
    settle();
    assert(!empty());
    const Id id = buckets_[top_bucket_].back();
    buckets_[top_bucket_].pop_back();
    where_[id].bucket = kNoBucket;
    --size_;
    return id;
  }

 private:
  struct Slot {
    std::ptrdiff_t bucket;
    std::size_t index;
  };
  static constexpr std::ptrdiff_t kNoBucket = -1;

  /// Drops top_bucket_ down to the highest non-empty bucket (amortized by
  /// the monotone usage pattern of FM).
  void settle() {
    while (top_bucket_ >= 0 && buckets_[top_bucket_].empty()) --top_bucket_;
  }

  std::ptrdiff_t max_abs_key_ = 0;
  std::vector<std::vector<Id>> buckets_;
  std::vector<Slot> where_;
  std::ptrdiff_t top_bucket_ = -1;
  std::size_t size_ = 0;
};

}  // namespace kappa
