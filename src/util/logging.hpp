/// \file logging.hpp
/// \brief Minimal leveled logging used by the partitioners.
///
/// Verbosity is a process-global switch; the experiment binaries run with
/// logging off so that table output stays machine-parseable.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace kappa {

/// Global verbosity levels.
enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Returns the mutable global log level (default: silent).
inline LogLevel& log_level() {
  static LogLevel level = LogLevel::kSilent;
  return level;
}

namespace detail {
inline void log_line(const std::string& tag, const std::string& message) {
  std::cerr << "[kappa:" << tag << "] " << message << '\n';
}
}  // namespace detail

/// Logs an informational message (progress of multilevel phases).
inline void log_info(const std::string& message) {
  if (log_level() >= LogLevel::kInfo) detail::log_line("info", message);
}

/// Logs a debug message (per-level statistics, matching sizes, ...).
inline void log_debug(const std::string& message) {
  if (log_level() >= LogLevel::kDebug) detail::log_line("debug", message);
}

}  // namespace kappa
