/// \file metrics.cpp
/// \brief MetricsRegistry storage and stable JSON emission.
#include "util/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace kappa {

void MetricsRegistry::set_u64(const std::string& name, std::uint64_t value) {
  Value v;
  v.type = Type::kU64;
  v.u64 = value;
  metrics_[name] = std::move(v);
}

void MetricsRegistry::set_i64(const std::string& name, std::int64_t value) {
  Value v;
  v.type = Type::kI64;
  v.i64 = value;
  metrics_[name] = std::move(v);
}

void MetricsRegistry::set_f64(const std::string& name, double value) {
  Value v;
  v.type = Type::kF64;
  v.f64 = value;
  metrics_[name] = std::move(v);
}

void MetricsRegistry::set_str(const std::string& name, std::string value) {
  Value v;
  v.type = Type::kStr;
  v.str = std::move(value);
  metrics_[name] = std::move(v);
}

void MetricsRegistry::set_u64_list(const std::string& name,
                                   std::vector<std::uint64_t> values) {
  Value v;
  v.type = Type::kU64List;
  v.u64s = std::move(values);
  metrics_[name] = std::move(v);
}

void MetricsRegistry::set_f64_list(const std::string& name,
                                   std::vector<double> values) {
  Value v;
  v.type = Type::kF64List;
  v.f64s = std::move(values);
  metrics_[name] = std::move(v);
}

bool MetricsRegistry::contains(const std::string& name) const {
  return metrics_.count(name) != 0;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(metrics_.size());
  for (const auto& [name, value] : metrics_) result.push_back(name);
  return result;
}

const MetricsRegistry::Value& MetricsRegistry::at(const std::string& name,
                                                  Type type) const {
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    throw std::out_of_range("MetricsRegistry: no metric named " + name);
  }
  if (it->second.type != type) {
    throw std::logic_error("MetricsRegistry: type mismatch reading " + name);
  }
  return it->second;
}

std::uint64_t MetricsRegistry::u64(const std::string& name) const {
  return at(name, Type::kU64).u64;
}

std::int64_t MetricsRegistry::i64(const std::string& name) const {
  return at(name, Type::kI64).i64;
}

double MetricsRegistry::f64(const std::string& name) const {
  return at(name, Type::kF64).f64;
}

const std::string& MetricsRegistry::str(const std::string& name) const {
  return at(name, Type::kStr).str;
}

const std::vector<std::uint64_t>& MetricsRegistry::u64_list(
    const std::string& name) const {
  return at(name, Type::kU64List).u64s;
}

const std::vector<double>& MetricsRegistry::f64_list(
    const std::string& name) const {
  return at(name, Type::kF64List).f64s;
}

namespace {

void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Round-trippable double without locale surprises.
void write_f64(std::ostream& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // JSON has no infinity/nan literals; clamp to null.
  for (const char* p = buffer; *p != '\0'; ++p) {
    if (*p == 'n' || *p == 'i') {
      out << "null";
      return;
    }
  }
  out << buffer;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << "{\n" << pad << "  \"schema\": \"" << kMetricsSchema
      << "\",\n" << pad << "  \"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : metrics_) {
    if (!first) out << ',';
    first = false;
    out << '\n' << pad << "    ";
    write_json_string(out, name);
    out << ": {\"type\": \"";
    switch (value.type) {
      case Type::kU64:
        out << "u64\", \"value\": " << value.u64;
        break;
      case Type::kI64:
        out << "i64\", \"value\": " << value.i64;
        break;
      case Type::kF64:
        out << "f64\", \"value\": ";
        write_f64(out, value.f64);
        break;
      case Type::kStr:
        out << "str\", \"value\": ";
        write_json_string(out, value.str);
        break;
      case Type::kU64List: {
        out << "u64[]\", \"value\": [";
        for (std::size_t i = 0; i < value.u64s.size(); ++i) {
          out << (i == 0 ? "" : ", ") << value.u64s[i];
        }
        out << ']';
        break;
      }
      case Type::kF64List: {
        out << "f64[]\", \"value\": [";
        for (std::size_t i = 0; i < value.f64s.size(); ++i) {
          if (i != 0) out << ", ";
          write_f64(out, value.f64s[i]);
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << '\n' << pad << "  }\n" << pad << "}";
}

}  // namespace kappa
