/// \file metrics.hpp
/// \brief The unified metrics registry: named, typed run metrics behind
/// one namespace, dumped as stable-schema JSON.
///
/// The registry replaces the ad-hoc counter plumbing that grew around
/// PartitionResult — every consumer (CLI `--metrics-out`, benches,
/// tests) reads the same names with the same types instead of
/// hand-formatting its own JSON. Keys are dot-separated namespaces
/// ("comm.words_sent", "memory.shard.owned_per_rank"); the document is
/// sorted by key, so two runs diff cleanly. The schema identifier only
/// changes when the value model changes incompatibly, not when keys are
/// added.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace kappa {

/// Schema identifier written into every metrics dump.
inline constexpr const char* kMetricsSchema = "kappa.metrics.v1";

/// Named, typed metrics of one run. Setting a name again overwrites it
/// (types may change; last writer wins).
class MetricsRegistry {
 public:
  void set_u64(const std::string& name, std::uint64_t value);
  void set_i64(const std::string& name, std::int64_t value);
  void set_f64(const std::string& name, double value);
  void set_str(const std::string& name, std::string value);
  void set_u64_list(const std::string& name,
                    std::vector<std::uint64_t> values);
  void set_f64_list(const std::string& name, std::vector<double> values);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  /// Registered names, sorted (the JSON emission order).
  [[nodiscard]] std::vector<std::string> names() const;

  // Typed getters; throw std::out_of_range on a missing name and
  // std::logic_error on a type mismatch.
  [[nodiscard]] std::uint64_t u64(const std::string& name) const;
  [[nodiscard]] std::int64_t i64(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] const std::string& str(const std::string& name) const;
  [[nodiscard]] const std::vector<std::uint64_t>& u64_list(
      const std::string& name) const;
  [[nodiscard]] const std::vector<double>& f64_list(
      const std::string& name) const;

  /// Writes the stable-schema document:
  ///   { "schema": "kappa.metrics.v1",
  ///     "metrics": { "<name>": {"type": "<t>", "value": <v>}, ... } }
  /// sorted by name. \p indent shifts every line right (embedding a run
  /// inside a bench's run array).
  void write_json(std::ostream& out, int indent = 0) const;

 private:
  enum class Type { kU64, kI64, kF64, kStr, kU64List, kF64List };

  struct Value {
    Type type = Type::kU64;
    std::uint64_t u64 = 0;
    std::int64_t i64 = 0;
    double f64 = 0.0;
    std::string str;
    std::vector<std::uint64_t> u64s;
    std::vector<double> f64s;
  };

  const Value& at(const std::string& name, Type type) const;

  std::map<std::string, Value> metrics_;
};

}  // namespace kappa
