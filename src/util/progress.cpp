#include "util/progress.hpp"

#include <algorithm>

#include "util/trace.hpp"

namespace kappa {

namespace {

thread_local ProgressBoard* g_thread_board = nullptr;

constexpr std::uint64_t pack_word(ProgressPhase phase, std::uint32_t level,
                                  std::uint32_t iteration) {
  return (static_cast<std::uint64_t>(phase) << 56) |
         ((static_cast<std::uint64_t>(level) & 0xFFFFFFu) << 32) |
         static_cast<std::uint64_t>(iteration);
}

}  // namespace

const char* progress_phase_name(ProgressPhase phase) {
  switch (phase) {
    case ProgressPhase::kIdle: return "idle";
    case ProgressPhase::kCoarsen: return "coarsen";
    case ProgressPhase::kInitial: return "initial";
    case ProgressPhase::kRefine: return "refine";
    case ProgressPhase::kRebalance: return "rebalance";
    case ProgressPhase::kMaterialize: return "materialize";
    case ProgressPhase::kDone: return "done";
  }
  return "unknown";
}

void ProgressBoard::advance(std::uint64_t now_ns) {
  last_advance_ns_.store(now_ns, std::memory_order_relaxed);
  advances_.fetch_add(1, std::memory_order_release);
}

void ProgressBoard::note(const char* name, std::uint64_t now_ns) {
  const std::uint32_t head = recent_head_.load(std::memory_order_relaxed);
  const std::size_t slot = head % kRecentEvents;
  recent_name_[slot].store(name, std::memory_order_relaxed);
  recent_ns_[slot].store(now_ns, std::memory_order_relaxed);
  recent_head_.store(head + 1, std::memory_order_release);
}

void ProgressBoard::set_phase(ProgressPhase phase, std::uint64_t now_ns) {
  const std::uint64_t word = word_.load(std::memory_order_relaxed);
  word_.store(pack_word(phase, static_cast<std::uint32_t>(word >> 32) &
                                   0xFFFFFFu,
                        static_cast<std::uint32_t>(word)),
              std::memory_order_relaxed);
  note(progress_phase_name(phase), now_ns);
  advance(now_ns);
}

void ProgressBoard::set_level(std::uint32_t level, std::uint64_t now_ns) {
  const std::uint64_t word = word_.load(std::memory_order_relaxed);
  word_.store(pack_word(static_cast<ProgressPhase>(word >> 56), level,
                        static_cast<std::uint32_t>(word)),
              std::memory_order_relaxed);
  advance(now_ns);
}

void ProgressBoard::set_iteration(std::uint32_t iteration,
                                  std::uint64_t now_ns) {
  const std::uint64_t word = word_.load(std::memory_order_relaxed);
  word_.store(pack_word(static_cast<ProgressPhase>(word >> 56),
                        static_cast<std::uint32_t>(word >> 32) & 0xFFFFFFu,
                        iteration),
              std::memory_order_relaxed);
  advance(now_ns);
}

void ProgressBoard::count_pair(std::uint64_t now_ns) {
  pairs_.fetch_add(1, std::memory_order_relaxed);
  advance(now_ns);
}

void ProgressBoard::push_span(const char* name, std::uint64_t now_ns) {
  const std::uint32_t depth = span_depth_.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) {
    span_stack_[depth].store(name, std::memory_order_relaxed);
  }
  span_depth_.store(depth + 1, std::memory_order_release);
  note(name, now_ns);
  advance(now_ns);
}

void ProgressBoard::pop_span(std::uint64_t now_ns) {
  const std::uint32_t depth = span_depth_.load(std::memory_order_relaxed);
  if (depth > 0) {
    span_depth_.store(depth - 1, std::memory_order_release);
  }
  advance(now_ns);
}

void ProgressBoard::set_aux(ProgressAux slot, std::uint64_t value) {
  aux_[static_cast<std::size_t>(slot)].store(value,
                                             std::memory_order_relaxed);
}

void ProgressBoard::touch(std::uint64_t now_ns) { advance(now_ns); }

ProgressSnapshot ProgressBoard::snapshot() const {
  ProgressSnapshot snap;
  const std::uint64_t word = word_.load(std::memory_order_relaxed);
  snap.phase = static_cast<ProgressPhase>(word >> 56);
  snap.level = static_cast<std::uint32_t>(word >> 32) & 0xFFFFFFu;
  snap.iteration = static_cast<std::uint32_t>(word);
  snap.pairs_executed = pairs_.load(std::memory_order_relaxed);
  snap.advances = advances_.load(std::memory_order_acquire);
  snap.last_advance_ns = last_advance_ns_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t ProgressBoard::aux(ProgressAux slot) const {
  return aux_[static_cast<std::size_t>(slot)].load(
      std::memory_order_relaxed);
}

std::vector<const char*> ProgressBoard::open_spans() const {
  const std::uint32_t depth =
      std::min<std::uint32_t>(span_depth_.load(std::memory_order_acquire),
                              static_cast<std::uint32_t>(kMaxSpanDepth));
  std::vector<const char*> names;
  names.reserve(depth);
  for (std::uint32_t i = 0; i < depth; ++i) {
    if (const char* name = span_stack_[i].load(std::memory_order_relaxed)) {
      names.push_back(name);
    }
  }
  return names;
}

std::vector<ProgressBoard::RecentEvent> ProgressBoard::recent_events()
    const {
  const std::uint32_t head = recent_head_.load(std::memory_order_acquire);
  const std::uint32_t count =
      std::min<std::uint32_t>(head, static_cast<std::uint32_t>(kRecentEvents));
  std::vector<RecentEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t slot = (head - count + i) % kRecentEvents;
    RecentEvent event;
    event.name = recent_name_[slot].load(std::memory_order_relaxed);
    event.at_ns = recent_ns_[slot].load(std::memory_order_relaxed);
    if (event.name != nullptr) events.push_back(event);
  }
  return events;
}

std::array<std::uint64_t, ProgressBoard::kWireWords> ProgressBoard::pack()
    const {
  const ProgressSnapshot snap = snapshot();
  return {pack_word(snap.phase, snap.level, snap.iteration),
          snap.pairs_executed, snap.advances, snap.last_advance_ns};
}

ProgressSnapshot ProgressBoard::unpack(
    const std::array<std::uint64_t, kWireWords>& words) {
  ProgressSnapshot snap;
  snap.phase = static_cast<ProgressPhase>(words[0] >> 56);
  snap.level = static_cast<std::uint32_t>(words[0] >> 32) & 0xFFFFFFu;
  snap.iteration = static_cast<std::uint32_t>(words[0]);
  snap.pairs_executed = words[1];
  snap.advances = words[2];
  snap.last_advance_ns = words[3];
  return snap;
}

ProgressBoard* thread_progress() { return g_thread_board; }

ThreadProgressScope::ThreadProgressScope(ProgressBoard* board)
    : previous_(g_thread_board) {
  g_thread_board = board;
}

ThreadProgressScope::~ThreadProgressScope() { g_thread_board = previous_; }

void progress_phase(ProgressPhase phase) {
  if (ProgressBoard* board = g_thread_board) {
    board->set_phase(phase, trace_now_ns());
  }
}

void progress_level(std::uint32_t level) {
  if (ProgressBoard* board = g_thread_board) {
    board->set_level(level, trace_now_ns());
  }
}

void progress_iteration(std::uint32_t iteration) {
  if (ProgressBoard* board = g_thread_board) {
    board->set_iteration(iteration, trace_now_ns());
  }
}

void progress_pair() {
  if (ProgressBoard* board = g_thread_board) {
    board->count_pair(trace_now_ns());
  }
}

void progress_aux(ProgressAux slot, std::uint64_t value) {
  if (ProgressBoard* board = g_thread_board) {
    board->set_aux(slot, value);
  }
}

}  // namespace kappa
