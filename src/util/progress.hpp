/// \file progress.hpp
/// \brief Per-rank progress boards: the data plane of kappa-watch.
///
/// A ProgressBoard is one rank's always-current answer to "where are you
/// and when did you last move?" — a handful of atomics the rank's own
/// thread updates at the span boundaries kappa-trace already instruments
/// (phase id, coarsening/refinement level, refinement iteration, pairs
/// executed, last-advance timestamp via trace_now_ns()), plus a bounded
/// open-span stack and a last-N event ring so a stall report can name
/// *what* the rank was inside when it stopped moving.
///
/// Ownership and thread model mirror the trace recorder: exactly one
/// writer (the rank thread, bound via ThreadProgressScope), any number of
/// lock-free readers (the watchdog and sampler threads, and — through the
/// transport's heartbeat lane or the in-process board registry — every
/// peer). All cross-thread state is std::atomic; readers may observe a
/// board mid-update, which costs them a momentarily inconsistent *view*,
/// never a data race and never back-pressure on the rank thread.
///
/// Like tracing, the whole layer is observer-only: when no board is bound
/// to the current thread every publication site is one thread-local load
/// and a branch, and a watched run produces the byte-identical partition
/// of an unwatched one.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kappa {

/// Coarse phase of the multilevel pipeline a rank is executing. Published
/// by the SPMD driver (spmd_phases.cpp); kIdle before the pipeline
/// starts, kDone after materialization.
enum class ProgressPhase : std::uint8_t {
  kIdle = 0,
  kCoarsen = 1,
  kInitial = 2,
  kRefine = 3,
  kRebalance = 4,
  kMaterialize = 5,
  kDone = 6,
};

/// Stable lower-case name for JSON snapshots ("idle", "coarsen", ...).
[[nodiscard]] const char* progress_phase_name(ProgressPhase phase);

/// One coherent reading of a board — the progress word peers exchange
/// over the heartbeat lane.
struct ProgressSnapshot {
  ProgressPhase phase = ProgressPhase::kIdle;
  std::uint32_t level = 0;          ///< current multilevel hierarchy level
  std::uint32_t iteration = 0;      ///< current refinement iteration
  std::uint64_t pairs_executed = 0; ///< pairwise refinements run so far
  std::uint64_t advances = 0;       ///< monotone count of all publications
  std::uint64_t last_advance_ns = 0; ///< trace_now_ns() of the newest one
};

/// Named auxiliary counter slots — the async-arbiter lock-table summary
/// the §5.2 barrier-free scheduler publishes for stall reports.
enum class ProgressAux : std::uint8_t {
  kAsyncLocksHeld = 0,     ///< blocks currently locked by in-flight pairs
  kAsyncGrantsInFlight = 1, ///< pairs granted but not yet reported done
  kAsyncPairsDone = 2,     ///< pairs completed this iteration
  kCount = 3,
};

/// One rank's progress board. Writer: the rank thread only. Readers: any.
class ProgressBoard {
 public:
  static constexpr std::size_t kMaxSpanDepth = 16;
  static constexpr std::size_t kRecentEvents = 16;
  /// Packed wire size of a snapshot (see pack()/unpack()).
  static constexpr std::size_t kWireWords = 4;

  // --- writer side (owner thread) ---------------------------------------
  void set_phase(ProgressPhase phase, std::uint64_t now_ns);
  void set_level(std::uint32_t level, std::uint64_t now_ns);
  void set_iteration(std::uint32_t iteration, std::uint64_t now_ns);
  void count_pair(std::uint64_t now_ns);
  /// Pushes \p name (a string literal, like trace names) onto the open-span
  /// stack and notes it in the recent-event ring. Depth beyond
  /// kMaxSpanDepth is counted but not stored.
  void push_span(const char* name, std::uint64_t now_ns);
  void pop_span(std::uint64_t now_ns);
  void set_aux(ProgressAux slot, std::uint64_t value);
  /// Bumps the advance counter without changing any field — "still alive,
  /// still moving" evidence from sites with nothing structured to report.
  void touch(std::uint64_t now_ns);

  // --- reader side (any thread) ------------------------------------------
  [[nodiscard]] ProgressSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t aux(ProgressAux slot) const;
  /// Open span names, outermost first. Best-effort under concurrent
  /// writes: entries are individually atomic, the stack as a whole is not.
  [[nodiscard]] std::vector<const char*> open_spans() const;
  struct RecentEvent {
    const char* name = nullptr;
    std::uint64_t at_ns = 0;
  };
  /// The last up-to-kRecentEvents span entries/exits, oldest first.
  [[nodiscard]] std::vector<RecentEvent> recent_events() const;

  /// Packs a snapshot into the kWireWords heartbeat payload and back.
  [[nodiscard]] std::array<std::uint64_t, kWireWords> pack() const;
  [[nodiscard]] static ProgressSnapshot unpack(
      const std::array<std::uint64_t, kWireWords>& words);

 private:
  void advance(std::uint64_t now_ns);
  void note(const char* name, std::uint64_t now_ns);

  /// phase | level | iteration packed into one word so a snapshot reads
  /// the trio coherently: (phase << 56) | (level << 32) | iteration.
  std::atomic<std::uint64_t> word_{0};
  std::atomic<std::uint64_t> pairs_{0};
  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::uint64_t> last_advance_ns_{0};
  std::atomic<std::uint32_t> span_depth_{0};
  std::array<std::atomic<const char*>, kMaxSpanDepth> span_stack_{};
  std::atomic<std::uint32_t> recent_head_{0};
  std::array<std::atomic<const char*>, kRecentEvents> recent_name_{};
  std::array<std::atomic<std::uint64_t>, kRecentEvents> recent_ns_{};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(ProgressAux::kCount)>
      aux_{};
};

/// The board bound to the current thread (one per watched SPMD rank), or
/// nullptr when kappa-watch is off — the exact analogue of thread_trace().
[[nodiscard]] ProgressBoard* thread_progress();

/// Binds \p board to the current thread for the scope's lifetime and
/// restores the previous binding on exit. Bind nullptr to publish nothing.
class ThreadProgressScope {
 public:
  explicit ThreadProgressScope(ProgressBoard* board);
  ~ThreadProgressScope();
  ThreadProgressScope(const ThreadProgressScope&) = delete;
  ThreadProgressScope& operator=(const ThreadProgressScope&) = delete;

 private:
  ProgressBoard* previous_;
};

// Publication sites in the algorithm layers call these free helpers; with
// no board bound each is one thread-local load and a branch. Timestamps
// come from trace_now_ns(), the one sanctioned clock.
void progress_phase(ProgressPhase phase);
void progress_level(std::uint32_t level);
void progress_iteration(std::uint32_t iteration);
void progress_pair();
void progress_aux(ProgressAux slot, std::uint64_t value);

}  // namespace kappa
