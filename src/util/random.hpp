/// \file random.hpp
/// \brief Seeded pseudo random number generation (xoshiro256**).
///
/// Every randomized component of the library draws from an explicitly
/// seeded Rng instance, which makes all algorithms reproducible: the same
/// seed yields the same partition. PEs derive independent streams by
/// hashing (seed, pe) — see Rng::fork().
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace kappa {

/// xoshiro256** generator by Blackman & Vigna. Small, fast, and of far
/// better statistical quality than std::minstd; we avoid std::mt19937 for
/// its 2.5 KB of state which is wasteful with one generator per PE.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds this generator in place.
  void reseed(std::uint64_t seed) {
    // SplitMix64 to fill the four state words; guarantees a non-zero state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Derives an independent stream for a PE / repetition index. Mixing the
  /// tag through SplitMix64 decorrelates the child streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    std::uint64_t base = state_[0] ^ (state_[1] << 1) ^ (state_[2] >> 1) ^ state_[3];
    return Rng(base + 0x632be59bd9b4e019ULL * (tag + 1));
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound) (bound > 0). Uses Lemire's multiply-shift
  /// rejection method to avoid modulo bias.
  std::uint64_t bounded(std::uint64_t bound) {
    __uint128_t mul = static_cast<__uint128_t>(next()) * bound;
    auto low = static_cast<std::uint64_t>(mul);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        mul = static_cast<__uint128_t>(next()) * bound;
        low = static_cast<std::uint64_t>(mul);
      }
    }
    return static_cast<std::uint64_t>(mul >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Fair coin toss; used by the distributed edge-coloring protocol (§5.1)
  /// where PEs flip active/passive coins each round.
  bool coin() { return (next() & 1ULL) != 0; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = bounded(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// A random permutation of 0..n-1.
  std::vector<NodeID> permutation(NodeID n) {
    std::vector<NodeID> perm(n);
    for (NodeID i = 0; i < n; ++i) perm[i] = i;
    shuffle(perm);
    return perm;
  }

 private:
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace kappa
