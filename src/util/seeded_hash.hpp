/// \file seeded_hash.hpp
/// \brief Seed-perturbed hashing for the unordered containers of the
/// partition-reaching paths.
///
/// The determinism contract (ROADMAP, kappa-lint determinism-sources)
/// says the partition is a pure function of (graph, config, seed) — in
/// particular it must not depend on the iteration order of any hash
/// table. That property is easy to break silently: std::unordered_map
/// iterates in bucket order, which is stable for a fixed libstdc++ and
/// key sequence, so an accidental order dependence passes every test on
/// one toolchain and diverges on the next.
///
/// SeededHash makes the hazard testable. Every unordered container on a
/// partition-reaching path uses hash_map/hash_set below, whose hasher
/// XORs a process-global seed (env KAPPA_HASH_SEED, test hook
/// set_hash_seed) into every hash and remixes with splitmix64. Changing
/// the seed scrambles bucket order across *all* such containers at once;
/// the determinism regression test partitions the same instance under
/// two seeds and asserts byte-identical assignments. Any hash-order
/// dependence that slips past kappa-lint's lexical range-for check shows
/// up there as a hard failure instead of a latent platform dependence.
///
/// The hasher captures the seed at container construction, so rehashing
/// stays self-consistent even if set_hash_seed() is called while a
/// container is live.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace kappa {

namespace detail {

inline std::uint64_t initial_hash_seed() {
  if (const char* env = std::getenv("KAPPA_HASH_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

inline std::uint64_t& hash_seed_ref() {
  static std::uint64_t seed = initial_hash_seed();
  return seed;
}

/// Finalizer of the splitmix64 generator — a full-avalanche mix, so one
/// flipped seed bit reshuffles every bucket.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Sets the process-global hash seed (containers constructed afterwards
/// pick it up). Test hook; production runs set KAPPA_HASH_SEED instead.
inline void set_hash_seed(std::uint64_t seed) {
  detail::hash_seed_ref() = seed;
}

[[nodiscard]] inline std::uint64_t hash_seed() {
  return detail::hash_seed_ref();
}

template <typename T>
struct SeededHash {
  std::uint64_t seed = detail::hash_seed_ref();
  std::size_t operator()(const T& value) const {
    return static_cast<std::size_t>(
        detail::splitmix64(std::hash<T>{}(value) ^ seed));
  }
};

template <typename K, typename V>
using hash_map = std::unordered_map<K, V, SeededHash<K>>;

template <typename K>
using hash_set = std::unordered_set<K, SeededHash<K>>;

}  // namespace kappa
