/// \file stats.hpp
/// \brief Statistics accumulators used by the experiment harness.
///
/// The paper averages over multiple instances with the *geometric* mean "in
/// order to give every instance the same influence on the final figure"
/// (§6). GeometricMean reproduces that convention; Aggregate collects the
/// per-run (cut, balance, time) triples that make up one table row.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace kappa {

/// Accumulates the geometric mean of strictly positive samples.
/// Computed in log-space for numerical robustness with large cut values.
class GeometricMean {
 public:
  /// Adds one sample; values <= 0 are clamped to 1 (a zero cut would
  /// otherwise annihilate the mean, matching common partitioning practice).
  void add(double value) {
    log_sum_ += std::log(std::max(value, 1.0));
    ++count_;
  }

  /// The geometric mean of all samples added so far; 0 if empty.
  [[nodiscard]] double value() const {
    return count_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(count_));
  }

  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  double log_sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Per-configuration result aggregate: average cut, best cut, average
/// balance and average runtime — exactly the columns of Tables 3-20.
class RunAggregate {
 public:
  void add(double cut, double balance, double seconds) {
    cut_sum_ += cut;
    balance_sum_ += balance;
    time_sum_ += seconds;
    best_cut_ = std::min(best_cut_, cut);
    ++count_;
  }

  [[nodiscard]] double avg_cut() const { return mean(cut_sum_); }
  [[nodiscard]] double best_cut() const {
    return count_ == 0 ? 0.0 : best_cut_;
  }
  [[nodiscard]] double avg_balance() const { return mean(balance_sum_); }
  [[nodiscard]] double avg_time() const { return mean(time_sum_); }
  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  [[nodiscard]] double mean(double sum) const {
    return count_ == 0 ? 0.0 : sum / static_cast<double>(count_);
  }

  double cut_sum_ = 0.0;
  double balance_sum_ = 0.0;
  double time_sum_ = 0.0;
  double best_cut_ = std::numeric_limits<double>::max();
  std::size_t count_ = 0;
};

}  // namespace kappa
