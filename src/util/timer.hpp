/// \file timer.hpp
/// \brief Wall-clock timing utilities for experiments.
#pragma once

#include <chrono>

namespace kappa {

/// Simple monotonic wall-clock stopwatch. The benchmark harness reports
/// seconds with the same granularity as the paper's "avg. runtime" columns.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart.
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last restart.
  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kappa
