/// \file trace.cpp
/// \brief Recorder, thread binding, local merge, and Chrome-trace export.
#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <ostream>

namespace kappa {

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(capacity_);
}

void TraceRecorder::push(const TraceEvent& event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void TraceRecorder::span(const char* name, std::uint64_t start_ns,
                         std::uint64_t end_ns, std::uint64_t arg0,
                         std::uint64_t arg1) {
  push({name, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0, arg0,
        arg1, TraceEventKind::kSpan});
}

void TraceRecorder::counter(const char* name, std::uint64_t value) {
  push({name, trace_now_ns(), 0, value, 0, TraceEventKind::kCounter});
}

void TraceRecorder::instant(const char* name, std::uint64_t arg0,
                            std::uint64_t arg1) {
  push({name, trace_now_ns(), 0, arg0, arg1, TraceEventKind::kInstant});
}

namespace {

thread_local TraceRecorder* tl_recorder = nullptr;

}  // namespace

TraceRecorder* thread_trace() { return tl_recorder; }

ThreadTraceScope::ThreadTraceScope(TraceRecorder* recorder)
    : previous_(tl_recorder) {
  tl_recorder = recorder;
}

ThreadTraceScope::~ThreadTraceScope() { tl_recorder = previous_; }

bool trace_run_enabled(bool config_flag) {
  if (config_flag) return true;
  const char* env = std::getenv("KAPPA_TRACE");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

std::size_t trace_buffer_capacity() {
  if (const char* env = std::getenv("KAPPA_TRACE_BUFFER")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && value > 0) return static_cast<std::size_t>(value);
  }
  return TraceRecorder::kDefaultCapacity;
}

MergedTrace merge_local_trace(const TraceRecorder& recorder, int rank,
                              int num_ranks) {
  MergedTrace merged;
  merged.num_ranks = num_ranks;
  merged.dropped_per_rank.assign(static_cast<std::size_t>(num_ranks), 0);
  merged.clock_offset_ns.assign(static_cast<std::size_t>(num_ranks), 0);
  merged.dropped_per_rank[static_cast<std::size_t>(rank)] =
      recorder.read_dropped();
  std::map<std::string, std::uint32_t> interned;
  merged.events.reserve(recorder.read_events().size());
  for (const TraceEvent& event : recorder.read_events()) {
    const auto [it, fresh] = interned.try_emplace(
        event.name, static_cast<std::uint32_t>(merged.names.size()));
    if (fresh) merged.names.emplace_back(event.name);
    merged.events.push_back({it->second, rank, event.start_ns, event.dur_ns,
                             event.arg0, event.arg1, event.kind});
  }
  // Spans are recorded at their *end*, so buffer order is not start
  // order; the merged form is sorted by start (outer spans before the
  // nested ones they contain).
  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const MergedTraceEvent& a, const MergedTraceEvent& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.dur_ns > b.dur_ns;
                   });
  return merged;
}

namespace {

void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Microseconds with nanosecond precision kept as a decimal fraction.
void write_ts_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
      << static_cast<char>('0' + (ns / 10) % 10)
      << static_cast<char>('0' + ns % 10);
}

}  // namespace

void write_chrome_trace(const MergedTrace& trace, std::ostream& out) {
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const MergedTraceEvent& event : trace.events) {
    epoch = std::min(epoch, event.start_ns);
  }
  if (trace.events.empty()) epoch = 0;

  out << "{\"traceEvents\":[";
  bool first = true;
  for (int rank = 0; rank < trace.num_ranks; ++rank) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << rank
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << rank
        << "\"}}";
  }
  for (const MergedTraceEvent& event : trace.events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"ph\":\"";
    switch (event.kind) {
      case TraceEventKind::kSpan:
        out << 'X';
        break;
      case TraceEventKind::kCounter:
        out << 'C';
        break;
      case TraceEventKind::kInstant:
        out << 'i';
        break;
    }
    out << "\",\"pid\":0,\"tid\":" << event.rank << ",\"ts\":";
    write_ts_us(out, event.start_ns - epoch);
    if (event.kind == TraceEventKind::kSpan) {
      out << ",\"dur\":";
      write_ts_us(out, event.dur_ns);
    }
    out << ",\"name\":";
    write_json_string(out,
                      trace.names[static_cast<std::size_t>(event.name_index)]);
    if (event.kind == TraceEventKind::kCounter) {
      out << ",\"args\":{\"value\":" << event.arg0 << '}';
    } else {
      if (event.kind == TraceEventKind::kInstant) out << ",\"s\":\"t\"";
      out << ",\"args\":{\"arg0\":" << event.arg0 << ",\"arg1\":"
          << event.arg1 << '}';
    }
    out << '}';
  }
  out << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
      << "\"num_ranks\":" << trace.num_ranks << ",\"dropped_per_rank\":[";
  for (std::size_t r = 0; r < trace.dropped_per_rank.size(); ++r) {
    out << (r == 0 ? "" : ",") << trace.dropped_per_rank[r];
  }
  out << "],\"clock_offset_ns\":[";
  for (std::size_t r = 0; r < trace.clock_offset_ns.size(); ++r) {
    out << (r == 0 ? "" : ",") << trace.clock_offset_ns[r];
  }
  out << "]}}\n";
}

}  // namespace kappa
