/// \file trace.hpp
/// \brief Per-rank span tracing: a low-overhead event recorder, the
/// thread-local binding that routes instrumentation sites to it, and the
/// merged Chrome-trace/Perfetto export types.
///
/// Design contract (enforced by kappa-lint):
///  - `trace_now_ns()` is the ONE sanctioned wall-clock read for the
///    partition-reaching layers (`trace-clock-confinement`). Every idle
///    counter and every span duration flows through it, so the rule table
///    can prove no other clock read exists that could leak timing into
///    partition decisions.
///  - Tracing is observer-only. The recorder's read side
///    (`read_events()`, `read_dropped()`) and the merged types are
///    forbidden in algorithm layers (`trace-no-feedback`): trace data can
///    be *written* anywhere but *read* only by the merge/export layer, so
///    a traced run and an untraced run produce byte-identical partitions.
///
/// When no recorder is bound to the current thread (tracing off, or a
/// worker thread outside the SPMD rank set), every instrumentation site
/// is one thread-local load and a branch — no clock read, no allocation.
/// Defining KAPPA_TRACE_DISABLED compiles the macro sites to nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/progress.hpp"

namespace kappa {

/// Monotonic nanoseconds since an arbitrary epoch (the process-wide
/// steady clock; on one host all processes share it, across hosts the
/// trace merge aligns it with a measured offset).
[[nodiscard]] std::uint64_t trace_now_ns();

enum class TraceEventKind : std::uint8_t {
  kSpan = 0,     ///< interval [start_ns, start_ns + dur_ns)
  kCounter = 1,  ///< sampled value (arg0) at start_ns
  kInstant = 2,  ///< point event at start_ns
};

/// One recorded event. \p name must outlive the recorder — in practice a
/// string literal: the recorder stores the pointer, the merge step
/// interns the characters once.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  TraceEventKind kind = TraceEventKind::kSpan;
};

/// Per-rank event recorder: a ring of \c capacity preallocated slots
/// appended to by exactly one thread (the rank's own). The buffer never
/// grows on the hot path; once full, new events are dropped and counted,
/// so an undersized buffer costs trace completeness (CI fails on a
/// nonzero drop count), never a reallocation inside a timed region.
class TraceRecorder {
 public:
  /// Events per rank; override per run with KAPPA_TRACE_BUFFER.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 17;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Records a completed interval with explicit bounds (already-measured
  /// windows like the async scheduler's lock spans).
  void span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
            std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// Records a sampled value at the current time.
  void counter(const char* name, std::uint64_t value);

  /// Records a point event at the current time.
  void instant(const char* name, std::uint64_t arg0 = 0,
               std::uint64_t arg1 = 0);

  // Read side — the merge/export layer only. kappa-lint's
  // `trace-no-feedback` rule forbids these symbols in algorithm layers.
  [[nodiscard]] const std::vector<TraceEvent>& read_events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t read_dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  void push(const TraceEvent& event);

  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

/// The recorder bound to the current thread (one per SPMD rank), or
/// nullptr when tracing is off.
[[nodiscard]] TraceRecorder* thread_trace();

/// Binds \p recorder to the current thread for the scope's lifetime and
/// restores the previous binding on exit. Bind nullptr to trace nothing.
class ThreadTraceScope {
 public:
  explicit ThreadTraceScope(TraceRecorder* recorder);
  ~ThreadTraceScope();
  ThreadTraceScope(const ThreadTraceScope&) = delete;
  ThreadTraceScope& operator=(const ThreadTraceScope&) = delete;

 private:
  TraceRecorder* previous_;
};

/// RAII scoped span recorded into the current thread's recorder, and —
/// when a ProgressBoard is bound (kappa-watch on) — pushed/popped on the
/// board's open-span stack, so every instrumented span boundary doubles
/// as a liveness advance without a second set of publication sites.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg0 = 0,
                     std::uint64_t arg1 = 0)
      : recorder_(thread_trace()),
        board_(thread_progress()),
        name_(name),
        arg0_(arg0),
        arg1_(arg1) {
    if (recorder_ != nullptr || board_ != nullptr) {
      start_ns_ = trace_now_ns();
    }
    if (board_ != nullptr) board_->push_span(name, start_ns_);
  }
  ~TraceSpan() {
    if (recorder_ == nullptr && board_ == nullptr) return;
    const std::uint64_t end_ns = trace_now_ns();
    if (recorder_ != nullptr) {
      recorder_->span(name_, start_ns_, end_ns, arg0_, arg1_);
    }
    if (board_ != nullptr) board_->pop_span(end_ns);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  ProgressBoard* board_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg0_;
  std::uint64_t arg1_;
};

inline void trace_counter(const char* name, std::uint64_t value) {
  if (TraceRecorder* recorder = thread_trace()) {
    recorder->counter(name, value);
  }
}

inline void trace_instant(const char* name, std::uint64_t arg0 = 0,
                          std::uint64_t arg1 = 0) {
  if (TraceRecorder* recorder = thread_trace()) {
    recorder->instant(name, arg0, arg1);
  }
}

// Instrumentation sites use the macros so a build with
// -DKAPPA_TRACE_DISABLED compiles them out entirely.
#if defined(KAPPA_TRACE_DISABLED)
#define KAPPA_TRACE_SPAN(...) static_cast<void>(0)
#define KAPPA_TRACE_COUNTER(...) static_cast<void>(0)
#define KAPPA_TRACE_INSTANT(...) static_cast<void>(0)
#else
#define KAPPA_TRACE_CONCAT_IMPL(a, b) a##b
#define KAPPA_TRACE_CONCAT(a, b) KAPPA_TRACE_CONCAT_IMPL(a, b)
#define KAPPA_TRACE_SPAN(...)                                        \
  ::kappa::TraceSpan KAPPA_TRACE_CONCAT(kappa_trace_span_, __LINE__)( \
      __VA_ARGS__)
#define KAPPA_TRACE_COUNTER(name, value) ::kappa::trace_counter(name, value)
#define KAPPA_TRACE_INSTANT(...) ::kappa::trace_instant(__VA_ARGS__)
#endif

/// Whether tracing is on for a run: the Config flag, or the KAPPA_TRACE
/// environment variable set to anything but "" / "0".
[[nodiscard]] bool trace_run_enabled(bool config_flag);

/// Recorder capacity for a run: KAPPA_TRACE_BUFFER (events per rank) when
/// set to a positive integer, else TraceRecorder::kDefaultCapacity.
[[nodiscard]] std::size_t trace_buffer_capacity();

/// One event of a merged multi-rank trace, on rank 0's clock.
struct MergedTraceEvent {
  std::uint32_t name_index = 0;  ///< into MergedTrace::names
  std::int32_t rank = 0;
  std::uint64_t start_ns = 0;  ///< clock-offset-aligned to rank 0
  std::uint64_t dur_ns = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  TraceEventKind kind = TraceEventKind::kSpan;
};

/// Every rank's events on one aligned clock, sorted by (rank, start time)
/// — the post-collection form the export layer consumes.
struct MergedTrace {
  int num_ranks = 0;
  std::vector<std::string> names;
  std::vector<MergedTraceEvent> events;
  std::vector<std::uint64_t> dropped_per_rank;
  /// Offset applied per rank: a timestamp read on rank r's clock plus
  /// clock_offset_ns[r] is the event's time on rank 0's clock. All zero
  /// for single-process runs (every rank shares the process clock).
  std::vector<std::int64_t> clock_offset_ns;
};

/// Merges one recorder's buffer as rank \p rank of \p num_ranks with zero
/// clock offset — sequential runs and per-rank local dumps.
[[nodiscard]] MergedTrace merge_local_trace(const TraceRecorder& recorder,
                                            int rank, int num_ranks);

/// Writes \p trace in the Chrome "Trace Event Format" (JSON): one pid,
/// one tid per rank, "X" complete events for spans, "C" for counters,
/// "i" for instants. Open the file in https://ui.perfetto.dev or
/// chrome://tracing. Timestamps are microseconds relative to the
/// earliest event.
void write_chrome_trace(const MergedTrace& trace, std::ostream& out);

/// Consumer hook for the merged trace of a run — see
/// Partitioner::set_trace_sink().
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_trace(const MergedTrace& trace) = 0;
};

}  // namespace kappa
