/// \file types.hpp
/// \brief Fundamental integer types used throughout the kappa library.
///
/// The library follows the conventions of the KaPPa paper (Holtgrewe,
/// Sanders, Schulz: "Engineering a Scalable High Quality Graph
/// Partitioner", IPDPS 2010): graphs are undirected with positive edge
/// weights and non-negative node weights; both weights start out as 1 for
/// unweighted inputs but become genuinely weighted during multilevel
/// contraction.
#pragma once

#include <cstdint>
#include <limits>

namespace kappa {

/// Identifier of a node (vertex). Dense, zero-based.
using NodeID = std::uint32_t;

/// Index into the CSR edge arrays. A graph with m undirected edges stores
/// 2m directed arcs, so this is wider than NodeID.
using EdgeID = std::uint64_t;

/// Identifier of a block (partition part) or of a PE. The paper identifies
/// blocks with PEs (one block per processing element).
using BlockID = std::uint32_t;

/// Weight of a node. Node weights grow by summation during contraction.
using NodeWeight = std::int64_t;

/// Weight of an edge. Parallel edges created by contraction are merged by
/// summing their weights.
using EdgeWeight = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeID kInvalidNode = std::numeric_limits<NodeID>::max();

/// Sentinel for "no edge".
inline constexpr EdgeID kInvalidEdge = std::numeric_limits<EdgeID>::max();

/// Sentinel for "no block" (used for yet-unassigned nodes).
inline constexpr BlockID kInvalidBlock = std::numeric_limits<BlockID>::max();

}  // namespace kappa
