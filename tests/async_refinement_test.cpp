/// \file async_refinement_test.cpp
/// \brief Tests for the barrier-free async pair scheduler
/// (config.async_refinement): partition validity and cut quality against
/// the color-class oracle across the full PE-count range, the block-lock
/// safety invariant read off the surfaced pair traces, and the idle-time
/// counters both schedulers feed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"

namespace kappa {
namespace {

PartitionResult run_pipeline(const StaticGraph& g, const Config& config,
                             int p) {
  PERuntime runtime(p, config.seed);
  return Partitioner(Context::spmd(config, runtime)).partition(g);
}

/// Async mode trades the oracle's bit-identity for wall-clock, so the
/// quality contract is relative: on every instance and every PE count —
/// including ragged p and p > k — the async cut stays within 1% of the
/// (p-invariant) oracle cut, and the partition stays valid and balanced.
class AsyncCutQuality : public ::testing::TestWithParam<std::string> {};

TEST_P(AsyncCutQuality, WithinOnePercentOfOracleForP2Through9) {
  const StaticGraph g = make_instance(GetParam(), 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  ASSERT_FALSE(config.async_refinement);
  const PartitionResult oracle = run_pipeline(g, config, 2);
  ASSERT_EQ(validate_partition(g, oracle.partition), "");

  config.async_refinement = true;
  for (int p = 2; p <= 9; ++p) {
    const PartitionResult async = run_pipeline(g, config, p);
    EXPECT_EQ(validate_partition(g, async.partition), "")
        << GetParam() << " p=" << p;
    EXPECT_TRUE(async.balanced)
        << GetParam() << " p=" << p << " balance=" << async.balance;
    EXPECT_LE(static_cast<double>(async.cut),
              1.01 * static_cast<double>(oracle.cut))
        << GetParam() << " p=" << p << ": async cut " << async.cut
        << " vs oracle " << oracle.cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, AsyncCutQuality,
                         ::testing::Values("rgg14", "delaunay14"));

TEST(AsyncRefinement, SinglePeAndDegenerateShapesTerminate) {
  // p = 1 (arbiter, executor and partner are all the same rank), k = 1
  // (empty quotient, the scheduler must not be entered with zero pairs in
  // a way that hangs), and p > k with a tiny graph.
  Config one_block = Config::preset(Preset::kMinimal, 1);
  one_block.seed = 1;
  one_block.async_refinement = true;
  const StaticGraph grid = grid_graph(8, 8);
  const PartitionResult trivial = run_pipeline(grid, one_block, 2);
  EXPECT_EQ(validate_partition(grid, trivial.partition), "");
  EXPECT_EQ(trivial.cut, 0);

  const StaticGraph tiny = grid_graph(6, 4);
  Config tiny_config = Config::preset(Preset::kFast, 2);
  tiny_config.seed = 3;
  tiny_config.async_refinement = true;
  const PartitionResult tiny_result = run_pipeline(tiny, tiny_config, 4);
  EXPECT_EQ(validate_partition(tiny, tiny_result.partition), "");
  EXPECT_TRUE(tiny_result.balanced);

  const StaticGraph g = make_instance("rgg14", 11);
  Config solo = Config::preset(Preset::kMinimal, 8);
  solo.seed = 42;
  solo.async_refinement = true;
  const PartitionResult result = run_pipeline(g, solo, 1);
  EXPECT_EQ(validate_partition(g, result.partition), "");
}

TEST(AsyncRefinement, NoTwoInFlightPairsShareABlock) {
  // The lock-safety invariant, checked from the surfaced executor traces:
  // any two executed pairs that share a block must have disjoint
  // [begin_ns, end_ns) windows, across ranks too (all PEs are threads of
  // one process, so the steady-clock stamps are comparable). The arbiter
  // frees a block only after the executor's completion message, which
  // happens-after the event's end_ns — an overlap here would mean two
  // pairs were live on one block at once.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;
  config.async_refinement = true;

  const PartitionResult result = run_pipeline(g, config, 4);
  ASSERT_EQ(result.async_pairs_per_pe.size(), 4u);

  std::vector<AsyncPairEvent> events;
  for (const auto& per_rank : result.async_pairs_per_pe) {
    events.insert(events.end(), per_rank.begin(), per_rank.end());
  }
  ASSERT_GT(events.size(), 0u) << "async mode executed no pairs at all";

  for (const AsyncPairEvent& e : events) {
    EXPECT_LT(e.begin_ns, e.end_ns);
    EXPECT_NE(e.block_a, e.block_b);
  }
  std::size_t shared_block_pairs = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const AsyncPairEvent& a = events[i];
      const AsyncPairEvent& b = events[j];
      const bool share = a.block_a == b.block_a || a.block_a == b.block_b ||
                         a.block_b == b.block_a || a.block_b == b.block_b;
      if (!share) continue;
      ++shared_block_pairs;
      const bool disjoint = a.end_ns <= b.begin_ns || b.end_ns <= a.begin_ns;
      EXPECT_TRUE(disjoint)
          << "pairs {" << a.block_a << "," << a.block_b << "} ["
          << a.begin_ns << "," << a.end_ns << ") and {" << b.block_a << ","
          << b.block_b << "} [" << b.begin_ns << "," << b.end_ns
          << ") overlap on a shared block";
    }
  }
  // With k = 8 and several iterations the schedule necessarily reuses
  // blocks — the invariant must actually have been exercised.
  EXPECT_GT(shared_block_pairs, 0u);

  // Oracle runs surface no async traces.
  config.async_refinement = false;
  const PartitionResult oracle = run_pipeline(g, config, 4);
  for (const auto& per_rank : oracle.async_pairs_per_pe) {
    EXPECT_TRUE(per_rank.empty());
  }
}

TEST(AsyncRefinement, IdleCountersAreSurfacedPerRank) {
  // Satellite of the barrier-kill work: both schedulers count the time a
  // rank spends blocked (collectives + empty-mailbox receives) and the
  // rounds it sat out entirely; the counters ride the per-PE CommStats
  // into the result.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  for (const bool async : {false, true}) {
    config.async_refinement = async;
    const PartitionResult result = run_pipeline(g, config, 4);
    ASSERT_EQ(result.comm_per_pe.size(), 4u) << "async=" << async;
    std::uint64_t total_idle = 0;
    for (const CommStats& s : result.comm_per_pe) {
      EXPECT_EQ(s.idle_ns(), s.collective_idle_ns + s.recv_idle_ns);
      total_idle += s.idle_ns();
    }
    // Four ranks synchronizing a multilevel pipeline cannot all have
    // waited zero nanoseconds.
    EXPECT_GT(total_idle, 0u) << "async=" << async;
    EXPECT_EQ(result.comm.idle_ns(), total_idle) << "async=" << async;
  }
}

}  // namespace
}  // namespace kappa
