/// \file baselines_test.cpp
/// \brief Tests for the Scotch-like, kMetis-like and parMetis-like
/// baselines and their expected quality ordering vs. KaPPa.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"

namespace kappa {
namespace {

/// Every baseline must produce structurally valid partitions on every
/// instance family.
class BaselineValidity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BaselineValidity, ProducesValidPartition) {
  const auto& [instance, which] = GetParam();
  const StaticGraph g = make_instance(instance, 3);
  const BlockID k = 8;
  BaselineResult result;
  switch (which) {
    case 0:
      result = scotch_partition(g, k, 0.03, 1);
      break;
    case 1:
      result = kmetis_partition(g, k, 0.03, 1);
      break;
    default:
      result = parmetis_partition(g, k, 0.03, 1);
      break;
  }
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_EQ(result.partition.k(), k);
  EXPECT_GT(result.cut, 0);
  for (BlockID b = 0; b < k; ++b) {
    EXPECT_GT(result.partition.block_weight(b), 0) << "empty block " << b;
  }
  // The paper observes that "none of the other algorithms consistently
  // complies with the balance constraint" (Table 5 shows Scotch at 1.037
  // and parMetis at ~1.05 for eps = 3%); only KaPPa is strict. Hold the
  // baselines to that documented slack, not to the strict bound.
  if (which == 0) {
    EXPECT_LT(result.balance, 1.08);
  }
  if (which == 2) {
    // Road networks are the hard case: the paper shows kMetis at 1.070+
    // on eur and parMetis up to ~1.07-1.15 depending on k; our road
    // instances trigger the same failure mode.
    EXPECT_LT(result.balance, instance == "road_s" ? 1.25 : 1.15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    InstancesAndTools, BaselineValidity,
    ::testing::Combine(::testing::Values("grid_s", "road_s", "annulus_m",
                                         "rmat_14"),
                       ::testing::Values(0, 1, 2)));

TEST(BaselineOrdering, KappaBeatsKmetisBeatsParmetisOnMesh) {
  // The paper's headline comparison (Table 4 right): KaPPa-strong produces
  // the smallest cuts, parMetis the largest. Averaged over seeds to avoid
  // flakiness from single runs.
  const StaticGraph g = make_instance("grid_m", 5);
  const BlockID k = 8;
  double kappa_cut = 0;
  double kmetis_cut = 0;
  double parmetis_cut = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Config config = Config::preset(Preset::kStrong, k);
    config.seed = seed;
    kappa_cut += static_cast<double>(
        Partitioner(Context::sequential(config)).partition(g).cut);
    kmetis_cut += static_cast<double>(kmetis_partition(g, k, 0.03, seed).cut);
    parmetis_cut +=
        static_cast<double>(parmetis_partition(g, k, 0.03, seed).cut);
  }
  EXPECT_LT(kappa_cut, kmetis_cut);
  EXPECT_LT(kmetis_cut, parmetis_cut * 1.05);  // parMetis never clearly best
}

TEST(BaselineOrdering, ScotchCompetitiveWithKmetis) {
  const StaticGraph g = make_instance("delaunay14", 5);
  const BlockID k = 8;
  double scotch_cut = 0;
  double kmetis_cut = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    scotch_cut += static_cast<double>(scotch_partition(g, k, 0.03, seed).cut);
    kmetis_cut += static_cast<double>(kmetis_partition(g, k, 0.03, seed).cut);
  }
  // Scotch-class RB is at least in the same league (paper: ~10% better
  // than kMetis on average). Allow generous slack for the reimplementation.
  EXPECT_LT(scotch_cut, kmetis_cut * 1.2);
}

TEST(Baselines, DeterministicUnderSeed) {
  const StaticGraph g = make_instance("grid_s", 7);
  const BaselineResult a = kmetis_partition(g, 4, 0.03, 42);
  const BaselineResult b = kmetis_partition(g, 4, 0.03, 42);
  EXPECT_EQ(a.cut, b.cut);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(a.partition.block(u), b.partition.block(u));
  }
}

TEST(Baselines, WorkForKTwo) {
  const StaticGraph g = make_instance("grid_s", 9);
  for (int which = 0; which < 3; ++which) {
    const BaselineResult result =
        which == 0   ? scotch_partition(g, 2, 0.03, 1)
        : which == 1 ? kmetis_partition(g, 2, 0.03, 1)
                     : parmetis_partition(g, 2, 0.03, 1);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    // Optimal bisection of a 64x64 grid is 64.
    EXPECT_LE(result.cut, 64 * 3) << "tool " << which;
  }
}

}  // namespace
}  // namespace kappa
