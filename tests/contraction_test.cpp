/// \file contraction_test.cpp
/// \brief Tests for matching contraction and partition projection,
/// including the §2 invariants (weight conservation, cut preservation).
#include <gtest/gtest.h>

#include <numeric>

#include "generators/generators.hpp"
#include "graph/contraction.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "matching/matchers.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

StaticGraph path_graph(NodeID n) {
  GraphBuilder builder(n);
  for (NodeID u = 0; u + 1 < n; ++u) builder.add_edge(u, u + 1, u + 1);
  return builder.finalize();
}

TEST(Contraction, IdentityMatchingCopiesGraph) {
  const StaticGraph g = path_graph(5);
  std::vector<NodeID> partner(5);
  std::iota(partner.begin(), partner.end(), NodeID{0});
  const ContractionResult result = contract(g, partner);
  EXPECT_EQ(result.coarse_graph.num_nodes(), 5u);
  EXPECT_EQ(result.coarse_graph.num_edges(), 4u);
  EXPECT_EQ(result.coarse_graph.total_edge_weight(), g.total_edge_weight());
}

TEST(Contraction, SingleEdgeMergesWeightsAndNeighbors) {
  // Triangle 0-1-2 with unit weights; contract {0,1}.
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 1);
  builder.add_edge(1, 2, 2);
  builder.add_edge(0, 2, 3);
  const StaticGraph g = builder.finalize();
  const ContractionResult result = contract(g, {1, 0, 2});
  const StaticGraph& c = result.coarse_graph;
  EXPECT_EQ(c.num_nodes(), 2u);
  EXPECT_EQ(c.num_edges(), 1u);
  // Parallel edges {x,2} merged: 2 + 3 = 5 (§2).
  EXPECT_EQ(c.arc_weight(c.first_arc(0)), 5);
  // c(x) = c(0) + c(1).
  const NodeID x = result.fine_to_coarse[0];
  EXPECT_EQ(result.fine_to_coarse[1], x);
  EXPECT_EQ(c.node_weight(x), 2);
  EXPECT_EQ(validate_graph(c), "");
}

TEST(Contraction, NodeWeightConserved) {
  Rng rng(1);
  const StaticGraph g = random_geometric_graph(500, 0.08, rng);
  MatchingOptions options;
  const auto partner = compute_matching(g, MatcherAlgo::kGPA, options, rng);
  const ContractionResult result = contract(g, partner);
  EXPECT_EQ(result.coarse_graph.total_node_weight(), g.total_node_weight());
  EXPECT_EQ(validate_graph(result.coarse_graph), "");
}

TEST(Contraction, CutEdgeWeightIsConservedMinusMatched) {
  // omega(E_coarse) = omega(E) - omega(matched edges).
  Rng rng(2);
  const StaticGraph g = random_geometric_graph(400, 0.09, rng);
  MatchingOptions options;
  const auto partner = compute_matching(g, MatcherAlgo::kGreedy, options, rng);
  EdgeWeight matched_weight = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    const NodeID v = partner[u];
    if (v == u || v < u) continue;
    for (EdgeID e = g.first_arc(u); e < g.last_arc(u); ++e) {
      if (g.arc_target(e) == v) matched_weight += g.arc_weight(e);
    }
  }
  const ContractionResult result = contract(g, partner);
  EXPECT_EQ(result.coarse_graph.total_edge_weight(),
            g.total_edge_weight() - matched_weight);
}

TEST(Contraction, CoordinatesBecomeCentroids) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  builder.set_coordinate(0, {0.0, 0.0});
  builder.set_coordinate(1, {2.0, 4.0});
  const StaticGraph g = builder.finalize();
  const ContractionResult result = contract(g, {1, 0});
  ASSERT_TRUE(result.coarse_graph.has_coordinates());
  EXPECT_NEAR(result.coarse_graph.coordinate(0).x, 1.0, 1e-12);
  EXPECT_NEAR(result.coarse_graph.coordinate(0).y, 2.0, 1e-12);
}

TEST(Projection, PreservesCutExactly) {
  // The projected partition must cut exactly the same weight: coarse cut
  // edges correspond 1:1 to fine cut edges (matched edges are internal).
  Rng rng(3);
  const StaticGraph g = random_geometric_graph(600, 0.07, rng);
  MatchingOptions options;
  const auto partner = compute_matching(g, MatcherAlgo::kGPA, options, rng);
  const ContractionResult result = contract(g, partner);
  const StaticGraph& coarse = result.coarse_graph;

  // Arbitrary 3-way partition of the coarse graph.
  std::vector<BlockID> coarse_assignment(coarse.num_nodes());
  for (NodeID u = 0; u < coarse.num_nodes(); ++u) {
    coarse_assignment[u] = u % 3;
  }
  Partition coarse_partition(coarse, std::move(coarse_assignment), 3);
  const Partition fine_partition =
      project_partition(g, result.fine_to_coarse, coarse_partition);

  EXPECT_EQ(edge_cut(g, fine_partition), edge_cut(coarse, coarse_partition));
  EXPECT_EQ(validate_partition(g, fine_partition), "");
  // Block weights are also preserved.
  for (BlockID b = 0; b < 3; ++b) {
    EXPECT_EQ(fine_partition.block_weight(b),
              coarse_partition.block_weight(b));
  }
}

/// Property sweep over instances and matchers: contraction invariants hold
/// for every combination.
class ContractionProperty
    : public ::testing::TestWithParam<std::tuple<std::string, MatcherAlgo>> {
};

TEST_P(ContractionProperty, InvariantsHold) {
  const auto& [instance, matcher] = GetParam();
  const StaticGraph g = make_instance(instance, 77);
  Rng rng(5);
  MatchingOptions options;
  const auto partner = compute_matching(g, matcher, options, rng);
  ASSERT_EQ(validate_matching(g, partner), "");
  const ContractionResult result = contract(g, partner);
  EXPECT_EQ(validate_graph(result.coarse_graph), "");
  EXPECT_EQ(result.coarse_graph.total_node_weight(), g.total_node_weight());
  EXPECT_EQ(result.coarse_graph.num_nodes() + matching_size(partner),
            g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    Instances, ContractionProperty,
    ::testing::Combine(::testing::Values("grid_s", "rmat_14", "road_s",
                                         "annulus_m"),
                       ::testing::Values(MatcherAlgo::kSHEM,
                                         MatcherAlgo::kGreedy,
                                         MatcherAlgo::kGPA)));

}  // namespace
}  // namespace kappa
