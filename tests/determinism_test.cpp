/// \file determinism_test.cpp
/// \brief The hash-seed regression suite: the partition must be a pure
/// function of (graph, config, seed) — in particular independent of the
/// iteration order of every unordered container on a partition-reaching
/// path.
///
/// All such containers use kappa::hash_map / kappa::hash_set
/// (util/seeded_hash.hpp), whose hasher mixes a process-global seed into
/// every hash. Re-running the pipeline under a different hash seed
/// scrambles every bucket order at once; if any consumer depends on hash
/// order, the assignments diverge and these tests fail. This closes the
/// gap kappa-lint's lexical determinism-sources check cannot cover: an
/// iteration that is order-dependent only through downstream arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "util/seeded_hash.hpp"

namespace kappa {
namespace {

/// Restores the ambient hash seed even when an assertion bails out early.
class HashSeedGuard {
 public:
  HashSeedGuard() : saved_(hash_seed()) {}
  ~HashSeedGuard() { set_hash_seed(saved_); }

 private:
  std::uint64_t saved_;
};

std::vector<BlockID> assignment_of(const PartitionResult& result,
                                   NodeID num_nodes) {
  std::vector<BlockID> blocks(num_nodes);
  for (NodeID u = 0; u < num_nodes; ++u) {
    blocks[u] = result.partition.block(u);
  }
  return blocks;
}

TEST(HashSeedDeterminism, SequentialPartitionIdenticalAcrossHashSeeds) {
  const HashSeedGuard guard;
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  set_hash_seed(0);
  const PartitionResult first =
      Partitioner(Context::sequential(config)).partition(g);
  ASSERT_EQ(validate_partition(g, first.partition), "");

  set_hash_seed(0x5eed5eed5eed5eedull);
  const PartitionResult second =
      Partitioner(Context::sequential(config)).partition(g);

  EXPECT_EQ(second.cut, first.cut);
  EXPECT_EQ(assignment_of(second, g.num_nodes()),
            assignment_of(first, g.num_nodes()));
}

TEST(HashSeedDeterminism, SpmdPartitionIdenticalAcrossHashSeedsAndP) {
  // The full claim at once: for every PE count the SPMD pipeline yields
  // one byte-identical assignment under two hash seeds, and that
  // assignment equals the p=1 reference — scrambling every hash table's
  // bucket order must not move a single node.
  const HashSeedGuard guard;
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  std::vector<BlockID> reference;
  for (const int p : {1, 3, 4, 7}) {
    std::vector<BlockID> per_seed[2];
    int i = 0;
    for (const std::uint64_t hash_seed : {0ull, 0xfeedface12345678ull}) {
      set_hash_seed(hash_seed);
      PERuntime runtime(p, config.seed);
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(g);
      ASSERT_EQ(validate_partition(g, result.partition), "");
      per_seed[i++] = assignment_of(result, g.num_nodes());
    }
    ASSERT_EQ(per_seed[0], per_seed[1]) << "hash-order dependence at p=" << p;
    if (reference.empty()) {
      reference = per_seed[0];
    } else {
      ASSERT_EQ(per_seed[0], reference) << "p-invariance broke at p=" << p;
    }
  }
}

TEST(HashSeedDeterminism, WarmRepartitionIdenticalAcrossHashSeeds) {
  // The repartitioner exercises the migration view and the block-row
  // side store (migrated_), whose visit order was a latent hash-order
  // dependence before for_each_resident_row sorted its keys.
  const HashSeedGuard guard;
  const StaticGraph g = make_instance("rgg14", 7);
  Config config = Config::preset(Preset::kMinimal, 6);
  config.seed = 13;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);

  std::vector<BlockID> reference;
  for (const std::uint64_t hash_seed : {7ull, 0xabcdef0123456789ull}) {
    set_hash_seed(hash_seed);
    PERuntime runtime(3, config.seed);
    const PartitionResult result = Partitioner(Context::spmd(config, runtime))
                                       .repartition(g, fresh.partition);
    ASSERT_EQ(validate_partition(g, result.partition), "");
    const std::vector<BlockID> blocks = assignment_of(result, g.num_nodes());
    if (reference.empty()) {
      reference = blocks;
    } else {
      EXPECT_EQ(blocks, reference);
    }
  }
}

TEST(HashSeedDeterminism, SeedIsCapturedAtContainerConstruction) {
  // The contract of SeededHash: a live container keeps hashing with the
  // seed it was built under, so set_hash_seed() mid-lifetime can never
  // corrupt it.
  const HashSeedGuard guard;
  set_hash_seed(1);
  hash_map<int, int> m;
  for (int i = 0; i < 1000; ++i) m[i] = i;
  set_hash_seed(2);
  for (int i = 1000; i < 2000; ++i) m[i] = i;  // rehashes under seed 1
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(m.at(i), i);
  }
}

}  // namespace
}  // namespace kappa
