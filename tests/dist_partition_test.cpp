/// \file dist_partition_test.cpp
/// \brief Tests for the sharded partition-state store and the §5.2
/// band-limited pair shipping: p-invariance/bit-identity over the full
/// runtime-size range with band shipping on, the depth = infinity /
/// whole-block equivalence property, the sub-linear per-rank partition
/// memory, the shipped-volume accounting, and the stale-seed hardening of
/// the band BFS.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "refinement/band.hpp"

namespace kappa {
namespace {

TEST(DistPartitionStore, RepartitionBitIdenticalForP1Through9) {
  // The acceptance criterion of the sharded partition state: with band
  // shipping enabled (the default), both workloads stay bit-identical and
  // p-invariant over the full runtime-size range, including ragged p and
  // p > k. The from-scratch sweep lives in spmd_pipeline_test; this one
  // covers the warm-started repartitioner, whose migration view now reads
  // block membership from the store alone.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;
  ASSERT_TRUE(config.band_shipping);
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);

  PartitionResult reference;
  for (int p = 1; p <= 9; ++p) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime))
            .repartition(g, fresh.partition);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    if (p == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.cut, reference.cut) << "p=" << p;
    EXPECT_EQ(result.migrated_nodes, reference.migrated_nodes) << "p=" << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(result.partition.block(u), reference.partition.block(u))
          << "p=" << p << " node " << u;
    }
    // The per-rank migration intakes account every migrated node once.
    NodeID intake = 0;
    for (const NodeID nodes : result.migrated_per_pe) intake += nodes;
    EXPECT_EQ(intake, result.migrated_nodes) << "p=" << p;
  }
}

TEST(BandShipping, InfiniteDepthReproducesWholeBlockShippingBitForBit) {
  // The volume-correctness property: with the band depth at infinity the
  // shipped band covers everything a pair search can reach, so the
  // pipeline must reproduce the legacy whole-block shipping bit for bit —
  // band shipping only ever removes nodes the search could never touch.
  const StaticGraph g = make_instance("rgg14", 7);
  for (const int p : {1, 2, 3}) {
    Config config = Config::preset(Preset::kMinimal, 6);
    config.seed = 13;
    config.bfs_depth = 1 << 20;  // the band BFS runs until its side is dry

    config.band_shipping = false;
    PERuntime whole_runtime(p, config.seed);
    const PartitionResult whole =
        Partitioner(Context::spmd(config, whole_runtime)).partition(g);

    config.band_shipping = true;
    PERuntime band_runtime(p, config.seed);
    const PartitionResult band =
        Partitioner(Context::spmd(config, band_runtime)).partition(g);

    EXPECT_EQ(band.cut, whole.cut) << "p=" << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(band.partition.block(u), whole.partition.block(u))
          << "p=" << p << " node " << u;
    }
  }
}

TEST(BandShipping, ShipsBandsNotWholeBlocks) {
  // The §5.2 migration-volume criterion: per pair the shipped rows are
  // the boundary band (plus its one-hop fringe), strictly below the whole
  // block on a large instance; the legacy mode ships every block row.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kFast, 16);
  config.seed = 5;

  PairShipStats band_total;
  PairShipStats whole_total;
  for (const bool band : {true, false}) {
    config.band_shipping = band;
    PERuntime runtime(4, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    ASSERT_EQ(result.pair_ship_per_pe.size(), 4u);
    PairShipStats& total = band ? band_total : whole_total;
    for (const PairShipStats& s : result.pair_ship_per_pe) total += s;
  }
  ASSERT_GT(band_total.pairs_shipped, 0u);
  ASSERT_GT(whole_total.pairs_shipped, 0u);
  // Legacy mode ships exactly the blocks; band mode ships strictly less.
  EXPECT_EQ(whole_total.rows_shipped, whole_total.whole_block_rows);
  EXPECT_LT(band_total.rows_shipped, band_total.whole_block_rows);
  // The wire volume shrinks accordingly (fewer rows and fewer arcs).
  EXPECT_LT(band_total.words_shipped, whole_total.words_shipped);
}

TEST(DistPartitionStore, PartitionMemoryIsShardedNotReplicated) {
  // The memory acceptance criterion: the partition was the last O(n)
  // state every rank held. With the sharded store a rank keeps its owned
  // block ids (n/p) plus the ghost-block cache (members + resident-row
  // targets) — strictly below n for p >= 2.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;

  {
    PERuntime runtime(1, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    ASSERT_EQ(result.partition_memory_per_pe.size(), 1u);
    // A single rank owns every shard and learns nothing remotely.
    EXPECT_EQ(result.partition_memory_per_pe[0].owned_nodes, g.num_nodes());
    EXPECT_EQ(result.partition_memory_per_pe[0].ghost_nodes, 0u);
  }

  for (const int p : {2, 4, 8}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    ASSERT_EQ(result.partition_memory_per_pe.size(),
              static_cast<std::size_t>(p));
    std::uint64_t total_owned = 0;
    for (int rank = 0; rank < p; ++rank) {
      const ShardFootprint& fp = result.partition_memory_per_pe[rank];
      EXPECT_GT(fp.owned_nodes, 0u) << "p=" << p << " rank " << rank;
      EXPECT_LT(fp.resident_nodes(), g.num_nodes())
          << "p=" << p << " rank " << rank;
      EXPECT_LE(fp.owned_nodes, 2u * g.num_nodes() / p)
          << "p=" << p << " rank " << rank;
      total_owned += fp.owned_nodes;
    }
    // The owned entries partition the finest level exactly.
    EXPECT_EQ(total_owned, g.num_nodes()) << "p=" << p;
  }
}

TEST(BandShipping, SpmdRunWithMidLevelMovesStaysValidAndPInvariant) {
  // Regression driven from an SPMD run: multiple global iterations over
  // several color classes make quotient seed lists stale mid-level (nodes
  // move to third blocks between the quotient construction and a pair's
  // execution). The band builders must skip those seeds — their rows are
  // no longer resident at the pair's owners — instead of crashing or
  // polluting the band.
  const StaticGraph g = make_instance("road_s", 9);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 3;
  ASSERT_TRUE(config.band_shipping);

  PartitionResult reference;
  for (const int p : {1, 3, 5}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    EXPECT_TRUE(result.balanced) << "p=" << p;
    if (p == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.cut, reference.cut) << "p=" << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(result.partition.block(u), reference.partition.block(u))
          << "p=" << p << " node " << u;
    }
  }
}

TEST(BoundaryBand, StaleSeedsAreSkippedNotExpanded) {
  // Unit regression for the stale-seed hardening: seeds that left the
  // pair — or that no longer name a node of the graph at all — must be
  // skipped before any array access, and a frozen (non-movable) node
  // must neither seed nor admit the band.
  GraphBuilder builder(6);
  for (NodeID u = 0; u + 1 < 6; ++u) builder.add_edge(u, u + 1, 1);
  const StaticGraph g = builder.finalize();
  // Blocks: 0 0 1 1 2 2 — the pair is {0, 1}; nodes 4, 5 left the pair.
  Partition partition(g, {0, 0, 1, 1, 2, 2}, 3);

  const std::vector<NodeID> seeds = {
      1,  // genuine pair boundary
      4,  // stale: moved to block 2
      42  // stale: does not name a node of this graph anymore
  };
  const std::vector<NodeID> band =
      boundary_band_from_seeds(g, partition, 0, 1, seeds, 3);
  // From node 1: depth 0 = {1}, depth 1 adds {0, 2}, depth 2 adds {3};
  // nothing from the stale seeds.
  EXPECT_EQ(band.size(), 4u);
  for (const NodeID u : band) {
    EXPECT_TRUE(partition.block(u) == 0 || partition.block(u) == 1);
  }

  // A movable mask freezes context nodes: with node 3 frozen the band
  // can neither contain nor cross it.
  const std::vector<char> movable = {1, 1, 1, 0, 1, 1};
  const std::vector<NodeID> confined =
      boundary_band_from_seeds(g, partition, 0, 1, seeds, 4, &movable);
  EXPECT_EQ(confined.size(), 3u);
  for (const NodeID u : confined) EXPECT_NE(u, 3u);
}

}  // namespace
}  // namespace kappa
