/// \file dynamic_overlay_test.cpp
/// \brief Tests for the §5.2 hybrid static/dynamic graph structure: a
/// static CSR core plus hash-table-addressed migrated nodes with an
/// append-only secondary edge array.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/partitioner.hpp"
#include "graph/dynamic_overlay.hpp"
#include "graph/graph_builder.hpp"
#include "graph/subgraph.hpp"
#include "generators/generators.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

StaticGraph triangle() {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 2, 3);
  builder.add_edge(2, 0, 5);
  return builder.finalize();
}

TEST(DynamicOverlay, CoreOnlyViewMatchesStaticGraph) {
  const StaticGraph core = triangle();
  const DynamicOverlay overlay(core);
  EXPECT_TRUE(overlay.contains(0));
  EXPECT_FALSE(overlay.is_migrated(0));
  EXPECT_FALSE(overlay.contains(7));
  EXPECT_EQ(overlay.node_weight(1), 1);
  EXPECT_EQ(overlay.degree(2), 2u);
  std::map<NodeID, EdgeWeight> neighbors;
  overlay.for_each_neighbor(
      0, [&](NodeID v, EdgeWeight w) { neighbors[v] = w; });
  EXPECT_EQ(neighbors, (std::map<NodeID, EdgeWeight>{{1, 2}, {2, 5}}));
}

TEST(DynamicOverlay, MigratedNodesAndEdgesVisible) {
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  // A partner PE sends node 10 (weight 4) with edges to core node 2 and
  // to a second migrated node 11.
  overlay.add_migrated_node(10, 4);
  overlay.add_migrated_node(11, 1);
  overlay.add_migrated_edge(10, 2, 7);
  overlay.add_migrated_edge(10, 11, 2);
  overlay.add_migrated_edge(11, 10, 2);

  EXPECT_TRUE(overlay.contains(10));
  EXPECT_TRUE(overlay.is_migrated(10));
  EXPECT_EQ(overlay.node_weight(10), 4);
  EXPECT_EQ(overlay.degree(10), 2u);
  EXPECT_EQ(overlay.num_migrated(), 2u);
  EXPECT_EQ(overlay.num_overlay_edges(), 3u);

  std::map<NodeID, EdgeWeight> neighbors;
  overlay.for_each_neighbor(
      10, [&](NodeID v, EdgeWeight w) { neighbors[v] = w; });
  EXPECT_EQ(neighbors, (std::map<NodeID, EdgeWeight>{{2, 7}, {11, 2}}));
}

TEST(DynamicOverlay, CoreNodesCanGainOverlayEdges) {
  // The receiving side also records the reverse direction of edges from
  // migrated nodes to its core — but only by registering the *migrated*
  // endpoint; core adjacency stays immutable. Mixed iteration is the
  // receiver's view of the union graph.
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  overlay.add_migrated_node(10, 1);
  overlay.add_migrated_edge(10, 0, 9);
  // Core node 0 still reports its static neighbors only (the paper's
  // second edge array belongs to the migrated side).
  EXPECT_EQ(overlay.degree(0), 2u);
  // The union view of the migrated node sees core node 0.
  bool sees_core = false;
  overlay.for_each_neighbor(10, [&](NodeID v, EdgeWeight w) {
    sees_core |= (v == 0 && w == 9);
  });
  EXPECT_TRUE(sees_core);
}

TEST(DynamicOverlay, ClearMigratedRestoresCoreOnlyView) {
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  overlay.add_migrated_node(10, 1);
  overlay.add_migrated_edge(10, 0, 1);
  overlay.clear_migrated();
  EXPECT_EQ(overlay.num_migrated(), 0u);
  EXPECT_EQ(overlay.num_overlay_edges(), 0u);
  EXPECT_FALSE(overlay.contains(10));
  EXPECT_TRUE(overlay.contains(0));
}

TEST(DynamicOverlay, CoreNodeWithAttachedOverlayEdges) {
  // Ghost-layer intake: an owned boundary node (core) gains overlay arcs
  // into the received halo. The static core row stays untouched; degree
  // and iteration see the union.
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  overlay.add_migrated_node(10, 2);
  overlay.add_migrated_edge(0, 10, 4);   // core -> ghost
  overlay.add_migrated_edge(10, 0, 4);   // mirror

  EXPECT_FALSE(overlay.is_migrated(0));
  EXPECT_EQ(overlay.degree(0), 3u);  // two core arcs + one overlay arc
  std::map<NodeID, EdgeWeight> neighbors;
  overlay.for_each_neighbor(0,
                            [&](NodeID v, EdgeWeight w) { neighbors[v] = w; });
  EXPECT_EQ(neighbors,
            (std::map<NodeID, EdgeWeight>{{1, 2}, {2, 5}, {10, 4}}));
  // The core's own storage is unchanged.
  EXPECT_EQ(core.degree(0), 2u);

  // clear_migrated() drops the attached core arcs too.
  overlay.clear_migrated();
  EXPECT_EQ(overlay.degree(0), 2u);
  EXPECT_EQ(overlay.num_overlay_edges(), 0u);
}

TEST(DynamicOverlay, ClearAndReuseAcrossPairwiseRounds) {
  // The §5.2 deployment: one overlay per PE, reused round after round —
  // receive a band, search, clear, receive the next band.
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  for (NodeID round = 0; round < 5; ++round) {
    const NodeID ghost = 100 + round;
    overlay.add_migrated_node(ghost, 1);
    overlay.add_migrated_edge(ghost, 0, static_cast<EdgeWeight>(round + 1));
    overlay.add_migrated_edge(0, ghost, static_cast<EdgeWeight>(round + 1));
    EXPECT_EQ(overlay.num_migrated(), 1u);
    EXPECT_EQ(overlay.num_overlay_edges(), 2u);
    EXPECT_TRUE(overlay.contains(ghost));
    EXPECT_EQ(overlay.degree(0), 3u);
    // Previous rounds' ghosts are gone for good.
    EXPECT_FALSE(overlay.contains(100 + round - 1));
    overlay.clear_migrated();
    EXPECT_EQ(overlay.num_migrated(), 0u);
    EXPECT_EQ(overlay.num_overlay_edges(), 0u);
    EXPECT_EQ(overlay.degree(0), 2u);
  }
}

TEST(DynamicOverlay, GhostLayerIntakeThroughReceiveMigratedNodes) {
  // receive_migrated_nodes() materializes one rank's repartitioning
  // intake with the overlay; the reported volume must match the true
  // diff between the two assignments.
  Rng rng(5);
  const StaticGraph g = random_geometric_graph(400, 0.1, rng);
  const BlockID k = 4;
  const int p = 2;
  std::vector<BlockID> before_raw(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) before_raw[u] = u % k;
  std::vector<BlockID> after_raw = before_raw;
  // Nodes 0..19 migrate to the next block (mod k).
  for (NodeID u = 0; u < 20; ++u) after_raw[u] = (after_raw[u] + 1) % k;
  const Partition before(g, std::move(before_raw), k);
  const Partition after(g, std::move(after_raw), k);

  NodeID total_nodes = 0;
  for (int rank = 0; rank < p; ++rank) {
    const MigrationIntake intake =
        receive_migrated_nodes(g, before, after, rank, p);
    total_nodes += intake.nodes;
    // Expected: migrated-in nodes of this rank's blocks, and their arcs
    // to nodes resident at this rank after the migration.
    NodeID expected_nodes = 0;
    std::size_t expected_edges = 0;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      if (static_cast<int>(after.block(u) % p) != rank) continue;
      if (after.block(u) == before.block(u)) continue;
      ++expected_nodes;
      for (const NodeID v : g.neighbors(u)) {
        if (static_cast<int>(after.block(v) % p) == rank) ++expected_edges;
      }
    }
    EXPECT_EQ(intake.nodes, expected_nodes) << "rank " << rank;
    EXPECT_EQ(intake.edges, expected_edges) << "rank " << rank;
  }
  EXPECT_EQ(total_nodes, 20u);
}

TEST(DynamicOverlay, GlobalIdMappingForLocalSubgraphs) {
  // The intended deployment: a PE's block as an induced subgraph (local
  // CSR) with its global ids, plus a migrated band from the partner.
  Rng rng(3);
  const StaticGraph g = random_geometric_graph(300, 0.12, rng);
  std::vector<NodeID> mine;
  for (NodeID u = 0; u < 150; ++u) mine.push_back(u);
  const Subgraph local = induced_subgraph(g, mine);

  DynamicOverlay overlay(local.graph, local.local_to_global);
  // Simulate receiving the partner's band: global nodes 150..159 with
  // their true cross edges.
  for (NodeID u = 150; u < 160; ++u) {
    overlay.add_migrated_node(u, g.node_weight(u));
    for (EdgeID e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const NodeID v = g.arc_target(e);
      if (v < 150 || (v >= 150 && v < 160)) {
        overlay.add_migrated_edge(u, v, g.arc_weight(e));
      }
    }
  }
  // Every migrated node's union-view degree equals its true degree
  // restricted to (core ∪ migrated).
  for (NodeID u = 150; u < 160; ++u) {
    NodeID expected = 0;
    for (const NodeID v : g.neighbors(u)) {
      if (v < 160) ++expected;
    }
    EXPECT_EQ(overlay.degree(u), expected) << "node " << u;
  }
  // Core nodes answer under their global ids.
  EXPECT_TRUE(overlay.contains(0));
  EXPECT_EQ(overlay.node_weight(0), g.node_weight(0));
}

}  // namespace
}  // namespace kappa
