/// \file dynamic_overlay_test.cpp
/// \brief Tests for the §5.2 hybrid static/dynamic graph structure: a
/// static CSR core plus hash-table-addressed migrated nodes with an
/// append-only secondary edge array.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "graph/dynamic_overlay.hpp"
#include "graph/graph_builder.hpp"
#include "graph/subgraph.hpp"
#include "generators/generators.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

StaticGraph triangle() {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 2, 3);
  builder.add_edge(2, 0, 5);
  return builder.finalize();
}

TEST(DynamicOverlay, CoreOnlyViewMatchesStaticGraph) {
  const StaticGraph core = triangle();
  const DynamicOverlay overlay(core);
  EXPECT_TRUE(overlay.contains(0));
  EXPECT_FALSE(overlay.is_migrated(0));
  EXPECT_FALSE(overlay.contains(7));
  EXPECT_EQ(overlay.node_weight(1), 1);
  EXPECT_EQ(overlay.degree(2), 2u);
  std::map<NodeID, EdgeWeight> neighbors;
  overlay.for_each_neighbor(
      0, [&](NodeID v, EdgeWeight w) { neighbors[v] = w; });
  EXPECT_EQ(neighbors, (std::map<NodeID, EdgeWeight>{{1, 2}, {2, 5}}));
}

TEST(DynamicOverlay, MigratedNodesAndEdgesVisible) {
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  // A partner PE sends node 10 (weight 4) with edges to core node 2 and
  // to a second migrated node 11.
  overlay.add_migrated_node(10, 4);
  overlay.add_migrated_node(11, 1);
  overlay.add_migrated_edge(10, 2, 7);
  overlay.add_migrated_edge(10, 11, 2);
  overlay.add_migrated_edge(11, 10, 2);

  EXPECT_TRUE(overlay.contains(10));
  EXPECT_TRUE(overlay.is_migrated(10));
  EXPECT_EQ(overlay.node_weight(10), 4);
  EXPECT_EQ(overlay.degree(10), 2u);
  EXPECT_EQ(overlay.num_migrated(), 2u);
  EXPECT_EQ(overlay.num_overlay_edges(), 3u);

  std::map<NodeID, EdgeWeight> neighbors;
  overlay.for_each_neighbor(
      10, [&](NodeID v, EdgeWeight w) { neighbors[v] = w; });
  EXPECT_EQ(neighbors, (std::map<NodeID, EdgeWeight>{{2, 7}, {11, 2}}));
}

TEST(DynamicOverlay, CoreNodesCanGainOverlayEdges) {
  // The receiving side also records the reverse direction of edges from
  // migrated nodes to its core — but only by registering the *migrated*
  // endpoint; core adjacency stays immutable. Mixed iteration is the
  // receiver's view of the union graph.
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  overlay.add_migrated_node(10, 1);
  overlay.add_migrated_edge(10, 0, 9);
  // Core node 0 still reports its static neighbors only (the paper's
  // second edge array belongs to the migrated side).
  EXPECT_EQ(overlay.degree(0), 2u);
  // The union view of the migrated node sees core node 0.
  bool sees_core = false;
  overlay.for_each_neighbor(10, [&](NodeID v, EdgeWeight w) {
    sees_core |= (v == 0 && w == 9);
  });
  EXPECT_TRUE(sees_core);
}

TEST(DynamicOverlay, ClearMigratedRestoresCoreOnlyView) {
  const StaticGraph core = triangle();
  DynamicOverlay overlay(core);
  overlay.add_migrated_node(10, 1);
  overlay.add_migrated_edge(10, 0, 1);
  overlay.clear_migrated();
  EXPECT_EQ(overlay.num_migrated(), 0u);
  EXPECT_EQ(overlay.num_overlay_edges(), 0u);
  EXPECT_FALSE(overlay.contains(10));
  EXPECT_TRUE(overlay.contains(0));
}

TEST(DynamicOverlay, GlobalIdMappingForLocalSubgraphs) {
  // The intended deployment: a PE's block as an induced subgraph (local
  // CSR) with its global ids, plus a migrated band from the partner.
  Rng rng(3);
  const StaticGraph g = random_geometric_graph(300, 0.12, rng);
  std::vector<NodeID> mine;
  for (NodeID u = 0; u < 150; ++u) mine.push_back(u);
  const Subgraph local = induced_subgraph(g, mine);

  DynamicOverlay overlay(local.graph, local.local_to_global);
  // Simulate receiving the partner's band: global nodes 150..159 with
  // their true cross edges.
  for (NodeID u = 150; u < 160; ++u) {
    overlay.add_migrated_node(u, g.node_weight(u));
    for (EdgeID e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const NodeID v = g.arc_target(e);
      if (v < 150 || (v >= 150 && v < 160)) {
        overlay.add_migrated_edge(u, v, g.arc_weight(e));
      }
    }
  }
  // Every migrated node's union-view degree equals its true degree
  // restricted to (core ∪ migrated).
  for (NodeID u = 150; u < 160; ++u) {
    NodeID expected = 0;
    for (const NodeID v : g.neighbors(u)) {
      if (v < 160) ++expected;
    }
    EXPECT_EQ(overlay.degree(u), expected) << "node " << u;
  }
  // Core nodes answer under their global ids.
  EXPECT_TRUE(overlay.contains(0));
  EXPECT_EQ(overlay.node_weight(0), g.node_weight(0));
}

}  // namespace
}  // namespace kappa
