/// \file edge_cases_test.cpp
/// \brief Edge-case and failure-injection tests: degenerate graphs,
/// extreme parameters, malformed structures, and cross-implementation
/// consistency (sequential vs. distributed coloring).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/quotient_graph.hpp"
#include "graph/validation.hpp"
#include "matching/matchers.hpp"
#include "parallel/dist_coloring.hpp"
#include "refinement/edge_coloring.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

// ------------------------------------------------- degenerate graphs ----

TEST(EdgeCases, StarGraphPartition) {
  // A star stresses everything: the center cannot be separated cheaply.
  GraphBuilder builder(101);
  for (NodeID leaf = 1; leaf <= 100; ++leaf) builder.add_edge(0, leaf);
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 4);
  config.seed = 1;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced);
  // Any balanced 4-way partition of a star cuts ~75 of 100 leaves.
  EXPECT_GE(result.cut, 70);
}

TEST(EdgeCases, CompleteGraphPartition) {
  GraphBuilder builder(32);
  for (NodeID u = 0; u < 32; ++u) {
    for (NodeID v = u + 1; v < 32; ++v) builder.add_edge(u, v);
  }
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 4);
  config.seed = 2;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced);
  // K32 into 4 blocks: the even 8/8/8/8 split cuts 496 - 4*C(8,2) = 384,
  // but Lmax = floor(1.03*8)+1 = 9 admits 9/9/9/5, which cuts only
  // 496 - (3*36 + 10) = 378 — the true constrained optimum. Anything in
  // between is a reasonable local optimum; more is a bug.
  EXPECT_GE(result.cut, 378);
  EXPECT_LE(result.cut, 384);
}

TEST(EdgeCases, PathGraphIsCutMinimally) {
  GraphBuilder builder(64);
  for (NodeID u = 0; u + 1 < 64; ++u) builder.add_edge(u, u + 1);
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kStrong, 4);
  config.seed = 3;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_TRUE(result.balanced);
  EXPECT_EQ(result.cut, 3);  // a path always admits the perfect split
}

TEST(EdgeCases, GraphWithIsolatedNodes) {
  GraphBuilder builder(50);
  for (NodeID u = 0; u + 1 < 30; ++u) builder.add_edge(u, u + 1);
  // Nodes 30..49 are isolated.
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 4);
  config.seed = 4;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced);
}

TEST(EdgeCases, SingleBlockIsTrivial) {
  const StaticGraph g = grid_graph(8, 8);
  Config config = Config::preset(Preset::kFast, 1);
  config.seed = 1;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(result.cut, 0);
  EXPECT_NEAR(result.balance, 1.0, 1e-9);
}

TEST(EdgeCases, KEqualsNumberOfNodes) {
  const StaticGraph g = grid_graph(4, 4);  // 16 nodes
  Config config = Config::preset(Preset::kFast, 16);
  config.seed = 5;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  // Lmax = floor(1.03*1)+1 = 2, so blocks may pair up nodes: the best
  // such partition keeps a perfect matching internal (8 of 24 edges),
  // cutting 16. Worst legal case cuts everything.
  EXPECT_GE(result.cut, 16);
  EXPECT_LE(result.cut, g.total_edge_weight());
  EXPECT_TRUE(result.balanced);
}

TEST(EdgeCases, HeavyNodeDominatesABlock) {
  // One node weighs as much as all others combined — the +max_v c(v)
  // term of Lmax (§2) is what keeps this feasible.
  GraphBuilder builder(65);
  builder.set_node_weight(0, 64);
  for (NodeID u = 0; u + 1 < 65; ++u) builder.add_edge(u, u + 1);
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 2);
  config.seed = 6;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced) << result.balance;
}

TEST(EdgeCases, ExtremeEdgeWeights) {
  GraphBuilder builder(40);
  Rng rng(7);
  for (NodeID u = 0; u + 1 < 40; ++u) {
    builder.add_edge(u, u + 1, (u % 2 == 0) ? 1 : 1'000'000);
  }
  builder.add_edge(0, 39, 1);
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kStrong, 4);
  config.seed = 7;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_TRUE(result.balanced);
  // The partitioner must cut only weight-1 edges: 4 cuts on the cycle.
  EXPECT_LE(result.cut, 4);
}

// ------------------------------------------ malformed-structure checks ----

TEST(FailureInjection, ValidateGraphCatchesAsymmetry) {
  // Hand-built CSR with a one-directional arc.
  std::vector<EdgeID> xadj = {0, 1, 1};
  std::vector<NodeID> adj = {1};
  std::vector<EdgeWeight> ewgt = {1};
  std::vector<NodeWeight> vwgt = {1, 1};
  const StaticGraph g(std::move(xadj), std::move(adj), std::move(ewgt),
                      std::move(vwgt));
  EXPECT_NE(validate_graph(g), "");
}

TEST(FailureInjection, ValidateGraphCatchesWeightMismatch) {
  std::vector<EdgeID> xadj = {0, 1, 2};
  std::vector<NodeID> adj = {1, 0};
  std::vector<EdgeWeight> ewgt = {2, 3};  // asymmetric weights
  std::vector<NodeWeight> vwgt = {1, 1};
  const StaticGraph g(std::move(xadj), std::move(adj), std::move(ewgt),
                      std::move(vwgt));
  EXPECT_NE(validate_graph(g), "");
}

TEST(FailureInjection, ValidateColoringCatchesConflicts) {
  const StaticGraph g = grid_graph(12, 4);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = std::min<BlockID>((u % 12) / 3, 3);
  }
  const Partition p(g, std::move(assignment), 4);
  const QuotientGraph q(g, p);
  ASSERT_GE(q.edges().size(), 2u);
  EdgeColoring bad;
  bad.color_of_edge.assign(q.edges().size(), 0);  // everything color 0
  bad.num_colors = 1;
  EXPECT_NE(validate_coloring(q, bad), "");
  EdgeColoring uncolored;
  uncolored.color_of_edge.assign(q.edges().size(), -1);
  EXPECT_NE(validate_coloring(q, uncolored), "");
}

// -------------------------------------- cross-implementation agreement ----

/// The replicated greedy and the message-passing implementation of the
/// §5.1 protocol are one randomized process with two executions: block b
/// always draws from Rng(seed).fork(b). The colorings must therefore be
/// *identical*, not merely both proper — the property the refiner's
/// dist_coloring switch rests on (flipping it never changes the
/// schedule, hence never the partition).
class ColoringAgreement : public ::testing::TestWithParam<BlockID> {};

TEST_P(ColoringAgreement, ProtocolReproducesGreedyExactly) {
  const BlockID k = GetParam();
  Rng graph_rng(k);
  const StaticGraph g = random_geometric_graph(600, 0.09, graph_rng);
  std::vector<BlockID> assignment(g.num_nodes());
  Rng arng(k + 1);
  for (auto& b : assignment) b = static_cast<BlockID>(arng.bounded(k));
  const Partition p(g, std::move(assignment), k);
  const QuotientGraph q(g, p);

  const EdgeColoring greedy = color_quotient_edges(q, Rng(5));
  EXPECT_EQ(validate_coloring(q, greedy), "") << "greedy k=" << k;
  EXPECT_LE(greedy.num_colors, 2 * static_cast<int>(q.max_degree()));

  const DistributedColoringResult distributed =
      distributed_color_quotient_edges(q, 5);
  EXPECT_EQ(validate_coloring(q, distributed.coloring), "")
      << "distributed k=" << k;
  EXPECT_EQ(distributed.coloring.num_colors, greedy.num_colors) << "k=" << k;
  ASSERT_EQ(distributed.coloring.color_of_edge.size(),
            greedy.color_of_edge.size());
  for (std::size_t e = 0; e < greedy.color_of_edge.size(); ++e) {
    ASSERT_EQ(distributed.coloring.color_of_edge[e],
              greedy.color_of_edge[e])
        << "k=" << k << " edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, ColoringAgreement,
                         ::testing::Values(2, 3, 5, 9, 16));

// ------------------------------------------------ matcher stress sweep ----

/// All matchers on pathological degree distributions.
class MatcherStress : public ::testing::TestWithParam<MatcherAlgo> {};

TEST_P(MatcherStress, StarForest) {
  // Stars of varying size: maximum matching matches one leaf per center.
  GraphBuilder builder(60);
  NodeID next = 0;
  std::vector<NodeID> centers;
  for (const NodeID size : {1u, 3u, 7u, 15u, 30u}) {
    const NodeID center = next++;
    centers.push_back(center);
    for (NodeID i = 0; i < size && next < 60; ++i) {
      builder.add_edge(center, next++);
    }
  }
  const StaticGraph g = builder.finalize();
  MatchingOptions options;
  Rng rng(1);
  const auto partner = compute_matching(g, GetParam(), options, rng);
  EXPECT_EQ(validate_matching(g, partner), "");
  // Every star center must be matched (a star always allows it and all
  // three algorithms are maximal on stars).
  for (const NodeID center : centers) {
    if (g.degree(center) > 0) {
      EXPECT_NE(partner[center], center) << "center " << center;
    }
  }
}

TEST_P(MatcherStress, EmptyAndSingleEdgeGraphs) {
  MatchingOptions options;
  Rng rng(2);
  {
    GraphBuilder builder(5);
    const StaticGraph g = builder.finalize();
    const auto partner = compute_matching(g, GetParam(), options, rng);
    EXPECT_EQ(matching_size(partner), 0u);
  }
  {
    GraphBuilder builder(2);
    builder.add_edge(0, 1);
    const StaticGraph g = builder.finalize();
    const auto partner = compute_matching(g, GetParam(), options, rng);
    EXPECT_EQ(matching_size(partner), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, MatcherStress,
                         ::testing::Values(MatcherAlgo::kSHEM,
                                           MatcherAlgo::kGreedy,
                                           MatcherAlgo::kGPA));

// --------------------------------------------------- FM degenerate use ----

TEST(FMEdgeCases, EmptyEligibleSetIsANoOp) {
  const StaticGraph g = grid_graph(6, 6);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 6) < 3 ? 0 : 1;
  Partition p(g, std::move(assignment), 2);
  const Partition before = p;
  TwoWayFMOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.03);
  Rng rng(1);
  const TwoWayFMResult result =
      twoway_fm(g, p, 0, 1, std::span<const NodeID>{}, options, rng);
  EXPECT_EQ(result.moved_nodes, 0u);
  EXPECT_EQ(result.cut_gain, 0);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(p.block(u), before.block(u));
  }
}

TEST(FMEdgeCases, AlreadyOptimalStaysPut) {
  // Perfect grid bisection: FM must not degrade it.
  const StaticGraph g = grid_graph(16, 16);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 16) < 8 ? 0 : 1;
  Partition p(g, std::move(assignment), 2);
  const EdgeWeight optimal = edge_cut(g, p);
  std::vector<NodeID> all(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) all[u] = u;
  TwoWayFMOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.03);
  options.patience_alpha = 0.3;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    (void)twoway_fm(g, p, 0, 1, all, options, rng);
    EXPECT_EQ(edge_cut(g, p), optimal) << "seed " << seed;
  }
}

// --------------------------------------------------------- quotient Q ----

TEST(QuotientEdgeCases, IsolatedBlockHasNoEdges) {
  GraphBuilder builder(9);
  for (NodeID u = 0; u < 3; ++u) {
    for (NodeID v = u + 1; v < 3; ++v) builder.add_edge(u, v);
  }
  for (NodeID u = 3; u < 6; ++u) {
    for (NodeID v = u + 1; v < 6; ++v) builder.add_edge(u, v);
  }
  builder.add_edge(6, 7);
  builder.add_edge(7, 8);
  const StaticGraph g = builder.finalize();
  const Partition p(g, {0, 0, 0, 1, 1, 1, 2, 2, 2}, 3);
  const QuotientGraph q(g, p);
  EXPECT_TRUE(q.edges().empty());
  EXPECT_EQ(q.max_degree(), 0u);
}

}  // namespace
}  // namespace kappa
