/// \file extensions_test.cpp
/// \brief Tests for the §8 future-work extensions: bucket PQ, Dinic
/// max-flow, flow-based pairwise refinement, the graph-theoretic BFS
/// prepartitioner and repartitioning.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "coarsening/prepartition.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "refinement/band.hpp"
#include "refinement/flow_refiner.hpp"
#include "refinement/max_flow.hpp"
#include "refinement/pairwise_refiner.hpp"
#include "util/bucket_pq.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

// ------------------------------------------------------------ BucketPQ ----

TEST(BucketPQ, BasicOrderAndNegativeKeys) {
  BucketPQ<NodeID> pq(8, 10);
  pq.push(0, -5);
  pq.push(1, 3);
  pq.push(2, 10);
  pq.push(3, -10);
  EXPECT_EQ(pq.top(), 2u);
  EXPECT_EQ(pq.top_key(), 10);
  EXPECT_EQ(pq.pop(), 2u);
  EXPECT_EQ(pq.pop(), 1u);
  EXPECT_EQ(pq.pop(), 0u);
  EXPECT_EQ(pq.pop(), 3u);
  EXPECT_TRUE(pq.empty());
}

TEST(BucketPQ, UpdateAndErase) {
  BucketPQ<NodeID> pq(4, 100);
  pq.push(0, 1);
  pq.push(1, 2);
  pq.update_key(0, 50);
  EXPECT_EQ(pq.top(), 0u);
  EXPECT_EQ(pq.key(0), 50);
  pq.erase(0);
  EXPECT_FALSE(pq.contains(0));
  EXPECT_EQ(pq.top(), 1u);
}

/// Property sweep: the bucket queue agrees with the binary heap under
/// random workloads across key ranges.
class BucketPQProperty : public ::testing::TestWithParam<int> {};

TEST_P(BucketPQProperty, MatchesReference) {
  const int range = GetParam();
  Rng rng(static_cast<std::uint64_t>(range) * 13);
  BucketPQ<NodeID> pq(64, range);
  std::map<NodeID, std::ptrdiff_t> reference;
  for (int step = 0; step < 3000; ++step) {
    const NodeID id = static_cast<NodeID>(rng.bounded(64));
    const std::ptrdiff_t key =
        static_cast<std::ptrdiff_t>(rng.bounded(2 * range + 1)) - range;
    switch (rng.bounded(4)) {
      case 0:
        if (!pq.contains(id)) {
          pq.push(id, key);
          reference[id] = key;
        }
        break;
      case 1:
        if (pq.contains(id)) {
          pq.update_key(id, key);
          reference[id] = key;
        }
        break;
      case 2:
        if (pq.contains(id)) {
          pq.erase(id);
          reference.erase(id);
        }
        break;
      default:
        if (!pq.empty()) {
          const auto max_key =
              std::max_element(reference.begin(), reference.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second < b.second;
                               })
                  ->second;
          ASSERT_EQ(pq.top_key(), max_key);
          reference.erase(pq.pop());
        }
        break;
    }
    ASSERT_EQ(pq.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, BucketPQProperty,
                         ::testing::Values(1, 4, 32, 1000));

// ------------------------------------------------------------ max flow ----

TEST(MaxFlow, TextbookNetwork) {
  // Classic 6-node example with max flow 23.
  FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(MaxFlow, MinCutSeparatesSourceAndSink) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 5);
  net.add_undirected_edge(1, 2, 1);  // the bottleneck
  net.add_undirected_edge(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 1);
  const auto side = net.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, DisconnectedSinkGivesZero) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(MaxFlow, UndirectedCapacityCountedOnce) {
  // Two parallel undirected paths of bottleneck 2 and 3.
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 2);
  net.add_undirected_edge(1, 3, 9);
  net.add_undirected_edge(0, 2, 9);
  net.add_undirected_edge(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

// -------------------------------------------------------- flow refiner ----

TEST(FlowRefiner, FindsTheBottleneckCut) {
  // Two 4x4 grids joined by a single edge, but partitioned off-center:
  // FM would find this too, yet the flow pass must find it in one shot.
  GraphBuilder builder(32);
  auto id = [](NodeID base, NodeID x, NodeID y) {
    return base + y * 4 + x;
  };
  for (const NodeID base : {NodeID{0}, NodeID{16}}) {
    for (NodeID y = 0; y < 4; ++y) {
      for (NodeID x = 0; x < 4; ++x) {
        if (x + 1 < 4) builder.add_edge(id(base, x, y), id(base, x + 1, y));
        if (y + 1 < 4) builder.add_edge(id(base, x, y), id(base, x, y + 1));
      }
    }
  }
  builder.add_edge(15, 16);  // the bridge
  const StaticGraph g = builder.finalize();

  // Off-by-two partition: two nodes of the left grid assigned to block 1.
  std::vector<BlockID> assignment(32, 0);
  for (NodeID u = 16; u < 32; ++u) assignment[u] = 1;
  assignment[12] = 1;
  assignment[13] = 1;
  Partition p(g, std::move(assignment), 2);
  const EdgeWeight before = edge_cut(g, p);
  ASSERT_GT(before, 1);

  const auto band = boundary_band(g, p, 0, 1, 10);
  FlowRefineOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.20);
  const FlowRefineResult result = flow_refine_pair(g, p, 0, 1, band, options);
  EXPECT_TRUE(result.applied);
  EXPECT_EQ(edge_cut(g, p), 1);  // only the bridge remains cut
  EXPECT_EQ(before - edge_cut(g, p), result.cut_gain);
  EXPECT_EQ(validate_partition(g, p), "");
}

TEST(FlowRefiner, RejectsInfeasibleMinCut) {
  // A path where the cheapest cut is maximally unbalanced: with a tight
  // balance bound the flow move must be rejected and nothing changes.
  GraphBuilder builder(8);
  builder.add_edge(0, 1, 1);  // cheapest cut here: 7|1 split
  for (NodeID u = 1; u < 7; ++u) builder.add_edge(u, u + 1, 10);
  const StaticGraph g = builder.finalize();
  std::vector<BlockID> assignment = {0, 0, 0, 0, 1, 1, 1, 1};
  Partition p(g, std::move(assignment), 2);
  const Partition before = p;

  const auto band = boundary_band(g, p, 0, 1, 10);
  FlowRefineOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.0);  // 4+1
  const FlowRefineResult result = flow_refine_pair(g, p, 0, 1, band, options);
  EXPECT_FALSE(result.applied);
  for (NodeID u = 0; u < 8; ++u) {
    EXPECT_EQ(p.block(u), before.block(u));
  }
}

TEST(FlowRefiner, NeverWorsensCutOrOverload) {
  Rng graph_rng(5);
  const StaticGraph g = random_geometric_graph(800, 0.07, graph_rng);
  const NodeWeight bound = max_block_weight_bound(g, 2, 0.03);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    std::vector<BlockID> assignment(g.num_nodes());
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      assignment[u] = g.coordinate(u).x + 0.1 * rng.uniform() < 0.5 ? 0 : 1;
    }
    Partition p(g, std::move(assignment), 2);
    const EdgeWeight cut_before = edge_cut(g, p);
    const auto band = boundary_band(g, p, 0, 1, 6);
    FlowRefineOptions options;
    options.max_block_weight = bound;
    const FlowRefineResult result =
        flow_refine_pair(g, p, 0, 1, band, options);
    const EdgeWeight cut_after = edge_cut(g, p);
    EXPECT_LE(cut_after, cut_before);
    EXPECT_EQ(cut_before - cut_after, result.cut_gain);
    EXPECT_EQ(validate_partition(g, p), "");
  }
}

TEST(FlowRefiner, FlowPassOnBandLimitedPairNeverWorsensThePair) {
  // The opt-in extra pass (Config::enable_flow_refinement) hooks the flow
  // refiner into the band-limited pair view of the sequential pairwise
  // refiner: with identical RNG streams the FM part of refine_pair() is
  // identical, and the flow move is adopted only when it strictly
  // improves the pair cut without increasing overload — so the cut with
  // the flow pass is never worse than without it, deterministically.
  Rng graph_rng(7);
  const StaticGraph g = random_geometric_graph(900, 0.07, graph_rng);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = g.coordinate(u).x < 0.5 ? 0 : 1;
  }
  const Partition input(g, std::move(assignment), 2);

  std::vector<NodeID> seeds = pair_boundary_nodes(g, input, 0, 1);
  const std::vector<NodeID> other = pair_boundary_nodes(g, input, 1, 0);
  seeds.insert(seeds.end(), other.begin(), other.end());
  std::sort(seeds.begin(), seeds.end());

  PairwiseRefinerOptions options;
  options.fm.max_block_weight = max_block_weight_bound(g, 2, 0.03);
  options.bfs_depth = 4;
  const Rng rng(3);

  EdgeWeight cut_without = 0;
  for (const bool use_flow : {false, true}) {
    Partition p = input;
    options.use_flow = use_flow;
    const PairRefineResult result =
        refine_pair(g, p, 0, 1, seeds, options, rng, /*seed_tag=*/0);
    EXPECT_EQ(validate_partition(g, p), "");
    const EdgeWeight cut = edge_cut(g, p);
    EXPECT_EQ(edge_cut(g, input) - cut,
              result.cut_gain);  // gains are exact
    if (!use_flow) {
      cut_without = cut;
    } else {
      EXPECT_LE(cut, cut_without);
    }
  }
}

TEST(FlowRefiner, SpmdBandViewsRunTheFlowPassPInvariantly) {
  // Groundwork for a later SPMD flow pass: with the flow hook enabled the
  // SPMD refiner runs the min-cut pass inside its band-limited pair views
  // — the result must stay valid, balanced and bit-identical for every p.
  const StaticGraph g = make_instance("rgg14", 6);
  Config config = Config::preset(Preset::kMinimal, 6);
  config.seed = 8;
  config.enable_flow_refinement = true;

  PartitionResult reference;
  for (const int p : {1, 2, 3}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    if (p == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.cut, reference.cut) << "p=" << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(result.partition.block(u), reference.partition.block(u))
          << "p=" << p << " node " << u;
    }
  }
}

TEST(FlowRefiner, FullPipelineWithFlowAtLeastAsGood) {
  const StaticGraph g = make_instance("delaunay14", 4);
  Config plain = Config::preset(Preset::kFast, 8);
  plain.seed = 5;
  Config with_flow = plain;
  with_flow.enable_flow_refinement = true;
  const PartitionResult a =
      Partitioner(Context::sequential(plain)).partition(g);
  const PartitionResult b =
      Partitioner(Context::sequential(with_flow)).partition(g);
  EXPECT_EQ(validate_partition(g, b.partition), "");
  EXPECT_TRUE(b.balanced);
  // Flow never hurts a pair, so the end result should not be notably
  // worse (different random trajectories allow small noise).
  EXPECT_LE(b.cut, a.cut * 11 / 10);
}

// ----------------------------------------------------- BFS prepartition ----

TEST(BfsPrepartition, CoversAllPEsAndBalances) {
  const StaticGraph g = make_instance("grid_s", 3);
  Rng rng(2);
  for (const BlockID pes : {2u, 5u, 8u}) {
    const auto homes = bfs_prepartition(g, pes, rng);
    std::vector<NodeID> sizes(pes, 0);
    for (const BlockID h : homes) {
      ASSERT_LT(h, pes);
      ++sizes[h];
    }
    const NodeID cap = (g.num_nodes() + pes - 1) / pes;
    for (BlockID pe = 0; pe < pes; ++pe) {
      EXPECT_GT(sizes[pe], 0u) << pes;
      EXPECT_LE(sizes[pe], cap + cap / 4) << pes;  // leftover slack
    }
  }
}

TEST(BfsPrepartition, HandlesDisconnectedGraphs) {
  GraphBuilder builder(40);
  for (NodeID base : {NodeID{0}, NodeID{20}}) {
    for (NodeID u = base; u + 1 < base + 20; ++u) builder.add_edge(u, u + 1);
  }
  const StaticGraph g = builder.finalize();
  Rng rng(4);
  const auto homes = bfs_prepartition(g, 4, rng);
  std::vector<NodeID> sizes(4, 0);
  for (const BlockID h : homes) ++sizes[h];
  for (BlockID pe = 0; pe < 4; ++pe) EXPECT_GT(sizes[pe], 0u);
}

TEST(BfsPrepartition, LocalityBeatsRandomAssignment) {
  // The whole point of prepartitioning: most edges should be PE-internal.
  const StaticGraph g = make_instance("delaunay14", 7);
  Rng rng(9);
  const auto homes = bfs_prepartition(g, 8, rng);
  EdgeID internal = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    for (const NodeID v : g.neighbors(u)) {
      if (u < v && homes[u] == homes[v]) ++internal;
    }
  }
  const double fraction =
      static_cast<double>(internal) / static_cast<double>(g.num_edges());
  // Random 8-way assignment keeps only ~12.5% internal; BFS regions keep
  // the vast majority.
  EXPECT_GT(fraction, 0.75);
}

// -------------------------------------------------------- repartitioning ----

TEST(Repartition, RestoresQualityAfterPerturbation) {
  const StaticGraph g = make_instance("grid_m", 5);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 3;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);

  // Perturb: move 5% random nodes to random blocks (a crude stand-in for
  // adaptive mesh changes).
  Partition perturbed = fresh.partition;
  Rng rng(13);
  for (NodeID i = 0; i < g.num_nodes() / 20; ++i) {
    const NodeID u = static_cast<NodeID>(rng.bounded(g.num_nodes()));
    const BlockID to = static_cast<BlockID>(rng.bounded(8));
    if (perturbed.block(u) != to) perturbed.move(u, to, g.node_weight(u));
  }
  const EdgeWeight perturbed_cut = edge_cut(g, perturbed);
  ASSERT_GT(perturbed_cut, fresh.cut);

  const PartitionResult result =
      Partitioner(Context::sequential(config)).repartition(g, perturbed);
  EXPECT_EQ(result.initial_cut, perturbed_cut);
  EXPECT_LT(result.cut, perturbed_cut);
  EXPECT_TRUE(result.balanced);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  // Repartitioning migrates far fewer nodes than a fresh run would.
  NodeID fresh_migration = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    if (fresh.partition.block(u) != perturbed.block(u)) ++fresh_migration;
  }
  EXPECT_LT(result.migrated_nodes, g.num_nodes() / 4);
}

TEST(Repartition, NoOpOnAlreadyGoodPartition) {
  const StaticGraph g = make_instance("grid_s", 2);
  Config config = Config::preset(Preset::kStrong, 4);
  config.seed = 8;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);
  const PartitionResult result =
      Partitioner(Context::sequential(config)).repartition(g, fresh.partition);
  EXPECT_LE(result.cut, fresh.cut);
  EXPECT_TRUE(result.balanced);
}

TEST(Repartition, FixesImbalanceOnly) {
  // Feasible cut but overloaded blocks: repartitioning must rebalance.
  const StaticGraph g = make_instance("grid_s", 6);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    const NodeID col = u % 64;
    assignment[u] = col < 40 ? 0 : (col < 50 ? 1 : (col < 58 ? 2 : 3));
  }
  Partition p(g, std::move(assignment), 4);
  Config config = Config::preset(Preset::kFast, 4);
  ASSERT_FALSE(is_balanced(g, p, config.eps));
  const PartitionResult result =
      Partitioner(Context::sequential(config)).repartition(g, p);
  EXPECT_TRUE(result.balanced) << "balance " << result.balance;
}

}  // namespace
}  // namespace kappa
