/// \file generators_test.cpp
/// \brief Tests for the synthetic instance generators, including the
/// Delaunay triangulator's structural invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "generators/delaunay.hpp"
#include "generators/generators.hpp"
#include "graph/validation.hpp"

namespace kappa {
namespace {

TEST(Generators, RggIsValidAndNearlyConnected) {
  Rng rng(1);
  const StaticGraph graph = random_geometric_graph(4096, rng);
  EXPECT_EQ(validate_graph(graph), "");
  EXPECT_TRUE(graph.has_coordinates());
  // The paper's radius "ensures the graph is almost connected": a few
  // stray isolated nodes are expected at this size, no fragmentation.
  EXPECT_LE(count_components(graph), 32u);
  // Giant component check: count nodes reachable from node 0's component.
  {
    std::vector<bool> visited(graph.num_nodes(), false);
    std::vector<NodeID> stack{0};
    visited[0] = true;
    NodeID reached = 1;
    while (!stack.empty()) {
      const NodeID u = stack.back();
      stack.pop_back();
      for (const NodeID v : graph.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          ++reached;
          stack.push_back(v);
        }
      }
    }
    EXPECT_GT(reached, graph.num_nodes() * 95 / 100);
  }
  // Expected average degree ~ pi * 0.3025 * ln n ~ 7.9 for n = 4096.
  const double avg_degree = 2.0 * static_cast<double>(graph.num_edges()) /
                            graph.num_nodes();
  EXPECT_GT(avg_degree, 5.0);
  EXPECT_LT(avg_degree, 12.0);
}

TEST(Generators, RggEdgesRespectRadius) {
  Rng rng(7);
  const double radius = 0.05;
  const StaticGraph graph = random_geometric_graph(1000, radius, rng);
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    for (const NodeID v : graph.neighbors(u)) {
      const double dx = graph.coordinate(u).x - graph.coordinate(v).x;
      const double dy = graph.coordinate(u).y - graph.coordinate(v).y;
      EXPECT_LT(std::sqrt(dx * dx + dy * dy), radius);
    }
  }
}

TEST(Delaunay, TriangleCountMatchesEulerFormula) {
  Rng rng(3);
  std::vector<Point2D> points(2000);
  for (auto& p : points) p = {rng.uniform(), rng.uniform()};
  const std::vector<Triangle> tris = delaunay_triangulate(points);
  // Euler: for n points with h on the hull, triangles = 2n - h - 2.
  // h is small for random points (~ O(log n)); sanity-bound the count.
  EXPECT_GT(tris.size(), 2 * points.size() - 200);
  EXPECT_LE(tris.size(), 2 * points.size() - 2);
}

TEST(Delaunay, EmptyCircumcircleProperty) {
  // The defining property, checked exhaustively on a small instance.
  Rng rng(5);
  std::vector<Point2D> points(120);
  for (auto& p : points) p = {rng.uniform(), rng.uniform()};
  const std::vector<Triangle> tris = delaunay_triangulate(points);

  auto incircle = [&](const Triangle& t, const Point2D& d) {
    const Point2D& a = points[t.v[0]];
    const Point2D& b = points[t.v[1]];
    const Point2D& c = points[t.v[2]];
    const long double adx = a.x - d.x, ady = a.y - d.y;
    const long double bdx = b.x - d.x, bdy = b.y - d.y;
    const long double cdx = c.x - d.x, cdy = c.y - d.y;
    const long double ad2 = adx * adx + ady * ady;
    const long double bd2 = bdx * bdx + bdy * bdy;
    const long double cd2 = cdx * cdx + cdy * cdy;
    return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
           ad2 * (bdx * cdy - cdx * bdy);
  };

  for (const Triangle& t : tris) {
    for (NodeID p = 0; p < points.size(); ++p) {
      if (p == t.v[0] || p == t.v[1] || p == t.v[2]) continue;
      // No point strictly inside any circumcircle (tolerance for the
      // non-exact predicates).
      EXPECT_LE(incircle(t, points[p]), 1e-12L)
          << "point " << p << " violates the circle of triangle ("
          << t.v[0] << "," << t.v[1] << "," << t.v[2] << ")";
    }
  }
}

TEST(Delaunay, GraphIsValidConnectedPlanar) {
  Rng rng(11);
  const StaticGraph graph = delaunay_graph(4096, rng);
  EXPECT_EQ(validate_graph(graph), "");
  EXPECT_EQ(count_components(graph), 1u);
  // Planar: m <= 3n - 6.
  EXPECT_LE(graph.num_edges(), 3 * graph.num_nodes() - 6);
  // Triangulations are dense planar graphs: expect nearly 3n edges.
  EXPECT_GT(graph.num_edges(), 2.8 * graph.num_nodes());
}

TEST(Generators, GridAndTorusStructure) {
  const StaticGraph grid = grid_graph(10, 7);
  EXPECT_EQ(grid.num_nodes(), 70u);
  EXPECT_EQ(grid.num_edges(), 9u * 7 + 10 * 6);
  EXPECT_EQ(validate_graph(grid), "");
  EXPECT_EQ(count_components(grid), 1u);

  const StaticGraph torus = torus_graph(10, 7);
  EXPECT_EQ(torus.num_nodes(), 70u);
  EXPECT_EQ(torus.num_edges(), 2u * 70);  // 4-regular
  for (NodeID u = 0; u < torus.num_nodes(); ++u) {
    EXPECT_EQ(torus.degree(u), 4u);
  }
}

TEST(Generators, Grid3DStructure) {
  const StaticGraph g = grid3d_graph(5, 4, 3);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_EQ(g.num_edges(), 4u * 4 * 3 + 5 * 3 * 3 + 5 * 4 * 2);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(Generators, AnnulusMeshIsValidFEM) {
  const StaticGraph mesh = annulus_mesh(16, 48);
  EXPECT_EQ(validate_graph(mesh), "");
  EXPECT_EQ(count_components(mesh), 1u);
  EXPECT_TRUE(mesh.has_coordinates());
}

TEST(Generators, RoadNetworkIsConnectedLowDegree) {
  Rng rng(2);
  const StaticGraph road = road_network(10'000, rng);
  EXPECT_EQ(validate_graph(road), "");
  EXPECT_EQ(count_components(road), 1u);
  NodeID max_degree = 0;
  for (NodeID u = 0; u < road.num_nodes(); ++u) {
    max_degree = std::max(max_degree, road.degree(u));
  }
  EXPECT_LE(max_degree, 4u);  // lattice streets
  // Pruning and rivers leave the graph visibly sparser than the lattice.
  EXPECT_LT(road.num_edges(), 2 * road.num_nodes());
}

TEST(Generators, RmatHasSkewedDegrees) {
  Rng rng(4);
  const StaticGraph g = rmat_graph(12, 8.0, 0.45, 0.2, 0.2, rng);
  EXPECT_EQ(validate_graph(g), "");
  NodeID max_degree = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.degree(u));
  }
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) / g.num_nodes();
  // Hubs dominate: the max degree is far above the average.
  EXPECT_GT(static_cast<double>(max_degree), 8.0 * avg_degree);
}

TEST(Generators, BarabasiAlbertHubStructure) {
  Rng rng(6);
  const StaticGraph g = barabasi_albert(5000, 3, rng);
  EXPECT_EQ(validate_graph(g), "");
  EXPECT_EQ(count_components(g), 1u);  // attachment keeps it connected
  NodeID max_degree = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.degree(u));
  }
  EXPECT_GT(max_degree, 50u);
}

TEST(Generators, InstanceRegistryServesAllNames) {
  for (const std::string& name : instance_names()) {
    if (name == "grid_l" || name == "road_l" || name == "rgg15" ||
        name == "delaunay15" || name == "rmat_15" || name == "annulus_l") {
      continue;  // big ones are exercised by the benches, not unit tests
    }
    const StaticGraph g = make_instance(name, 1);
    EXPECT_GT(g.num_nodes(), 0u) << name;
    EXPECT_GT(g.num_edges(), 0u) << name;
  }
  EXPECT_THROW(make_instance("no_such_instance"), std::runtime_error);
}

TEST(Generators, DeterministicUnderSeed) {
  const StaticGraph a = make_instance("rgg14", 99);
  const StaticGraph b = make_instance("rgg14", 99);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeID u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u));
  }
}

}  // namespace
}  // namespace kappa
