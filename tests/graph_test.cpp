/// \file graph_test.cpp
/// \brief Tests for the CSR graph, builder, partition, metrics, subgraph
/// and quotient graph.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/partition.hpp"
#include "graph/quotient_graph.hpp"
#include "graph/static_graph.hpp"
#include "graph/subgraph.hpp"
#include "graph/validation.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

/// Triangle + pendant: 0-1-2-0 plus 2-3.
StaticGraph small_graph() {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 2, 3);
  builder.add_edge(2, 0, 5);
  builder.add_edge(2, 3, 1);
  return builder.finalize();
}

// ------------------------------------------------------------ builder ----

TEST(GraphBuilder, BuildsSymmetricCSR) {
  const StaticGraph g = small_graph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);
  EXPECT_EQ(validate_graph(g), "");
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(GraphBuilder, MergesParallelEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 0, 3);  // same undirected edge, reversed
  builder.add_edge(0, 1, 5);
  const StaticGraph g = builder.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.arc_weight(g.first_arc(0)), 10);
  EXPECT_EQ(validate_graph(g), "");
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0, 7);
  builder.add_edge(0, 1, 1);
  const StaticGraph g = builder.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, NodeWeightsAndCoordinates) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  builder.set_node_weight(0, 5);
  builder.set_coordinate(1, {3.0, 4.0});
  const StaticGraph g = builder.finalize();
  EXPECT_EQ(g.node_weight(0), 5);
  EXPECT_EQ(g.node_weight(1), 1);
  EXPECT_EQ(g.total_node_weight(), 6);
  EXPECT_EQ(g.max_node_weight(), 5);
  ASSERT_TRUE(g.has_coordinates());
  EXPECT_EQ(g.coordinate(1).x, 3.0);
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder builder(3);
  const StaticGraph g = builder.finalize();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(count_components(g), 3u);
}

// -------------------------------------------------------- StaticGraph ----

TEST(StaticGraph, WeightedDegreeAndTotals) {
  const StaticGraph g = small_graph();
  EXPECT_EQ(g.weighted_degree(0), 2 + 5);
  EXPECT_EQ(g.weighted_degree(2), 3 + 5 + 1);
  EXPECT_EQ(g.total_edge_weight(), 2 + 3 + 5 + 1);
  EXPECT_EQ(g.total_node_weight(), 4);
}

TEST(StaticGraph, NeighborsSpan) {
  const StaticGraph g = small_graph();
  const auto nbrs = g.neighbors(2);
  std::vector<NodeID> sorted(nbrs.begin(), nbrs.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeID>{0, 1, 3}));
}

// ----------------------------------------------------------- partition ----

TEST(Partition, AssignMoveAndBlockWeights) {
  const StaticGraph g = small_graph();
  Partition p(g.num_nodes(), 2);
  for (NodeID u = 0; u < 4; ++u) p.assign(u, u % 2, g.node_weight(u));
  EXPECT_EQ(p.block_weight(0), 2);
  EXPECT_EQ(p.block_weight(1), 2);
  p.move(3, 0, g.node_weight(3));
  EXPECT_EQ(p.block_weight(0), 3);
  EXPECT_EQ(p.block_weight(1), 1);
  EXPECT_EQ(p.block(3), 0u);
  EXPECT_EQ(validate_partition(g, p), "");
}

// ------------------------------------------------------------- metrics ----

TEST(Metrics, EdgeCutCountsWeightedCrossEdges) {
  const StaticGraph g = small_graph();
  Partition p(g, {0, 0, 1, 1}, 2);
  // Cut edges: {1,2} w=3 and {0,2} w=5.
  EXPECT_EQ(edge_cut(g, p), 8);
}

TEST(Metrics, ZeroCutForSingleBlock) {
  const StaticGraph g = small_graph();
  Partition p(g, {0, 0, 0, 0}, 1);
  EXPECT_EQ(edge_cut(g, p), 0);
  EXPECT_NEAR(balance(g, p), 1.0, 1e-12);
}

TEST(Metrics, BalanceAndBound) {
  const StaticGraph g = small_graph();  // 4 unit nodes
  Partition p(g, {0, 0, 0, 1}, 2);
  EXPECT_NEAR(balance(g, p), 3.0 / 2.0, 1e-12);
  // Lmax = (1+eps) * 4/2 + 1.
  EXPECT_EQ(max_block_weight_bound(g, 2, 0.0), 3);
  EXPECT_TRUE(is_balanced(g, p, 0.0));  // 3 <= 3 thanks to the +max term
  Partition q(g, {0, 0, 0, 0}, 1);
  EXPECT_TRUE(is_balanced(g, q, 0.0));
}

TEST(Metrics, BoundaryNodes) {
  const StaticGraph g = small_graph();
  Partition p(g, {0, 0, 1, 1}, 2);
  const auto boundary = boundary_nodes(g, p);
  EXPECT_EQ(boundary, (std::vector<NodeID>{0, 1, 2}));  // 3 is interior
  const auto pair01 = pair_boundary_nodes(g, p, 0, 1);
  EXPECT_EQ(pair01, (std::vector<NodeID>{0, 1}));
}

// ------------------------------------------------------------ subgraph ----

TEST(Subgraph, InducedPreservesInternalEdges) {
  const StaticGraph g = small_graph();
  const Subgraph sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // the triangle; pendant dropped
  EXPECT_EQ(validate_graph(sub.graph), "");
  EXPECT_EQ(sub.global_to_local[3], kInvalidNode);
  for (NodeID local = 0; local < 3; ++local) {
    EXPECT_EQ(sub.global_to_local[sub.local_to_global[local]], local);
  }
}

TEST(Subgraph, PreservesWeights) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 9);
  builder.set_node_weight(1, 4);
  const StaticGraph g = builder.finalize();
  const Subgraph sub = induced_subgraph(g, {1, 0});
  EXPECT_EQ(sub.graph.node_weight(0), 4);  // node 1 became local 0
  EXPECT_EQ(sub.graph.arc_weight(0), 9);
}

// ------------------------------------------------------ quotient graph ----

TEST(QuotientGraph, EdgesAndCutWeights) {
  const StaticGraph g = small_graph();
  Partition p(g, {0, 0, 1, 2}, 3);
  const QuotientGraph q(g, p);
  EXPECT_EQ(q.num_blocks(), 3u);
  ASSERT_EQ(q.edges().size(), 2u);  // {0,1} and {1,2}; blocks 0,2 not adjacent
  for (const QuotientEdge& e : q.edges()) {
    if (e.a == 0 && e.b == 1) {
      EXPECT_EQ(e.cut_weight, 8);  // edges {0,2} + {1,2}
    } else {
      EXPECT_EQ(e.a, 1u);
      EXPECT_EQ(e.b, 2u);
      EXPECT_EQ(e.cut_weight, 1);
    }
  }
  EXPECT_EQ(q.max_degree(), 2u);  // block 1 touches both others
}

TEST(QuotientGraph, BoundarySeedsArePairBoundary) {
  const StaticGraph g = small_graph();
  Partition p(g, {0, 0, 1, 1}, 2);
  const QuotientGraph q(g, p);
  ASSERT_EQ(q.edges().size(), 1u);
  std::vector<NodeID> boundary = q.edges()[0].boundary;
  std::sort(boundary.begin(), boundary.end());
  EXPECT_EQ(boundary, (std::vector<NodeID>{0, 1, 2}));
}

// ---------------------------------------------------------- validation ----

TEST(Validation, DetectsBrokenStructures) {
  const StaticGraph g = small_graph();
  EXPECT_EQ(validate_graph(g), "");

  // A matching that is not symmetric.
  std::vector<NodeID> partner = {1, 0, 2, 3};
  EXPECT_EQ(validate_matching(g, partner), "");
  partner = {1, 2, 1, 3};
  EXPECT_NE(validate_matching(g, partner), "");
  // A matched pair that is not an edge.
  partner = {3, 1, 2, 0};
  EXPECT_NE(validate_matching(g, partner), "");
}

TEST(Validation, CountComponents) {
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const StaticGraph g = builder.finalize();
  EXPECT_EQ(count_components(g), 3u);
}

}  // namespace
}  // namespace kappa
