/// \file initial_test.cpp
/// \brief Tests for greedy graph growing, multilevel bisection, recursive
/// bisection and the repeated initial partitioning of §4.
#include <gtest/gtest.h>

#include <algorithm>

#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "initial/bipartition.hpp"
#include "initial/initial_partitioner.hpp"
#include "initial/recursive_bisection.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

TEST(GreedyGrowing, ReachesTargetWeight) {
  const StaticGraph g = grid_graph(20, 20);
  Rng rng(1);
  const auto side = greedy_growing_bisection(g, 200, rng);
  NodeWeight grown = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    if (side[u] == 0) grown += g.node_weight(u);
  }
  EXPECT_GE(grown, 200);
  EXPECT_LE(grown, 201);  // exceeds the target by at most one unit node
}

TEST(GreedyGrowing, GrownRegionIsConnectedOnConnectedGraph) {
  const StaticGraph g = grid_graph(16, 16);
  Rng rng(3);
  const auto side = greedy_growing_bisection(g, 128, rng);
  // BFS inside side 0 from any side-0 node must reach all of side 0.
  NodeID start = kInvalidNode;
  NodeID count = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    if (side[u] == 0) {
      start = u;
      ++count;
    }
  }
  ASSERT_NE(start, kInvalidNode);
  std::vector<bool> visited(g.num_nodes(), false);
  std::vector<NodeID> stack{start};
  visited[start] = true;
  NodeID reached = 1;
  while (!stack.empty()) {
    const NodeID u = stack.back();
    stack.pop_back();
    for (const NodeID v : g.neighbors(u)) {
      if (!visited[v] && side[v] == 0) {
        visited[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(reached, count);
}

TEST(GreedyGrowing, HandlesDisconnectedGraphs) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  builder.add_edge(4, 5);
  const StaticGraph g = builder.finalize();
  Rng rng(2);
  const auto side = greedy_growing_bisection(g, 4, rng);
  NodeWeight grown = 0;
  for (NodeID u = 0; u < 6; ++u) grown += (side[u] == 0) ? 1 : 0;
  EXPECT_EQ(grown, 4);
}

TEST(MultilevelBisection, BalancedLowCutOnGrid) {
  const StaticGraph g = grid_graph(32, 32);
  BisectionOptions options;
  options.eps = 0.03;
  Rng rng(5);
  const auto side = multilevel_bisection(g, options, rng);

  NodeWeight w0 = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) w0 += (side[u] == 0) ? 1 : 0;
  const NodeWeight total = g.total_node_weight();
  EXPECT_NEAR(static_cast<double>(w0), total / 2.0, 0.05 * total);

  std::vector<BlockID> assignment(side.begin(), side.end());
  const Partition p(g, std::move(assignment), 2);
  // Optimal bisection of a 32x32 grid costs 32.
  EXPECT_LE(edge_cut(g, p), 48);
}

TEST(MultilevelBisection, UnequalFractionRespected) {
  const StaticGraph g = grid_graph(30, 30);
  BisectionOptions options;
  options.fraction_a = 2.0 / 3.0;
  options.eps = 0.05;
  Rng rng(7);
  const auto side = multilevel_bisection(g, options, rng);
  NodeWeight w0 = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) w0 += (side[u] == 0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(w0), 600.0, 60.0);
}

/// Recursive bisection produces feasible k-way partitions for any k, also
/// non-powers of two.
class RecursiveBisectionProperty : public ::testing::TestWithParam<BlockID> {
};

TEST_P(RecursiveBisectionProperty, FeasiblePartition) {
  const BlockID k = GetParam();
  const StaticGraph g = grid_graph(24, 24);
  RecursiveBisectionOptions options;
  options.eps = 0.05;
  Rng rng(11);
  const Partition p = recursive_bisection(g, k, options, rng);
  EXPECT_EQ(validate_partition(g, p), "");
  EXPECT_EQ(p.k(), k);
  // Every block non-empty.
  for (BlockID b = 0; b < k; ++b) EXPECT_GT(p.block_weight(b), 0);
  EXPECT_TRUE(is_balanced(g, p, 0.05)) << "k=" << k << " balance "
                                       << balance(g, p);
}

INSTANTIATE_TEST_SUITE_P(Ks, RecursiveBisectionProperty,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16));

TEST(InitialPartitioner, MoreRepeatsNeverHurt) {
  Rng graph_rng(13);
  const StaticGraph g = random_geometric_graph(1200, 0.06, graph_rng);
  InitialPartitionOptions one;
  one.repeats = 1;
  InitialPartitionOptions five;
  five.repeats = 5;
  // Same fork structure: attempt 0 of the 5-repeat run equals the
  // 1-repeat run, so the best-of-5 cannot be lexicographically worse in
  // the (total overload, cut) objective the selection uses.
  Rng rng_a(21);
  Rng rng_b(21);
  const Partition p1 = initial_partition(g, 8, one, rng_a);
  const Partition p5 = initial_partition(g, 8, five, rng_b);
  const NodeWeight bound = max_block_weight_bound(g, 8, 0.03);
  auto overload = [&](const Partition& p) {
    NodeWeight total = 0;
    for (BlockID b = 0; b < p.k(); ++b) {
      total += std::max<NodeWeight>(0, p.block_weight(b) - bound);
    }
    return total;
  };
  const NodeWeight o1 = overload(p1);
  const NodeWeight o5 = overload(p5);
  EXPECT_TRUE(o5 < o1 || (o5 == o1 && edge_cut(g, p5) <= edge_cut(g, p1)))
      << "overload " << o5 << " vs " << o1;
}

TEST(InitialPartitioner, WorksOnCoarseWeightedGraphs) {
  // Simulate a coarsest graph: few nodes, heavy weights.
  GraphBuilder builder(12);
  Rng rng(3);
  for (NodeID u = 0; u < 12; ++u) {
    builder.set_node_weight(u, 50 + static_cast<NodeWeight>(rng.bounded(100)));
    for (NodeID v = u + 1; v < 12; ++v) {
      if (rng.uniform() < 0.4) {
        builder.add_edge(u, v, 1 + rng.bounded(30));
      }
    }
  }
  const StaticGraph g = builder.finalize();
  InitialPartitionOptions options;
  options.repeats = 3;
  Rng prng(9);
  const Partition p = initial_partition(g, 4, options, prng);
  EXPECT_EQ(validate_partition(g, p), "");
  // The +max_node_weight term makes this bound satisfiable.
  EXPECT_TRUE(is_balanced(g, p, 0.03));
}

}  // namespace
}  // namespace kappa
