/// \file io_test.cpp
/// \brief Tests for METIS graph-file and partition-file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_io.hpp"
#include "graph/validation.hpp"

namespace kappa {
namespace {

class IOTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "kappa_io_" + name;
  }
};

TEST_F(IOTest, RoundTripUnweighted) {
  const StaticGraph original = grid_graph(7, 5);
  const std::string path = temp_path("unweighted.graph");
  write_metis_graph(original, path);
  const StaticGraph read = read_metis_graph(path);
  ASSERT_EQ(read.num_nodes(), original.num_nodes());
  ASSERT_EQ(read.num_edges(), original.num_edges());
  EXPECT_EQ(validate_graph(read), "");
  for (NodeID u = 0; u < read.num_nodes(); ++u) {
    ASSERT_EQ(read.degree(u), original.degree(u));
  }
  std::remove(path.c_str());
}

TEST_F(IOTest, RoundTripWithIsolatedVertex) {
  // An isolated vertex is written as an *empty* line — legal METIS.
  // Regression: the reader used to swallow it as if it were a comment,
  // shifting every following row and dying with "unexpected EOF".
  GraphBuilder builder(5);
  builder.add_edge(0, 1, 1);
  builder.add_edge(3, 4, 1);  // vertex 2 stays isolated
  const StaticGraph original = builder.finalize();
  const std::string path = temp_path("isolated.graph");
  write_metis_graph(original, path);
  const StaticGraph read = read_metis_graph(path);
  ASSERT_EQ(read.num_nodes(), original.num_nodes());
  ASSERT_EQ(read.num_edges(), original.num_edges());
  EXPECT_EQ(read.degree(2), 0u);
  EXPECT_EQ(read.degree(0), 1u);
  EXPECT_EQ(read.degree(4), 1u);
  std::remove(path.c_str());
}

TEST_F(IOTest, RoundTripWeighted) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 3);
  builder.add_edge(1, 2, 7);
  builder.add_edge(2, 3, 2);
  builder.set_node_weight(0, 5);
  builder.set_node_weight(3, 9);
  const StaticGraph original = builder.finalize();
  const std::string path = temp_path("weighted.graph");
  write_metis_graph(original, path);
  const StaticGraph read = read_metis_graph(path);
  ASSERT_EQ(read.num_nodes(), 4u);
  EXPECT_EQ(read.node_weight(0), 5);
  EXPECT_EQ(read.node_weight(1), 1);
  EXPECT_EQ(read.node_weight(3), 9);
  EXPECT_EQ(read.arc_weight(read.first_arc(0)), 3);
  EXPECT_EQ(validate_graph(read), "");
  std::remove(path.c_str());
}

TEST_F(IOTest, ReadsCommentsAndExplicitFormat) {
  const std::string path = temp_path("comments.graph");
  {
    std::ofstream out(path);
    out << "% a Walshaw-archive style header comment\n";
    out << "3 2 001\n";  // edge weights only
    out << "% node 1\n";
    out << "2 10\n";
    out << "1 10 3 20\n";
    out << "2 20\n";
  }
  const StaticGraph g = read_metis_graph(path);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.total_edge_weight(), 30);
  std::remove(path.c_str());
}

TEST_F(IOTest, RejectsMissingFileAndBadContent) {
  EXPECT_THROW(read_metis_graph("/nonexistent/path.graph"),
               std::runtime_error);
  const std::string path = temp_path("bad.graph");
  {
    std::ofstream out(path);
    out << "2 1\n";
    out << "5\n";  // neighbor out of range
    out << "1\n";
  }
  EXPECT_THROW(read_metis_graph(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(IOTest, PartitionRoundTrip) {
  const StaticGraph g = grid_graph(4, 4);
  Partition p(g.num_nodes(), 4);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    p.assign(u, u % 4, g.node_weight(u));
  }
  const std::string path = temp_path("part.txt");
  write_partition(p, path);
  const Partition read = read_partition(g, 4, path);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(read.block(u), p.block(u));
  }
  EXPECT_EQ(validate_partition(g, read), "");
  std::remove(path.c_str());
}

TEST_F(IOTest, PartitionRejectsOutOfRangeBlocks) {
  const StaticGraph g = grid_graph(2, 2);
  const std::string path = temp_path("badpart.txt");
  {
    std::ofstream out(path);
    out << "0\n1\n2\n9\n";  // 9 >= k
  }
  EXPECT_THROW(read_partition(g, 4, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kappa
